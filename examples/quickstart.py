"""Quickstart: parallel sampling from a determinantal point process.

Builds a random PSD ensemble matrix, draws samples with the paper's parallel
samplers (Theorem 10) and the classical sequential baselines, and prints the
PRAM depth/work accounting that the paper's guarantees are stated in.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.sequential import sequential_sample
from repro.dpp.spectral import sample_kdpp_spectral
from repro.dpp.symmetric import SymmetricKDPP
from repro.pram.tracker import Tracker, use_tracker
from repro.workloads import random_psd_ensemble


def main() -> None:
    n, k = 64, 16
    print(f"Ground set size n = {n}, cardinality k = {k}")

    # 1. A random PSD ensemble matrix L defines the k-DPP  P[S] ∝ det(L_S).
    L = random_psd_ensemble(n, rank=n, seed=0)

    # 2. Parallel sampler (Theorem 10): Õ(√k) adaptive rounds, exact output.
    parallel = repro.sample_symmetric_kdpp_parallel(L, k, seed=1)
    print("\n== Theorem 10 parallel sampler ==")
    print("sample:          ", parallel.subset)
    print("adaptive rounds: ", parallel.report.rounds)
    print("oracle calls:    ", parallel.report.oracle_calls)
    print("peak machines:   ", int(parallel.report.peak_machines))
    print("batch sizes:     ", parallel.report.batch_sizes)
    print("mean acceptance: ", round(parallel.report.mean_acceptance, 3))

    # 3. Sequential sampling-to-counting baseline [JVV86]: Θ(k) rounds.
    sequential = sequential_sample(SymmetricKDPP(L, k), seed=2)
    print("\n== Sequential JVV baseline ==")
    print("sample:          ", sequential.subset)
    print("adaptive rounds: ", sequential.report.rounds)

    # 4. The HKPV spectral sampler (the DPPy-style baseline) for reference.
    tracker = Tracker()
    with use_tracker(tracker):
        spectral = sample_kdpp_spectral(L, k, seed=3)
    print("\n== HKPV spectral baseline ==")
    print("sample:          ", tuple(spectral))
    print("adaptive rounds: ", tracker.rounds)

    speedup = sequential.report.rounds / max(parallel.report.rounds, 1)
    print(f"\nDepth speedup over the sequential reduction: {speedup:.1f}x "
          f"(k = {k}, √k ≈ {np.sqrt(k):.1f})")

    # 5. Unconstrained DPPs: sample the cardinality first (Remark 15).
    unconstrained = repro.sample_symmetric_dpp_parallel(L / 8.0, seed=4)
    print("\n== Unconstrained DPP (Remark 15 + Theorem 10) ==")
    print("sample size:     ", len(unconstrained.subset))
    print("adaptive rounds: ", unconstrained.report.rounds)


if __name__ == "__main__":
    main()
