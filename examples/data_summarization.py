"""Data summarization with DPPs (the paper's motivating application).

Selects a diverse, high-quality subset of synthetic "documents" with a k-DPP
whose ensemble matrix combines a quality score and an RBF similarity kernel,
and compares topic coverage against independent (quality-weighted) sampling.

Run:  python examples/data_summarization.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

import repro
from repro.workloads.datasets import documents_to_ensemble, synthetic_documents


def topic_coverage(documents, subset) -> int:
    return len({documents[i].topic for i in subset})


def same_topic_pairs(documents, subset) -> int:
    """Number of redundant pairs in the summary (both documents on one topic)."""
    from itertools import combinations

    return sum(1 for a, b in combinations(subset, 2)
               if documents[a].topic == documents[b].topic)


def independent_baseline(documents, k, rng) -> tuple:
    quality = np.array([d.quality for d in documents])
    probs = quality / quality.sum()
    return tuple(sorted(rng.choice(len(documents), size=k, replace=False, p=probs)))


def main() -> None:
    num_documents, num_topics, k = 40, 5, 8
    documents = synthetic_documents(num_documents, num_topics=num_topics, dimension=10, seed=0)
    # bandwidth on the order of the within-topic spread (≈ √(2·dimension)) so
    # same-topic documents are strongly similar and cross-topic ones are not
    L = documents_to_ensemble(documents, bandwidth=4.5)
    rng = np.random.default_rng(1)

    print(f"{num_documents} documents across {num_topics} topics; summary size k = {k}\n")

    dpp_coverages, indep_coverages = [], []
    dpp_redundancy, indep_redundancy = [], []
    trials = 30
    for trial in range(trials):
        result = repro.sample_symmetric_kdpp_parallel(L, k, seed=rng)
        baseline = independent_baseline(documents, k, rng)
        dpp_coverages.append(topic_coverage(documents, result.subset))
        indep_coverages.append(topic_coverage(documents, baseline))
        dpp_redundancy.append(same_topic_pairs(documents, result.subset))
        indep_redundancy.append(same_topic_pairs(documents, baseline))

    result = repro.sample_symmetric_kdpp_parallel(L, k, seed=2)
    print("One DPP summary (document ids):", result.subset)
    print("Topics covered by it:          ",
          sorted({documents[i].topic for i in result.subset}))
    print("Parallel rounds used:          ", result.report.rounds)

    print(f"\nAverages over {trials} trials (summary size {k}):")
    print(f"  topics covered     — k-DPP: {np.mean(dpp_coverages):.2f} / {num_topics}, "
          f"quality-weighted independent: {np.mean(indep_coverages):.2f} / {num_topics}")
    print(f"  same-topic pairs   — k-DPP: {np.mean(dpp_redundancy):.2f}, "
          f"quality-weighted independent: {np.mean(indep_redundancy):.2f}")
    print("\nThe DPP's negative dependence suppresses redundant same-topic pairs in the")
    print("summary relative to independent quality-weighted selection.")


if __name__ == "__main__":
    main()
