"""k-DPP landmark selection for Nyström kernel approximation.

The paper cites randomized numerical linear algebra [DM21] and kernel
approximation [LJS16] among DPP applications.  This example compares the
Nyström approximation error of landmarks chosen by a k-DPP (sampled with the
parallel Theorem 10 sampler) against uniformly random landmarks.

Run:  python examples/nystrom_landmarks.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.workloads import rbf_kernel_ensemble


def nystrom_error(K: np.ndarray, landmarks) -> float:
    """Relative Frobenius error of the Nyström approximation built on ``landmarks``."""
    idx = list(landmarks)
    C = K[:, idx]
    W = K[np.ix_(idx, idx)]
    approx = C @ np.linalg.pinv(W) @ C.T
    return float(np.linalg.norm(K - approx) / np.linalg.norm(K))


def main() -> None:
    n, k, trials = 80, 10, 20
    # Use the RBF similarity itself as both the data kernel and the DPP ensemble.
    K, features = rbf_kernel_ensemble(n, dimension=3, bandwidth=0.8,
                                      quality=np.ones(n), seed=0)
    rng = np.random.default_rng(1)

    dpp_errors, uniform_errors = [], []
    rounds = []
    for _ in range(trials):
        result = repro.sample_symmetric_kdpp_parallel(K, k, seed=rng)
        dpp_errors.append(nystrom_error(K, result.subset))
        rounds.append(result.report.rounds)
        uniform = rng.choice(n, size=k, replace=False)
        uniform_errors.append(nystrom_error(K, uniform))

    print(f"Nyström approximation of an {n}x{n} RBF kernel with {k} landmarks "
          f"({trials} trials)\n")
    print(f"  k-DPP landmarks   : relative error {np.mean(dpp_errors):.4f} "
          f"± {np.std(dpp_errors):.4f}")
    print(f"  uniform landmarks : relative error {np.mean(uniform_errors):.4f} "
          f"± {np.std(uniform_errors):.4f}")
    print(f"\nParallel sampler depth per draw: {np.mean(rounds):.1f} adaptive rounds "
          f"(k = {k}, √k ≈ {np.sqrt(k):.1f})")
    print("DPP landmarks repel each other in feature space, covering the kernel's")
    print("range more evenly than uniform sampling and lowering the Nyström error.")


if __name__ == "__main__":
    main()
