"""Serving recommender-diversity traffic through the sampling service layer.

Simulates many concurrent users requesting diverse item slates from one
registered catalog kernel and reports amortized latency:

* **cold path** — each request pays full preprocessing (what calling the
  module-level sampler per request costs);
* **warm session** — requests share one cached factorization
  (``repro.serve``), so only the per-draw work remains;
* **fused scheduler** — concurrent parallel-sampler requests are coalesced
  into shared engine rounds (``submit()`` / ``drain()``).

Fixed seeds make every path return identical slates — the service layer is
pure wall-clock engineering on top of the paper's samplers.

Run:  python examples/serving_traffic.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.dpp.spectral import sample_kdpp_spectral
from repro.workloads import random_psd_ensemble

CATALOG_SIZE = 200
KERNEL_RANK = 60
SLATE_SIZE = 8
USERS = 24


def main() -> None:
    L = random_psd_ensemble(CATALOG_SIZE, rank=KERNEL_RANK, seed=0)
    registry = repro.KernelRegistry()
    registry.register("catalog", L, metadata={"items": CATALOG_SIZE})
    print(f"Registered catalog kernel: n={CATALOG_SIZE}, rank={KERNEL_RANK}; "
          f"serving {USERS} users, slates of {SLATE_SIZE}\n")

    # --- cold path: every user pays the eigendecomposition ------------- #
    start = time.perf_counter()
    cold_slates = [sample_kdpp_spectral(L, SLATE_SIZE, seed=user) for user in range(USERS)]
    cold = time.perf_counter() - start

    # --- warm session: preprocessing amortized across users ------------ #
    session = registry.session("catalog")
    session.sample(k=SLATE_SIZE, seed=0)  # first request fills the cache
    start = time.perf_counter()
    warm_slates = [session.sample(k=SLATE_SIZE, seed=user).subset for user in range(USERS)]
    warm = time.perf_counter() - start

    assert warm_slates == cold_slates, "cache must never change samples"
    print("== per-request latency (spectral sampler) ==")
    print(f"cold:  {1e3 * cold / USERS:7.2f} ms/request   ({USERS / cold:7.1f} req/s)")
    print(f"warm:  {1e3 * warm / USERS:7.2f} ms/request   ({USERS / warm:7.1f} req/s)")
    print(f"amortization speedup: {cold / warm:.1f}x, identical slates: True\n")

    # --- concurrent traffic: fused parallel-sampler rounds ------------- #
    start = time.perf_counter()
    unfused = [session.sample(k=SLATE_SIZE, seed=user, method="parallel").subset
               for user in range(USERS)]
    unfused_time = time.perf_counter() - start

    scheduler = repro.RoundScheduler(session)
    for user in range(USERS):
        scheduler.submit(SLATE_SIZE, seed=user)
    start = time.perf_counter()
    fused = [result.subset for result in scheduler.drain()]
    fused_time = time.perf_counter() - start

    assert fused == unfused, "fusion must never change samples"
    stats = scheduler.stats
    print("== concurrent traffic (parallel sampler, Theorem 10) ==")
    print(f"unfused: {1e3 * unfused_time / USERS:7.2f} ms/request")
    print(f"fused:   {1e3 * fused_time / USERS:7.2f} ms/request   "
          f"({stats['submitted_batches']} request rounds -> "
          f"{stats['executed_batches']} engine rounds)")
    print("identical slates fused vs unfused: True\n")

    sample = warm_slates[0]
    print(f"example slate for user 0: {sample}")
    print("session stats:", session.stats)


if __name__ == "__main__":
    main()
