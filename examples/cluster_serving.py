"""Serving a fleet of kernels from a sharded cluster.

Walks the whole cluster story on one machine:

1. start a 3-node :class:`~repro.cluster.LocalCluster` (replication 2) —
   each shard is a headless ``KernelRegistry`` + ``FactorizationCache``
   behind a tiny length-prefixed-pickle socket protocol;
2. register many tenant kernels: consistent hashing on the content
   fingerprint spreads them (and their expensive eigendecompositions)
   across the shards;
3. serve traffic through :func:`repro.serve_cluster`'s drop-in session —
   fixed-seed slates are byte-identical to a single-node ``repro.serve``;
4. kill the primary of one kernel mid-traffic and watch the client fail
   over to a replica with the identical seeded sample;
5. join a fourth node: only ~K/N fingerprints move (the consistent-hashing
   guarantee), and ``cluster_info()`` rolls up every shard's cache counters.

Run:  python examples/cluster_serving.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.cluster import LocalCluster
from repro.workloads import random_psd_ensemble

TENANTS = 12
CATALOG_SIZE = 96
KERNEL_RANK = 32
SLATE_SIZE = 6


def main() -> None:
    with LocalCluster(nodes=3, replication=2) as cluster:
        client = cluster.client()

        # --- 2. register one kernel per tenant ------------------------- #
        names = []
        for tenant in range(TENANTS):
            L = random_psd_ensemble(CATALOG_SIZE, rank=KERNEL_RANK, seed=tenant)
            names.append(client.register(L, name=f"tenant-{tenant:02d}", warm=True).name)
        placement = {}
        for name in names:
            primary = client.owners(client.lookup(name).fingerprint)[0]
            placement.setdefault(primary, []).append(name)
        print("Placement (primary shard -> tenants):")
        for node_id in sorted(placement):
            print(f"  {node_id}: {len(placement[node_id])} kernels")

        # --- 3. byte-identity with a single-node session --------------- #
        L0 = random_psd_ensemble(CATALOG_SIZE, rank=KERNEL_RANK, seed=0)
        session = repro.serve_cluster("tenant-00", cluster=cluster)
        single = repro.serve(L0, registry=repro.KernelRegistry())
        slate_cluster = session.sample(k=SLATE_SIZE, seed=123).subset
        slate_single = single.sample(k=SLATE_SIZE, seed=123).subset
        print(f"\nCluster slate  {slate_cluster}")
        print(f"Single slate   {slate_single}")
        print(f"byte-identical: {slate_cluster == slate_single}")

        # --- 4. primary death -> replica failover ---------------------- #
        primary = session.owners[0]
        cluster.kill_node(primary)
        failover_slate = session.sample(k=SLATE_SIZE, seed=123).subset
        print(f"\nKilled {primary}; replica served the identical slate: "
              f"{failover_slate == slate_single} "
              f"(failovers={client.failovers})")
        report = cluster.forget_node(primary)
        print(f"Forgot {primary}: re-homed {report.moved}/{report.total} kernels "
              f"from replicas (lost={len(report.lost)})")

        # --- 5. scale out: join a node, move only ~K/N ----------------- #
        report = cluster.add_node()
        print(f"\nJoined a new shard: moved {report.moved}/{report.total} "
              f"fingerprints ({report.moved_fraction:.0%}; fair share would be "
              f"{1 / len(cluster):.0%} at R=1, more with R=2 overlap)")

        info = cluster.cluster_info()
        cache = info["cache"]
        print(f"\ncluster_info rollup: {info['alive']} shards alive, "
              f"{info['registered']} kernels, {info['samples_served']} samples")
        print(f"  caches: {cache['entries']} entries, {cache['hits']} hits, "
              f"{cache['misses']} misses, {cache['nbytes'] / 1e6:.1f} MB artifacts")


if __name__ == "__main__":
    main()
