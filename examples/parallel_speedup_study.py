"""Depth-scaling study: the quadratic speedup across all distribution classes.

Sweeps the cardinality / instance size and prints the number of adaptive
rounds used by each parallel sampler next to its sequential baseline — the
laptop-scale rendering of Theorems 8, 9, 10, and 11.

Run:  python examples/parallel_speedup_study.py
"""

from __future__ import annotations

import math

import numpy as np

import repro
from repro.core.entropic import EntropicSamplerConfig
from repro.core.sequential import sequential_sample
from repro.dpp.nonsymmetric import NonsymmetricKDPP
from repro.dpp.symmetric import SymmetricKDPP
from repro.planar.graphs import grid_graph
from repro.workloads import random_npsd_ensemble, random_psd_ensemble


def section(title: str) -> None:
    print(f"\n{title}\n" + "-" * len(title))


def main() -> None:
    print("Adaptive-round comparison: parallel samplers vs sequential reductions")

    section("Theorem 10 — symmetric k-DPPs (exact)")
    n = 100
    L = random_psd_ensemble(n, rank=n, seed=0)
    print(f"{'k':>6} {'sqrt(k)':>8} {'parallel':>9} {'sequential':>11} {'speedup':>8}")
    for k in (4, 16, 36, 64):
        par = repro.sample_symmetric_kdpp_parallel(L, k, seed=1)
        seq = sequential_sample(SymmetricKDPP(L, k), seed=1)
        print(f"{k:>6} {math.sqrt(k):>8.1f} {par.report.rounds:>9} "
              f"{seq.report.rounds:>11} {seq.report.rounds / par.report.rounds:>7.1f}x")

    section("Theorem 8 — nonsymmetric k-DPPs (TV ≤ ε)")
    n = 40
    L_ns = random_npsd_ensemble(n, seed=2)
    config = EntropicSamplerConfig(c=0.3, epsilon=0.1)
    print(f"{'k':>6} {'parallel':>9} {'sequential':>11}")
    for k in (4, 9, 16):
        par = repro.sample_nonsymmetric_kdpp_parallel(L_ns, k, config=config, seed=3)
        seq = sequential_sample(NonsymmetricKDPP(L_ns, k), seed=3)
        print(f"{k:>6} {par.report.rounds:>9} {seq.report.rounds:>11}")

    section("Theorem 11 — planar perfect matchings (exact)")
    print(f"{'n':>6} {'sqrt(n)':>8} {'parallel':>9} {'sequential':>11}")
    for side in (4, 6, 8):
        g = grid_graph(side, side)
        par = repro.sample_planar_matching_parallel(g, seed=4)
        seq = repro.sample_planar_matching_sequential(g, seed=4)
        print(f"{g.n:>6} {math.sqrt(g.n):>8.1f} {par.report.rounds:>9} {seq.report.rounds:>11}")

    print("\nSequential depth grows linearly; the parallel samplers track the √k / √n")
    print("curves of the paper (up to the constant-factor rounds spent per batch).")


if __name__ == "__main__":
    main()
