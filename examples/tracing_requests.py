"""End-to-end request tracing: span trees, SLOs, and the flight recorder.

Walks the full observability story on one fused-scheduler workload:

* **trace** — every ``submit()`` births a request span; the queue wait, the
  fused engine round (with links back to every member request) and any
  process-worker chunks all land in one connected tree;
* **SLO** — streaming p50/p95/p99 latency quantiles per kernel family,
  exported through ``render_prometheus()`` with O(1) memory (P² algorithm);
* **flight recorder** — requests slower than a budget get their complete
  span tree captured into a bounded ring and dumped as Chrome trace-event
  JSON you can open in ``chrome://tracing`` or https://ui.perfetto.dev.

Fixed seeds make the traced run byte-identical to an untraced one — tracing
is pure metadata and never changes sampled values.

Run:  python examples/tracing_requests.py
"""

from __future__ import annotations

import json

import numpy as np

import repro
from repro import obs

CATALOG_SIZE = 64
KERNEL_RANK = 12
SLATE_SIZE = 5
REQUESTS = 8


def run_workload() -> list:
    """One fused-scheduler burst: REQUESTS concurrent draws, one drain."""
    rng = np.random.default_rng(0)
    factor = rng.standard_normal((CATALOG_SIZE, KERNEL_RANK))
    with repro.serve(factor @ factor.T) as session:
        scheduler = session.scheduler(seed=7)
        for _ in range(REQUESTS):
            scheduler.submit(SLATE_SIZE)
        return [result.subset for result in scheduler.drain()]


def main() -> None:
    # -- 1. baseline, observability dark ------------------------------- #
    baseline = run_workload()

    # -- 2. tracing + SLO on, flight recorder armed at 0s (capture all) - #
    obs.reset()
    obs.enable(trace=True, slo=True, flight_budget=0.0)
    traced = run_workload()
    assert traced == baseline, "tracing must never change sampled values"
    print(f"{REQUESTS} fused requests, samples identical with tracing on\n")

    # -- 3. walk one request's span tree ------------------------------- #
    spans = [r for r in obs.tracer().records() if r.get("type") == "span"]
    request = next(s for s in spans if s["name"] == "scheduled-request")
    tree = sorted((s for s in spans if s["trace_id"] == request["trace_id"]),
                  key=lambda s: s.get("start", 0.0))
    print(f"span tree of request trace {request['trace_id']}:")
    for span in tree:
        parent = span.get("parent_id") or "-"
        print(f"  {span['span_id']:>12}  parent={parent:>12}  "
              f"{span['category']:<12} {span['name']}")

    fused = [s for s in spans if s["category"] == "fused_round"]
    widths = [s.get("width") for s in fused if s.get("links")]
    print(f"\nfused rounds: {len(fused)}, linked member widths: {widths}")

    # -- 4. SLO quantiles ---------------------------------------------- #
    print("\nper-family latency quantiles (seconds):")
    for family, row in obs.slo().slo_state()["request_latency"].items():
        print(f"  {family}: count={row['count']} p50={row['p50']:.2e} "
              f"p95={row['p95']:.2e} p99={row['p99']:.2e}")
    prom = [line for line in obs.render_prometheus().splitlines()
            if line.startswith("repro_slo_request_latency_seconds{")]
    print("\nPrometheus exposition (SLO lines):")
    for line in prom[:3]:
        print(f"  {line}")

    # -- 5. flight recorder -> Chrome trace JSON ----------------------- #
    recorder = obs.flight_recorder()
    captures = recorder.captures()
    slowest = max(captures, key=lambda c: c["duration"])
    events = obs.dump_chrome_trace("tracing_requests_trace.json",
                                   slowest["records"])
    print(f"\nflight recorder captured {recorder.captured_total} "
          f"over-budget requests (budget 0s)")
    print(f"slowest: {slowest['name']} family={slowest['family']} "
          f"{slowest['duration']:.2e}s, {len(slowest['records'])} records")
    print(f"wrote {events} Chrome trace events to "
          "tracing_requests_trace.json — open in chrome://tracing")

    # the snapshot is one JSON document carrying all of the above
    snapshot = obs.snapshot()
    print(f"\nsnapshot: {len(snapshot['trace']['records'])} trace records, "
          f"{snapshot['trace']['dropped_spans']} dropped, "
          f"{len(snapshot['slo']['request_latency'])} SLO families, "
          f"{snapshot['flight']['captured_total']} flight captures "
          f"({len(json.dumps(snapshot))} bytes as JSON)")

    obs.reset()
    obs.disable()


if __name__ == "__main__":
    main()
