"""Uniform dimer configurations (perfect matchings) of planar lattices.

The dimer model of statistical physics is exactly the uniform distribution
over perfect matchings of a grid graph; its partition function is a Kasteleyn
determinant.  This example counts dimer configurations, samples them with the
Theorem 11 separator-recursion sampler, and reports local edge-occupation
statistics (horizontal vs vertical dimer densities).

Run:  python examples/dimer_model.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.planar.graphs import grid_graph
from repro.planar.kasteleyn import log_count_perfect_matchings, matching_edge_marginal


def dimer_orientation_stats(matching) -> dict:
    horizontal = sum(1 for edge in matching if tuple(edge)[0][0] == tuple(edge)[1][0])
    vertical = len(matching) - horizontal
    return {"horizontal": horizontal, "vertical": vertical}


def main() -> None:
    rows, cols = 8, 8
    graph = grid_graph(rows, cols)
    print(f"{rows}x{cols} grid: {graph.n} sites, {graph.m} bonds")

    log_z = log_count_perfect_matchings(graph)
    print(f"log(#dimer configurations) = {log_z:.3f}  (≈ {np.exp(log_z):.3e} configurations)")
    # Kasteleyn's asymptotic entropy per site is G/pi ≈ 0.2916 (Catalan's constant)
    print(f"entropy per site           = {log_z / graph.n:.4f}  (Kasteleyn limit ≈ 0.2916)")

    result = repro.sample_planar_matching_parallel(graph, seed=0)
    stats = dimer_orientation_stats(result.subset)
    print("\n== Theorem 11 parallel sampler ==")
    print("dimers placed:     ", len(result.subset))
    print("horizontal/vertical:", stats["horizontal"], "/", stats["vertical"])
    print("adaptive rounds:   ", result.report.rounds)
    print("largest separator: ", int(result.report.extra.get("max_separator", 0)),
          f"(√n ≈ {np.sqrt(graph.n):.1f})")

    sequential = repro.sample_planar_matching_sequential(graph, seed=0)
    print("\nSequential baseline rounds:", sequential.report.rounds, f"(n/2 = {graph.n // 2})")

    # Exact edge marginals: a corner bond vs a bulk bond.
    corner = matching_edge_marginal(graph, (0, 0), (0, 1))
    bulk = matching_edge_marginal(graph, (rows // 2, cols // 2), (rows // 2, cols // 2 + 1))
    print("\nExact dimer occupation probabilities (Kasteleyn counting):")
    print(f"  corner bond (0,0)-(0,1):   {corner:.4f}")
    print(f"  bulk bond (center, right): {bulk:.4f}  (bulk limit is 1/4 per orientation)")


if __name__ == "__main__":
    main()
