"""Diversified recommendations with Partition-DPPs (Theorem 9) and
nonsymmetric DPPs (Theorem 8).

A synthetic catalog is grouped into categories; a Partition-DPP enforces an
exact per-category quota while still favouring diverse, popular items, and a
nonsymmetric k-DPP shows the positive-correlation modelling the paper cites as
the motivation for going beyond symmetric kernels.

Run:  python examples/recommender_diversity.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.entropic import EntropicSamplerConfig
from repro.workloads import random_npsd_ensemble
from repro.workloads.datasets import catalog_to_ensemble, synthetic_catalog


def main() -> None:
    items = synthetic_catalog(30, num_categories=3, dimension=6, seed=0)
    L, parts = catalog_to_ensemble(items, bandwidth=2.0)
    quotas = [2, 2, 1]

    print(f"Catalog of {len(items)} items in {len(parts)} categories; "
          f"recommendation quotas per category: {quotas}\n")

    config = EntropicSamplerConfig(c=0.3, epsilon=0.05)
    result = repro.sample_partition_dpp_parallel(L, parts, quotas, config=config, seed=1)
    print("== Partition-DPP slate (Theorem 9) ==")
    print("selected items:", result.subset)
    by_category = {c: [i for i in result.subset if items[i].category == c] for c in range(3)}
    for category, selected in by_category.items():
        print(f"  category {category}: {selected}")
    print("adaptive rounds:", result.report.rounds)
    print("ratio violations (bad set of Algorithm 3):", result.report.ratio_violations)

    # Nonsymmetric DPP: complementary items can be positively correlated.
    print("\n== Nonsymmetric k-DPP slate (Theorem 8) ==")
    n = len(items)
    L_nonsym = random_npsd_ensemble(n, symmetric_scale=1.0, skew_scale=0.6, seed=2)
    ns_result = repro.sample_nonsymmetric_kdpp_parallel(L_nonsym, 5, config=config, seed=3)
    print("selected items:", ns_result.subset)
    print("adaptive rounds:", ns_result.report.rounds)

    # Depth comparison against the sequential reduction on the same target.
    from repro.core.sequential import sequential_sample
    from repro.dpp.partition import PartitionDPP

    sequential = sequential_sample(PartitionDPP(L, parts, quotas), seed=4)
    print("\nSequential baseline rounds:", sequential.report.rounds,
          "vs parallel:", result.report.rounds)
    print("(At slate sizes this small the batches of Theorem 9 contain only a couple")
    print(" of items; the √k advantage becomes visible at larger k — see")
    print(" examples/parallel_speedup_study.py and benchmarks/bench_theorem9_partition.py.)")


if __name__ == "__main__":
    main()
