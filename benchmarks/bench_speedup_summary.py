"""E11 — headline summary: quadratic speedup across all distribution classes.

One row per distribution family of the paper (symmetric k-DPP, unconstrained
symmetric DPP, nonsymmetric k-DPP, Partition-DPP, planar perfect matchings):
measured parallel rounds vs sequential rounds on a mid-size workload, the
paper's predicted depth, and the speedup factor.
"""

from __future__ import annotations

import math

from repro.core.entropic import EntropicSamplerConfig
from repro.core.nonsymmetric import sample_nonsymmetric_kdpp_parallel
from repro.core.partition import sample_partition_dpp_parallel
from repro.core.sequential import sequential_sample
from repro.core.symmetric import sample_symmetric_dpp_parallel, sample_symmetric_kdpp_parallel
from repro.dpp.nonsymmetric import NonsymmetricKDPP
from repro.dpp.partition import PartitionDPP
from repro.dpp.symmetric import SymmetricKDPP
from repro.planar.graphs import grid_graph
from repro.planar.matching import sample_planar_matching_sequential
from repro.planar.parallel_matching import sample_planar_matching_parallel
from repro.workloads import clustered_ensemble, random_npsd_ensemble, random_psd_ensemble

from _helpers import print_table, record


def test_e11_speedup_summary(benchmark):
    rows = []
    speedups = {}
    cfg = EntropicSamplerConfig(c=0.25, epsilon=0.1)

    # symmetric k-DPP, n=100, k=64
    L = random_psd_ensemble(100, seed=0)
    par = sample_symmetric_kdpp_parallel(L, 64, seed=1)
    seq = sequential_sample(SymmetricKDPP(L, 64), seed=1)
    speedups["symmetric k-DPP"] = seq.report.rounds / par.report.rounds
    rows.append(["symmetric k-DPP (Thm 10)", "n=100, k=64", "Õ(√k)",
                 par.report.rounds, seq.report.rounds,
                 f"{speedups['symmetric k-DPP']:.1f}x"])

    # unconstrained symmetric DPP, n=96
    L_u = random_psd_ensemble(96, seed=2) / 2.0
    par_u = sample_symmetric_dpp_parallel(L_u, seed=3)
    k_u = max(len(par_u.subset), 1)
    seq_u = sequential_sample(SymmetricKDPP(L_u, k_u), seed=3)
    speedups["symmetric DPP"] = seq_u.report.rounds / max(par_u.report.rounds, 1)
    rows.append(["symmetric DPP (Thm 10.2)", f"n=96, |S|={k_u}", "Õ(√n)",
                 par_u.report.rounds, seq_u.report.rounds,
                 f"{speedups['symmetric DPP']:.1f}x"])

    # nonsymmetric k-DPP, n=48, k=25
    L_ns = random_npsd_ensemble(48, seed=4)
    par_ns = sample_nonsymmetric_kdpp_parallel(L_ns, 25, config=cfg, seed=5)
    seq_ns = sequential_sample(NonsymmetricKDPP(L_ns, 25), seed=5)
    speedups["nonsymmetric k-DPP"] = seq_ns.report.rounds / par_ns.report.rounds
    rows.append(["nonsymmetric k-DPP (Thm 8)", "n=48, k=25", "Õ(k^(1/2+c))",
                 par_ns.report.rounds, seq_ns.report.rounds,
                 f"{speedups['nonsymmetric k-DPP']:.1f}x"])

    # Partition-DPP, n=16, quotas (3, 3)
    L_p, parts = clustered_ensemble([8, 8], seed=6)
    par_p = sample_partition_dpp_parallel(L_p, parts, (3, 3), config=cfg, seed=7)
    seq_p = sequential_sample(PartitionDPP(L_p, parts, (3, 3)), seed=7)
    speedups["Partition-DPP"] = seq_p.report.rounds / par_p.report.rounds
    rows.append(["Partition-DPP (Thm 9)", "n=16, k=6, r=2", "Õ(√k (k/ε)^c)",
                 par_p.report.rounds, seq_p.report.rounds,
                 f"{speedups['Partition-DPP']:.1f}x"])

    # planar perfect matchings, 10x10 grid
    g = grid_graph(10, 10)
    par_m = sample_planar_matching_parallel(g, seed=8)
    seq_m = sample_planar_matching_sequential(g, seed=8)
    speedups["planar matchings"] = seq_m.report.rounds / par_m.report.rounds
    rows.append(["planar matchings (Thm 11)", "10x10 grid, n=100", "Õ(√n)",
                 par_m.report.rounds, seq_m.report.rounds,
                 f"{speedups['planar matchings']:.1f}x"])

    print_table(
        "E11: quadratic-speedup summary across distribution classes",
        ["distribution", "instance", "paper depth", "parallel rounds",
         "sequential rounds", "speedup"],
        rows,
    )
    print("Every class shows the parallel sampler beating the inherently sequential")
    print("reduction, with the advantage growing with instance size (quadratic in the limit).")

    record(benchmark, **{k.replace(" ", "_"): v for k, v in speedups.items()})
    benchmark.pedantic(lambda: sample_symmetric_kdpp_parallel(L, 64, seed=9),
                       rounds=1, iterations=1)
    assert all(s > 1.0 for s in speedups.values())
