"""E8 — Theorem 11: parallel sampling of planar perfect matchings.

Paper claim: using planar separators, a uniform perfect matching of a planar
graph can be sampled exactly in ``Õ(√n)`` parallel rounds versus ``Θ(n)``
rounds for the sequential conditional sampler.  The benchmark sweeps grid
sizes, reports rounds and separator sizes, and fits the depth exponent.
"""

from __future__ import annotations

import math

from repro.planar.graphs import grid_graph
from repro.planar.matching import sample_planar_matching_sequential
from repro.planar.parallel_matching import sample_planar_matching_parallel

from _helpers import fit_power_law, print_table, record


def test_e8_planar_matching_depth(benchmark):
    rows = []
    ns, parallel_rounds = [], []
    for side in (4, 6, 8, 10):
        g = grid_graph(side, side)
        par = sample_planar_matching_parallel(g, seed=0)
        seq = sample_planar_matching_sequential(g, seed=0)
        ns.append(g.n)
        parallel_rounds.append(par.report.rounds)
        rows.append([
            f"{side}x{side}", g.n, f"{math.sqrt(g.n):.1f}",
            int(par.report.extra.get("max_separator", 0)),
            par.report.rounds, seq.report.rounds,
            f"{seq.report.rounds / par.report.rounds:.2f}x",
        ])

    exponent = fit_power_law(ns, parallel_rounds)
    print_table(
        "E8 (Theorem 11): uniform perfect matchings of grid graphs",
        ["grid", "n", "sqrt(n)", "max separator", "parallel rounds", "sequential rounds", "speedup"],
        rows,
    )
    print(f"fitted depth exponent (rounds ~ n^a): a = {exponent:.2f}  "
          "(paper: 1/2 for the separator recursion, 1 for sequential)")

    record(benchmark, depth_exponent=exponent)
    benchmark.pedantic(lambda: sample_planar_matching_parallel(grid_graph(8, 8), seed=1),
                       rounds=1, iterations=1)
    assert exponent < 0.85


def test_e8_separator_size_scaling(benchmark):
    """The separator component of the bound: |S| = O(sqrt n) on the grid workload."""
    from repro.planar.separator import bfs_level_separator, separator_quality

    rows = []
    ratios = []
    for side in (6, 10, 14, 18):
        g = grid_graph(side, side)
        separator, components = bfs_level_separator(g)
        quality = separator_quality(g, separator, components)
        ratios.append(quality["separator_over_sqrt_n"])
        rows.append([f"{side}x{side}", g.n, len(separator),
                     f"{quality['separator_over_sqrt_n']:.2f}", f"{quality['balance']:.2f}"])

    print_table(
        "E8b: planar separator size and balance on grids",
        ["grid", "n", "|separator|", "|S|/sqrt(n)", "largest component / n"],
        rows,
    )
    record(benchmark, worst_ratio=max(ratios))
    benchmark.pedantic(lambda: bfs_level_separator(grid_graph(14, 14)), rounds=3, iterations=1)
    assert max(ratios) <= 3.0
