"""E4 — Lemma 27: acceptance probability of batched rejection sampling.

Paper claim: for negatively correlated μ (symmetric DPPs/k-DPPs) with batch
size ``ℓ`` the density ratio is at most ``exp(ℓ²/k)``, so each rejection round
accepts with probability at least ``exp(-ℓ²/k)`` — a constant for
``ℓ = ⌈√k⌉``.  The benchmark measures the empirical acceptance rate of the
Theorem 10 sampler across ``k`` and compares it to the bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.symmetric import sample_symmetric_kdpp_parallel
from repro.workloads import random_psd_ensemble

from _helpers import print_table, record


def test_e4_acceptance_vs_lemma27_bound(benchmark):
    n = 144
    L = random_psd_ensemble(n, rank=n, seed=0)
    rows = []
    measured = {}
    for k in (16, 36, 64, 100):
        ell = math.ceil(math.sqrt(k))
        bound = math.exp(-ell * ell / k)
        rates = []
        for seed in range(4):
            result = sample_symmetric_kdpp_parallel(L, k, seed=seed)
            rates.extend(result.report.acceptance_rates)
        mean_rate = float(np.mean(rates))
        measured[k] = mean_rate
        rows.append([k, ell, f"{bound:.3f}", f"{mean_rate:.3f}",
                     "yes" if mean_rate >= 0.5 * bound else "NO"])

    print_table(
        "E4 (Lemma 27): per-round acceptance of the Theorem 10 sampler",
        ["k", "batch ell", "exp(-ell^2/k) bound", "measured acceptance", ">= bound/2"],
        rows,
    )
    print("Lemma 27 predicts a constant (~exp(-1)) acceptance rate independent of k;")
    print("the measured rates stay flat as k grows, so a constant number of machines")
    print("per round suffices — the key to the O(sqrt k) depth.")

    record(benchmark, **{f"acceptance_k{k}": v for k, v in measured.items()})
    benchmark.pedantic(lambda: sample_symmetric_kdpp_parallel(L, 64, seed=9),
                       rounds=1, iterations=1)
    # acceptance must not collapse with k (allowing statistical noise)
    assert min(measured.values()) > 0.1


def test_e4_acceptance_degrades_without_negative_correlation(benchmark):
    """On the Section 7 paired instance the Lemma 27 constant is *not* valid:
    ratio violations appear, which is exactly why Theorems 8/9 need the
    modified rejection sampler."""
    from repro.core.batched import BatchedSamplerConfig, batched_sample
    from repro.distributions.hard_instance import PairedHardInstance

    mu = PairedHardInstance(20, 10)
    config = BatchedSamplerConfig(max_rounds_per_batch=4)  # Lemma 27 constant
    violations = 0
    proposals = 0
    for seed in range(3):
        result = batched_sample(mu, config, seed=seed)
        violations += result.report.ratio_violations
        proposals += result.report.proposals
    rate = violations / max(proposals, 1)
    print(f"\nE4b: paired hard instance, Lemma 27 constant: {violations} ratio violations "
          f"out of {proposals} proposals ({100 * rate:.1f}%) — positive correlations break "
          "the symmetric-DPP acceptance bound, as Section 1.2 predicts.")
    record(benchmark, violation_rate=rate)
    benchmark.pedantic(lambda: batched_sample(mu, config, seed=7), rounds=1, iterations=1)
    assert violations > 0
