"""Planner quality gate: ``auto`` vs every forced backend, plus spectral fusion.

Two questions, answered with machine-readable JSON lines:

1. **Routing quality.**  On a small/large × pure-Python/LAPACK grid of
   counting rounds, is ``backend="auto"`` ever meaningfully slower than the
   best *forced* backend?  The planner's whole job is to make hand-picking
   backends unnecessary, so the acceptance pin is relative — ``auto`` must
   land within ``TOLERANCE`` (plus a small absolute slack for timer noise)
   of the per-cell winner.  Being a same-host ratio, the pin is robust to
   slow CI machines in a way absolute wall-clock targets are not.

2. **Spectral fusion.**  Concurrent same-kernel HKPV requests drained
   through the ``RoundScheduler`` run phase 2 in lockstep, and their
   projection rounds stack into single batched QR rounds; the fused drain
   should beat draining the same seeds sequentially, with identical samples.

Running as a script gives the exit-code gate (cell tolerance violations
fail; the fusion speedup is advisory — it warns, because thread scheduling
on loaded runners is noisy):
``PYTHONPATH=src python benchmarks/bench_planner.py [output.json]``.
The pytest entry point runs a reduced grid and warns instead of flaking.
"""

from __future__ import annotations

import json
import os
import sys
import time
import warnings
from typing import Dict, List

import numpy as np
import pytest

import repro
from _helpers import best_of, emit_reports
from repro.dpp.partition import PartitionDPP
from repro.dpp.symmetric import SymmetricKDPP
from repro.engine import (
    AutoBackend,
    OracleBatch,
    ProcessPoolBackend,
    RoundPlanner,
    ThreadPoolBackend,
    VectorizedBackend,
)
from repro.pram.tracker import Tracker
from repro.service import KernelRegistry
from repro.workloads import random_psd_ensemble

WORKERS = 4
REPEATS = 3
#: auto may be at most this factor above the best forced backend per cell
TOLERANCE = 1.10
#: absolute slack (seconds) so microsecond-scale cells cannot flake the ratio
ABSOLUTE_SLACK_S = 5e-3

#: spectral-fusion workload: G lockstep requests on one warm kernel
FUSION_N, FUSION_K, FUSION_REQUESTS = 150, 12, 24
FUSION_TARGET = 1.05


def _subsets(rng, n: int, sizes, count: int) -> List[tuple]:
    return [tuple(sorted(rng.choice(n, size=int(t), replace=False).tolist()))
            for t in np.resize(list(sizes), count)]


def _grid(small: bool = False):
    """The small/large × LAPACK/pure-Python routing cells."""
    rng = np.random.default_rng(0)
    L64 = random_psd_ensemble(64, rank=24, seed=1)
    kdpp = SymmetricKDPP(L64, 8)
    n_part = 20
    Lp = random_psd_ensemble(n_part, rank=10, seed=2)
    partition = PartitionDPP(Lp, [list(range(10)), list(range(10, n_part))], [3, 2])
    cells = [
        ("lapack-small", kdpp, _subsets(rng, 64, (1, 2, 3), 12)),
        ("python-small", partition, _subsets(rng, n_part, (1, 2), 8)),
    ]
    if not small:
        cells += [
            ("lapack-large", kdpp, _subsets(rng, 64, (1, 2, 3, 4), 192)),
            ("python-large", partition, _subsets(rng, n_part, (1, 2, 3), 48)),
        ]
    return cells


def _best_of(run, repeats: int = REPEATS) -> float:
    return best_of(run, repeats)


def _measure_cell(name, dist, subsets, backends, auto) -> Dict[str, object]:
    batch = lambda: OracleBatch.counting(dist, subsets)  # noqa: E731
    timings: Dict[str, float] = {}
    values: Dict[str, np.ndarray] = {}
    for backend_name, backend in list(backends.items()) + [("auto", auto)]:
        values[backend_name] = backend.execute(batch(), tracker=Tracker()).values  # warm
        timings[backend_name] = _best_of(
            lambda b=backend: b.execute(batch(), tracker=Tracker()))
    reference = values["vectorized"]
    identical = all(np.allclose(v, reference, rtol=1e-9, atol=1e-12)
                    for v in values.values())
    forced = {k: v for k, v in timings.items() if k != "auto"}
    best_forced = min(forced, key=lambda k: forced[k])
    decision = auto.planner.last_decision
    return {
        "bench": "planner",
        "cell": name,
        "n": dist.n,
        "queries": len(subsets),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        **{f"{k}_s": v for k, v in timings.items()},
        "best_forced": best_forced,
        "best_forced_s": forced[best_forced],
        "auto_over_best": timings["auto"] / forced[best_forced],
        "auto_chose": decision.chosen if decision is not None else None,
        "values_identical": identical,
        "within_tolerance": timings["auto"] <= TOLERANCE * forced[best_forced] + ABSOLUTE_SLACK_S,
    }


def planner_report(small: bool = False) -> List[Dict[str, object]]:
    """One JSON-serializable report per routing cell."""
    backends = {
        "vectorized": VectorizedBackend(),
        "threads": ThreadPoolBackend(max_workers=WORKERS),
        "process": ProcessPoolBackend(max_workers=WORKERS),
    }
    auto = AutoBackend(RoundPlanner(backends=backends))
    try:
        return [_measure_cell(name, dist, subsets, backends, auto)
                for name, dist, subsets in _grid(small=small)]
    finally:
        backends["threads"].close()
        backends["process"].close()


def fusion_report() -> Dict[str, object]:
    """Fused vs sequential drains of concurrent same-kernel HKPV requests."""
    L = random_psd_ensemble(FUSION_N, rank=2 * FUSION_K, seed=3)
    session = repro.serve(L, registry=KernelRegistry())
    session.warm()
    scheduler = session.scheduler()
    seeds = list(range(FUSION_REQUESTS))

    def fused():
        for seed in seeds:
            scheduler.submit(FUSION_K, seed=seed, method="spectral")
        return [r.subset for r in scheduler.drain()]

    def sequential():
        return [session.sample(FUSION_K, seed=seed, method="spectral").subset
                for seed in seeds]

    identical = fused() == sequential()  # also warms both paths
    sequential_s = _best_of(sequential)
    fused_s = _best_of(fused)
    session.close()
    return {
        "bench": "planner-spectral-fusion",
        "n": FUSION_N,
        "k": FUSION_K,
        "requests": FUSION_REQUESTS,
        "cpu_count": os.cpu_count(),
        "sequential_s": sequential_s,
        "fused_s": fused_s,
        "fusion_speedup": sequential_s / fused_s,
        "values_identical": identical,
    }


# ---------------------------------------------------------------------- #
# pytest entry points (CI smoke job runs the module; tier-1 gets the small grid)
# ---------------------------------------------------------------------- #
def test_planner_auto_within_tolerance_small_grid():
    for report in planner_report(small=True):
        print(json.dumps(report))
        assert report["values_identical"], report
        if not report["within_tolerance"]:
            warnings.warn(
                f"auto is {report['auto_over_best']:.2f}x the best forced backend "
                f"({report['best_forced']}) on the {report['cell']} cell",
                RuntimeWarning, stacklevel=0)


def test_spectral_fusion_identity_and_speedup():
    report = fusion_report()
    print(json.dumps(report))
    assert report["values_identical"], report
    if report["fusion_speedup"] < FUSION_TARGET:
        warnings.warn(
            f"spectral fusion speedup is {report['fusion_speedup']:.2f}x "
            f"(< {FUSION_TARGET}x advisory target)",
            RuntimeWarning, stacklevel=0)


def main() -> int:
    reports = planner_report()
    fusion = fusion_report()
    emit_reports(reports + [fusion], sys.argv[1] if len(sys.argv) > 1 else None)
    ok = all(r["values_identical"] and r["within_tolerance"] for r in reports)
    if not fusion["values_identical"]:
        ok = False
    elif fusion["fusion_speedup"] < FUSION_TARGET:
        warnings.warn(
            f"spectral fusion speedup {fusion['fusion_speedup']:.2f}x is below the "
            f"{FUSION_TARGET}x advisory target (not gating: thread scheduling on "
            "shared runners is noisy)", RuntimeWarning, stacklevel=0)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
