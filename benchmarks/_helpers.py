"""Shared table-printing and fitting helpers for the benchmark harness.

Every benchmark prints the rows/series it reproduces (the paper has no
numbered tables — each experiment regenerates a theorem's quantitative claim;
see EXPERIMENTS.md) and also stores the key numbers in
``benchmark.extra_info`` so they survive in pytest-benchmark's JSON output.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

#: Default landing spot for the cross-run trajectory: one JSON line per bench
#: report, appended on every run, next to this file's parent (the repo root).
TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                               "BENCH_trajectory.json")

_PROVENANCE: Optional[Dict[str, object]] = None


def provenance() -> Dict[str, object]:
    """Where/what produced these numbers: git SHA, host, CPUs, BLAS vendor.

    Computed once per process (the git subprocess is the expensive part) and
    stamped into every report line by :func:`emit_reports`, so trajectory
    lines from different machines/commits stay comparable after the fact.
    Every field degrades to a placeholder rather than raising: benchmarks
    must run from tarballs and containers without git just as well.
    """
    global _PROVENANCE
    if _PROVENANCE is not None:
        return dict(_PROVENANCE)
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        sha = "unknown"
    try:
        hostname = socket.gethostname()
    except Exception:
        hostname = "unknown"
    _PROVENANCE = {
        "git_sha": sha,
        "hostname": hostname,
        "cpu_count": os.cpu_count() or 0,
        "blas": _blas_vendor(),
        "numpy": np.__version__,
    }
    return dict(_PROVENANCE)


def _blas_vendor() -> str:
    """Best-effort BLAS library name from numpy's build/runtime config."""
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        if name:
            return str(name)
    except Exception:
        pass
    try:  # older numpy: parse the printed config header
        import numpy.__config__ as npconfig
        for attr in ("blas_ilp64_opt_info", "blas_opt_info", "blas_info"):
            info = getattr(npconfig, attr, None)
            if isinstance(info, dict) and info.get("libraries"):
                return str(info["libraries"][0])
    except Exception:
        pass
    return "unknown"


def append_trajectory(reports: Union[Dict, Sequence[Dict]],
                      path: Optional[str] = None) -> str:
    """Append one JSON line per report to the shared ``BENCH_trajectory.json``.

    Every benchmark's machine-readable report lands in a single append-only
    JSON-lines file so speed/memory numbers can be compared across commits
    without hunting per-script artifacts.  Override the destination with
    ``path=`` or the ``BENCH_TRAJECTORY`` environment variable (the empty
    string disables appending — useful for throwaway local runs).

    The file is created even when ``reports`` is empty, so downstream
    tooling (CI artifact collection, trajectory diffing) can rely on its
    existence after any benchmark run.
    """
    if isinstance(reports, dict):
        reports = [reports]
    destination = path if path is not None else os.environ.get("BENCH_TRAJECTORY",
                                                               TRAJECTORY_PATH)
    if destination:
        with open(destination, "a") as handle:
            for report in reports:
                handle.write(json.dumps(report) + "\n")
    return destination


def emit_reports(reports: Union[Dict, Sequence[Dict]],
                 output: Optional[str] = None) -> None:
    """Print each report as a JSON line, mirror to ``output``, log trajectory.

    The shared tail of every benchmark ``main()``: stdout gets the JSON lines
    (CI greps them), ``output`` (usually ``sys.argv[1]``) gets the same lines
    as the uploaded artifact, and :func:`append_trajectory` accumulates them
    in the cross-run trajectory file.  Each line is stamped with
    :func:`provenance` (git SHA, hostname, CPU count, BLAS vendor) unless the
    report already carries its own ``provenance`` key.
    """
    if isinstance(reports, dict):
        reports = [reports]
    stamp = provenance()
    reports = [report if "provenance" in report
               else {**report, "provenance": stamp}
               for report in reports]
    lines = [json.dumps(report) for report in reports]
    for line in lines:
        print(line)
    if output:
        with open(output, "w") as handle:
            handle.write("\n".join(lines) + "\n")
    append_trajectory(reports)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Render a small fixed-width table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0)) + 2
              for i, h in enumerate(headers)]
    print("".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("".join(_fmt(cell).rjust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares exponent of ``y ~ x^alpha`` (slope in log-log space)."""
    x = np.log(np.asarray(xs, dtype=float))
    y = np.log(np.asarray(ys, dtype=float))
    slope = np.polyfit(x, y, 1)[0]
    return float(slope)


def record(benchmark, **info) -> None:
    """Store scalars in pytest-benchmark's extra_info (stringify numpy types)."""
    if benchmark is None:
        return
    for key, value in info.items():
        if isinstance(value, (np.floating, np.integer)):
            value = float(value)
        benchmark.extra_info[key] = value


def best_of(run, repeats: int = 3) -> float:
    """Minimum wall-clock seconds of ``run()`` over ``repeats`` calls.

    The shared timing primitive of the sweep-style benchmarks: min-of-N is
    robust to one-off scheduler hiccups on shared runners, and keeping one
    definition here stops per-script copies from diverging.
    """
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best
