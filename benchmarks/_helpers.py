"""Shared table-printing and fitting helpers for the benchmark harness.

Every benchmark prints the rows/series it reproduces (the paper has no
numbered tables — each experiment regenerates a theorem's quantitative claim;
see EXPERIMENTS.md) and also stores the key numbers in
``benchmark.extra_info`` so they survive in pytest-benchmark's JSON output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Render a small fixed-width table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0)) + 2
              for i, h in enumerate(headers)]
    print("".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("".join(_fmt(cell).rjust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares exponent of ``y ~ x^alpha`` (slope in log-log space)."""
    x = np.log(np.asarray(xs, dtype=float))
    y = np.log(np.asarray(ys, dtype=float))
    slope = np.polyfit(x, y, 1)[0]
    return float(slope)


def record(benchmark, **info) -> None:
    """Store scalars in pytest-benchmark's extra_info (stringify numpy types)."""
    if benchmark is None:
        return
    for key, value in info.items():
        if isinstance(value, (np.floating, np.integer)):
            value = float(value)
        benchmark.extra_info[key] = value


def best_of(run, repeats: int = 3) -> float:
    """Minimum wall-clock seconds of ``run()`` over ``repeats`` calls.

    The shared timing primitive of the sweep-style benchmarks: min-of-N is
    robust to one-off scheduler hiccups on shared runners, and keeping one
    definition here stops per-script copies from diverging.
    """
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best
