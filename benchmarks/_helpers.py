"""Shared table-printing and fitting helpers for the benchmark harness.

Every benchmark prints the rows/series it reproduces (the paper has no
numbered tables — each experiment regenerates a theorem's quantitative claim;
see EXPERIMENTS.md) and also stores the key numbers in
``benchmark.extra_info`` so they survive in pytest-benchmark's JSON output.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

#: Default landing spot for the cross-run trajectory: one JSON line per bench
#: report, appended on every run, next to this file's parent (the repo root).
TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                               "BENCH_trajectory.json")


def append_trajectory(reports: Union[Dict, Sequence[Dict]],
                      path: Optional[str] = None) -> str:
    """Append one JSON line per report to the shared ``BENCH_trajectory.json``.

    Every benchmark's machine-readable report lands in a single append-only
    JSON-lines file so speed/memory numbers can be compared across commits
    without hunting per-script artifacts.  Override the destination with
    ``path=`` or the ``BENCH_TRAJECTORY`` environment variable (the empty
    string disables appending — useful for throwaway local runs).
    """
    if isinstance(reports, dict):
        reports = [reports]
    destination = path if path is not None else os.environ.get("BENCH_TRAJECTORY",
                                                               TRAJECTORY_PATH)
    if destination:
        with open(destination, "a") as handle:
            for report in reports:
                handle.write(json.dumps(report) + "\n")
    return destination


def emit_reports(reports: Union[Dict, Sequence[Dict]],
                 output: Optional[str] = None) -> None:
    """Print each report as a JSON line, mirror to ``output``, log trajectory.

    The shared tail of every benchmark ``main()``: stdout gets the JSON lines
    (CI greps them), ``output`` (usually ``sys.argv[1]``) gets the same lines
    as the uploaded artifact, and :func:`append_trajectory` accumulates them
    in the cross-run trajectory file.
    """
    if isinstance(reports, dict):
        reports = [reports]
    lines = [json.dumps(report) for report in reports]
    for line in lines:
        print(line)
    if output:
        with open(output, "w") as handle:
            handle.write("\n".join(lines) + "\n")
    append_trajectory(reports)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Render a small fixed-width table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0)) + 2
              for i, h in enumerate(headers)]
    print("".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("".join(_fmt(cell).rjust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares exponent of ``y ~ x^alpha`` (slope in log-log space)."""
    x = np.log(np.asarray(xs, dtype=float))
    y = np.log(np.asarray(ys, dtype=float))
    slope = np.polyfit(x, y, 1)[0]
    return float(slope)


def record(benchmark, **info) -> None:
    """Store scalars in pytest-benchmark's extra_info (stringify numpy types)."""
    if benchmark is None:
        return
    for key, value in info.items():
        if isinstance(value, (np.floating, np.integer)):
            value = float(value)
        benchmark.extra_info[key] = value


def best_of(run, repeats: int = 3) -> float:
    """Minimum wall-clock seconds of ``run()`` over ``repeats`` calls.

    The shared timing primitive of the sweep-style benchmarks: min-of-N is
    robust to one-off scheduler hiccups on shared runners, and keeping one
    definition here stops per-script copies from diverging.
    """
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best
