"""E6 — Theorem 9: parallel depth for Partition-DPPs.

Paper claim: for symmetric PSD ensembles with ``r = O(1)`` partition
constraints, the entropic meta-sampler runs in ``Õ(√k (k/ε)^c)`` rounds using
the polynomial-interpolation counting oracle of [Cel+16].  The benchmark
sweeps the per-part quotas on a clustered workload.
"""

from __future__ import annotations

from repro.core.entropic import EntropicSamplerConfig
from repro.core.partition import sample_partition_dpp_parallel
from repro.core.sequential import sequential_sample
from repro.dpp.partition import PartitionDPP
from repro.workloads import clustered_ensemble

from _helpers import print_table, record


def test_e6_partition_dpp_depth(benchmark):
    L, parts = clustered_ensemble([8, 8], within=0.6, across=0.05, scale=1.5, seed=0)
    config = EntropicSamplerConfig(c=0.25, epsilon=0.1)

    rows = []
    results = {}
    for counts in ((1, 1), (2, 2), (3, 3), (4, 4)):
        k = sum(counts)
        par = sample_partition_dpp_parallel(L, parts, counts, config=config, seed=1)
        seq = sequential_sample(PartitionDPP(L, parts, counts), seed=1)
        results[k] = (par.report.rounds, seq.report.rounds)
        rows.append([str(counts), k, par.report.rounds, seq.report.rounds,
                     f"{seq.report.rounds / par.report.rounds:.2f}x",
                     par.report.ratio_violations])

    print_table(
        "E6 (Theorem 9): Partition-DPP parallel depth, r=2 parts of 8, c=0.25",
        ["quotas", "k", "parallel rounds", "sequential rounds", "speedup", "ratio violations"],
        rows,
    )
    print("Depth grows sublinearly in k while the sequential reduction is exactly 2k rounds;")
    print("every sampled slate satisfies the per-part quota constraints by construction.")

    record(benchmark, **{f"speedup_k{k}": seq / par for k, (par, seq) in results.items()})
    benchmark.pedantic(
        lambda: sample_partition_dpp_parallel(L, parts, (2, 2), config=config, seed=2),
        rounds=1, iterations=1)
    largest_k = max(results)
    assert results[largest_k][0] < results[largest_k][1]


def test_e6_three_part_constraint(benchmark):
    """r = 3 parts (the oracle's interpolation grid grows but r stays O(1))."""
    L, parts = clustered_ensemble([5, 5, 4], within=0.6, across=0.05, scale=1.5, seed=3)
    config = EntropicSamplerConfig(c=0.3, epsilon=0.1)
    counts = (2, 1, 1)
    result = benchmark.pedantic(
        lambda: sample_partition_dpp_parallel(L, parts, counts, config=config, seed=4),
        rounds=1, iterations=1)
    tallies = [len(set(result.subset) & set(p)) for p in parts]
    print(f"\nE6b: r=3 Partition-DPP sample {result.subset} with per-part tallies {tallies} "
          f"(target {list(counts)}), {result.report.rounds} rounds.")
    record(benchmark, rounds=result.report.rounds)
    assert tallies == list(counts)
