"""Pytest configuration for the benchmark harness.

Ensures the ``src`` layout is importable without installation and registers a
session-scoped cache so expensive workloads (kernels, graphs) are built once.
"""

import os
import sys

import numpy as np
import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2023)
