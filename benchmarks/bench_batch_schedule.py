"""E3 — Proposition 28: the Algorithm 1 batch schedule.

Paper claim: with ``ℓ_i = ⌈√k_i⌉`` the loop terminates in at most ``2√k``
iterations, and ``√k_{i+1} ≤ √k_i − 1/2``.  The benchmark traces the schedule
for a wide range of ``k`` and reports the iteration count relative to ``2√k``.
"""

from __future__ import annotations

import math

from repro.core.batched import batch_schedule

from _helpers import print_table, record


K_SWEEP = (16, 256, 4096, 65536, 1048576)


def test_e3_batch_schedule_length(benchmark):
    rows = []
    ratios = []
    for k in K_SWEEP:
        schedule = benchmark.pedantic(batch_schedule, args=(k,), rounds=1, iterations=1) \
            if k == K_SWEEP[-1] else batch_schedule(k)
        iterations = len(schedule)
        bound = 2 * math.sqrt(k)
        ratios.append(iterations / bound)
        rows.append([k, iterations, f"{bound:.0f}", f"{iterations / bound:.3f}",
                     schedule[0], schedule[-1]])

    print_table(
        "E3 (Proposition 28): Algorithm 1 iteration count vs the 2*sqrt(k) bound",
        ["k", "iterations", "2*sqrt(k)", "ratio", "first batch", "last batch"],
        rows,
    )
    print("Proposition 28 guarantees ratio <= 1; the measured ratio is "
          f"{max(ratios):.3f} at worst (the schedule is ~sqrt(k) iterations, half the bound).")

    record(benchmark, worst_ratio=max(ratios))
    assert max(ratios) <= 1.0


def test_e3_remaining_cardinality_decay(benchmark):
    """Verify the per-iteration contraction sqrt(k_{i+1}) <= sqrt(k_i) - 1/2."""
    k = 10_000
    remaining = [k]
    while remaining[-1] > 0:
        ell = math.ceil(math.sqrt(remaining[-1]))
        remaining.append(remaining[-1] - ell)
    violations = sum(
        1 for a, b in zip(remaining, remaining[1:])
        if b > 0 and math.sqrt(b) > math.sqrt(a) - 0.5 + 1e-12
    )
    print(f"\nE3b: contraction sqrt(k_i+1) <= sqrt(k_i) - 1/2 held in "
          f"{len(remaining) - 1 - violations}/{len(remaining) - 1} iterations (k0={k}).")
    record(benchmark, contraction_violations=violations, iterations=len(remaining) - 1)
    benchmark.pedantic(batch_schedule, args=(k,), rounds=3, iterations=1)
    assert violations == 0
