"""Serving-layer throughput: cold vs warm cache, fused vs unfused rounds.

Measures requests/sec through the :mod:`repro.service` stack on an ``n = 200``
k-DPP:

* **cold** — the pre-service path: every request pays full preprocessing
  (``sample_kdpp_spectral`` recomputes the eigendecomposition per call);
* **warm** — ``SamplerSession.sample()`` with a hot
  :class:`~repro.service.FactorizationCache` (preprocessing amortized away);
* **unfused / fused** — the parallel sampler driven per request vs coalesced
  into shared engine rounds by the :class:`~repro.service.RoundScheduler`.

The pytest entry points double as the CI smoke job: they print one
machine-readable JSON line each (collected into an artifact by the workflow)
and pin the acceptance criteria — warm ≥ 3x cold on the spectral path, and
fixed-seed samples identical cache-on vs cache-off and fused vs unfused on
every backend.  Run as a script for the same report without pytest:
``PYTHONPATH=src python benchmarks/bench_service_throughput.py [output.json]``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict

import numpy as np
import pytest

import repro
from _helpers import emit_reports
from repro.dpp.spectral import sample_kdpp_spectral
from repro.workloads import random_psd_ensemble

N = 200
RANK = 60
K = 10
REQUESTS = 8
BACKEND_NAMES = ("serial", "vectorized", "threads")


def _requests_per_second(run: Callable[[int], object], requests: int, *, repeats: int = 3) -> float:
    """Best-of-``repeats`` requests/sec of ``run(seed)`` over ``requests`` calls."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for i in range(requests):
            run(i)
        best = min(best, time.perf_counter() - start)
    return requests / best


def service_throughput_report(n: int = N, rank: int = RANK, k: int = K,
                              requests: int = REQUESTS) -> Dict[str, object]:
    """The benchmark body; returns one JSON-serializable report."""
    L = random_psd_ensemble(n, rank=rank, seed=0)
    registry = repro.KernelRegistry()
    session = repro.serve(L, name="bench", registry=registry)
    session.sample(k=k, seed=0)  # populate the cache

    cold_rps = _requests_per_second(lambda i: sample_kdpp_spectral(L, k, seed=i), requests)
    warm_rps = _requests_per_second(lambda i: session.sample(k=k, seed=i), requests)

    # parallel sampler: per-request driving vs scheduler-fused rounds
    unfused_rps = _requests_per_second(
        lambda i: session.sample(k=k, seed=i, method="parallel"), requests, repeats=2)
    scheduler = repro.RoundScheduler(session, seed=0)

    def fused_run() -> float:
        start = time.perf_counter()
        for i in range(requests):
            scheduler.submit(k, seed=i)
        scheduler.drain()
        return time.perf_counter() - start

    fused_rps = requests / min(fused_run(), fused_run())

    identical = session.sample(k=k, seed=123).subset == sample_kdpp_spectral(L, k, seed=123)
    return {
        "bench": "service_throughput",
        "n": n, "rank": rank, "k": k, "requests": requests,
        "cold_rps": cold_rps,
        "warm_rps": warm_rps,
        "warm_speedup": warm_rps / cold_rps,
        "parallel_unfused_rps": unfused_rps,
        "parallel_fused_rps": fused_rps,
        "fusion_speedup": fused_rps / unfused_rps,
        "warm_sample_identical": bool(identical),
        "cache": session.cache.stats.as_dict(),
        "scheduler": scheduler.stats,
    }


# ---------------------------------------------------------------------- #
# pytest entry points (CI smoke job)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def throughput_report():
    # Typical margin is ~5x, well above the 3x pin; re-measure up to twice
    # before reporting so a single scheduler hiccup on a loaded shared
    # runner doesn't flake the suite.
    report = service_throughput_report()
    for _ in range(2):
        if report["warm_speedup"] >= 3.0:
            break
        report = service_throughput_report()
    return report


def test_warm_cache_speedup(throughput_report):
    """Acceptance pin: warm SamplerSession.sample() ≥ 3x the cold path."""
    print(json.dumps(throughput_report))
    assert throughput_report["warm_sample_identical"]
    assert throughput_report["warm_speedup"] >= 3.0, (
        "warm-cache sampling should be >= 3x cold preprocessing-per-request "
        f"(got {throughput_report['warm_speedup']:.2f}x)"
    )


def test_fusion_executes_fewer_batches(throughput_report):
    """Fused draining answers strictly fewer engine batches than submitted."""
    sched = throughput_report["scheduler"]
    assert sched["executed_batches"] < sched["submitted_batches"]
    assert sched["fused_rounds"] > 0


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_seed_identity_cache_and_fusion(backend):
    """Fixed-seed samples: cache-on == cache-off and fused == unfused,
    on every backend (the serving layer's core contract)."""
    L = random_psd_ensemble(48, rank=24, seed=1)
    session = repro.serve(L, name="bench-identity", registry=repro.KernelRegistry())
    seeds = [11, 12, 13]
    # cache-on vs cache-off (module-level cold entry point)
    for seed in seeds:
        warm = session.sample(k=6, seed=seed, method="parallel", backend=backend).subset
        cold = repro.sample_symmetric_kdpp_parallel(L, 6, seed=seed, backend=backend).subset
        assert warm == cold
    # fused vs unfused
    scheduler = repro.RoundScheduler(session, backend=backend)
    for seed in seeds:
        scheduler.submit(6, seed=seed)
    fused = [result.subset for result in scheduler.drain()]
    unfused = [session.sample(k=6, seed=seed, method="parallel", backend=backend).subset
               for seed in seeds]
    assert fused == unfused


def main() -> int:
    # same noise-damping as the pytest fixture: re-measure before gating
    report = service_throughput_report()
    for _ in range(2):
        if report["warm_speedup"] >= 3.0:
            break
        report = service_throughput_report()
    emit_reports(report, sys.argv[1] if len(sys.argv) > 1 else None)
    ok = report["warm_sample_identical"] and report["warm_speedup"] >= 3.0
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
