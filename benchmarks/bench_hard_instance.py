"""E9 — Section 7: the hard instance for batched rejection sampling.

Paper claim: on the paired distribution, a batch of ``ℓ`` i.i.d. draws from
the (uniform) marginals contains ``t`` duplicates with probability
``(Θ(ℓ²/k))^t``, and each duplicate inflates the density ratio by ``Θ(n/k)``.
To keep the failure probability inverse-polynomial the batch size must be
``ℓ ≤ k^{1/2-c}`` — the subpolynomial overhead of Theorem 29 is inherent to
rejection strategies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.hard_instance import PairedHardInstance

from _helpers import fit_power_law, print_table, record


def test_e9_duplicate_probability_scaling(benchmark):
    n, k = 800, 400
    mu = PairedHardInstance(n, k)

    rows = []
    ells = (5, 10, 20, int(math.sqrt(k)), 40, 80)
    probs = []
    for ell in sorted(set(ells)):
        p_dup = sum(mu.duplicate_probability_exact(ell, t) for t in range(1, ell // 2 + 1))
        probs.append(max(p_dup, 1e-12))
        predicted = min(ell * ell / (2.0 * k), 1.0)
        ratio_penalty = mu.density_ratio_bound(ell, 1)
        rows.append([ell, f"{ell / math.sqrt(k):.2f}", f"{p_dup:.4f}", f"{predicted:.4f}",
                     f"{ratio_penalty:.0f}x"])

    exponent = fit_power_law(sorted(set(ells))[:4], probs[:4])
    print_table(
        f"E9 (Section 7): duplicate probability in an ell-batch, paired instance n={n}, k={k}",
        ["ell", "ell/sqrt(k)", "P[>=1 duplicate] (exact)", "Theta(ell^2/k) prediction",
         "ratio penalty per duplicate"],
        rows,
    )
    print(f"fitted scaling P ~ ell^a with a = {exponent:.2f} (paper: 2).  Batches of size")
    print("~sqrt(k) already collide with constant probability, and every collision blows")
    print("the rejection ratio up by Theta(n/k) — hence ell must stay at k^(1/2-c).")

    record(benchmark, scaling_exponent=exponent)
    benchmark.pedantic(
        lambda: [mu.duplicate_probability_exact(20, t) for t in range(0, 11)],
        rounds=3, iterations=1)
    assert 1.6 <= exponent <= 2.4


def test_e9_monte_carlo_agreement(benchmark):
    """Monte Carlo duplicate frequencies agree with the closed form."""
    mu = PairedHardInstance(200, 100)
    ell = 14
    exact = sum(mu.duplicate_probability_exact(ell, t) for t in range(1, ell // 2 + 1))
    mc = benchmark.pedantic(
        lambda: mu.duplicate_probability(ell, 1, samples=3000, seed=0),
        rounds=1, iterations=1)
    print(f"\nE9b: P[>=1 duplicate] at ell={ell}: exact {exact:.4f}, Monte Carlo {mc:.4f}")
    record(benchmark, exact=exact, monte_carlo=mc)
    assert abs(mc - exact) < 0.05


def test_e9_allowed_batch_size_vs_failure_budget(benchmark):
    """The largest batch whose duplicate probability stays below delta scales as
    sqrt(k * delta) = k^{1/2 - c} for delta = k^{-2c} (the paper's calculation)."""
    mu = PairedHardInstance(1600, 800)
    rows = []
    thresholds = []
    for delta in (0.5, 0.1, 0.02, 0.004):
        ell = 1
        while ell < mu.k:
            p_dup = sum(mu.duplicate_probability_exact(ell + 1, t)
                        for t in range(1, (ell + 1) // 2 + 1))
            if p_dup > delta:
                break
            ell += 1
        thresholds.append(ell)
        rows.append([delta, ell, f"{math.sqrt(mu.k * delta * 2):.1f}",
                     f"{ell / math.sqrt(mu.k):.2f}"])

    print_table(
        "E9c: largest batch with duplicate probability <= delta (k=800)",
        ["delta", "max ell", "sqrt(2 k delta) prediction", "ell / sqrt(k)"],
        rows,
    )
    print("Tolerating only inverse-polynomial failure forces ell well below sqrt(k),")
    print("matching the k^(1/2-c) limit of Section 7.")
    record(benchmark, thresholds=thresholds)
    benchmark.pedantic(
        lambda: sum(mu.duplicate_probability_exact(20, t) for t in range(0, 11)),
        rounds=3, iterations=1)
    assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))
