"""Process backend vs threads on GIL-bound oracle paths.

The thread backend only overlaps inside LAPACK: the pure-Python oracle paths
(the partition sampler's interpolation grids, the nonsymmetric sampler's
charpoly minor sums) hold the GIL, so thread fan-out cannot use more than one
core.  This sweep times one large ``counting`` round on both GIL-bound
workloads through the ``threads`` and ``process`` backends (same worker
count) plus the single-process ``vectorized`` reference, verifies the values
agree bitwise-closely, and reports a machine-readable JSON line per workload.

Acceptance target: ``process`` ≥ 2x faster than ``threads`` with 4 workers on
a ≥ 4-core host.  The pytest entry points warn (rather than flake) when the
host cannot show it — single-core CI runners physically cannot exhibit
multicore scaling — while running this file as a script gives an exit-code
gate on capable hosts (same softening rationale as ``bench_wallclock.py``):
``PYTHONPATH=src python benchmarks/bench_process_backend.py [output.json]``.
"""

from __future__ import annotations

import json
import os
import sys
import time
import warnings
from typing import Dict, List

import numpy as np
import pytest

from _helpers import best_of, emit_reports
from repro.dpp.nonsymmetric import NonsymmetricKDPP
from repro.dpp.partition import PartitionDPP
from repro.engine import (
    OracleBatch,
    ProcessPoolBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.pram.tracker import Tracker
from repro.workloads import random_npsd_ensemble, random_psd_ensemble

WORKERS = 4
REPEATS = 3
SPEEDUP_TARGET = 2.0
#: below this many cores the speedup target is physically unreachable
MIN_CORES_FOR_GATE = 4


def _partition_workload():
    n = 24
    L = random_psd_ensemble(n, rank=12, seed=0)
    parts = [list(range(n // 2)), list(range(n // 2, n))]
    dist = PartitionDPP(L, parts, [4, 4])
    rng = np.random.default_rng(1)
    subsets = [tuple(sorted(rng.choice(n, size=t, replace=False).tolist()))
               for t in (1, 2, 3, 4) for _ in range(12)]
    return "partition", dist, subsets


def _charpoly_workload():
    n = 40
    L = random_npsd_ensemble(n, seed=2)
    dist = NonsymmetricKDPP(L, 8)
    rng = np.random.default_rng(3)
    subsets = [tuple(sorted(rng.choice(n, size=t, replace=False).tolist()))
               for t in (1, 2, 3, 4) for _ in range(16)]
    return "charpoly", dist, subsets


def _best_of(run, repeats: int = REPEATS) -> float:
    return best_of(run, repeats)


def _measure(name: str, dist, subsets, process_backend) -> Dict[str, object]:
    batch = lambda: OracleBatch.counting(dist, subsets)  # noqa: E731
    threads = ThreadPoolBackend(max_workers=WORKERS)
    vectorized = resolve_backend("vectorized")

    try:
        reference = vectorized.execute(batch(), tracker=Tracker()).values
        process_values = process_backend.execute(batch(), tracker=Tracker()).values  # warm-up
        threads_values = threads.execute(batch(), tracker=Tracker()).values
        identical = bool(np.allclose(process_values, reference, rtol=1e-9, atol=1e-12)
                         and np.allclose(threads_values, reference, rtol=1e-9, atol=1e-12))

        threads_s = _best_of(lambda: threads.execute(batch(), tracker=Tracker()))
        process_s = _best_of(lambda: process_backend.execute(batch(), tracker=Tracker()))
        vectorized_s = _best_of(lambda: vectorized.execute(batch(), tracker=Tracker()))
    finally:
        threads.close()
    return {
        "bench": "process_backend",
        "path": name,
        "n": dist.n,
        "queries": len(subsets),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "threads_s": threads_s,
        "process_s": process_s,
        "vectorized_s": vectorized_s,
        "speedup_vs_threads": threads_s / process_s,
        "values_identical": identical,
    }


def process_backend_report() -> List[Dict[str, object]]:
    """The benchmark body: one JSON-serializable report per workload."""
    process_backend = ProcessPoolBackend(max_workers=WORKERS)
    try:
        return [_measure(name, dist, subsets, process_backend)
                for name, dist, subsets in (_partition_workload(), _charpoly_workload())]
    finally:
        process_backend.close()


def _gate(report: Dict[str, object]) -> bool:
    """Whether this report meets the acceptance pin on this host."""
    if not report["values_identical"]:
        return False
    if (report["cpu_count"] or 1) < MIN_CORES_FOR_GATE:
        return True  # target not measurable here; values already checked
    return report["speedup_vs_threads"] >= SPEEDUP_TARGET


# ---------------------------------------------------------------------- #
# pytest entry points (CI smoke job)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def reports():
    return process_backend_report()


def test_process_backend_values_and_speedup(reports):
    for report in reports:
        print(json.dumps(report))
        assert report["values_identical"], report
        if not _gate(report):
            warnings.warn(
                f"process backend speedup vs threads on the {report['path']} path is "
                f"{report['speedup_vs_threads']:.2f}x (< {SPEEDUP_TARGET}x target with "
                f"{report['workers']} workers on {report['cpu_count']} cores)",
                RuntimeWarning, stacklevel=0)


def main() -> int:
    reports = process_backend_report()
    emit_reports(reports, sys.argv[1] if len(sys.argv) > 1 else None)
    return 0 if all(_gate(report) for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
