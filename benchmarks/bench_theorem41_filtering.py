"""E7 — Theorem 41: refined depth for spectrally bounded symmetric DPPs.

Paper claim: for an unconstrained symmetric DPP with kernel ``K``, sampling is
possible in ``Õ(min{√tr(K), λmax(K)·√n})`` parallel depth.  The benchmark
builds kernels in the two regimes (small trace vs small λmax), runs both
routes of the sampler, and compares measured rounds against the two bounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.filtering import sample_bounded_dpp_filtering
from repro.dpp.kernels import ensemble_to_kernel
from repro.workloads import bounded_spectrum_ensemble, spiked_spectrum_ensemble

from _helpers import print_table, record


def _kernel_stats(L):
    K = ensemble_to_kernel(L)
    eigs = np.clip(np.linalg.eigvalsh(0.5 * (K + K.T)), 0.0, 1.0)
    return float(eigs.max()), float(eigs.sum())


def test_e7_two_regimes(benchmark):
    n = 64
    rows = []
    results = {}
    workloads = {
        # small lambda_max, sizeable trace -> the filtering route should win
        "flat spectrum": bounded_spectrum_ensemble(n, kernel_lambda_max=0.08, seed=0),
        # large lambda_max but tiny trace -> the trace route should win
        "spiked spectrum": spiked_spectrum_ensemble(n, num_spikes=2, spike_value=0.9,
                                                    background=0.002, seed=1),
    }
    for name, L in workloads.items():
        lam, trace = _kernel_stats(L)
        filter_result = sample_bounded_dpp_filtering(L, epsilon=0.1, seed=2, strategy="filter")
        trace_result = sample_bounded_dpp_filtering(L, epsilon=0.1, seed=2, strategy="trace")
        auto_result = sample_bounded_dpp_filtering(L, epsilon=0.1, seed=2, strategy="auto")
        results[name] = (filter_result.report.rounds, trace_result.report.rounds)
        rows.append([
            name, f"{lam:.2f}", f"{trace:.1f}",
            f"{math.sqrt(trace):.1f}", f"{lam * math.sqrt(n):.1f}",
            filter_result.report.rounds, trace_result.report.rounds, auto_result.report.rounds,
        ])

    print_table(
        "E7 (Theorem 41): filtering vs trace route, n=64",
        ["workload", "lambda_max(K)", "tr(K)", "sqrt(tr K)", "lambda_max*sqrt(n)",
         "filter rounds", "trace rounds", "auto rounds"],
        rows,
    )
    print("The cheaper route flips between the two regimes, matching the min{...} in")
    print("Theorem 41: flat spectra favour Algorithm 4 filtering, spiked spectra favour")
    print("cardinality sampling + the Theorem 10 sampler.")

    record(benchmark,
           flat_filter_rounds=results["flat spectrum"][0],
           flat_trace_rounds=results["flat spectrum"][1],
           spiked_filter_rounds=results["spiked spectrum"][0],
           spiked_trace_rounds=results["spiked spectrum"][1])
    benchmark.pedantic(
        lambda: sample_bounded_dpp_filtering(workloads["flat spectrum"], epsilon=0.1,
                                             seed=3, strategy="auto"),
        rounds=1, iterations=1)
    # each regime's intended route should not be slower than the alternative
    assert results["spiked spectrum"][1] <= results["spiked spectrum"][0]


def test_e7_depth_vs_lambda_max(benchmark):
    """Filtering depth should scale roughly linearly with lambda_max(K)*sqrt(n)."""
    n = 48
    rows = []
    rounds_list, bounds = [], []
    for lam_target in (0.05, 0.1, 0.2, 0.4):
        L = bounded_spectrum_ensemble(n, kernel_lambda_max=lam_target, seed=5)
        lam, trace = _kernel_stats(L)
        result = sample_bounded_dpp_filtering(L, epsilon=0.2, seed=6, strategy="filter")
        rounds_list.append(result.report.rounds)
        bounds.append(lam * math.sqrt(n))
        rows.append([f"{lam:.2f}", f"{lam * math.sqrt(n):.2f}", result.report.rounds,
                     int(result.report.extra.get("filter_rounds", 0))])

    print_table(
        "E7b: Algorithm 4 depth as lambda_max(K) grows (n=48, eps=0.2)",
        ["lambda_max(K)", "lambda_max*sqrt(n)", "measured rounds", "scheduled filter rounds"],
        rows,
    )
    record(benchmark, rounds=rounds_list)
    benchmark.pedantic(
        lambda: sample_bounded_dpp_filtering(
            bounded_spectrum_ensemble(n, kernel_lambda_max=0.1, seed=5),
            epsilon=0.2, seed=7, strategy="filter"),
        rounds=1, iterations=1)
    # more concentrated spectra need more filtering rounds
    assert rounds_list[-1] >= rounds_list[0]
