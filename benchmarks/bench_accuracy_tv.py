"""E10 — output accuracy: total-variation distance of every sampler vs ground truth.

Paper claims: Theorems 10 and 11 sample *exactly* (conditioned on not
failing); Theorems 8, 9 and 29 sample within ``ε`` total variation.  On small
instances where the target distribution is enumerable, the benchmark measures
the empirical TV distance of each parallel sampler.
"""

from __future__ import annotations

import numpy as np

from repro.core.entropic import EntropicSamplerConfig
from repro.core.nonsymmetric import sample_nonsymmetric_kdpp_parallel
from repro.core.partition import sample_partition_dpp_parallel
from repro.core.symmetric import sample_symmetric_kdpp_parallel
from repro.dpp.exact import (
    exact_kdpp_distribution,
    exact_partition_dpp_distribution,
)
from repro.planar.graphs import grid_graph
from repro.planar.matching import enumerate_perfect_matchings
from repro.planar.parallel_matching import sample_planar_matching_parallel
from repro.workloads import clustered_ensemble, random_npsd_ensemble, random_psd_ensemble

from _helpers import print_table, record

NUM_SAMPLES = 1200


def _empirical_tv(sample_fn, exact, num_samples, seed):
    rng = np.random.default_rng(seed)
    counts = {}
    for _ in range(num_samples):
        s = tuple(sorted(sample_fn(rng)))
        counts[s] = counts.get(s, 0) + 1
    support = set(exact.support) | set(counts)
    tv = 0.0
    for s in support:
        p = exact.probability_vector([s])[0] if s in exact.support else 0.0
        tv += abs(counts.get(s, 0) / num_samples - p)
    return 0.5 * tv


def test_e10_total_variation_all_samplers(benchmark):
    rows = []
    cfg = EntropicSamplerConfig(c=0.3, epsilon=0.05)

    # Theorem 10: symmetric k-DPP (exact)
    L = random_psd_ensemble(6, seed=0)
    exact = exact_kdpp_distribution(L, 2)
    tv_sym = _empirical_tv(lambda rng: sample_symmetric_kdpp_parallel(L, 2, seed=rng).subset,
                           exact, NUM_SAMPLES, seed=1)
    rows.append(["Theorem 10 (symmetric k-DPP)", "exact", f"{tv_sym:.3f}"])

    # Theorem 8: nonsymmetric k-DPP (eps TV)
    L_ns = random_npsd_ensemble(6, seed=2)
    exact_ns = exact_kdpp_distribution(L_ns, 2)
    tv_ns = _empirical_tv(
        lambda rng: sample_nonsymmetric_kdpp_parallel(L_ns, 2, config=cfg, seed=rng).subset,
        exact_ns, NUM_SAMPLES, seed=3)
    rows.append(["Theorem 8 (nonsymmetric k-DPP)", f"TV <= {cfg.epsilon}", f"{tv_ns:.3f}"])

    # Theorem 9: Partition-DPP (eps TV)
    L_p, parts = clustered_ensemble([4, 4], seed=4)
    exact_p = exact_partition_dpp_distribution(L_p, parts, [1, 1])
    tv_p = _empirical_tv(
        lambda rng: sample_partition_dpp_parallel(L_p, parts, [1, 1], config=cfg, seed=rng).subset,
        exact_p, NUM_SAMPLES, seed=5)
    rows.append(["Theorem 9 (Partition-DPP)", f"TV <= {cfg.epsilon}", f"{tv_p:.3f}"])

    # Theorem 11: planar matchings (exact, uniform)
    g = grid_graph(2, 4)
    matchings = enumerate_perfect_matchings(g)
    target = 1.0 / len(matchings)
    rng = np.random.default_rng(6)
    counts = {m: 0 for m in matchings}
    for _ in range(NUM_SAMPLES):
        result = sample_planar_matching_parallel(g, seed=rng)
        key = tuple(sorted(result.subset, key=lambda e: sorted(map(repr, e))))
        counts[key] += 1
    tv_planar = 0.5 * sum(abs(c / NUM_SAMPLES - target) for c in counts.values())
    rows.append(["Theorem 11 (planar matchings)", "exact (uniform)", f"{tv_planar:.3f}"])

    print_table(
        f"E10: empirical total variation vs exact target ({NUM_SAMPLES} samples each)",
        ["sampler", "paper guarantee", "empirical TV"],
        rows,
    )
    print("The residual TV is dominated by Monte Carlo noise (~sqrt(|support|/samples));")
    print("exact samplers and eps-approximate samplers both sit at the noise floor.")

    record(benchmark, tv_symmetric=tv_sym, tv_nonsymmetric=tv_ns,
           tv_partition=tv_p, tv_planar=tv_planar)
    benchmark.pedantic(lambda: sample_symmetric_kdpp_parallel(L, 2, seed=7), rounds=3, iterations=1)
    noise_floor = 0.12
    assert max(tv_sym, tv_ns, tv_p, tv_planar) < noise_floor
