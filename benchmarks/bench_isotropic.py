"""E12 — Definition 30 / Proposition 32: the isotropic subdivision transform.

Paper claims: for subdivision parameter β, (1) lifted marginals obey
``k/(C|U|) ≤ P[copy ∈ S] ≤ C k/|U|`` with ``C = 1 + √β`` (the lower bound on
the well-represented set R), (2) the lifted ground set has size at most
``n(1 + 1/β)``, and (3) the mass of ℓ-subsets avoiding R is at least
``1 - √β ℓ``.  The benchmark measures all three on DPP workloads.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.isotropic import IsotropicTransform
from repro.dpp.exact import exact_kdpp_distribution
from repro.workloads import random_psd_ensemble

from _helpers import print_table, record


def test_e12_marginal_and_size_bounds(benchmark):
    L = random_psd_ensemble(10, seed=0)
    k = 3
    exact = exact_kdpp_distribution(L, k)
    marginals = exact.marginal_vector()

    rows = []
    stats = {}
    for beta in (0.5, 0.25, 0.1, 0.05):
        transform = IsotropicTransform(marginals, k=k, beta=beta)
        C, lower, upper = transform.marginal_bounds()
        lifted = transform.lifted_marginals()
        mask = transform.well_represented()
        _, size_bound = transform.ground_set_bounds()
        upper_ok = bool(np.all(lifted <= upper + 1e-12))
        lower_ok = bool(np.all(lifted[mask] >= lower - 1e-12))
        stats[beta] = (upper_ok, lower_ok)
        rows.append([beta, transform.size, f"{size_bound:.0f}",
                     f"{lifted.max():.4f}", f"{upper:.4f}",
                     f"{lifted[mask].min():.4f}" if mask.any() else "n/a", f"{lower:.4f}",
                     "yes" if (upper_ok and lower_ok) else "NO"])

    print_table(
        "E12 (Proposition 32): isotropic transform marginal bounds, n=10, k=3",
        ["beta", "|U|", "n(1+1/beta) bound", "max lifted marginal", "C k/|U| bound",
         "min marginal on R", "k/(C|U|) bound", "bounds hold"],
        rows,
    )
    record(benchmark, all_bounds_hold=all(a and b for a, b in stats.values()))
    benchmark.pedantic(lambda: IsotropicTransform(marginals, k=k, beta=0.1), rounds=5, iterations=1)
    assert all(a and b for a, b in stats.values())


def test_e12_mass_of_well_represented_subsets(benchmark):
    """Proposition 32's final claim: mu_iso_ell places mass >= 1 - sqrt(beta) ell on R^ell."""
    L = random_psd_ensemble(8, seed=1)
    k = 3
    exact = exact_kdpp_distribution(L, k)
    marginals = exact.marginal_vector()

    rows = []
    for beta in (0.3, 0.1):
        transform = IsotropicTransform(marginals, k=k, beta=beta)
        lifted = transform.lift_explicit(exact)
        mask = transform.well_represented()
        good_copies = set(np.flatnonzero(mask))
        for ell in (1, 2, 3):
            down = lifted.down_project(ell)
            mass = sum(w for s, w in down.items() if set(s) <= good_copies)
            bound = 1.0 - np.sqrt(beta) * ell
            rows.append([beta, ell, f"{mass:.4f}", f"{bound:.4f}",
                         "yes" if mass >= bound - 1e-9 else "NO"])

    print_table(
        "E12b (Proposition 32.2): mass of subsets inside the well-represented set R",
        ["beta", "ell", "measured mass", "1 - sqrt(beta) ell bound", "holds"],
        rows,
    )
    record(benchmark, rows=len(rows))
    benchmark.pedantic(lambda: transform.lift_explicit(exact), rounds=1, iterations=1)
    assert all(row[-1] == "yes" for row in rows)
