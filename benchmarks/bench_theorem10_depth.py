"""E1/E2 — Theorem 10: parallel depth of symmetric (k-)DPP sampling.

Paper claim: the batched sampler needs ``Õ(√k)`` adaptive rounds (``Õ(√n)``
for unconstrained DPPs) versus the ``Θ(k)`` rounds of the sequential
sampling-to-counting reduction.  The benchmark sweeps ``k`` (resp. ``n``),
prints measured rounds for both samplers, and fits the depth exponent.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.sequential import sequential_sample
from repro.core.symmetric import sample_symmetric_dpp_parallel, sample_symmetric_kdpp_parallel
from repro.dpp.symmetric import SymmetricKDPP
from repro.workloads import random_psd_ensemble

from _helpers import fit_power_law, print_table, record


N_GROUND = 100
K_SWEEP = (4, 9, 16, 36, 64)


def test_e1_kdpp_depth_sweep(benchmark):
    """Rounds of the Theorem 10 k-DPP sampler vs the sequential baseline."""
    L = random_psd_ensemble(N_GROUND, rank=N_GROUND, seed=0)

    rows = []
    parallel_rounds = []
    for k in K_SWEEP:
        par = sample_symmetric_kdpp_parallel(L, k, seed=1)
        seq = sequential_sample(SymmetricKDPP(L, k), seed=1)
        parallel_rounds.append(par.report.rounds)
        rows.append([
            k, f"{math.sqrt(k):.1f}", par.report.rounds, seq.report.rounds,
            f"{seq.report.rounds / par.report.rounds:.2f}x",
            f"{par.report.mean_acceptance:.2f}",
        ])

    exponent = fit_power_law(K_SWEEP, parallel_rounds)
    print_table(
        "E1 (Theorem 10.1): symmetric k-DPP parallel depth, n=100",
        ["k", "sqrt(k)", "parallel rounds", "sequential rounds", "speedup", "acceptance"],
        rows,
    )
    print(f"fitted depth exponent (rounds ~ k^a): a = {exponent:.2f}  "
          "(paper: 1/2 for the parallel sampler, 1 for sequential)")

    record(benchmark, depth_exponent=exponent,
           max_speedup=rows[-1][4], k_max=K_SWEEP[-1])
    # wall-clock of one representative parallel sample (k = 36)
    benchmark.pedantic(lambda: sample_symmetric_kdpp_parallel(L, 36, seed=2),
                       rounds=1, iterations=1)
    assert exponent < 0.85


def test_e2_unconstrained_dpp_depth(benchmark):
    """Rounds of the unconstrained symmetric DPP sampler as n grows."""
    rows = []
    rounds_list = []
    sizes = (32, 64, 128)
    for n in sizes:
        # scale so the expected sample size grows linearly with n (E|S| ≈ n/4)
        L = random_psd_ensemble(n, rank=n, seed=3) * (1.0 / 3.0)
        result = sample_symmetric_dpp_parallel(L, seed=4)
        rounds_list.append(max(result.report.rounds, 1))
        rows.append([n, len(result.subset), result.report.rounds,
                     f"{math.sqrt(n):.1f}"])

    exponent = fit_power_law(sizes, rounds_list)
    print_table(
        "E2 (Theorem 10.2): unconstrained symmetric DPP parallel depth",
        ["n", "|S| sampled", "parallel rounds", "sqrt(n)"],
        rows,
    )
    print(f"fitted depth exponent (rounds ~ n^a): a = {exponent:.2f}  (paper: 1/2)")

    record(benchmark, depth_exponent=exponent)
    benchmark.pedantic(
        lambda: sample_symmetric_dpp_parallel(random_psd_ensemble(64, seed=3) / 3.0, seed=5),
        rounds=1, iterations=1)
    assert exponent < 0.95
