"""Streaming-kernel benchmark: incremental updates instead of O(n³) recompute.

Measures the three claims the streaming tier (:mod:`repro.linalg.updates` +
``SamplerSession.update``/``append_items``) makes:

* **updates beat refactorization** — at ``n = BENCH_STREAMING_N`` (default
  2000) with a rank-8 factor kernel, one incremental mutation (append one
  item + delete one item, patching the cached k-sized artifacts) is gated
  ≥ 5x faster wall-clock than the dense O(n³) refactorization of the same
  ensemble (``KernelFactorization(B Bᵀ).warm("symmetric")``) that a
  recompute-on-mutate serving layer would pay.  A dense rank-1 secular
  update at ``n = BENCH_STREAMING_DENSE_N`` (default 600) is reported as an
  advisory ratio against a fresh ``numpy.linalg.eigh``.
* **deltas, not matrices, cross the wire** — the pickled ``update`` request
  frame a :class:`~repro.cluster.client.ClusterClient` ships is gated to
  ≤ a small multiple of the update's array payload (O(n·k) bytes for an
  appended row) and ≪ the full re-registration frame it replaces.
* **throughput survives mutation** — a sampler loop keeps draining fused
  rounds while a mutator thread rewrites the kernel at ~50 Hz; the run is
  gated on zero errors and every draw landing on a valid epoch.

One machine-readable JSON line per run is printed (and written to
``argv[1]``, and appended to ``BENCH_trajectory.json``):
``PYTHONPATH=src python benchmarks/bench_streaming.py [output.json]``.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
import time
from typing import Dict

import numpy as np
import pytest

from _helpers import best_of, emit_reports
from repro.linalg.updates import KernelUpdate, rank_one_eigh_update
from repro.service.cache import KernelFactorization
from repro.service.registry import KernelRegistry

N_STREAM = int(os.environ.get("BENCH_STREAMING_N", "2000"))
N_DENSE = int(os.environ.get("BENCH_STREAMING_DENSE_N", "600"))
RANK = 8
K = 8
SPEEDUP_GATE = 5.0
#: one appended row is RANK doubles; the frame may cost a few pickling
#: envelopes on top but never a second copy of the kernel
DELTA_OVERHEAD_BYTES = 4096
MUTATION_HZ = 50.0
MUTATE_SECONDS = 1.5


def _factor(n: int, rank: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, rank)) / np.sqrt(rank)


def _update_leg(n: int, rank: int) -> Dict[str, float]:
    """Patch-vs-refactorization timings on one registered low-rank kernel."""
    factor = _factor(n, rank, seed=0)
    registry = KernelRegistry()
    registry.register("stream", factor, kind="lowrank")
    session = registry.session("stream").warm()
    rng = np.random.default_rng(1)
    rows = iter(rng.standard_normal((64, rank)) / np.sqrt(rank))

    def one_update() -> None:
        # append one item + delete the oldest: constant-size mutation, and
        # both cached-artifact patch paths (concat + delete) get exercised
        session.append_items(next(rows))
        session.delete_items([0])

    update_seconds = best_of(one_update) / 2.0  # two updates per call
    dense = np.asarray(session.entry.matrix) @ np.asarray(session.entry.matrix).T

    def refactorize() -> None:
        KernelFactorization(dense).warm("symmetric")

    refactor_seconds = best_of(refactorize)
    subset = session.sample(K, seed=7).subset
    epoch = session.epoch
    session.close()
    return {
        "update_seconds": update_seconds,
        "refactor_seconds": refactor_seconds,
        "speedup_vs_refactor": refactor_seconds / max(update_seconds, 1e-12),
        "final_epoch": float(epoch),
        "sample_size": float(len(subset)),
    }


def _delta_leg(n: int, rank: int) -> Dict[str, float]:
    """Wire-size accounting: the frames are pickled exactly as the cluster
    protocol pickles them (protocol 5), no sockets needed for byte counts."""
    factor = _factor(n, rank, seed=2)
    update = KernelUpdate.append_rows(_factor(1, rank, seed=3))
    update_frame = pickle.dumps(
        {"op": "update", "name": "stream", "update": update,
         "prev": "0" * 64, "refactor": "auto"}, protocol=5)
    register_frame = pickle.dumps(
        {"op": "register", "name": "stream", "matrix": factor,
         "kind": "lowrank", "parts": None, "counts": None,
         "warm": False, "validate": True}, protocol=5)
    return {
        "delta_payload_bytes": float(update.delta_nbytes),
        "delta_frame_bytes": float(len(update_frame)),
        "register_frame_bytes": float(len(register_frame)),
    }


def _throughput_leg(n: int, rank: int) -> Dict[str, float]:
    """Sampler draws while a mutator thread rewrites the kernel at ~50 Hz."""
    registry = KernelRegistry()
    registry.register("live", _factor(n, rank, seed=4), kind="lowrank")
    session = registry.session("live").warm()
    rng = np.random.default_rng(5)
    rows = rng.standard_normal((512, rank)) / np.sqrt(rank)
    stop = threading.Event()
    errors: list = []

    def mutate() -> None:
        i = 0
        while not stop.is_set() and i < rows.shape[0]:
            try:
                session.append_items(rows[i])
                session.delete_items([0])
            except BaseException as exc:  # surfaced in the report, gates the run
                errors.append(repr(exc))
                return
            i += 1
            time.sleep(1.0 / MUTATION_HZ)

    mutator = threading.Thread(target=mutate, name="bench-stream-mutator")
    mutator.start()
    draws = 0
    epochs_seen = set()
    start = time.perf_counter()
    try:
        while time.perf_counter() - start < MUTATE_SECONDS:
            result = session.sample(K, seed=1000 + draws)
            epochs_seen.add(int(result.report.extra.get("kernel_epoch", 0.0)))
            draws += 1
    except BaseException as exc:
        errors.append(repr(exc))
    finally:
        stop.set()
        mutator.join()
        elapsed = time.perf_counter() - start
        final_epoch = session.epoch
        session.close()
    return {
        "sustained_rps": draws / max(elapsed, 1e-9),
        "sustained_draws": float(draws),
        "epochs_absorbed": float(final_epoch),
        "distinct_epochs_sampled": float(len(epochs_seen)),
        "errors": len(errors),
    }


def _dense_advisory(n: int) -> Dict[str, float]:
    """Advisory (ungated): secular rank-1 eigen update vs a fresh eigh."""
    rng = np.random.default_rng(6)
    a = rng.standard_normal((n, n))
    matrix = (a @ a.T) / n
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    z = rng.standard_normal(n) / np.sqrt(n)
    update_seconds = best_of(
        lambda: rank_one_eigh_update(eigenvalues, eigenvectors, z, 0.5))
    eigh_seconds = best_of(
        lambda: np.linalg.eigh(matrix + 0.5 * np.outer(z, z)))
    return {
        "dense_n": float(n),
        "dense_update_seconds": update_seconds,
        "dense_eigh_seconds": eigh_seconds,
        "dense_speedup_vs_eigh": eigh_seconds / max(update_seconds, 1e-12),
    }


def streaming_report(n: int = N_STREAM, rank: int = RANK,
                     dense_n: int = N_DENSE) -> Dict[str, object]:
    """The benchmark body; returns one JSON-serializable report."""
    report: Dict[str, object] = {"bench": "streaming", "n": n, "rank": rank,
                                 "k": K}
    report.update(_update_leg(n, rank))
    report.update(_delta_leg(n, rank))
    report.update(_throughput_leg(n, rank))
    report.update(_dense_advisory(dense_n))
    return report


def _gates(report: Dict[str, object]) -> bool:
    delta_budget = (4.0 * report["delta_payload_bytes"] + DELTA_OVERHEAD_BYTES)
    return (report["speedup_vs_refactor"] >= SPEEDUP_GATE
            and report["delta_frame_bytes"] <= delta_budget
            and report["delta_frame_bytes"] < report["register_frame_bytes"]
            and report["errors"] == 0
            and report["sustained_draws"] > 0
            and report["epochs_absorbed"] > 0)


# ---------------------------------------------------------------------- #
# pytest entry points (tier-1 runs these at reduced sizes; the CI streaming
# job runs main() at the full defaults as the hard gate)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def report():
    # the margin is orders of magnitude (an O(n·k²) patch vs an O(n³) eigh);
    # re-measure once so a scheduler hiccup on a shared runner doesn't flake
    result = streaming_report(n=512, dense_n=256)
    if result["speedup_vs_refactor"] < SPEEDUP_GATE:
        result = streaming_report(n=512, dense_n=256)
    return result


def test_update_beats_refactorization(report):
    """Acceptance pin: an incremental update is ≥ 5x faster than recompute."""
    assert report["speedup_vs_refactor"] >= SPEEDUP_GATE, (
        f"incremental update should be >= {SPEEDUP_GATE}x faster than a dense "
        f"refactorization at n={report['n']} "
        f"(got {report['speedup_vs_refactor']:.2f}x)"
    )


def test_cluster_ships_deltas_not_matrices(report):
    """Acceptance pin: the update frame is O(n·k) delta bytes, not the kernel."""
    assert report["delta_frame_bytes"] <= (4.0 * report["delta_payload_bytes"]
                                           + DELTA_OVERHEAD_BYTES)
    assert report["delta_frame_bytes"] < report["register_frame_bytes"]


def test_throughput_survives_mutation(report):
    """Acceptance pin: fused draws keep landing while the kernel mutates."""
    assert report["errors"] == 0
    assert report["sustained_draws"] > 0
    assert report["epochs_absorbed"] > 0


def main() -> int:
    result = streaming_report()
    if result["speedup_vs_refactor"] < SPEEDUP_GATE:
        result = streaming_report()
    emit_reports(result, sys.argv[1] if len(sys.argv) > 1 else None)
    return 0 if _gates(result) else 1


if __name__ == "__main__":
    sys.exit(main())
