"""Cluster-layer benchmark: warm vs cold shard throughput + rebalance cost.

Measures the two claims the cluster layer makes:

* **amortization survives sharding** — requests/sec through a 3-node
  ``LocalCluster`` (replication 2) with cold node caches vs warm ones.  The
  exit gate pins warm ≥ 2x cold: shard nodes must amortize per-kernel
  preprocessing exactly like a local ``SamplerSession`` does, with the wire
  protocol costing less than the amortization saves.
* **consistent hashing moves ~K/N keys** — joining a node to an ``N``-node
  ring re-homes only the fingerprints the new node captures.  The exit gate
  pins moved ≤ 2·K/N (expected K/N) on the ring itself, and the live
  cluster's :class:`~repro.cluster.client.RebalanceReport` is recorded for
  the replicated (≈ R·K/N) case.

Byte-identity with a single-node session is asserted along the way — the
cluster must never trade correctness for locality.  One machine-readable
JSON line is printed (and written to ``argv[1]`` if given), mirroring the
other serving benchmarks: ``PYTHONPATH=src python benchmarks/bench_cluster.py
[output.json]``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict

import numpy as np
import pytest

import repro
from _helpers import emit_reports
from repro.cluster import HashRing, LocalCluster
from repro.workloads import random_psd_ensemble

N = 224
RANK = 64
K = 10
KERNELS = 6
NODES = 3
REPLICATION = 2
RING_KEYS = 64


def _per_kernel_pass(client, names, *, seed_base: int) -> float:
    start = time.perf_counter()
    for offset, name in enumerate(names):
        client.sample(name, k=K, seed=seed_base + offset)
    return time.perf_counter() - start


def cluster_report(n: int = N, rank: int = RANK, kernels: int = KERNELS) -> Dict[str, object]:
    """The benchmark body; returns one JSON-serializable report."""
    matrices = [random_psd_ensemble(n, rank=rank, seed=i) for i in range(kernels)]
    with LocalCluster(nodes=NODES, replication=REPLICATION) as cluster:
        client = cluster.client()
        names = [client.register(matrix).name for matrix in matrices]

        def flush() -> None:
            for node in cluster.nodes.values():
                node.handle({"op": "flush"})

        # cold: every request pays the kernel's full preprocessing node-side
        cold_elapsed = min(
            (_per_kernel_pass(client, names, seed_base=trial * kernels)
             for trial in range(3) if not flush()), default=float("inf"))
        cold_rps = kernels / cold_elapsed

        # warm: artifacts cached on the owning shards; only sampling remains
        _per_kernel_pass(client, names, seed_base=1000)  # populate caches
        warm_elapsed = min(_per_kernel_pass(client, names, seed_base=2000 + trial)
                           for trial in range(3))
        warm_rps = kernels / warm_elapsed

        # correctness pin: the cluster draw equals a single-node session draw
        reference = repro.serve(matrices[0], registry=repro.KernelRegistry())
        identical = (client.sample(names[0], k=K, seed=123).subset
                     == reference.sample(k=K, seed=123).subset)

        # live rebalance (replication R: moved ≈ R·K/N, recorded for the report)
        live_report = cluster.add_node()
        info = cluster.cluster_info()

    # ring-level movement gate at R=1: K keys, N -> N+1 nodes
    ring = HashRing([f"shard-{i}" for i in range(NODES)])
    keys = [f"bench-key-{i:04d}" for i in range(RING_KEYS)]
    before = ring.ownership(keys, 1)
    ring.add_node(f"shard-{NODES}")
    after = ring.ownership(keys, 1)
    ring_moved = len(HashRing.moved_keys(before, after))
    ring_bound = 2 * RING_KEYS / (NODES + 1)

    return {
        "bench": "cluster",
        "n": n, "rank": rank, "k": K, "kernels": kernels,
        "nodes": NODES, "replication": REPLICATION,
        "cold_rps": cold_rps,
        "warm_rps": warm_rps,
        "warm_speedup": warm_rps / cold_rps,
        "cluster_sample_identical": bool(identical),
        "live_rebalance": {"moved": live_report.moved, "total": live_report.total,
                           "lost": len(live_report.lost)},
        "ring_rebalance": {"keys": RING_KEYS, "moved": ring_moved,
                           "bound": ring_bound},
        "cluster_info": {"alive": info["alive"],
                         "samples_served": info["samples_served"],
                         "failovers": info["failovers"],
                         "cache": info["cache"]},
    }


def _gates(report: Dict[str, object]) -> bool:
    return (report["cluster_sample_identical"]
            and report["warm_speedup"] >= 2.0
            and report["ring_rebalance"]["moved"] <= report["ring_rebalance"]["bound"]
            and report["live_rebalance"]["lost"] == 0)


# ---------------------------------------------------------------------- #
# pytest entry points (CI smoke job)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def report():
    # typical margin is well above the 2x pin; re-measure before reporting so
    # one scheduler hiccup on a loaded shared runner doesn't flake the suite
    result = cluster_report()
    for _ in range(2):
        if result["warm_speedup"] >= 2.0:
            break
        result = cluster_report()
    return result


def test_warm_cluster_throughput(report):
    """Acceptance pin: warm cluster sampling ≥ 2x cold preprocessing-per-request."""
    print(json.dumps(report))
    assert report["cluster_sample_identical"]
    assert report["warm_speedup"] >= 2.0, (
        "warm cluster serving should be >= 2x cold per-request preprocessing "
        f"(got {report['warm_speedup']:.2f}x)"
    )


def test_rebalance_moves_bounded_fraction(report):
    """Acceptance pin: a node join moves ≤ 2·K/N fingerprints (ring, R=1)."""
    ring = report["ring_rebalance"]
    assert 0 < ring["moved"] <= ring["bound"]
    assert report["live_rebalance"]["lost"] == 0


def main() -> int:
    result = cluster_report()
    for _ in range(2):
        if result["warm_speedup"] >= 2.0:
            break
        result = cluster_report()
    emit_reports(result, sys.argv[1] if len(sys.argv) > 1 else None)
    return 0 if _gates(result) else 1


if __name__ == "__main__":
    sys.exit(main())
