"""Sublinear-tier benchmark: exact sampling at n >> 10^5 without the n x n kernel.

Measures the two claims the low-rank tier makes:

* **huge ground sets are reachable** — an exact DPP and k-DPP sample is drawn
  from ``L = B Bᵀ`` at ``n = 10^5`` (override with ``BENCH_SUBLINEAR_N``; CI
  uses ``2·10^4``) while peak traced allocation and process RSS stay under
  1.5 GB: memory is ``O(n·k)`` because only the factor, its ``k x k`` Gram,
  and the whitened coordinates ever exist.
* **the factor path beats the dense path where both run** — at the largest
  dense-runnable size (``BENCH_SUBLINEAR_DENSE_N``, default 2048) the
  intermediate sampler is gated ≥ 5x faster wall-clock and ≥ 10x lighter in
  peak memory than the dense spectral sampler on the materialized kernel,
  cold-for-cold (each run pays its own factorization).

Serving identity is pinned along the way — ``repro.serve(LowRankKernel(B))``
must reproduce the cold sampler byte for byte, warm or cold.  One
machine-readable JSON line per run is printed (and written to ``argv[1]``,
and appended to ``BENCH_trajectory.json``): ``PYTHONPATH=src python
benchmarks/bench_sublinear.py [output.json]``.
"""

from __future__ import annotations

import os
import resource
import sys
import time
import tracemalloc
from typing import Dict, Tuple

import numpy as np
import pytest

import repro
from _helpers import best_of, emit_reports
from repro.distributions.lowrank import LowRankKernel
from repro.dpp.intermediate import sample_dpp_intermediate, sample_kdpp_intermediate
from repro.dpp.spectral import sample_kdpp_spectral
from repro.service import KernelRegistry

N_LARGE = int(os.environ.get("BENCH_SUBLINEAR_N", "100000"))
N_DENSE = int(os.environ.get("BENCH_SUBLINEAR_DENSE_N", "2048"))
RANK = 48
K = 12
WARM_DRAWS = 8
SPEEDUP_GATE = 5.0
MEMORY_GATE = 10.0
RSS_GATE_BYTES = 1.5 * 2 ** 30


def _traced(run) -> Tuple[object, float, int]:
    """Run ``run()`` once; return (value, seconds, peak traced bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    value = run()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return value, elapsed, peak


def _maxrss_bytes() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) * 1024  # Linux reports kilobytes


def _large_factor(n: int, rank: int, seed: int) -> np.ndarray:
    """O(n·rank) factor build that avoids the QR of the workload generator
    dominating the trace: orthonormality is irrelevant to the memory claim."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, rank)) / np.sqrt(rank)


def sublinear_report(n_large: int = N_LARGE, n_dense: int = N_DENSE,
                     rank: int = RANK) -> Dict[str, object]:
    """The benchmark body; returns one JSON-serializable report."""
    # ---- huge-n leg: exact samples, O(n·k) memory (run FIRST so ru_maxrss
    # reflects this leg, before the dense comparison inflates the process) ---
    def large_leg():
        kernel = LowRankKernel(_large_factor(n_large, rank, seed=0))
        dpp = sample_dpp_intermediate(kernel, 1)
        kdpp = sample_kdpp_intermediate(kernel, K, 2)
        session = repro.serve(kernel, registry=KernelRegistry()).warm()
        served = session.sample(k=K, seed=2).subset
        start = time.perf_counter()
        for draw in range(WARM_DRAWS):
            session.sample(k=K, seed=100 + draw)
        warm_rps = WARM_DRAWS / (time.perf_counter() - start)
        session.close()
        return dpp, kdpp, served, warm_rps

    (dpp, kdpp, served, warm_rps), large_seconds, large_peak = _traced(large_leg)
    large_rss = _maxrss_bytes()
    valid = (len(kdpp) == K
             and all(0 <= i < n_large for i in kdpp)
             and list(kdpp) == sorted(set(kdpp))
             and all(0 <= i < n_large for i in dpp))

    # ---- dense-comparison leg: cold-for-cold at the largest dense size -----
    factor = np.ascontiguousarray(_large_factor(n_dense, rank, seed=1))
    kernel = LowRankKernel(factor)
    lowrank_seconds = best_of(lambda: sample_kdpp_intermediate(kernel, K, 3))
    dense_seconds = best_of(lambda: sample_kdpp_spectral(factor @ factor.T, K, 3))
    _, _, lowrank_peak = _traced(lambda: sample_kdpp_intermediate(kernel, K, 3))
    _, _, dense_peak = _traced(lambda: sample_kdpp_spectral(factor @ factor.T, K, 3))

    return {
        "bench": "sublinear",
        "n_large": n_large, "n_dense": n_dense, "rank": rank, "k": K,
        "large_sample_valid": bool(valid),
        "large_serve_identical": bool(served == kdpp),
        "large_seconds": large_seconds,
        "large_peak_traced_bytes": int(large_peak),
        "large_maxrss_bytes": int(large_rss),
        "warm_session_rps": warm_rps,
        "lowrank_seconds": lowrank_seconds,
        "dense_seconds": dense_seconds,
        "speedup_vs_dense": dense_seconds / lowrank_seconds,
        "lowrank_peak_bytes": int(lowrank_peak),
        "dense_peak_bytes": int(dense_peak),
        "memory_ratio_vs_dense": dense_peak / max(lowrank_peak, 1),
    }


def _gates(report: Dict[str, object]) -> bool:
    return (report["large_sample_valid"]
            and report["large_serve_identical"]
            and report["large_peak_traced_bytes"] < RSS_GATE_BYTES
            and report["large_maxrss_bytes"] < RSS_GATE_BYTES
            and report["speedup_vs_dense"] >= SPEEDUP_GATE
            and report["memory_ratio_vs_dense"] >= MEMORY_GATE)


# ---------------------------------------------------------------------- #
# pytest entry points (CI smoke job; tier-1 runs these at default sizes)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def report():
    # typical margins are far above the pins (the dense path pays an n x n
    # eigendecomposition the factor path never sees); re-measure once so a
    # scheduler hiccup on a loaded shared runner doesn't flake the suite
    result = sublinear_report()
    if result["speedup_vs_dense"] < SPEEDUP_GATE:
        result = sublinear_report()
    return result


def test_large_n_exact_sampling_stays_small(report):
    """Acceptance pin: exact samples at huge n with < 1.5 GB peak memory."""
    assert report["large_sample_valid"]
    assert report["large_serve_identical"]
    assert report["large_peak_traced_bytes"] < RSS_GATE_BYTES
    assert report["large_maxrss_bytes"] < RSS_GATE_BYTES


def test_factor_path_beats_dense_path(report):
    """Acceptance pin: ≥ 5x wall-clock and ≥ 10x peak memory vs dense."""
    import json

    print(json.dumps(report))
    assert report["speedup_vs_dense"] >= SPEEDUP_GATE, (
        f"low-rank sampling should be >= {SPEEDUP_GATE}x faster than the dense "
        f"spectral path at n={report['n_dense']} "
        f"(got {report['speedup_vs_dense']:.2f}x)"
    )
    assert report["memory_ratio_vs_dense"] >= MEMORY_GATE, (
        f"low-rank sampling should allocate >= {MEMORY_GATE}x less than the "
        f"dense path (got {report['memory_ratio_vs_dense']:.2f}x)"
    )


def main() -> int:
    result = sublinear_report()
    if result["speedup_vs_dense"] < SPEEDUP_GATE:
        result = sublinear_report()
    emit_reports(result, sys.argv[1] if len(sys.argv) > 1 else None)
    return 0 if _gates(result) else 1


if __name__ == "__main__":
    sys.exit(main())
