"""E5 — Theorem 8: parallel depth for nonsymmetric DPPs / k-DPPs.

Paper claim: for nPSD ensemble matrices, the entropic meta-sampler needs
``Õ(√k (k/ε)^c)`` adaptive rounds (vs ``Θ(k)`` sequentially).  The benchmark
sweeps ``k`` and the constant ``c`` and reports measured rounds and the
modified-rejection violation counts.
"""

from __future__ import annotations

import math

from repro.core.entropic import EntropicSamplerConfig
from repro.core.nonsymmetric import sample_nonsymmetric_kdpp_parallel
from repro.core.sequential import sequential_sample
from repro.dpp.nonsymmetric import NonsymmetricKDPP
from repro.workloads import random_npsd_ensemble

from _helpers import fit_power_law, print_table, record


def test_e5_nonsymmetric_kdpp_depth(benchmark):
    n = 48
    L = random_npsd_ensemble(n, symmetric_scale=1.0, skew_scale=0.8, seed=0)
    config = EntropicSamplerConfig(c=0.25, epsilon=0.1)

    rows = []
    ks = (4, 9, 16, 25)
    parallel_rounds = []
    for k in ks:
        par = sample_nonsymmetric_kdpp_parallel(L, k, config=config, seed=1)
        seq = sequential_sample(NonsymmetricKDPP(L, k), seed=1)
        parallel_rounds.append(par.report.rounds)
        rows.append([
            k, f"{k ** (0.5 + config.c):.1f}", par.report.rounds, seq.report.rounds,
            f"{seq.report.rounds / par.report.rounds:.2f}x", par.report.ratio_violations,
        ])

    exponent = fit_power_law(ks, parallel_rounds)
    print_table(
        "E5 (Theorem 8.1): nonsymmetric k-DPP parallel depth, n=48, c=0.25, eps=0.1",
        ["k", "k^(1/2+c)", "parallel rounds", "sequential rounds", "speedup", "ratio violations"],
        rows,
    )
    print(f"fitted depth exponent: {exponent:.2f} (paper: 1/2 + c = {0.5 + config.c}; sequential: 1)")

    record(benchmark, depth_exponent=exponent)
    benchmark.pedantic(
        lambda: sample_nonsymmetric_kdpp_parallel(L, 16, config=config, seed=2),
        rounds=1, iterations=1)
    assert exponent < 1.0


def test_e5_effect_of_batch_exponent_c(benchmark):
    """Ablation: smaller c means bigger batches (fewer rounds) but more machines."""
    n = 48
    L = random_npsd_ensemble(n, seed=3)
    k = 25
    rows = []
    for c in (0.45, 0.3, 0.15):
        config = EntropicSamplerConfig(c=c, epsilon=0.1)
        result = sample_nonsymmetric_kdpp_parallel(L, k, config=config, seed=4)
        rows.append([c, result.report.rounds, int(result.report.peak_machines),
                     result.report.ratio_violations,
                     f"{result.report.mean_acceptance:.2f}"])

    print_table(
        "E5b (ablation): batch exponent c trades rounds for machines (k=25)",
        ["c", "parallel rounds", "peak machines", "ratio violations", "acceptance"],
        rows,
    )
    print("Smaller c -> larger batches (k^{1/2-c}) -> fewer adaptive rounds but lower")
    print("acceptance / more machines, exactly the trade-off in Theorem 29's statement.")

    record(benchmark, rounds_c045=rows[0][1], rounds_c015=rows[-1][1])
    benchmark.pedantic(
        lambda: sample_nonsymmetric_kdpp_parallel(L, k, config=EntropicSamplerConfig(c=0.3), seed=5),
        rounds=1, iterations=1)
    assert rows[-1][1] <= rows[0][1]
