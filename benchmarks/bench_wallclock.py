"""E13 — wall-clock micro-benchmarks of the main samplers and oracles.

Engineering sanity check (not a paper claim): pytest-benchmark timings of the
parallel samplers, the sequential baselines, and the counting oracles on fixed
mid-size workloads, so regressions in the implementation are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequential import sequential_sample
from repro.core.symmetric import sample_symmetric_kdpp_parallel
from repro.dpp.spectral import sample_kdpp_spectral
from repro.dpp.symmetric import SymmetricKDPP
from repro.planar.graphs import grid_graph
from repro.planar.kasteleyn import log_count_perfect_matchings
from repro.planar.parallel_matching import sample_planar_matching_parallel
from repro.workloads import random_npsd_ensemble, random_psd_ensemble

N = 64
K = 16


@pytest.fixture(scope="module")
def psd_kernel():
    return random_psd_ensemble(N, seed=0)


@pytest.fixture(scope="module")
def grid():
    return grid_graph(8, 8)


def test_wallclock_parallel_kdpp(benchmark, psd_kernel):
    result = benchmark(lambda: sample_symmetric_kdpp_parallel(psd_kernel, K, seed=1))
    assert len(result.subset) == K


def test_wallclock_sequential_kdpp(benchmark, psd_kernel):
    result = benchmark(lambda: sequential_sample(SymmetricKDPP(psd_kernel, K), seed=1))
    assert len(result.subset) == K


def test_wallclock_spectral_kdpp(benchmark, psd_kernel):
    result = benchmark(lambda: sample_kdpp_spectral(psd_kernel, K, seed=1))
    assert len(result) == K


def test_wallclock_kdpp_marginals(benchmark, psd_kernel):
    marginals = benchmark(lambda: SymmetricKDPP(psd_kernel, K).marginal_vector())
    assert marginals.sum() == pytest.approx(K, rel=1e-5)


def test_wallclock_kasteleyn_count(benchmark, grid):
    value = benchmark(lambda: log_count_perfect_matchings(grid))
    assert np.isfinite(value)


def test_wallclock_parallel_planar_matching(benchmark, grid):
    result = benchmark.pedantic(lambda: sample_planar_matching_parallel(grid, seed=2),
                                rounds=2, iterations=1)
    assert len(result.subset) == grid.n // 2


def test_wallclock_nonsymmetric_marginals(benchmark):
    from repro.dpp.nonsymmetric import NonsymmetricKDPP

    L = random_npsd_ensemble(40, seed=3)
    marginals = benchmark(lambda: NonsymmetricKDPP(L, 10).marginal_vector())
    assert marginals.sum() == pytest.approx(10, rel=1e-4)
