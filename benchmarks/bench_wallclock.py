"""E13 — wall-clock micro-benchmarks of the main samplers and oracles.

Engineering sanity check (not a paper claim): pytest-benchmark timings of the
parallel samplers, the sequential baselines, and the counting oracles on fixed
mid-size workloads, so regressions in the implementation are visible.

The ``test_wallclock_backend_*`` sweep times the same seeded symmetric k-DPP
run on every execution backend (``serial`` / ``vectorized`` / ``threads``) on
an ``n = 200`` low-rank instance, so BENCH snapshots capture the speedup from
vectorizing the oracle-batch engine; ``test_backend_speedup_and_equivalence``
hard-asserts that backends produce the identical seeded sample and reports the
serial-vs-vectorized timing as a machine-readable JSON line (warning, not
assertion, on regression — noisy shared runners shouldn't flake CI; run this
file as a script for an exit-code gate).
"""

from __future__ import annotations

import json
import sys
import time
import warnings

import numpy as np
import pytest

from repro.core.sequential import sequential_sample
from repro.core.symmetric import sample_symmetric_kdpp_parallel
from repro.dpp.spectral import sample_kdpp_spectral
from repro.dpp.symmetric import SymmetricKDPP
from repro.planar.graphs import grid_graph
from repro.planar.kasteleyn import log_count_perfect_matchings
from repro.planar.parallel_matching import sample_planar_matching_parallel
from repro.workloads import random_npsd_ensemble, random_psd_ensemble

N = 64
K = 16

# backend-sweep instance: large ground set, realistic low-rank kernel
N_BACKEND = 200
K_BACKEND = 40
RANK_BACKEND = 60
BACKEND_NAMES = ("serial", "vectorized", "threads")


@pytest.fixture(scope="module")
def psd_kernel():
    return random_psd_ensemble(N, seed=0)


@pytest.fixture(scope="module")
def backend_kernel():
    return random_psd_ensemble(N_BACKEND, rank=RANK_BACKEND, seed=0)


@pytest.fixture(scope="module")
def grid():
    return grid_graph(8, 8)


def test_wallclock_parallel_kdpp(benchmark, psd_kernel):
    result = benchmark(lambda: sample_symmetric_kdpp_parallel(psd_kernel, K, seed=1))
    assert len(result.subset) == K


def test_wallclock_sequential_kdpp(benchmark, psd_kernel):
    result = benchmark(lambda: sequential_sample(SymmetricKDPP(psd_kernel, K), seed=1))
    assert len(result.subset) == K


def test_wallclock_spectral_kdpp(benchmark, psd_kernel):
    result = benchmark(lambda: sample_kdpp_spectral(psd_kernel, K, seed=1))
    assert len(result) == K


def test_wallclock_kdpp_marginals(benchmark, psd_kernel):
    marginals = benchmark(lambda: SymmetricKDPP(psd_kernel, K).marginal_vector())
    assert marginals.sum() == pytest.approx(K, rel=1e-5)


def test_wallclock_kasteleyn_count(benchmark, grid):
    value = benchmark(lambda: log_count_perfect_matchings(grid))
    assert np.isfinite(value)


def test_wallclock_parallel_planar_matching(benchmark, grid):
    result = benchmark.pedantic(lambda: sample_planar_matching_parallel(grid, seed=2),
                                rounds=2, iterations=1)
    assert len(result.subset) == grid.n // 2


def test_wallclock_nonsymmetric_marginals(benchmark):
    from repro.dpp.nonsymmetric import NonsymmetricKDPP

    L = random_npsd_ensemble(40, seed=3)
    marginals = benchmark(lambda: NonsymmetricKDPP(L, 10).marginal_vector())
    assert marginals.sum() == pytest.approx(10, rel=1e-4)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_wallclock_backend_sweep(benchmark, backend_kernel, backend):
    """Per-backend wall clock of the same seeded n=200 k-DPP run."""
    result = benchmark.pedantic(
        lambda: sample_symmetric_kdpp_parallel(backend_kernel, K_BACKEND, seed=7, backend=backend),
        rounds=2, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["n"] = N_BACKEND
    benchmark.extra_info["k"] = K_BACKEND
    assert len(result.subset) == K_BACKEND


def _backend_speedup_report(backend_kernel) -> dict:
    """Time serial vs vectorized on the seeded n=200 instance.

    Returns a machine-readable report; correctness (identical seeded samples)
    stays a hard invariant, while the speed comparison is advisory so noisy
    shared CI runners don't flake the suite.
    """

    def timed(backend):
        # best-of-2 to damp scheduler noise on shared/loaded runners
        best = np.inf
        for _ in range(2):
            start = time.perf_counter()
            result = sample_symmetric_kdpp_parallel(backend_kernel, K_BACKEND, seed=7,
                                                    backend=backend)
            best = min(best, time.perf_counter() - start)
        return result, best

    # warm-up to exclude one-off import / allocation costs from the comparison
    sample_symmetric_kdpp_parallel(backend_kernel, K_BACKEND, seed=7, backend="vectorized")
    serial_result, serial_time = timed("serial")
    vectorized_result, vectorized_time = timed("vectorized")
    return {
        "bench": "backend_speedup",
        "n": N_BACKEND,
        "k": K_BACKEND,
        "serial_seconds": serial_time,
        "vectorized_seconds": vectorized_time,
        "speedup": serial_time / vectorized_time if vectorized_time > 0 else float("inf"),
        "vectorized_wins": bool(vectorized_time < serial_time),
        "samples_identical": vectorized_result.subset == serial_result.subset,
        "sample_size": len(vectorized_result.subset),
    }


def test_backend_speedup_and_equivalence(backend_kernel):
    """Seeded samples must match across backends (hard); the vectorized-beats-
    serial comparison is reported as a JSON line and a warning on regression
    rather than a hard assertion, so CI on noisy shared runners doesn't flake."""
    report = _backend_speedup_report(backend_kernel)
    print(json.dumps(report))
    assert report["samples_identical"]
    assert report["sample_size"] == K_BACKEND
    if not report["vectorized_wins"]:
        warnings.warn(
            "vectorized backend ({vectorized_seconds:.3f}s) did not beat serial "
            "({serial_seconds:.3f}s) on this run — likely runner noise; "
            "see the JSON report line".format(**report),
            RuntimeWarning,
        )


def main() -> int:
    """Script entry: print the JSON report; exit 1 on a speed regression.

    CI jobs that *do* want the speed comparison to gate can run
    ``python benchmarks/bench_wallclock.py`` and use the exit code; the
    pytest suite only warns.
    """
    from repro.workloads import random_psd_ensemble as _ensemble

    report = _backend_speedup_report(_ensemble(N_BACKEND, rank=RANK_BACKEND, seed=0))
    print(json.dumps(report))
    if not report["samples_identical"]:
        return 2
    return 0 if report["vectorized_wins"] else 1


if __name__ == "__main__":
    sys.exit(main())
