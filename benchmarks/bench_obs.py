"""Observability overhead benchmark: the instrumentation must be ~free.

:mod:`repro.obs` hooks sit on the hottest paths of the repo — every backend
round, every scheduler ticket, every cache — so the layer's contract is that
a *disabled* registry costs one boolean check per hook and an *enabled* one
stays within noise of it.  This benchmark pins that contract on the pinned
fused-drain workload (one warm session, one :class:`~repro.service.RoundScheduler`
drain of many concurrent requests — the densest hook traffic in the repo):

* **overhead gate** — min-of-``TRIALS`` drain seconds with observability
  fully enabled must be ≤ ``GATE`` (5%) over the disabled baseline, for
  *both* instrumented arms: metrics + tracing, and the full request-tracing
  path (tracing + streaming SLO quantiles + armed flight recorder — every
  request span, queue-wait child, fused-round links and P² updates).
  Passes alternate so drift hits all arms equally.
* **determinism pin** — the fused draws are identical with observability
  off, on, and with the flight recorder armed (the layer records, never
  perturbs).

One machine-readable JSON line is printed (and written to ``argv[1]`` if
given); ``argv[2]``, when given, receives the traced arm's span tree as
Chrome trace-event JSON (the artifact CI uploads)::

    PYTHONPATH=src python benchmarks/bench_obs.py [output.json] [chrome.json]
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

import repro
from repro import obs
from repro.workloads import random_psd_ensemble

from _helpers import emit_reports

N = 96
RANK = 24
K = 5
REQUESTS = 24
TRIALS = 5
GATE = 1.05


def _drain_seconds(session, seeds: List[int]) -> float:
    scheduler = repro.RoundScheduler(session)
    for seed in seeds:
        scheduler.submit(K, seed=seed)
    start = time.perf_counter()
    scheduler.drain()
    return time.perf_counter() - start


def _drain_subsets(session, seeds: List[int]) -> List[tuple]:
    scheduler = repro.RoundScheduler(session)
    for seed in seeds:
        scheduler.submit(K, seed=seed)
    return [result.subset for result in scheduler.drain()]


def _enable_tracing_arm() -> None:
    """The full request-tracing path: spans + SLO quantiles + armed flight.

    The budget is set far above any real drain so arming costs only the
    per-request comparison, never a capture copy inside the timed region.
    """
    obs.enable(trace=True, slo=True, flight_budget=3600.0)


def obs_report(n: int = N, rank: int = RANK, requests: int = REQUESTS) -> Dict[str, object]:
    """The benchmark body; returns one JSON-serializable report."""
    matrix = random_psd_ensemble(n, rank=rank, seed=7)
    seeds = list(range(1000, 1000 + requests))
    obs.reset()
    obs.disable()
    with repro.serve(matrix, registry=repro.KernelRegistry()) as session:
        session.warm()
        _drain_seconds(session, seeds)  # warm-up: JIT-ish caches, pools, BLAS

        # alternate the arms so clock drift and cache luck hit all equally
        disabled_best = float("inf")
        enabled_best = float("inf")
        tracing_best = float("inf")
        for _ in range(TRIALS):
            obs.disable()
            disabled_best = min(disabled_best, _drain_seconds(session, seeds))
            obs.enable()
            enabled_best = min(enabled_best, _drain_seconds(session, seeds))
            _enable_tracing_arm()
            tracing_best = min(tracing_best, _drain_seconds(session, seeds))

        obs.disable()
        baseline = _drain_subsets(session, seeds)
        obs.enable()
        instrumented = _drain_subsets(session, seeds)
        prometheus_lines = len(obs.render_prometheus().splitlines())
        traced_rounds = len(obs.tracer().spans())
        obs.reset()
        _enable_tracing_arm()
        traced_draws = _drain_subsets(session, seeds)
        request_spans = len(obs.tracer().request_spans())
        slo_families = sorted(obs.slo().slo_state()["request_latency"])
        trace_records = obs.tracer().records()
    obs.reset()
    obs.disable()

    return {
        "bench": "obs",
        "n": n, "rank": rank, "k": K, "requests": requests, "trials": TRIALS,
        "disabled_seconds": disabled_best,
        "enabled_seconds": enabled_best,
        "tracing_seconds": tracing_best,
        "overhead_ratio": enabled_best / disabled_best,
        "tracing_overhead_ratio": tracing_best / disabled_best,
        "gate": GATE,
        "identical_under_obs": instrumented == baseline,
        "identical_under_tracing": traced_draws == baseline,
        "prometheus_lines": prometheus_lines,
        "traced_rounds": traced_rounds,
        "request_spans": request_spans,
        "slo_families": slo_families,
        "_trace_records": trace_records,  # stripped before emit
    }


def _gates(report: Dict[str, object]) -> bool:
    return (report["identical_under_obs"]
            and report["identical_under_tracing"]
            and report["overhead_ratio"] <= report["gate"]
            and report["tracing_overhead_ratio"] <= report["gate"]
            and report["prometheus_lines"] > 0
            and report["request_spans"] > 0)


def main() -> int:
    result = obs_report()
    for _ in range(2):  # timing gates: retry pure-noise failures
        if (result["overhead_ratio"] <= GATE
                and result["tracing_overhead_ratio"] <= GATE):
            break
        result = obs_report()
    records = result.pop("_trace_records")
    if len(sys.argv) > 2:
        events = obs.dump_chrome_trace(sys.argv[2], records)
        result["chrome_trace_events"] = events
        print(f"wrote {events} Chrome trace events to {sys.argv[2]}",
              file=sys.stderr)
    emit_reports(result, sys.argv[1] if len(sys.argv) > 1 else None)
    return 0 if _gates(result) else 1


if __name__ == "__main__":
    sys.exit(main())
