"""Observability overhead benchmark: the instrumentation must be ~free.

:mod:`repro.obs` hooks sit on the hottest paths of the repo — every backend
round, every scheduler ticket, every cache — so the layer's contract is that
a *disabled* registry costs one boolean check per hook and an *enabled* one
stays within noise of it.  This benchmark pins that contract on the pinned
fused-drain workload (one warm session, one :class:`~repro.service.RoundScheduler`
drain of many concurrent requests — the densest hook traffic in the repo):

* **overhead gate** — min-of-``TRIALS`` drain seconds with observability
  fully enabled (metrics + tracing) must be ≤ ``GATE`` (5%) over the
  disabled baseline, measured with alternating passes so drift hits both
  arms equally.
* **determinism pin** — the fused draws are identical with observability
  off and on (the layer records, never perturbs).

One machine-readable JSON line is printed (and written to ``argv[1]`` if
given): ``PYTHONPATH=src python benchmarks/bench_obs.py [output.json]``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

import repro
from repro import obs
from repro.workloads import random_psd_ensemble

from _helpers import emit_reports

N = 96
RANK = 24
K = 5
REQUESTS = 24
TRIALS = 5
GATE = 1.05


def _drain_seconds(session, seeds: List[int]) -> float:
    scheduler = repro.RoundScheduler(session)
    for seed in seeds:
        scheduler.submit(K, seed=seed)
    start = time.perf_counter()
    scheduler.drain()
    return time.perf_counter() - start


def _drain_subsets(session, seeds: List[int]) -> List[tuple]:
    scheduler = repro.RoundScheduler(session)
    for seed in seeds:
        scheduler.submit(K, seed=seed)
    return [result.subset for result in scheduler.drain()]


def obs_report(n: int = N, rank: int = RANK, requests: int = REQUESTS) -> Dict[str, object]:
    """The benchmark body; returns one JSON-serializable report."""
    matrix = random_psd_ensemble(n, rank=rank, seed=7)
    seeds = list(range(1000, 1000 + requests))
    obs.reset()
    obs.disable()
    with repro.serve(matrix, registry=repro.KernelRegistry()) as session:
        session.warm()
        _drain_seconds(session, seeds)  # warm-up: JIT-ish caches, pools, BLAS

        # alternate the arms so clock drift and cache luck hit both equally
        disabled_best = float("inf")
        enabled_best = float("inf")
        for _ in range(TRIALS):
            obs.disable()
            disabled_best = min(disabled_best, _drain_seconds(session, seeds))
            obs.enable()
            enabled_best = min(enabled_best, _drain_seconds(session, seeds))

        obs.disable()
        baseline = _drain_subsets(session, seeds)
        obs.enable()
        instrumented = _drain_subsets(session, seeds)
        prometheus_lines = len(obs.render_prometheus().splitlines())
        traced_rounds = len(obs.tracer().spans())
    obs.reset()
    obs.disable()

    return {
        "bench": "obs",
        "n": n, "rank": rank, "k": K, "requests": requests, "trials": TRIALS,
        "disabled_seconds": disabled_best,
        "enabled_seconds": enabled_best,
        "overhead_ratio": enabled_best / disabled_best,
        "gate": GATE,
        "identical_under_obs": instrumented == baseline,
        "prometheus_lines": prometheus_lines,
        "traced_rounds": traced_rounds,
    }


def _gates(report: Dict[str, object]) -> bool:
    return (report["identical_under_obs"]
            and report["overhead_ratio"] <= report["gate"]
            and report["prometheus_lines"] > 0)


def main() -> int:
    result = obs_report()
    for _ in range(2):  # timing gate: retry pure-noise failures
        if result["overhead_ratio"] <= GATE:
            break
        result = obs_report()
    emit_reports(result, sys.argv[1] if len(sys.argv) > 1 else None)
    return 0 if _gates(result) else 1


if __name__ == "__main__":
    sys.exit(main())
