"""Tests for NonsymmetricDPP / NonsymmetricKDPP against brute force."""

import numpy as np
import pytest

from repro.dpp.exact import exact_dpp_distribution, exact_kdpp_distribution
from repro.dpp.nonsymmetric import NonsymmetricDPP, NonsymmetricKDPP
from repro.distributions.negative_corr import negative_correlation_violations
from repro.utils.subsets import all_subsets_of_size
from repro.workloads import random_npsd_ensemble


class TestNonsymmetricDPP:
    def test_all_principal_minors_nonnegative(self, small_npsd):
        # [Gar+19, Lemma 1]: nPSD matrices have nonnegative principal minors
        from itertools import combinations

        for size in range(7):
            for s in combinations(range(6), size):
                idx = list(s)
                minor = np.linalg.det(small_npsd[np.ix_(idx, idx)]) if idx else 1.0
                assert minor >= -1e-9

    def test_partition_function(self, small_npsd):
        dpp = NonsymmetricDPP(small_npsd)
        assert dpp.partition_function() == pytest.approx(np.linalg.det(np.eye(6) + small_npsd))

    def test_counting_matches_enumeration(self, small_npsd):
        dpp = NonsymmetricDPP(small_npsd)
        from itertools import combinations

        for T in [(), (0,), (2, 4)]:
            total = 0.0
            for size in range(7):
                for S in combinations(range(6), size):
                    if set(T).issubset(S):
                        idx = list(S)
                        total += np.linalg.det(small_npsd[np.ix_(idx, idx)]) if idx else 1.0
            assert dpp.counting(T) == pytest.approx(total, rel=1e-7)

    def test_marginal_vector_matches_exact(self, small_npsd):
        dpp = NonsymmetricDPP(small_npsd)
        exact = exact_dpp_distribution(small_npsd)
        assert np.allclose(dpp.marginal_vector(), exact.marginal_vector(), atol=1e-7)

    def test_condition_matches_exact(self, small_npsd):
        dpp = NonsymmetricDPP(small_npsd)
        mine = dpp.condition((1,)).to_explicit()
        theirs = exact_dpp_distribution(small_npsd).condition((1,))
        assert mine.total_variation(theirs) < 1e-7

    def test_cardinality_distribution(self, small_npsd):
        dpp = NonsymmetricDPP(small_npsd)
        exact = exact_dpp_distribution(small_npsd)
        sizes = np.zeros(7)
        for subset, prob in exact.items():
            sizes[len(subset)] += prob
        assert np.allclose(dpp.cardinality_distribution(), sizes, atol=1e-7)

    def test_rejects_non_npsd(self):
        with pytest.raises(ValueError):
            NonsymmetricDPP(np.diag([-2.0, 1.0]))

    def test_can_have_positive_correlations(self):
        # The paper motivates nonsymmetric DPPs by their ability to model
        # positive correlations, impossible for symmetric DPPs (Lemma 16).
        L = np.array([[0.5, 1.0], [-1.0, 0.5]])
        dpp = NonsymmetricDPP(L)
        exact = dpp.to_explicit()
        violations = negative_correlation_violations(exact, max_order=2)
        assert violations, "expected a positive correlation for this kernel"


class TestNonsymmetricKDPP:
    def test_partition_function_matches_enumeration(self, small_npsd):
        kdpp = NonsymmetricKDPP(small_npsd, 3)
        total = sum(
            np.linalg.det(small_npsd[np.ix_(s, s)]) for s in all_subsets_of_size(6, 3)
        )
        assert kdpp.partition_function() == pytest.approx(total, rel=1e-7)

    def test_counting_conditional(self, small_npsd):
        kdpp = NonsymmetricKDPP(small_npsd, 3)
        T = (0, 5)
        total = sum(
            np.linalg.det(small_npsd[np.ix_(s, s)])
            for s in all_subsets_of_size(6, 3)
            if set(T).issubset(s)
        )
        assert kdpp.counting(T) == pytest.approx(total, rel=1e-6, abs=1e-9)

    def test_marginals_match_exact(self, small_npsd):
        kdpp = NonsymmetricKDPP(small_npsd, 3)
        exact = exact_kdpp_distribution(small_npsd, 3)
        assert np.allclose(kdpp.marginal_vector(), exact.marginal_vector(), atol=1e-7)

    def test_conditional_marginals_match_exact(self, small_npsd):
        kdpp = NonsymmetricKDPP(small_npsd, 3)
        exact = exact_kdpp_distribution(small_npsd, 3)
        given = (4,)
        mine = kdpp.marginal_vector(given)
        cond = exact.condition(given)
        full = np.ones(6)
        for local, label in enumerate(cond.ground_labels):
            full[label] = cond.marginal_vector()[local]
        assert np.allclose(mine, full, atol=1e-6)

    def test_joint_marginals_batch(self, small_npsd):
        kdpp = NonsymmetricKDPP(small_npsd, 3)
        exact = exact_kdpp_distribution(small_npsd, 3)
        z = exact.counting(())
        subsets = [(0, 1), (3, 5)]
        values = kdpp.joint_marginals_batch(subsets)
        for subset, value in zip(subsets, values):
            assert value == pytest.approx(exact.counting(subset) / z, abs=1e-8)

    def test_condition_matches_exact(self, small_npsd):
        mine = NonsymmetricKDPP(small_npsd, 3).condition((0,)).to_explicit()
        theirs = exact_kdpp_distribution(small_npsd, 3).condition((0,))
        assert mine.total_variation(theirs) < 1e-7

    def test_condition_too_many_raises(self, small_npsd):
        with pytest.raises(ValueError):
            NonsymmetricKDPP(small_npsd, 2).condition((0, 1, 2))

    def test_marginals_sum_to_k(self, small_npsd):
        for k in (1, 2, 3):
            kdpp = NonsymmetricKDPP(small_npsd, k)
            assert kdpp.marginal_vector().sum() == pytest.approx(k, rel=1e-5)
