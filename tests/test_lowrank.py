"""Sublinear tier: LowRankKernel, intermediate sampling, and serving identity.

Three layers of pins:

* **exactness** — the intermediate sampler's output law is *exactly*
  ``DPP(B Bᵀ)``: total-variation distance against brute-force enumeration at
  small ``n`` stays under the sampling-noise floor (the accuracy-bench idiom
  of ``benchmarks/bench_accuracy_tv.py``), including when the candidate pool
  is deliberately undersized so the rejection/escalation path exercises;
* **serving identity** — ``repro.serve(LowRankKernel(B))`` and
  ``repro.serve_cluster(...)`` draw byte-identical fixed-seed samples across
  every execution backend, fused and unfused, warm and cold, and their cache
  artifacts are keyed on the factor-pair fingerprint;
* **validation** — malformed factors fail at construction with
  :class:`~repro.utils.validation.ValidationError`, while layout quirks
  (fortran order, non-contiguity) are canonicalized, not rejected.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.distributions.lowrank import LowRankDPP, LowRankKDPP, LowRankKernel
from repro.dpp.exact import exact_dpp_distribution, exact_kdpp_distribution
from repro.dpp.intermediate import (
    lowrank_intermediate_basis,
    sample_dpp_intermediate,
    sample_kdpp_intermediate,
)
from repro.dpp.symmetric import SymmetricDPP
from repro.service import KernelRegistry
from repro.utils.fingerprint import kernel_fingerprint
from repro.utils.validation import ValidationError, check_factor
from repro.workloads import random_low_rank_factor_ensemble, rbf_factor_ensemble

# same statistical budget as benchmarks/bench_accuracy_tv.py: with this many
# draws the expected TV of a *correct* sampler stays well under the floor
NUM_SAMPLES = 1200
NOISE_FLOOR = 0.12


def _factor(n: int, rank: int, seed: int) -> np.ndarray:
    factor, _ = random_low_rank_factor_ensemble(n, rank, seed=seed)
    return factor


def _empirical_tv(sample_fn, exact, num_samples: int, seed: int) -> float:
    """TV distance between empirical frequencies and an exact distribution."""
    rng = np.random.default_rng(seed)
    counts: dict = {}
    for _ in range(num_samples):
        subset = tuple(sorted(sample_fn(rng)))
        counts[subset] = counts.get(subset, 0) + 1
    support = set(exact.support) | set(counts)
    tv = 0.0
    for subset in support:
        p = exact.probability_vector([subset])[0] if subset in exact.support else 0.0
        tv += abs(counts.get(subset, 0) / num_samples - p)
    return 0.5 * tv


# --------------------------------------------------------------------------- #
# exactness: TV distance against brute-force enumeration
# --------------------------------------------------------------------------- #
class TestIntermediateExactness:
    def test_dpp_tv_under_noise_floor(self):
        B = _factor(9, 3, seed=7)
        exact = exact_dpp_distribution(B @ B.T)
        tv = _empirical_tv(lambda rng: sample_dpp_intermediate(B, rng),
                           exact, NUM_SAMPLES, seed=11)
        assert tv < NOISE_FLOOR

    def test_kdpp_tv_under_noise_floor(self):
        B = _factor(9, 3, seed=8)
        exact = exact_kdpp_distribution(B @ B.T, 2)
        tv = _empirical_tv(lambda rng: sample_kdpp_intermediate(B, 2, rng),
                           exact, NUM_SAMPLES, seed=12)
        assert tv < NOISE_FLOOR

    def test_escalation_path_stays_exact(self):
        # deliberately undersized candidate pool: most phase-1 draws reject,
        # the oversampling factor escalates, and the law must not budge
        B = _factor(9, 3, seed=9)
        exact = exact_dpp_distribution(B @ B.T)
        tv = _empirical_tv(
            lambda rng: sample_dpp_intermediate(B, rng, oversample=0.1, max_rounds=3),
            exact, NUM_SAMPLES, seed=13)
        assert tv < NOISE_FLOOR

    def test_projection_chain_phase2_stays_exact(self, monkeypatch):
        # force the large-pool phase 2 (Gram–Schmidt projection chain) at a
        # brute-forceable size: same law as the dense reduced sampler
        from repro.dpp import intermediate

        monkeypatch.setattr(intermediate, "_REDUCED_DENSE_MAX", 0)
        B = _factor(9, 3, seed=7)
        exact = exact_dpp_distribution(B @ B.T)
        tv = _empirical_tv(lambda rng: sample_dpp_intermediate(B, rng),
                           exact, NUM_SAMPLES, seed=15)
        assert tv < NOISE_FLOOR

    def test_rbf_factor_kdpp_tv(self):
        B, _ = rbf_factor_ensemble(8, 4, seed=21)
        exact = exact_kdpp_distribution(B @ B.T, 3)
        tv = _empirical_tv(lambda rng: sample_kdpp_intermediate(LowRankKernel(B), 3, rng),
                           exact, NUM_SAMPLES, seed=14)
        assert tv < NOISE_FLOOR


# --------------------------------------------------------------------------- #
# the low-rank counting oracle agrees with the dense one
# --------------------------------------------------------------------------- #
class TestLowRankOracle:
    def test_counting_batch_matches_dense(self):
        B = _factor(12, 4, seed=3)
        dense = SymmetricDPP(B @ B.T)
        lowrank = LowRankDPP(LowRankKernel(B))
        subsets = [(), (0,), (2, 5), (1, 4, 7), (0, 3, 6, 9)]
        np.testing.assert_allclose(lowrank.counting_batch(subsets),
                                   dense.counting_batch(subsets),
                                   rtol=1e-8, atol=1e-8)

    def test_partition_function_is_char_poly(self):
        B = _factor(10, 3, seed=4)
        expected = float(np.linalg.det(np.eye(10) + B @ B.T))
        assert LowRankDPP(LowRankKernel(B)).partition_function() == pytest.approx(expected)

    def test_kdpp_cardinality_and_marginals(self):
        B = _factor(10, 4, seed=5)
        dist = LowRankKDPP(LowRankKernel(B), 3)
        exact = exact_kdpp_distribution(B @ B.T, 3)
        marginals = dist.marginal_vector()
        expected = np.zeros(10)
        for subset in exact.support:
            p = exact.probability_vector([subset])[0]
            for i in subset:
                expected[i] += p
        np.testing.assert_allclose(marginals, expected, rtol=1e-8, atol=1e-10)

    def test_whitened_basis_spans_factor(self):
        B = _factor(20, 5, seed=6)
        eigenvalues, coords = lowrank_intermediate_basis(B)
        # marginal kernel diagonal from the whitened coordinates matches dense
        L = B @ B.T
        K = L @ np.linalg.inv(np.eye(20) + L)
        lev = np.einsum("ij,j,ij->i", coords, eigenvalues / (1.0 + eigenvalues), coords)
        np.testing.assert_allclose(lev, np.diag(K), rtol=1e-8, atol=1e-10)


# --------------------------------------------------------------------------- #
# serving identity: backends x fusion x cluster, cache keyed on the factor
# --------------------------------------------------------------------------- #
class TestServingByteIdentity:
    N, RANK, K = 48, 6, 4
    SEEDS = (0, 1, 2, 17)

    def _session(self, B, **kwargs):
        return repro.serve(LowRankKernel(B), registry=KernelRegistry(), **kwargs)

    def test_serve_matches_cold_sampler_and_backends(self):
        B = _factor(self.N, self.RANK, seed=31)
        kernel = LowRankKernel(B)
        cold_dpp = [sample_dpp_intermediate(kernel, seed) for seed in self.SEEDS]
        cold_kdpp = [sample_kdpp_intermediate(kernel, self.K, seed) for seed in self.SEEDS]
        for backend in ("serial", "vectorized", "threads", "process"):
            session = self._session(B, backend=backend)
            assert [session.sample(seed=s).subset for s in self.SEEDS] == cold_dpp
            assert [session.sample(k=self.K, seed=s).subset for s in self.SEEDS] == cold_kdpp
            session.close()

    def test_warm_and_fused_identity(self):
        B = _factor(self.N, self.RANK, seed=32)
        cold = self._session(B)
        reference = [cold.sample(k=self.K, seed=s).subset for s in self.SEEDS]
        cold.close()

        warm = self._session(B).warm()
        assert [warm.sample(k=self.K, seed=s).subset for s in self.SEEDS] == reference
        for seed in self.SEEDS:
            warm.submit(k=self.K, seed=seed, method="lowrank")
        assert [r.subset for r in warm.drain()] == reference
        warm.close()

    def test_cluster_matches_single_node(self):
        B = _factor(self.N, self.RANK, seed=33)
        single = self._session(B)
        reference = [single.sample(k=self.K, seed=s).subset for s in self.SEEDS]
        unconstrained = [single.sample(seed=s).subset for s in self.SEEDS]
        single.close()

        session = repro.serve_cluster(LowRankKernel(B), nodes=3, replication=2, warm=True)
        try:
            assert [session.sample(k=self.K, seed=s).subset for s in self.SEEDS] == reference
            assert [session.sample(seed=s).subset for s in self.SEEDS] == unconstrained
            for seed in self.SEEDS:
                session.submit(k=self.K, seed=seed, method="lowrank")
            assert [r.subset for r in session.drain()] == reference
        finally:
            session.close()

    def test_cache_keyed_on_factor_fingerprint(self):
        B = _factor(self.N, self.RANK, seed=34)
        fingerprint = kernel_fingerprint(np.ascontiguousarray(B), kind="lowrank")
        registry = KernelRegistry()
        entry = registry.register("lr", LowRankKernel(B))
        assert entry.kind == "lowrank"
        assert entry.fingerprint == fingerprint
        # a fortran-ordered duplicate re-keys to the same canonical fingerprint
        duplicate = registry.register("lr-f", np.asfortranarray(B.copy()), kind="lowrank")
        assert duplicate.fingerprint == fingerprint
        # the distribution's artifact-cache key is the same factor fingerprint
        assert LowRankDPP(LowRankKernel(B)).artifact_cache_key() == fingerprint

    def test_registry_rejects_mismatched_kind(self):
        B = _factor(12, 3, seed=35)
        with pytest.raises(ValueError):
            KernelRegistry().register("bad", LowRankKernel(B), kind="nonsymmetric")
        with pytest.raises(ValueError):
            repro.serve(LowRankKernel(B), kind="partition", registry=KernelRegistry())


# --------------------------------------------------------------------------- #
# validation: malformed factors fail fast, layout quirks canonicalize
# --------------------------------------------------------------------------- #
class TestFactorValidation:
    def test_rejects_non_2d_and_bad_shapes(self):
        with pytest.raises(ValidationError):
            check_factor(np.ones(5))
        with pytest.raises(ValidationError):
            check_factor(np.ones((3, 7)))  # k > n
        with pytest.raises(ValidationError):
            check_factor(np.ones((4, 0)))

    def test_rejects_non_finite_and_rank_deficient(self):
        bad = np.ones((6, 2))
        bad[3, 1] = np.nan
        with pytest.raises(ValidationError):
            check_factor(bad)
        degenerate = np.ones((6, 2))  # duplicate columns: BᵀB singular
        with pytest.raises(ValidationError):
            LowRankKernel(degenerate)

    def test_canonicalizes_layout(self):
        B = _factor(10, 3, seed=41)
        fortran = np.asfortranarray(B.copy())
        strided = np.repeat(B, 2, axis=0)[::2]
        for variant in (fortran, strided):
            kernel = LowRankKernel(variant)
            assert kernel.factor.flags["C_CONTIGUOUS"]
            assert kernel.fingerprint == LowRankKernel(B).fingerprint
        assert check_factor(B.astype(np.float32)).dtype == np.float64

    def test_from_dense_recovers_low_rank(self):
        B = _factor(14, 4, seed=42)
        L = B @ B.T
        kernel = LowRankKernel.from_dense(L)
        assert kernel.rank == 4
        np.testing.assert_allclose(kernel.materialize(), L, rtol=1e-8, atol=1e-8)
