"""Cluster layer: ring determinism, wire protocol, replica failover,
rebalance movement bounds, and the core contract — fixed-seed samples drawn
through ``serve_cluster`` (any N, any replication R) are byte-identical to a
single-node ``repro.serve`` session on every kernel family."""

import threading

import numpy as np
import pytest

import repro
from repro.cluster import (
    ClusterClient,
    ClusterError,
    HashRing,
    LocalCluster,
    NodeUnavailable,
    ShardNode,
    serve_cluster,
)
from repro.cluster.protocol import Connection, recv_frame, send_frame
from repro.service.registry import kernel_fingerprint
from repro.workloads import clustered_ensemble, random_npsd_ensemble, random_psd_ensemble


@pytest.fixture(scope="module")
def psd():
    return random_psd_ensemble(16, rank=8, seed=5)


@pytest.fixture(scope="module")
def npsd():
    return random_npsd_ensemble(10, symmetric_scale=1.0, skew_scale=0.6, seed=7)


@pytest.fixture(scope="module")
def partitioned():
    L, parts = clustered_ensemble([4, 4], within=0.7, across=0.05, scale=1.5, seed=9)
    return L, parts


# ---------------------------------------------------------------------- #
# hash ring
# ---------------------------------------------------------------------- #
class TestHashRing:
    KEYS = [f"key-{i:04d}" for i in range(400)]

    def test_deterministic_under_reconstruction(self):
        a = HashRing(["n0", "n1", "n2"])
        b = HashRing(["n2", "n0", "n1"])  # insertion order must not matter
        for key in self.KEYS:
            assert a.nodes_for(key, 2) == b.nodes_for(key, 2)

    def test_owners_distinct_and_primary_first(self):
        ring = HashRing(["n0", "n1", "n2", "n3"])
        for key in self.KEYS[:50]:
            owners = ring.nodes_for(key, 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners[0] == ring.node_for(key)

    def test_replication_beyond_membership_degrades_gracefully(self):
        ring = HashRing(["n0", "n1"])
        assert set(ring.nodes_for("k", 5)) == {"n0", "n1"}

    def test_join_moves_at_most_twice_the_fair_share(self):
        ring = HashRing(["n0", "n1", "n2"])
        before = ring.ownership(self.KEYS, 1)
        ring.add_node("n3")
        after = ring.ownership(self.KEYS, 1)
        moved = HashRing.moved_keys(before, after)
        assert moved, "a join must capture some keys"
        assert len(moved) <= 2 * len(self.KEYS) / 4
        # keys that moved all moved TO the new node; the rest are untouched
        assert all(after[k] == ("n3",) for k in moved)
        untouched = set(self.KEYS) - set(moved)
        assert all(after[k] == before[k] for k in untouched)

    def test_leave_only_moves_departed_keys(self):
        ring = HashRing(["n0", "n1", "n2", "n3"])
        before = ring.ownership(self.KEYS, 1)
        ring.remove_node("n3")
        after = ring.ownership(self.KEYS, 1)
        for key in self.KEYS:
            if before[key] != ("n3",):
                assert after[key] == before[key]

    def test_membership_helpers(self):
        ring = HashRing(vnodes=8)
        with pytest.raises(RuntimeError):
            ring.node_for("k")
        ring.add_node("a")
        ring.add_node("a")  # idempotent
        assert len(ring) == 1 and "a" in ring
        ring.remove_node("missing")  # no-op
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            ring.nodes_for("k", 0)


# ---------------------------------------------------------------------- #
# wire protocol + node ops
# ---------------------------------------------------------------------- #
class TestProtocolAndNode:
    def test_frame_round_trip(self):
        import socket

        a, b = socket.socketpair()
        try:
            payload = {"op": "x", "array": np.arange(6.0).reshape(2, 3)}
            send_frame(a, payload)
            got = recv_frame(b)
            np.testing.assert_array_equal(got["array"], payload["array"])
            a.close()
            with pytest.raises(NodeUnavailable):
                recv_frame(b)
        finally:
            b.close()

    def test_node_ops_over_socket(self, psd):
        with ShardNode("node-a") as node:
            conn = Connection(node.address)
            try:
                assert conn.request({"op": "ping"})["pong"]
                fingerprint = kernel_fingerprint(psd)
                info = conn.request({"op": "register", "name": "k", "matrix": psd})
                assert info["fingerprint"] == fingerprint
                assert conn.request({"op": "warm", "name": "k"})
                result = conn.request({"op": "sample", "name": "k", "k": 4, "seed": 3})
                assert len(result.subset) == 4
                stats = conn.request({"op": "stats"})
                assert stats["samples_served"] == 1
                assert stats["registry"]["registered"] == 1
                assert stats["registry"]["cache"]["entries"] == 1
                catalog = conn.request({"op": "catalog"})
                assert catalog["k"]["fingerprint"] == fingerprint
                export = conn.request({"op": "export", "name": "k"})
                np.testing.assert_array_equal(export["matrix"], psd)
                assert conn.request({"op": "unregister", "name": "k"})
            finally:
                conn.close()

    def test_remote_exceptions_re_raise_locally(self, psd):
        with ShardNode("node-b") as node:
            conn = Connection(node.address)
            try:
                with pytest.raises(KeyError):
                    conn.request({"op": "sample", "name": "ghost", "k": 2, "seed": 0})
                with pytest.raises(ClusterError):
                    conn.request({"op": "no-such-op"})
            finally:
                conn.close()

    def test_handle_is_usable_in_process(self, psd):
        node = ShardNode("node-c")  # never started: no sockets involved
        node.handle({"op": "register", "name": "k", "matrix": psd})
        want = repro.serve(psd, name="ref", registry=repro.KernelRegistry()).sample(
            k=3, seed=11).subset
        assert node.handle({"op": "sample", "name": "k", "k": 3, "seed": 11}).subset == want

    def test_flush_drops_warm_state_but_keeps_registrations(self, psd):
        node = ShardNode("node-d")
        node.handle({"op": "register", "name": "k", "matrix": psd, "warm": True})
        assert node.registry.cache.cache_info()["entries"] == 1
        assert node.handle({"op": "flush"})
        assert node.registry.cache.cache_info()["entries"] == 0
        assert "k" in node.registry


# ---------------------------------------------------------------------- #
# the core contract: cluster == single node, bytes for bytes
# ---------------------------------------------------------------------- #
SEEDS = (0, 17, 123)


def _single_node_session(matrix, **kwargs):
    return repro.serve(matrix, registry=repro.KernelRegistry(), **kwargs)


class TestClusterByteIdentity:
    @pytest.fixture(scope="class")
    def cluster(self):
        with LocalCluster(nodes=3, replication=2) as cluster:
            yield cluster

    @pytest.mark.parametrize("shape", [(1, 1), (2, 1), (3, 2), (3, 3)])
    def test_symmetric_spectral_any_n_any_r(self, psd, shape):
        nodes, replication = shape
        reference = _single_node_session(psd)
        with serve_cluster(psd, nodes=nodes, replication=replication) as session:
            for seed in SEEDS:
                assert session.sample(k=5, seed=seed).subset == \
                    reference.sample(k=5, seed=seed).subset

    def test_symmetric_parallel(self, cluster, psd):
        reference = _single_node_session(psd)
        session = serve_cluster(psd, cluster=cluster)
        for seed in SEEDS:
            assert session.sample(k=5, seed=seed, method="parallel").subset == \
                reference.sample(k=5, seed=seed, method="parallel").subset

    def test_symmetric_unconstrained(self, cluster, psd):
        reference = _single_node_session(psd)
        session = serve_cluster(psd, cluster=cluster)
        for seed in SEEDS:
            assert session.sample(seed=seed).subset == reference.sample(seed=seed).subset
            assert session.sample(seed=seed, method="parallel").subset == \
                reference.sample(seed=seed, method="parallel").subset

    def test_nonsymmetric(self, cluster, npsd):
        reference = _single_node_session(npsd, kind="nonsymmetric")
        session = serve_cluster(npsd, cluster=cluster, kind="nonsymmetric")
        for seed in SEEDS:
            assert session.sample(k=3, seed=seed).subset == \
                reference.sample(k=3, seed=seed).subset
            assert session.sample(seed=seed).subset == reference.sample(seed=seed).subset

    def test_partition(self, cluster, partitioned):
        L, parts = partitioned
        counts = [2, 1]
        reference = _single_node_session(L, kind="partition", parts=parts, counts=counts)
        session = serve_cluster(L, cluster=cluster, kind="partition",
                                parts=parts, counts=counts)
        for seed in SEEDS:
            assert session.sample(seed=seed).subset == reference.sample(seed=seed).subset

    def test_warm_never_changes_samples(self, cluster, psd):
        session = serve_cluster(psd, cluster=cluster).warm()
        reference = _single_node_session(psd).warm()
        assert session.sample(k=4, seed=9).subset == reference.sample(k=4, seed=9).subset

    def test_fused_drain_matches_single_node_scheduler(self, cluster, psd):
        reference = _single_node_session(psd)
        scheduler = repro.RoundScheduler(reference, seed=0)
        for _ in range(4):
            scheduler.submit(4)
        want = [result.subset for result in scheduler.drain()]
        session = serve_cluster(psd, cluster=cluster, scheduler_seed=0)
        for _ in range(4):
            session.submit(4)
        assert [result.subset for result in session.drain()] == want
        # explicit seeds also agree request for request
        for seed in SEEDS:
            session.submit(4, seed=seed)
        got = [result.subset for result in session.drain()]
        assert got == [reference.sample(k=4, seed=seed, method="parallel").subset
                       for seed in SEEDS]


# ---------------------------------------------------------------------- #
# failure modes
# ---------------------------------------------------------------------- #
class TestFailureModes:
    def test_node_death_fails_over_with_identical_sample(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            session = serve_cluster(psd, cluster=cluster, warm=True)
            want = session.sample(k=4, seed=21).subset
            primary = session.owners[0]
            cluster.kill_node(primary)  # the open connection dies mid-stream
            assert session.sample(k=4, seed=21).subset == want
            assert cluster.client().failovers >= 1

    def test_all_owners_down_raises_cluster_error(self, psd):
        with LocalCluster(nodes=2, replication=1) as cluster:
            session = serve_cluster(psd, cluster=cluster)
            cluster.kill_node(session.owners[0])
            with pytest.raises(ClusterError):
                session.sample(k=3, seed=1)

    def test_forget_dead_node_rehomes_from_replica(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            session = serve_cluster(psd, cluster=cluster)
            want = session.sample(k=4, seed=5).subset
            dead = session.owners[0]
            cluster.kill_node(dead)
            report = cluster.client().forget_node(dead)
            assert report.lost == ()
            assert dead not in session.owners
            assert session.sample(k=4, seed=5).subset == want

    def test_drain_failover_preserves_queue_and_results(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            reference = _single_node_session(psd)
            session = serve_cluster(psd, cluster=cluster)
            for seed in SEEDS:
                session.submit(4, seed=seed)
            cluster.kill_node(session.owners[0])
            got = [result.subset for result in session.drain()]
            assert got == [reference.sample(k=4, seed=seed, method="parallel").subset
                           for seed in SEEDS]

    def test_replica_registration_survives_one_down_owner(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            client = cluster.client()
            # kill a node BEFORE registering: registration must still succeed
            # on the surviving owner(s) of whatever lands there
            cluster.kill_node("shard-1")
            entry = client.register(psd)
            reference = _single_node_session(psd)
            assert client.sample(entry.name, k=3, seed=2).subset == \
                reference.sample(k=3, seed=2).subset


# ---------------------------------------------------------------------- #
# rebalance
# ---------------------------------------------------------------------- #
class TestRebalance:
    def test_join_moves_bounded_fraction_and_preserves_samples(self):
        kernels = [random_psd_ensemble(10, rank=5, seed=100 + i) for i in range(20)]
        with LocalCluster(nodes=3, replication=1) as cluster:
            client = cluster.client()
            entries = [client.register(L) for L in kernels]
            want = [client.sample(e.name, k=3, seed=33).subset for e in entries]
            report = cluster.add_node()
            assert report.total == len(kernels)
            assert report.lost == ()
            assert report.moved <= 2 * len(kernels) / len(cluster)
            assert [client.sample(e.name, k=3, seed=33).subset
                    for e in entries] == want

    def test_rebalance_moves_every_alias_of_shared_content(self, psd):
        # two names over one matrix share a fingerprint (and ring owners);
        # a move must re-register BOTH names on the new owner, not just one
        with LocalCluster(nodes=2, replication=1) as cluster:
            client = cluster.client()
            first = client.register(psd, name="alias-a")
            second = client.register(psd, name="alias-b")
            assert first.fingerprint == second.fingerprint
            want = client.sample("alias-a", k=3, seed=12).subset
            for _ in range(4):  # joins until the shared fingerprint moves
                owners_before = client.owners(first.fingerprint)
                cluster.add_node()
                if client.owners(first.fingerprint) != owners_before:
                    break
            assert client.sample("alias-a", k=3, seed=12).subset == want
            assert client.sample("alias-b", k=3, seed=12).subset == want

    def test_forget_node_never_contacts_the_dead_node(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            client = cluster.client()
            client.register(psd)
            dead = client.owners(client.register(psd).fingerprint)[0]
            cluster.kill_node(dead)
            contacted = []
            original = client.call_node

            def spy(node_id, request):
                contacted.append(node_id)
                return original(node_id, request)

            client.call_node = spy
            report = cluster.forget_node(dead)
            assert dead not in contacted
            assert report.lost == ()  # the replica held a copy

    def test_removing_the_last_node_is_rejected_cleanly(self, psd):
        with LocalCluster(nodes=1) as cluster:
            client = cluster.client()
            entry = client.register(psd)
            with pytest.raises(ClusterError, match="last ring node"):
                client.remove_node("shard-0")
            assert client.ring.nodes == ("shard-0",)  # ring untouched
            assert client.sample(entry.name, k=3, seed=1).subset  # still serving

    def test_planned_drain_rehomes_everything(self):
        kernels = [random_psd_ensemble(8, rank=4, seed=200 + i) for i in range(8)]
        with LocalCluster(nodes=3, replication=1) as cluster:
            client = cluster.client()
            entries = [client.register(L) for L in kernels]
            want = [client.sample(e.name, k=2, seed=4).subset for e in entries]
            report = cluster.remove_node("shard-0")
            assert report.lost == ()
            assert "shard-0" not in client.ring.nodes
            assert [client.sample(e.name, k=2, seed=4).subset
                    for e in entries] == want


# ---------------------------------------------------------------------- #
# stats rollup + facade surface
# ---------------------------------------------------------------------- #
class TestClusterInfoAndFacade:
    def test_cluster_info_rolls_up_node_caches(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            session = serve_cluster(psd, cluster=cluster, warm=True)
            for seed in SEEDS:
                session.sample(k=4, seed=seed)
            info = cluster.cluster_info()
            assert info["alive"] == 3
            assert info["registered"] == 1
            assert info["samples_served"] == len(SEEDS)
            assert info["cache"]["entries"] == 2  # primary + one replica
            assert info["cache"]["misses"] >= 2
            assert set(info["nodes"]) == set(info["ring"]["nodes"])
            per_node_entries = sum(
                stats["registry"]["cache"]["entries"] for stats in info["nodes"].values())
            assert per_node_entries == info["cache"]["entries"]

    def test_unreachable_nodes_are_reported_not_fatal(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            serve_cluster(psd, cluster=cluster)
            cluster.kill_node("shard-2")
            info = cluster.cluster_info()
            assert info["alive"] == 2
            assert "unreachable" in info["nodes"]["shard-2"]

    def test_session_surface_is_sampler_session_shaped(self, psd):
        with serve_cluster(psd, nodes=2) as session:
            assert session.kind == "symmetric" and session.n == psd.shape[0]
            assert not session.closed
            with pytest.raises(TypeError):
                session.sample(k=3, seed=np.random.default_rng(0))
            with pytest.raises(ValueError):
                session.sample(k=3, seed=0, config=object())
            with pytest.raises(ValueError):
                session.sample(k=3, seed=0, backend="serial")
            # unshippable arguments are rejected at submit(), not at drain()
            # — a poison entry would otherwise wedge the re-queue-on-error
            # drain loop forever
            with pytest.raises(ValueError):
                session.submit(3, config=object())
            with pytest.raises(ValueError):
                session.submit(3, backend="serial")
            with pytest.raises(TypeError):
                session.submit(3, seed=np.random.default_rng(0))
            session.submit(3, seed=4)
            assert session.pending == 1
            assert len(session.drain()) == 1  # the queue stayed healthy
        assert session.closed
        with pytest.raises(RuntimeError):
            session.sample(k=3, seed=0)
        session.close()  # idempotent

    def test_serve_cluster_by_name_shares_registrations(self, psd):
        with LocalCluster(nodes=2) as cluster:
            first = serve_cluster(psd, cluster=cluster, name="shared")
            second = serve_cluster("shared", cluster=cluster)
            assert second.fingerprint == first.fingerprint
            assert second.sample(k=3, seed=8).subset == first.sample(k=3, seed=8).subset
            with pytest.raises(ValueError):
                serve_cluster("shared", cluster=cluster, kind="nonsymmetric")
            with pytest.raises(ValueError):
                serve_cluster("shared", cluster=cluster, name="other")
            with pytest.raises(KeyError):
                serve_cluster("ghost", cluster=cluster)

    def test_owned_cluster_shuts_down_on_close(self, psd):
        session = serve_cluster(psd, nodes=2)
        owned = session._owned_cluster
        assert len(owned) == 2
        session.close()
        assert len(owned) == 0
        assert all(not node.running for node in owned.nodes.values())

    def test_concurrent_sessions_share_the_ring(self, psd):
        with LocalCluster(nodes=3, replication=2) as cluster:
            matrices = [random_psd_ensemble(10, rank=5, seed=300 + i) for i in range(4)]
            sessions = [serve_cluster(m, cluster=cluster) for m in matrices]
            references = [_single_node_session(m) for m in matrices]
            results = [None] * len(sessions)

            def run(i):
                results[i] = sessions[i].sample(k=3, seed=55).subset

            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(len(sessions))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert results == [ref.sample(k=3, seed=55).subset for ref in references]
