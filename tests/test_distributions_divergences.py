"""Tests for divergences (Section 3.1) and the Lemma 12 comparison inequality."""

import numpy as np
import pytest

from repro.distributions.divergences import (
    kl_divergence,
    lemma12_bound,
    lemma12_lhs,
    renyi_divergence_exp,
    total_variation,
)


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        q = np.array([0.5, 0.5])
        p = np.array([0.25, 0.75])
        expected = 0.5 * np.log(2.0) + 0.5 * np.log(0.5 / 0.75)
        assert kl_divergence(q, p) == pytest.approx(expected)

    def test_infinite_when_support_mismatch(self):
        assert kl_divergence([1.0, 0.0], [0.0, 1.0]) == np.inf

    def test_nonnegative(self, rng):
        for _ in range(20):
            q = rng.random(6) + 1e-3
            p = rng.random(6) + 1e-3
            assert kl_divergence(q, p) >= -1e-12

    def test_normalizes_inputs(self):
        assert kl_divergence([2.0, 2.0], [1.0, 1.0]) == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence([1.0], [0.5, 0.5])

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence([-0.1, 1.1], [0.5, 0.5])


class TestRenyi:
    def test_order_one_is_unity(self):
        assert renyi_divergence_exp([0.3, 0.7], [0.5, 0.5], 1.0) == pytest.approx(1.0)

    def test_order_two_known_value(self):
        q = np.array([0.5, 0.5])
        p = np.array([0.25, 0.75])
        expected = 0.25 / 0.25 + 0.25 / 0.75
        assert renyi_divergence_exp(q, p, 2.0) == pytest.approx(expected)

    def test_equals_one_for_identical(self):
        p = np.array([0.1, 0.4, 0.5])
        assert renyi_divergence_exp(p, p, 3.0) == pytest.approx(1.0)

    def test_at_least_one(self, rng):
        # D_a(q||p) >= 1 by Jensen for a >= 1
        for _ in range(20):
            q = rng.random(5) + 1e-3
            p = rng.random(5) + 1e-3
            assert renyi_divergence_exp(q, p, 2.0) >= 1.0 - 1e-12

    def test_order_below_one_rejected(self):
        with pytest.raises(ValueError):
            renyi_divergence_exp([0.5, 0.5], [0.5, 0.5], 0.5)

    def test_infinite_on_support_mismatch(self):
        assert renyi_divergence_exp([1.0, 0.0], [0.0, 1.0], 2.0) == np.inf


class TestTotalVariation:
    def test_zero_for_identical(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)

    def test_one_for_disjoint(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_symmetry(self, rng):
        q = rng.random(4) + 1e-3
        p = rng.random(4) + 1e-3
        assert total_variation(q, p) == pytest.approx(total_variation(p, q))

    def test_pinsker_inequality(self, rng):
        # TV <= sqrt(KL / 2)
        for _ in range(20):
            q = rng.random(5) + 1e-2
            p = rng.random(5) + 1e-2
            tv = total_variation(q, p)
            kl = kl_divergence(q, p)
            assert tv <= np.sqrt(kl / 2.0) + 1e-9


class TestLemma12:
    def _near_uniform(self, rng, n, C):
        # p_i in [1/(Cn), C/n]
        lo, hi = 1.0 / (C * n), C / n
        p = rng.uniform(lo, hi, size=n)
        return p / p.sum()

    def test_inequality_holds_uniform_reference(self, rng):
        n = 8
        for _ in range(30):
            q = rng.random(n) + 1e-3
            q = q / q.sum()
            p = np.full(n, 1.0 / n)
            for order in (1.5, 2.0, 3.0):
                lhs = lemma12_lhs(q, p, order)
                rhs = lemma12_bound(q, p, order, C=1.0)
                assert lhs <= rhs + 1e-9

    def test_inequality_holds_near_uniform_reference(self, rng):
        n = 10
        C = 1.5
        for _ in range(30):
            q = rng.random(n) + 1e-3
            q = q / q.sum()
            p = self._near_uniform(rng, n, C)
            for order in (2.0, 2.5):
                lhs = lemma12_lhs(q, p, order)
                rhs = lemma12_bound(q, p, order, C=C)
                assert lhs <= rhs + 1e-9

    def test_restricted_sum_smaller(self, rng):
        n = 6
        q = rng.random(n) + 1e-3
        p = np.full(n, 1.0 / n)
        full = lemma12_lhs(q, p, 2.0)
        restricted = lemma12_lhs(q, p, 2.0, restrict_to=[0, 1, 2])
        assert restricted <= full + 1e-12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            lemma12_bound([0.5, 0.5], [0.5, 0.5], 0.5, C=1.0)
        with pytest.raises(ValueError):
            lemma12_bound([0.5, 0.5], [0.5, 0.5], 2.0, C=0.5)
