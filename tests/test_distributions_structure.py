"""Tests for the down operator, entropic independence, negative correlation,
isotropic transformation, and the Section 7 hard instance."""

import math

import numpy as np
import pytest

from repro.distributions.down_operator import down_operator_matrix, down_project
from repro.distributions.entropic import (
    entropic_independence_constant,
    is_entropically_independent,
    is_fractionally_log_concave,
)
from repro.distributions.generic import ExplicitDistribution, uniform_distribution_on_size_k
from repro.distributions.hard_instance import PairedHardInstance, duplicate_count
from repro.distributions.isotropic import IsotropicTransform
from repro.distributions.negative_corr import (
    is_negatively_correlated,
    negative_correlation_violations,
)
from repro.dpp.exact import exact_kdpp_distribution
from repro.utils.subsets import binomial
from repro.workloads import random_psd_ensemble


class TestDownOperator:
    def test_row_stochastic(self):
        matrix, rows, cols = down_operator_matrix(5, 3, 2)
        assert np.allclose(matrix.sum(axis=1), np.ones(len(rows)))

    def test_entries(self):
        matrix, rows, cols = down_operator_matrix(4, 2, 1)
        col_index = {c: j for j, c in enumerate(cols)}
        for i, row in enumerate(rows):
            for element in row:
                assert matrix[i, col_index[(element,)]] == pytest.approx(0.5)

    def test_composition(self):
        # D_{k->l} D_{l->m} == D_{k->m}
        d32, _, _ = down_operator_matrix(5, 3, 2)
        d21, _, _ = down_operator_matrix(5, 2, 1)
        d31, _, _ = down_operator_matrix(5, 3, 1)
        assert np.allclose(d32 @ d21, d31)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            down_operator_matrix(3, 4, 1)

    def test_down_project_matches_matrix(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        projected = down_project(exact, 2)
        matrix, rows, cols = down_operator_matrix(6, 3, 2)
        mu = np.array([exact.probability(r) for r in rows])
        mu2 = mu @ matrix
        for col, value in zip(cols, mu2):
            assert projected.unnormalized(col) == pytest.approx(value, abs=1e-10)

    def test_down_project_marginals(self):
        dist = uniform_distribution_on_size_k(5, 3)
        down1 = down_project(dist, 1)
        # mu_1({i}) = p_i / k
        for i in range(5):
            assert down1.unnormalized((i,)) == pytest.approx(3.0 / 5.0 / 3.0)


class TestEntropicIndependence:
    def test_symmetric_kdpp_is_one_entropically_independent(self, small_psd):
        # Lemmas 23/24: symmetric DPPs are 1-FLC hence 1-entropically independent.
        exact = exact_kdpp_distribution(small_psd, 3)
        constant = entropic_independence_constant(exact, trials=15, seed=0)
        assert constant <= 1.0 + 1e-6

    def test_is_entropically_independent_flag(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 2)
        assert is_entropically_independent(exact, alpha=1.0, trials=10, seed=1)

    def test_hard_instance_is_half_entropically_independent(self):
        # The paired hard instance is 1/2-FLC, hence 2-entropically independent
        # but NOT 1-entropically independent.
        mu = PairedHardInstance(8, 4).to_explicit()
        constant = entropic_independence_constant(mu, trials=20, seed=2)
        assert constant > 1.0 + 1e-3  # violates 1-EI
        assert constant <= 2.0 + 1e-6  # consistent with 2-EI

    def test_flc_symmetric_dpp(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 2)
        assert is_fractionally_log_concave(exact, alpha=1.0, trials=60, seed=3)

    def test_flc_hard_instance_at_half(self):
        mu = PairedHardInstance(8, 4).to_explicit()
        assert is_fractionally_log_concave(mu, alpha=0.5, trials=60, seed=4)

    def test_flc_rejects_invalid_alpha(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 2)
        with pytest.raises(ValueError):
            is_fractionally_log_concave(exact, alpha=0.0)
        with pytest.raises(ValueError):
            is_entropically_independent(exact, alpha=2.0)

    def test_requires_fixed_cardinality(self):
        dist = ExplicitDistribution(3, {(0,): 1.0, (0, 1): 1.0})
        with pytest.raises(ValueError):
            entropic_independence_constant(dist)


class TestNegativeCorrelation:
    def test_symmetric_kdpp_negatively_correlated(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        assert is_negatively_correlated(exact)

    def test_hard_instance_not_negatively_correlated(self):
        # Pairs are perfectly positively correlated.
        mu = PairedHardInstance(8, 4).to_explicit()
        violations = negative_correlation_violations(mu, max_order=2)
        assert violations
        # the violating pairs are exactly the paired elements (2i, 2i+1)
        assert any(set(v[0]) == {0, 1} for v in violations)

    def test_uniform_distribution_negatively_correlated(self):
        dist = uniform_distribution_on_size_k(5, 2)
        assert is_negatively_correlated(dist)


class TestIsotropicTransform:
    def test_copy_counts_formula(self):
        marginals = np.array([0.5, 0.25, 0.25])
        transform = IsotropicTransform(marginals, k=1, beta=0.5)
        expected = np.ceil(3 * marginals / (0.5 * 1)).astype(int)
        assert np.array_equal(transform.copy_counts, expected)

    def test_ground_set_size_bounds(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        marginals = exact.marginal_vector()
        beta = 0.4
        transform = IsotropicTransform(marginals, k=3, beta=beta)
        low, high = transform.ground_set_bounds()
        assert low - 1e-9 <= transform.size <= high + len(marginals)

    def test_marginal_upper_bound(self, small_psd):
        # Proposition 32.1: lifted marginals <= C k / |U|
        exact = exact_kdpp_distribution(small_psd, 3)
        marginals = exact.marginal_vector()
        transform = IsotropicTransform(marginals, k=3, beta=0.3)
        C, lower, upper = transform.marginal_bounds()
        lifted = transform.lifted_marginals()
        assert np.all(lifted <= upper + 1e-9)

    def test_marginal_lower_bound_on_well_represented(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        marginals = exact.marginal_vector()
        transform = IsotropicTransform(marginals, k=3, beta=0.3)
        C, lower, upper = transform.marginal_bounds()
        lifted = transform.lifted_marginals()
        mask = transform.well_represented()
        assert np.all(lifted[mask] >= lower - 1e-9)

    def test_lift_explicit_preserves_entropic_profile(self, small_psd):
        # the lifted distribution's projection back equals the original
        exact = exact_kdpp_distribution(small_psd, 2)
        transform = IsotropicTransform(exact.marginal_vector(), k=2, beta=0.5)
        lifted = transform.lift_explicit(exact)
        # project every lifted atom back and re-aggregate
        table = {}
        for subset, weight in lifted.items():
            key = transform.project_sample(subset)
            table[key] = table.get(key, 0.0) + weight
        reconstructed = ExplicitDistribution(exact.n, table, cardinality=2)
        assert reconstructed.total_variation(exact) < 1e-9

    def test_lifted_marginals_match_explicit(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 2)
        transform = IsotropicTransform(exact.marginal_vector(), k=2, beta=0.5)
        lifted = transform.lift_explicit(exact)
        assert np.allclose(lifted.marginal_vector(), transform.lifted_marginals(), atol=1e-9)

    def test_copies_and_owner_roundtrip(self):
        transform = IsotropicTransform(np.array([0.9, 0.1]), k=1, beta=0.5)
        for element in range(2):
            for copy in transform.copies_of(element):
                assert transform.original_of(copy) == element

    def test_project_sample_rejects_duplicates(self):
        transform = IsotropicTransform(np.array([0.9, 0.1]), k=1, beta=0.2)
        copies = transform.copies_of(0)[:2]
        with pytest.raises(ValueError):
            transform.project_sample(copies)

    def test_lift_sample(self):
        transform = IsotropicTransform(np.array([0.5, 0.5]), k=1, beta=0.5)
        lifted = transform.lift_sample((1,), seed=0)
        assert transform.project_sample(lifted) == (1,)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            IsotropicTransform(np.array([0.5]), k=1, beta=1.5)


class TestHardInstance:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            PairedHardInstance(7, 4)
        with pytest.raises(ValueError):
            PairedHardInstance(8, 3)
        with pytest.raises(ValueError):
            PairedHardInstance(4, 6)

    def test_support_is_unions_of_pairs(self):
        mu = PairedHardInstance(8, 4)
        assert mu.unnormalized((0, 1, 4, 5)) == 1.0
        assert mu.unnormalized((0, 1, 2, 4)) == 0.0

    def test_counting(self):
        mu = PairedHardInstance(8, 4)
        # total: C(4, 2) supports
        assert mu.counting(()) == pytest.approx(binomial(4, 2))
        # containing element 0: pair 0 must be chosen -> C(3, 1)
        assert mu.counting((0,)) == pytest.approx(binomial(3, 1))
        # containing elements of 3 distinct pairs with k/2=2 pairs: impossible
        assert mu.counting((0, 2, 4)) == 0.0

    def test_uniform_marginals(self):
        mu = PairedHardInstance(10, 4)
        assert np.allclose(mu.marginal_vector(), np.full(10, 0.4))

    def test_exact_sampler_cardinality(self):
        mu = PairedHardInstance(12, 6)
        rng = np.random.default_rng(0)
        for _ in range(20):
            s = mu.sample(rng)
            assert len(s) == 6
            assert mu.unnormalized(s) == 1.0

    def test_duplicate_count(self):
        assert duplicate_count((0, 1, 2, 4)) == 1
        assert duplicate_count((0, 2, 4)) == 0
        assert duplicate_count((0, 1, 2, 3)) == 2

    def test_duplicate_probability_exact_sums_to_one(self):
        mu = PairedHardInstance(16, 8)
        ell = 4
        total = sum(mu.duplicate_probability_exact(ell, t) for t in range(0, ell // 2 + 1))
        assert total == pytest.approx(1.0)

    def test_duplicate_probability_exact_matches_monte_carlo(self):
        mu = PairedHardInstance(16, 8)
        ell = 4
        exact_p = sum(mu.duplicate_probability_exact(ell, t) for t in range(1, ell // 2 + 1))
        mc = mu.duplicate_probability(ell, 1, samples=4000, seed=1)
        assert abs(mc - exact_p) < 0.05

    def test_duplicate_probability_scales_like_ell_squared_over_k(self):
        # Section 7: P[>= 1 duplicate] = Theta(ell^2 / k)
        mu = PairedHardInstance(400, 200)
        small = sum(mu.duplicate_probability_exact(5, t) for t in range(1, 3))
        large = sum(mu.duplicate_probability_exact(20, t) for t in range(1, 11))
        assert large > small * 8  # (20/5)^2 = 16 in theory; allow slack

    def test_density_ratio_bound(self):
        mu = PairedHardInstance(100, 10)
        assert mu.density_ratio_bound(4, 0) == pytest.approx(1.0)
        assert mu.density_ratio_bound(4, 2) == pytest.approx((100 / 10) ** 2)
        with pytest.raises(ValueError):
            mu.density_ratio_bound(4, 3)

    def test_condition_on_one_element_forces_pair(self):
        mu = PairedHardInstance(8, 4)
        conditioned = mu.condition((0,))
        # element 1 (the partner) must appear with probability 1
        labels = conditioned.ground_labels
        marginals = conditioned.marginal_vector()
        partner_local = labels.index(1)
        assert marginals[partner_local] == pytest.approx(1.0)

    def test_sample_down_size(self):
        mu = PairedHardInstance(12, 6)
        s = mu.sample_down(3, seed=0)
        assert len(s) == 3
