"""Tests for the planar graph wrapper and separators."""

import numpy as np
import pytest

from repro.planar.graphs import PlanarGraph, cycle_graph, delaunay_graph, grid_graph, ladder_graph
from repro.planar.separator import bfs_level_separator, separator_quality

import networkx as nx


class TestPlanarGraph:
    def test_grid_counts(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical edges

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)

    def test_nonplanar_rejected(self):
        with pytest.raises(ValueError):
            PlanarGraph(nx.complete_graph(5))

    def test_planar_accepted(self):
        PlanarGraph(nx.complete_graph(4))

    def test_remove_vertices(self):
        g = grid_graph(3, 3)
        reduced = g.remove_vertices([(0, 0), (2, 2)])
        assert reduced.n == 7
        assert not reduced.has_vertex((0, 0))

    def test_connected_components(self):
        g = grid_graph(1, 5)  # path
        pieces = g.remove_vertices([(0, 2)]).connected_components()
        assert sorted(p.n for p in pieces) == [2, 2]

    def test_subgraph(self):
        g = grid_graph(2, 2)
        sub = g.subgraph([(0, 0), (0, 1)])
        assert sub.n == 2 and sub.m == 1

    def test_degree_and_neighbors(self):
        g = grid_graph(3, 3)
        assert g.degree((1, 1)) == 4
        assert set(g.neighbors((0, 0))) == {(0, 1), (1, 0)}

    def test_ladder_and_cycle(self):
        assert ladder_graph(5).n == 10
        assert cycle_graph(6).m == 6
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_delaunay_is_planar(self):
        g = delaunay_graph(30, seed=0)
        assert g.n == 30
        assert nx.check_planarity(g.graph)[0]

    def test_self_loops_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        with pytest.raises(ValueError):
            PlanarGraph(graph)

    def test_adjacency_index_is_stable(self):
        g = grid_graph(2, 3)
        idx = g.adjacency_index()
        assert sorted(idx.values()) == list(range(6))


class TestSeparator:
    def test_separator_disconnects(self):
        g = grid_graph(6, 6)
        separator, components = bfs_level_separator(g)
        removed = g.remove_vertices(separator)
        assert len(list(nx.connected_components(removed.graph))) == len(components)
        assert sum(len(c) for c in components) + len(separator) == g.n

    def test_separator_balance_on_grids(self):
        for side in (4, 6, 8, 10):
            g = grid_graph(side, side)
            separator, components = bfs_level_separator(g)
            quality = separator_quality(g, separator, components)
            assert quality["balance"] <= 0.75

    def test_separator_size_scales_like_sqrt_n(self):
        sizes = []
        for side in (4, 8, 12):
            g = grid_graph(side, side)
            separator, _ = bfs_level_separator(g)
            sizes.append(len(separator) / np.sqrt(g.n))
        # normalized sizes stay bounded (O(sqrt n) scaling)
        assert max(sizes) <= 3.0

    def test_small_graphs(self):
        g = grid_graph(1, 2)
        separator, components = bfs_level_separator(g)
        assert set(separator) == {(0, 0), (0, 1)}
        assert components == []

    def test_empty_graph(self):
        g = PlanarGraph(nx.Graph())
        assert bfs_level_separator(g) == ([], [])

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            bfs_level_separator(PlanarGraph(graph))

    def test_quality_keys(self):
        g = grid_graph(4, 4)
        separator, components = bfs_level_separator(g)
        quality = separator_quality(g, separator, components)
        assert {"n", "separator_size", "separator_over_sqrt_n", "largest_component", "balance"} <= set(quality)

    def test_separator_on_delaunay(self):
        g = delaunay_graph(60, seed=1)
        separator, components = bfs_level_separator(g)
        quality = separator_quality(g, separator, components)
        assert quality["balance"] <= 0.9
        assert quality["separator_size"] < g.n
