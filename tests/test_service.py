"""Serving layer: registry, factorization cache, sessions, round fusion.

The core contract under test: the cache and the scheduler change wall-clock
only — fixed-seed samples are identical with and without cached
factorizations, and fused or unfused, on every execution backend.
"""

import threading

import numpy as np
import pytest

import repro
from repro.core.entropic import EntropicSamplerConfig
from repro.dpp.spectral import sample_dpp_spectral, sample_kdpp_spectral, symmetrized_eigh
from repro.service import (
    FactorizationCache,
    KernelRegistry,
    RoundScheduler,
    SamplerSession,
    serve,
)
from repro.utils.fingerprint import array_fingerprint
from repro.utils.rng import substream
from repro.workloads import random_npsd_ensemble, random_psd_ensemble

BACKENDS = ("serial", "vectorized", "threads")


@pytest.fixture(scope="module")
def psd():
    return random_psd_ensemble(24, rank=12, seed=0)


@pytest.fixture()
def registry():
    return KernelRegistry()


# ---------------------------------------------------------------------- #
# fingerprints
# ---------------------------------------------------------------------- #
class TestFingerprint:
    def test_content_addressed(self, psd):
        assert array_fingerprint(psd) == array_fingerprint(psd.copy())
        assert array_fingerprint(psd) != array_fingerprint(psd + 1e-12)

    def test_layout_independent(self, psd):
        assert array_fingerprint(psd) == array_fingerprint(np.asfortranarray(psd))

    def test_extra_parameters_change_key(self, psd):
        assert array_fingerprint(psd, extra=("symmetric",)) != array_fingerprint(
            psd, extra=("nonsymmetric",))


# ---------------------------------------------------------------------- #
# factorization cache
# ---------------------------------------------------------------------- #
class TestFactorizationCache:
    def test_artifacts_match_sampler_numerics(self, psd):
        fact = FactorizationCache().factorization(psd)
        dist = repro.dpp.SymmetricKDPP(psd, 5)
        np.testing.assert_array_equal(fact.eigenvalues, dist.eigenvalues)
        np.testing.assert_array_equal(fact.factor, dist.factor)
        np.testing.assert_array_equal(fact.factor_gram, dist.factor_gram)
        w, v = fact.eigh_pair
        w2, v2 = symmetrized_eigh(psd)
        np.testing.assert_array_equal(w, w2)
        np.testing.assert_array_equal(v, v2)

    def test_hit_miss_accounting(self, psd):
        cache = FactorizationCache(capacity=4)
        first = cache.factorization(psd)
        second = cache.factorization(psd.copy())  # equal content -> same entry
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = FactorizationCache(capacity=2)
        matrices = [random_psd_ensemble(6, seed=s) for s in range(3)]
        a, b = cache.factorization(matrices[0]), cache.factorization(matrices[1])
        cache.factorization(matrices[0])           # touch a -> b becomes LRU
        cache.factorization(matrices[2])           # evicts b
        assert cache.stats.evictions == 1
        assert matrices[0] in cache and matrices[2] in cache
        assert matrices[1] not in cache
        assert cache.factorization(matrices[0]) is a
        assert cache.factorization(matrices[1]) is not b  # recomputed after eviction

    def test_explicit_invalidation(self, psd):
        cache = FactorizationCache()
        entry = cache.factorization(psd)
        assert cache.invalidate(entry.fingerprint)
        assert not cache.invalidate(entry.fingerprint)
        assert cache.stats.invalidations == 1
        assert cache.factorization(psd) is not entry

    def test_zero_capacity_disables_storage(self, psd):
        cache = FactorizationCache(capacity=0)
        assert cache.factorization(psd) is not cache.factorization(psd)
        assert len(cache) == 0
        assert cache.stats.misses == 2

    def test_clear(self, psd):
        cache = FactorizationCache()
        cache.factorization(psd)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_nbytes_grows_with_materialization(self, psd):
        cache = FactorizationCache()
        fact = cache.factorization(psd)
        before = cache.nbytes
        fact.factor_gram  # materializes factor + gram
        assert cache.nbytes > before

    def test_thread_safe_single_computation(self, psd):
        cache = FactorizationCache()
        results = []

        def worker():
            results.append(cache.factorization(psd).factor)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
class TestKernelRegistry:
    def test_register_and_lookup(self, registry, psd):
        entry = registry.register("movies", psd)
        assert "movies" in registry and registry.get("movies") is entry
        assert not entry.matrix.flags.writeable
        assert registry.names() == ["movies"]

    def test_reregister_same_content_is_idempotent(self, registry, psd):
        first = registry.register("movies", psd)
        second = registry.register("movies", psd.copy())
        assert first is second

    def test_conflicting_content_requires_overwrite(self, registry, psd):
        registry.register("movies", psd)
        other = random_psd_ensemble(24, seed=9)
        with pytest.raises(ValueError, match="overwrite"):
            registry.register("movies", other)
        entry = registry.register("movies", other, overwrite=True)
        assert entry.fingerprint != array_fingerprint(psd, extra=("symmetric", None, None))

    def test_overwrite_invalidates_stale_factorization(self, registry, psd):
        entry = registry.register("movies", psd)
        registry.cache.factorization(entry.matrix, fingerprint=entry.fingerprint)
        registry.register("movies", random_psd_ensemble(24, seed=9), overwrite=True)
        assert registry.cache.stats.invalidations == 1

    def test_validation_happens_at_registration(self, registry):
        not_psd = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        with pytest.raises(ValueError):
            registry.register("bad", not_psd)

    def test_partition_requires_structure(self, registry, psd):
        with pytest.raises(ValueError, match="parts"):
            registry.register("slates", psd, kind="partition")
        with pytest.raises(ValueError, match="partition"):
            registry.register("slates", psd, parts=[[0, 1]], counts=[1])

    def test_unregister(self, registry, psd):
        entry = registry.register("movies", psd)
        registry.cache.factorization(entry.matrix, fingerprint=entry.fingerprint)
        assert registry.unregister("movies")
        assert "movies" not in registry
        assert not registry.unregister("movies")
        assert registry.cache.stats.invalidations == 1

    def test_unknown_kind_and_name(self, registry, psd):
        with pytest.raises(ValueError, match="kind"):
            registry.register("x", psd, kind="planar")
        with pytest.raises(KeyError, match="no kernel registered"):
            registry.get("missing")


# ---------------------------------------------------------------------- #
# sessions: cached sampling identical to the cold path
# ---------------------------------------------------------------------- #
class TestSamplerSession:
    def test_spectral_kdpp_identical_to_cold(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        for seed in range(5):
            assert session.sample(k=5, seed=seed).subset == sample_kdpp_spectral(psd, 5, seed=seed)

    def test_spectral_dpp_identical_to_cold(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        for seed in range(5):
            assert session.sample(seed=seed).subset == sample_dpp_spectral(psd, seed=seed)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_kdpp_identical_to_cold(self, registry, psd, backend):
        session = serve(psd, name="m", registry=registry)
        warm = session.sample(k=6, seed=3, method="parallel", backend=backend)
        cold = repro.sample_symmetric_kdpp_parallel(psd, 6, seed=3, backend=backend)
        assert warm.subset == cold.subset
        assert warm.report.rounds == cold.report.rounds

    def test_parallel_unconstrained_identical_to_cold(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        warm = session.sample(seed=4, method="parallel")
        cold = repro.sample_symmetric_dpp_parallel(psd, seed=4)
        assert warm.subset == cold.subset
        assert warm.report.extra.get("sampled_cardinality") == cold.report.extra.get("sampled_cardinality")

    def test_nonsymmetric_identical_to_cold(self, registry):
        L = random_npsd_ensemble(18, seed=2)
        session = serve(L, name="ns", kind="nonsymmetric", registry=registry)
        cfg = EntropicSamplerConfig(c=0.3, epsilon=0.1)
        warm = session.sample(k=4, seed=5, config=cfg)
        cold = repro.sample_nonsymmetric_kdpp_parallel(L, 4, config=cfg, seed=5)
        assert warm.subset == cold.subset
        # unconstrained (Remark 15 cardinality round)
        warm = session.sample(seed=6)
        cold = repro.sample_nonsymmetric_dpp_parallel(L, seed=6)
        assert warm.subset == cold.subset

    def test_partition_identical_to_cold(self, registry):
        L = random_psd_ensemble(12, seed=3)
        parts, counts = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]], [1, 1, 1]
        session = serve(L, name="p", kind="partition", parts=parts, counts=counts,
                        registry=registry)
        cfg = EntropicSamplerConfig(c=0.3, epsilon=0.1)
        warm = session.sample(seed=7, config=cfg)
        cold = repro.sample_partition_dpp_parallel(L, parts, counts, config=cfg, seed=7)
        assert warm.subset == cold.subset

    def test_distribution_objects_are_memoized(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        assert session.distribution(5) is session.distribution(5)
        assert session.distribution(5) is not session.distribution(6)

    def test_serve_same_matrix_shares_registration(self, registry, psd):
        a = serve(psd, registry=registry)
        b = serve(psd.copy(), registry=registry)
        assert a.entry is b.entry
        assert len(registry) == 1

    def test_session_stats(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        session.sample(k=4, seed=0)
        session.sample(k=4, seed=1)
        stats = session.stats
        assert stats["samples_served"] == 2
        assert stats["cache"]["misses"] == 1

    def test_infeasible_k_raises_like_cold_path(self, registry):
        low_rank = random_psd_ensemble(10, rank=3, seed=0)
        session = serve(low_rank, name="lr", registry=registry)
        with pytest.raises(ValueError, match="zero mass"):
            session.sample(k=7, seed=0, method="parallel")

    def test_partition_rejects_wrong_k(self, registry):
        L = random_psd_ensemble(6, seed=3)
        session = serve(L, name="p", kind="partition", parts=[[0, 1, 2], [3, 4, 5]],
                        counts=[1, 1], registry=registry)
        with pytest.raises(ValueError, match="fixed cardinality"):
            session.sample(k=5, seed=0)

    def test_spectral_rejects_nonsymmetric(self, registry):
        L = random_npsd_ensemble(8, seed=1)
        session = serve(L, name="ns", kind="nonsymmetric", registry=registry)
        with pytest.raises(ValueError, match="spectral"):
            session.sample(k=2, seed=0, method="spectral")


# ---------------------------------------------------------------------- #
# round scheduler: fused == unfused
# ---------------------------------------------------------------------- #
class TestRoundScheduler:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fused_equals_unfused(self, registry, psd, backend):
        session = serve(psd, name="m", registry=registry)
        scheduler = RoundScheduler(session, backend=backend)
        seeds = [20, 21, 22, 23]
        for seed in seeds:
            scheduler.submit(5, seed=seed)
        fused = [r.subset for r in scheduler.drain()]
        unfused = [session.sample(k=5, seed=s, method="parallel", backend=backend).subset
                   for s in seeds]
        assert fused == unfused

    def test_fusion_reduces_executed_batches(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = RoundScheduler(session)
        for seed in range(4):
            scheduler.submit(5, seed=100 + seed)
        scheduler.drain()
        assert scheduler.executed_batches < scheduler.submitted_batches
        assert scheduler.fused_rounds > 0
        assert scheduler.shared_work > 0

    def test_mixed_cardinalities_fuse_safely(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = RoundScheduler(session)
        jobs = [(3, 31), (5, 32), (7, 33)]
        for k, seed in jobs:
            scheduler.submit(k, seed=seed)
        results = scheduler.drain()
        for (k, seed), result in zip(jobs, results):
            assert len(result.subset) == k
            assert result.subset == session.sample(k=k, seed=seed, method="parallel").subset

    def test_default_seeds_are_deterministic_substreams(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = RoundScheduler(session, seed=99)
        tickets = [scheduler.submit(4) for _ in range(3)]
        fused = [r.subset for r in scheduler.drain()]
        expected = [session.sample(k=4, seed=substream(99, t.index), method="parallel").subset
                    for t in tickets]
        assert fused == expected

    def test_drain_empty_is_noop(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        assert RoundScheduler(session).drain() == []

    def test_errors_propagate_and_do_not_wedge(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = RoundScheduler(session)
        scheduler.submit(5, seed=1)
        bad = scheduler.submit(200, seed=2)  # k > n: must fail cleanly
        with pytest.raises(ValueError):
            scheduler.drain()
        assert bad.error is not None
        # the scheduler is reusable after a failed drain
        scheduler.submit(5, seed=3)
        results = scheduler.drain()
        assert results[0].subset == session.sample(k=5, seed=3, method="parallel").subset

    def test_session_submit_drain_convenience(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        session.submit(4, seed=50)
        session.submit(4, seed=51)
        results = session.drain()
        assert [len(r.subset) for r in results] == [4, 4]
        assert "scheduler" in session.stats

    def test_submit_rejects_scheduler_owned_kwargs(self, registry, psd):
        scheduler = RoundScheduler(serve(psd, name="m", registry=registry))
        with pytest.raises(TypeError, match="backend"):
            scheduler.submit(4, seed=1, backend="vectorized")
        with pytest.raises(ValueError, match="unknown sampling method"):
            scheduler.submit(4, seed=1, method="hkpv")

    def test_submit_rejects_spectral_on_nonsymmetric(self, registry):
        L = random_npsd_ensemble(10, seed=4)
        session = serve(L, name="npsd", kind="nonsymmetric", registry=registry)
        scheduler = RoundScheduler(session)
        with pytest.raises(ValueError, match="symmetric"):
            scheduler.submit(3, seed=1, method="spectral")

    def test_session_scheduler_settings_conflict_raises(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        session.scheduler(backend="serial")
        with pytest.raises(ValueError, match="already exists"):
            session.scheduler(backend="vectorized")


# ---------------------------------------------------------------------- #
# review-hardening regressions
# ---------------------------------------------------------------------- #
class TestServiceHardening:
    def test_factorization_defensively_copies_mutable_input(self, psd):
        cache = FactorizationCache()
        mutable = psd.copy()
        fact = cache.factorization(mutable)
        mutable[0, 0] += 1.0  # caller mutates after caching
        # lazily materialized artifacts still reflect the fingerprinted content
        np.testing.assert_array_equal(fact.eigenvalues,
                                      FactorizationCache().factorization(psd).eigenvalues)

    def test_symmetric_parallel_honors_explicit_config(self, registry, psd):
        from repro.core.batched import BatchedSamplerConfig

        session = serve(psd, name="m", registry=registry)
        cfg = BatchedSamplerConfig(batch_size=lambda k: 1)
        warm = session.sample(k=4, seed=2, method="parallel", config=cfg)
        cold = repro.sample_symmetric_kdpp_parallel(psd, 4, seed=2, config=cfg)
        assert warm.subset == cold.subset
        assert warm.report.batch_sizes == [1, 1, 1, 1]
        with pytest.raises(TypeError, match="BatchedSamplerConfig"):
            session.sample(k=4, seed=2, method="parallel",
                           config=EntropicSamplerConfig())

    def test_serve_auto_names_distinguish_kinds(self, psd):
        registry = KernelRegistry()
        sym = serve(psd, registry=registry)
        # same matrix happens to be nPSD too; must not collide on the name
        nonsym = serve(psd, kind="nonsymmetric", registry=registry)
        assert sym.entry is not nonsym.entry
        assert len(registry) == 2

    def test_serve_by_name_rejects_registration_args(self, registry, psd):
        registry.register("movies", psd)
        with pytest.raises(ValueError, match="already registered"):
            serve("movies", registry=registry, name="other")
        with pytest.raises(ValueError, match="kind"):
            serve("movies", registry=registry, kind="nonsymmetric")
        assert serve("movies", registry=registry).entry is registry.get("movies")

    def test_substream_rejects_irreproducible_roots(self):
        with pytest.raises(TypeError, match="reproducible"):
            substream(None, 0)
        with pytest.raises(TypeError, match="reproducible"):
            substream(np.random.default_rng(0), 0)
        a = substream(5, 3).random(4)
        b = substream(5, 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_drain_waves_bound_concurrency(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = RoundScheduler(session, max_concurrency=2)
        seeds = list(range(60, 65))
        for seed in seeds:
            scheduler.submit(4, seed=seed)
        waved = [r.subset for r in scheduler.drain()]
        expected = [session.sample(k=4, seed=s, method="parallel").subset for s in seeds]
        assert waved == expected
        with pytest.raises(ValueError, match="max_concurrency"):
            RoundScheduler(session, max_concurrency=0)


# ---------------------------------------------------------------------- #
# registry lifecycle: ephemeral registrations, TTL, session close
# ---------------------------------------------------------------------- #
class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRegistryLifecycle:
    def test_serve_matrix_registration_is_ephemeral(self, psd):
        registry = KernelRegistry()
        session = serve(psd, registry=registry)
        assert registry.is_ephemeral(session.entry.name)
        assert len(registry) == 1
        session.close()

    def test_named_registration_is_permanent(self, psd):
        registry = KernelRegistry(anonymous_ttl=0.0)
        session = serve(psd, name="movies", registry=registry)
        session.close()
        registry.sweep()
        assert "movies" in registry

    def test_close_releases_and_ttl_reclaims(self, psd):
        clock = _FakeClock()
        registry = KernelRegistry(anonymous_ttl=10.0, clock=clock)
        session = serve(psd, registry=registry)
        name = session.entry.name
        clock.advance(100.0)
        registry.sweep()  # pinned by the open session: must survive any idle time
        assert name in registry
        session.close()
        clock.advance(9.0)
        registry.sweep()
        assert name in registry  # idle but not yet expired
        clock.advance(2.0)
        assert registry.sweep() == 1
        assert name not in registry
        # the cached factorization was invalidated with the registration
        assert session.entry.fingerprint not in registry.cache

    def test_ttl_zero_reclaims_on_close(self, psd):
        registry = KernelRegistry(anonymous_ttl=0.0)
        session = serve(psd, registry=registry)
        name = session.entry.name
        session.close()
        assert name not in registry

    def test_second_serve_repins_idle_entry(self, psd):
        clock = _FakeClock()
        registry = KernelRegistry(anonymous_ttl=10.0, clock=clock)
        first = serve(psd, registry=registry)
        first.close()
        clock.advance(5.0)
        second = serve(psd, registry=registry)  # same content: same entry, repinned
        assert second.entry.name == first.entry.name
        clock.advance(100.0)
        registry.sweep()
        assert second.entry.name in registry
        second.close()

    def test_close_is_idempotent_and_blocks_sampling(self, psd):
        registry = KernelRegistry()
        session = serve(psd, registry=registry)
        session.sample(k=3, seed=1)
        session.close()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.sample(k=3, seed=1)
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(3, seed=1)

    def test_context_manager_closes(self, psd):
        registry = KernelRegistry(anonymous_ttl=0.0)
        with serve(psd, registry=registry) as session:
            assert len(session.sample(k=3, seed=5).subset) == 3
            name = session.entry.name
        assert session.closed
        assert name not in registry

    def test_explicit_register_promotes_ephemeral(self, psd):
        registry = KernelRegistry(anonymous_ttl=0.0)
        session = serve(psd, registry=registry)
        name = session.entry.name
        registry.register(name, psd)  # explicit (permanent) re-registration
        session.close()
        assert name in registry


# ---------------------------------------------------------------------- #
# factorization cache: single-flight artifact computation
# ---------------------------------------------------------------------- #
class TestCacheSingleFlight:
    def test_concurrent_misses_compute_once(self, psd):
        from repro.service.cache import KernelFactorization

        fact = KernelFactorization(psd)
        computed = []
        gate = threading.Event()

        def compute():
            gate.wait(1.0)
            computed.append(threading.get_ident())
            return np.linalg.eigvalsh(0.5 * (psd + psd.T))

        results = [None] * 4

        def worker(i):
            results[i] = fact._get("artifact", compute)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert len(computed) == 1
        for value in results[1:]:
            assert value is results[0]

    def test_leader_failure_lets_followers_retry(self, psd):
        from repro.service.cache import KernelFactorization

        fact = KernelFactorization(psd)
        attempts = []

        def flaky():
            attempts.append(None)
            if len(attempts) == 1:
                raise RuntimeError("first compute fails")
            return "ok"

        with pytest.raises(RuntimeError, match="first compute fails"):
            fact._get("flaky", flaky)
        assert fact._get("flaky", flaky) == "ok"
        assert len(attempts) == 2

    def test_different_artifacts_do_not_serialize(self, psd):
        """A slow computation of one artifact must not block another key."""
        from repro.service.cache import KernelFactorization

        fact = KernelFactorization(psd)
        slow_started = threading.Event()
        release_slow = threading.Event()

        def slow():
            slow_started.set()
            release_slow.wait(5.0)
            return "slow"

        slow_result = []
        t = threading.Thread(target=lambda: slow_result.append(fact._get("slow", slow)))
        t.start()
        assert slow_started.wait(5.0)
        # while "slow" is in flight, an independent artifact computes freely
        assert fact._get("fast", lambda: "fast") == "fast"
        release_slow.set()
        t.join()
        assert slow_result == ["slow"]


class TestSharedFingerprintInvalidation:
    def test_sweep_keeps_cache_entry_shared_with_permanent_registration(self, psd):
        clock = _FakeClock()
        registry = KernelRegistry(anonymous_ttl=0.0, clock=clock)
        registry.register("movies", psd)  # permanent, same content
        session = serve(psd, registry=registry)  # ephemeral twin
        fingerprint = session.entry.fingerprint
        assert fingerprint == registry.get("movies").fingerprint
        registry.cache.factorization(psd, fingerprint=fingerprint)  # warm it
        session.close()  # ttl=0: ephemeral entry reclaimed immediately
        assert session.entry.name not in registry
        # the warm factorization survives: "movies" still uses it
        assert fingerprint in registry.cache

    def test_unregister_invalidates_when_unshared(self, psd):
        registry = KernelRegistry()
        entry = registry.register("only", psd)
        registry.cache.factorization(psd, fingerprint=entry.fingerprint)
        assert entry.fingerprint in registry.cache
        registry.unregister("only")
        assert entry.fingerprint not in registry.cache


# ---------------------------------------------------------------------- #
# spectral fusion (ISSUE 4: HKPV routed through the engine)
# ---------------------------------------------------------------------- #
class TestSpectralFusion:
    def test_fused_spectral_equals_unfused(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = session.scheduler()
        seeds = [70, 71, 72, 73]
        for seed in seeds:
            scheduler.submit(5, seed=seed, method="spectral")
        fused = [r.subset for r in scheduler.drain()]
        unfused = [session.sample(k=5, seed=s, method="spectral").subset for s in seeds]
        assert fused == unfused

    def test_fused_spectral_equals_cold_path(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = session.scheduler()
        tickets = [scheduler.submit(4, seed=80 + i, method="spectral") for i in range(3)]
        results = scheduler.drain()
        for ticket, result in zip(tickets, results):
            assert result.subset == sample_kdpp_spectral(psd, 4, seed=ticket.seed)

    def test_spectral_steps_actually_fuse(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = session.scheduler()
        for seed in range(4):
            scheduler.submit(5, seed=90 + seed, method="spectral")
        scheduler.drain()
        # 4 requests x 5 lockstep steps collapse into 5 stacked rounds
        assert scheduler.executed_batches < scheduler.submitted_batches
        assert scheduler.fused_rounds > 0

    def test_mixed_methods_drain_together(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = session.scheduler()
        spectral = scheduler.submit(4, seed=101, method="spectral")
        parallel = scheduler.submit(4, seed=102)  # method="parallel" default
        results = scheduler.drain()
        assert results[spectral.index].subset == session.sample(
            k=4, seed=101, method="spectral").subset
        assert results[parallel.index].subset == session.sample(
            k=4, seed=102, method="parallel").subset

    def test_unconstrained_spectral_fuses(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        scheduler = session.scheduler()
        tickets = [scheduler.submit(seed=110 + i, method="spectral") for i in range(3)]
        results = scheduler.drain()
        for ticket, result in zip(tickets, results):
            assert result.subset == sample_dpp_spectral(psd, seed=ticket.seed)


# ---------------------------------------------------------------------- #
# warm-up API and byte-budget eviction (ISSUE 4 satellites)
# ---------------------------------------------------------------------- #
class TestWarmup:
    def test_register_warm_materializes_artifacts(self, registry, psd):
        entry = registry.register("warmed", psd, warm=True)
        fact = registry.cache.factorization(entry.matrix, fingerprint=entry.fingerprint)
        names = set(fact.materialized)
        assert {"eigh", "eigenvalues", "esp", "factor", "kernel"} <= names

    def test_session_warm_is_chainable_and_identical(self, registry, psd):
        cold = serve(psd, name="m", registry=registry).sample(k=5, seed=7).subset
        warm_session = serve(psd, name="m", registry=KernelRegistry()).warm()
        assert warm_session.sample(k=5, seed=7).subset == cold
        assert len(warm_session.factorization.materialized) >= 5

    def test_warm_partition_requires_structure(self, registry, psd):
        fact = registry.cache.factorization(psd)
        with pytest.raises(ValueError, match="parts"):
            fact.warm("partition")
        with pytest.raises(ValueError, match="unknown kernel kind"):
            fact.warm("banded")

    def test_register_warm_partition(self, registry):
        L = random_psd_ensemble(8, seed=9)
        parts = [[0, 1, 2, 3], [4, 5, 6, 7]]
        entry = registry.register("pwarm", L, kind="partition", parts=parts,
                                  counts=[2, 1], warm=True)
        fact = registry.cache.factorization(entry.matrix, fingerprint=entry.fingerprint)
        assert any(str(key).startswith("('partition_z'") for key in fact.materialized)

    def test_closed_session_rejects_warm(self, registry, psd):
        session = serve(psd, name="m", registry=registry)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.warm()


class TestByteBudgetEviction:
    def test_size_budget_evicts_lru(self):
        cache = FactorizationCache(capacity=16, max_bytes=1)
        kernels = [random_psd_ensemble(12, seed=s) for s in range(3)]
        for kernel in kernels:
            cache.factorization(kernel).warm("symmetric")
            cache.factorization(kernel)  # lookup enforces the budget
        info = cache.cache_info()
        assert info["entries"] == 1  # most-recent survivor only
        assert info["size_evictions"] == 2
        assert info["evictions"] == 0  # entry-count bound never fired
        assert cache.fingerprints() == [array_fingerprint(kernels[-1])]

    def test_budget_keeps_single_oversized_entry(self, psd):
        cache = FactorizationCache(max_bytes=1)
        fact = cache.factorization(psd)
        fact.warm("symmetric")
        assert cache.factorization(psd) is fact  # still cached, still warm

    def test_no_budget_means_no_size_evictions(self, psd):
        cache = FactorizationCache(capacity=2)
        for seed in range(4):
            cache.factorization(random_psd_ensemble(10, seed=seed))
        info = cache.cache_info()
        assert info["size_evictions"] == 0 and info["evictions"] == 2
        assert info["max_bytes"] is None

    def test_stats_expose_size_evictions_separately(self, psd):
        cache = FactorizationCache(max_bytes=0)
        stats = cache.stats.as_dict()
        assert "size_evictions" in stats and "evictions" in stats

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            FactorizationCache(max_bytes=-1)


# ---------------------------------------------------------------------- #
class TestCacheTTLExpiry:
    def test_idle_entries_expire_lazily_on_access(self, psd):
        clock = _FakeClock()
        cache = FactorizationCache(ttl=10.0, clock=clock)
        cache.factorization(psd)
        other = random_psd_ensemble(8, rank=4, seed=3)
        clock.advance(5.0)
        cache.factorization(other)
        assert len(cache) == 2
        clock.advance(6.0)  # psd idle 11s, other idle 6s
        cache.factorization(other)  # lazy sweep runs here
        assert len(cache) == 1
        assert cache.stats.expired == 1
        assert array_fingerprint(np.asarray(psd, dtype=float)) not in cache

    def test_touch_rearms_the_idle_clock(self, psd):
        clock = _FakeClock()
        cache = FactorizationCache(ttl=10.0, clock=clock)
        cache.factorization(psd)
        for _ in range(5):
            clock.advance(8.0)
            cache.factorization(psd)  # touched before expiry every time
        assert len(cache) == 1 and cache.stats.expired == 0

    def test_per_entry_ttl_overrides_cache_default(self, psd):
        clock = _FakeClock()
        cache = FactorizationCache(ttl=100.0, clock=clock)
        short = random_psd_ensemble(8, rank=4, seed=4)
        cache.factorization(psd)
        cache.factorization(short, ttl=5.0)
        clock.advance(6.0)
        info = cache.cache_info()
        assert info["entries"] == 1 and info["expired"] == 1
        # ttl=None pins an entry even under a cache-level default
        pinned = random_psd_ensemble(8, rank=4, seed=5)
        cache.factorization(pinned, ttl=None)
        clock.advance(1000.0)
        assert cache.cache_info()["entries"] == 1
        assert cache.stats.expired == 2  # psd joined the reaped set

    def test_no_ttl_means_no_expiry(self, psd):
        clock = _FakeClock()
        cache = FactorizationCache(clock=clock)
        cache.factorization(psd)
        clock.advance(1e9)
        assert cache.cache_info()["entries"] == 1
        assert cache.cache_info()["expired"] == 0

    def test_expired_counter_is_separate_from_evictions(self, psd):
        clock = _FakeClock()
        cache = FactorizationCache(capacity=1, ttl=10.0, clock=clock)
        cache.factorization(psd)
        cache.factorization(random_psd_ensemble(8, rank=4, seed=6))  # LRU eviction
        assert cache.stats.evictions == 1
        clock.advance(11.0)
        cache.sweep()
        assert cache.stats.expired == 1
        info = cache.cache_info()
        assert info["ttl"] == 10.0
        assert {"expired", "evictions", "size_evictions"} <= set(info)

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl"):
            FactorizationCache(ttl=-1.0)

    def test_expired_entry_recomputes_but_samples_identically(self, psd):
        clock = _FakeClock()
        cache = FactorizationCache(ttl=1.0, clock=clock)
        registry = KernelRegistry(cache)
        session = serve(psd, name="ttl-kernel", registry=registry)
        want = session.sample(k=5, seed=77).subset
        clock.advance(2.0)
        cache.sweep()  # warm artifacts reclaimed...
        assert session.sample(k=5, seed=77).subset == want  # ...samples unchanged


class TestRegistryInfo:
    def test_registry_info_rolls_up_cache_and_census(self, registry, psd):
        registry.register("a", psd, warm=True)
        serve(psd, registry=registry)  # ephemeral auto-name, same content
        info = registry.registry_info()
        assert info["registered"] == 2
        assert info["ephemeral"] == 1
        names = {k["name"] for k in info["kernels"]}
        assert "a" in names
        assert info["cache"]["entries"] >= 1
        assert all({"kind", "n", "fingerprint"} <= set(k) for k in info["kernels"])
