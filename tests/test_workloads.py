"""Tests for synthetic workload generators."""

import numpy as np
import pytest

from repro.dpp.kernels import ensemble_to_kernel
from repro.linalg.psd import is_npsd, is_psd
from repro.workloads import (
    benchmark_grid_sizes,
    bounded_spectrum_ensemble,
    clustered_ensemble,
    random_low_rank_ensemble,
    random_npsd_ensemble,
    random_psd_ensemble,
    rbf_kernel_ensemble,
    synthetic_catalog,
    synthetic_documents,
)
from repro.workloads.datasets import catalog_to_ensemble, documents_to_ensemble


class TestKernelGenerators:
    def test_random_psd_is_psd(self):
        assert is_psd(random_psd_ensemble(10, seed=0))

    def test_random_psd_rank(self):
        L = random_psd_ensemble(10, rank=3, seed=1)
        assert np.linalg.matrix_rank(L, tol=1e-8) == 3

    def test_random_psd_invalid_rank(self):
        with pytest.raises(ValueError):
            random_psd_ensemble(5, rank=9)

    def test_low_rank_ensemble(self):
        L = random_low_rank_ensemble(8, rank=4, seed=2)
        eigs = np.linalg.eigvalsh(L)
        assert np.sum(eigs > 1e-9) == 4
        assert is_psd(L)

    def test_low_rank_invalid_rank(self):
        with pytest.raises(ValueError):
            random_low_rank_ensemble(5, rank=0)

    def test_rbf_is_psd(self):
        L, features = rbf_kernel_ensemble(12, seed=3)
        assert is_psd(L, tol=1e-7)
        assert features.shape == (12, 5)

    def test_rbf_quality_scaling(self):
        quality = np.full(6, 2.0)
        L, _ = rbf_kernel_ensemble(6, quality=quality, seed=4)
        assert np.allclose(np.diag(L), 4.0)

    def test_clustered_ensemble(self):
        L, parts = clustered_ensemble([3, 5], seed=5)
        assert is_psd(L, tol=1e-7)
        assert [len(p) for p in parts] == [3, 5]
        assert sorted(i for p in parts for i in p) == list(range(8))

    def test_clustered_invalid_sizes(self):
        with pytest.raises(ValueError):
            clustered_ensemble([0, 3])

    def test_npsd_ensemble(self):
        L = random_npsd_ensemble(10, seed=6)
        assert is_npsd(L)
        assert not np.allclose(L, L.T)

    def test_bounded_spectrum_lambda_max(self):
        L = bounded_spectrum_ensemble(15, kernel_lambda_max=0.2, seed=7)
        K = ensemble_to_kernel(L)
        assert np.linalg.eigvalsh(0.5 * (K + K.T)).max() <= 0.2 + 1e-8

    def test_bounded_spectrum_expected_size(self):
        L = bounded_spectrum_ensemble(20, kernel_lambda_max=0.5, expected_size=3.0, seed=8)
        K = ensemble_to_kernel(L)
        assert np.trace(K) == pytest.approx(3.0, rel=0.05)

    def test_bounded_spectrum_invalid_lambda(self):
        with pytest.raises(ValueError):
            bounded_spectrum_ensemble(5, kernel_lambda_max=1.5)

    def test_spiked_spectrum_shape(self):
        from repro.workloads import spiked_spectrum_ensemble

        L = spiked_spectrum_ensemble(12, num_spikes=2, spike_value=0.9, background=0.01, seed=9)
        K = ensemble_to_kernel(L)
        eigs = np.sort(np.linalg.eigvalsh(0.5 * (K + K.T)))[::-1]
        assert eigs[0] == pytest.approx(0.9, abs=1e-6)
        assert eigs[1] == pytest.approx(0.9, abs=1e-6)
        assert eigs[2] == pytest.approx(0.01, abs=1e-6)

    def test_spiked_spectrum_invalid_args(self):
        from repro.workloads import spiked_spectrum_ensemble

        with pytest.raises(ValueError):
            spiked_spectrum_ensemble(5, spike_value=1.2)
        with pytest.raises(ValueError):
            spiked_spectrum_ensemble(5, num_spikes=9)


class TestGraphsAndDatasets:
    def test_benchmark_grid_sizes(self):
        sizes = benchmark_grid_sizes(100)
        assert all(r * c <= 100 and (r * c) % 2 == 0 for r, c in sizes)
        assert sizes  # non-empty

    def test_synthetic_documents(self):
        docs = synthetic_documents(20, num_topics=3, seed=0)
        assert len(docs) == 20
        assert all(0 <= d.topic < 3 for d in docs)
        L = documents_to_ensemble(docs)
        assert is_psd(L, tol=1e-7)

    def test_synthetic_catalog(self):
        items = synthetic_catalog(15, num_categories=3, seed=1)
        assert len(items) == 15
        L, parts = catalog_to_ensemble(items)
        assert is_psd(L, tol=1e-7)
        assert sum(len(p) for p in parts) == 15

    def test_generators_are_deterministic(self):
        a = random_psd_ensemble(6, seed=42)
        b = random_psd_ensemble(6, seed=42)
        assert np.allclose(a, b)
