"""Tests for the sequential HKPV spectral samplers and ESP-based marginals."""

import numpy as np
import pytest

from repro.dpp.elementary import (
    dpp_size_distribution,
    kdpp_marginals_spectral,
    kdpp_normalization,
    leave_one_out_esp,
)
from repro.dpp.exact import exact_dpp_distribution, exact_kdpp_distribution
from repro.dpp.spectral import (
    sample_dpp_spectral,
    sample_kdpp_spectral,
    select_kdpp_eigenvectors,
)
from repro.linalg.esp import elementary_symmetric_polynomials
from repro.pram.tracker import Tracker, use_tracker
from repro.utils.subsets import all_subsets_of_size
from repro.workloads import random_psd_ensemble


class TestElementary:
    def test_size_distribution_matches_exact(self, small_psd):
        sizes = dpp_size_distribution(small_psd)
        exact = exact_dpp_distribution(small_psd)
        expected = np.zeros(7)
        for subset, prob in exact.items():
            expected[len(subset)] += prob
        assert np.allclose(sizes, expected, atol=1e-8)

    def test_kdpp_normalization(self, small_psd):
        for k in range(7):
            expected = sum(
                np.linalg.det(small_psd[np.ix_(s, s)]) if s else 1.0
                for s in all_subsets_of_size(6, k)
            )
            assert kdpp_normalization(small_psd, k) == pytest.approx(expected, rel=1e-7)

    def test_kdpp_normalization_out_of_range(self, small_psd):
        assert kdpp_normalization(small_psd, 7) == 0.0
        assert kdpp_normalization(small_psd, -1) == 0.0

    def test_leave_one_out_esp(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        loo = leave_one_out_esp(values, 2)
        for j in range(4):
            rest = np.delete(values, j)
            expected = elementary_symmetric_polynomials(rest)[2]
            assert loo[j] == pytest.approx(expected)

    def test_kdpp_marginals_spectral_match_exact(self, small_psd):
        for k in (1, 2, 3, 4):
            marginals = kdpp_marginals_spectral(small_psd, k)
            exact = exact_kdpp_distribution(small_psd, k).marginal_vector()
            assert np.allclose(marginals, exact, atol=1e-8)

    def test_kdpp_marginals_edge_cases(self, small_psd):
        assert np.allclose(kdpp_marginals_spectral(small_psd, 0), np.zeros(6))
        assert np.allclose(kdpp_marginals_spectral(small_psd, 6), np.ones(6))


class TestSpectralSamplers:
    def test_kdpp_sample_has_correct_size(self, small_psd, rng):
        for _ in range(10):
            sample = sample_kdpp_spectral(small_psd, 3, rng)
            assert len(sample) == 3
            assert len(set(sample)) == 3

    def test_kdpp_sampler_distribution(self, small_psd):
        # Empirical frequencies of a small k-DPP should be close to exact.
        exact = exact_kdpp_distribution(small_psd, 2)
        rng = np.random.default_rng(0)
        counts = {}
        num_samples = 4000
        for _ in range(num_samples):
            s = sample_kdpp_spectral(small_psd, 2, rng)
            counts[s] = counts.get(s, 0) + 1
        tv = 0.5 * sum(
            abs(counts.get(s, 0) / num_samples - exact.probability_vector([s])[0])
            for s in exact.support
        )
        assert tv < 0.06

    def test_dpp_sampler_size_distribution(self, small_low_rank_psd):
        rng = np.random.default_rng(1)
        expected = dpp_size_distribution(small_low_rank_psd)
        sizes = np.zeros(8)
        num_samples = 3000
        for _ in range(num_samples):
            s = sample_dpp_spectral(small_low_rank_psd, rng)
            sizes[len(s)] += 1
        sizes /= num_samples
        assert np.abs(sizes - expected).max() < 0.05

    def test_select_kdpp_eigenvectors_count(self, small_psd, rng):
        eigenvalues = np.linalg.eigvalsh(small_psd)
        for k in (1, 3, 5):
            mask = select_kdpp_eigenvectors(eigenvalues, k, rng)
            assert mask.sum() == k

    def test_select_kdpp_eigenvectors_invalid_k(self, small_psd, rng):
        eigenvalues = np.linalg.eigvalsh(small_psd)
        with pytest.raises(ValueError):
            select_kdpp_eigenvectors(eigenvalues, 10, rng)

    def test_sampler_charges_sequential_depth(self, small_psd):
        tracker = Tracker()
        with use_tracker(tracker):
            sample_kdpp_spectral(small_psd, 4, seed=3)
        # eigendecomposition round + 4 sequential HKPV steps
        assert tracker.rounds >= 5

    def test_kdpp_k_zero(self, small_psd):
        assert sample_kdpp_spectral(small_psd, 0, seed=0) == ()

    def test_rank_deficient_rejects_large_k(self):
        L = random_psd_ensemble(6, rank=2, seed=9)
        eigenvalues = np.clip(np.linalg.eigvalsh(L), 0.0, None)
        with pytest.raises(ValueError):
            select_kdpp_eigenvectors(eigenvalues, 5, np.random.default_rng(0))


class TestPhaseTwoDegenerateBasis:
    """Regression: a near-axis-aligned eigenbasis used to crash phase 2.

    With an almost-diagonal ensemble, projecting out the selected element
    leaves a leading near-zero column; unpivoted QR then attributes the
    surviving dimension's mass to the upper triangle of ``r`` and the
    threshold dropped a real dimension ("ran out of probability mass").
    """

    DEGENERATE = np.array([[5.00010000e-02, 1.06939813e-11],
                           [1.06939813e-11, 1.05000100e+00]])

    def test_full_cardinality_sample_succeeds(self):
        for seed in range(8):
            assert sample_kdpp_spectral(self.DEGENERATE, 2, seed=seed) == (0, 1)

    def test_larger_near_diagonal_ensemble(self):
        L = np.diag([0.05, 0.5, 1.05, 2.0]) + 1e-11
        for seed in range(8):
            subset = sample_kdpp_spectral(L, 4, seed=seed)
            assert subset == (0, 1, 2, 3)
