"""Tests for Vandermonde interpolation used by the Partition-DPP oracle."""

import numpy as np
import pytest

from repro.linalg.interpolation import (
    multivariate_coefficients_from_evaluations,
    univariate_coefficients_from_evaluations,
    vandermonde_solve,
)


class TestVandermondeSolve:
    def test_recovers_polynomial(self):
        coeffs = np.array([2.0, -1.0, 0.5])
        nodes = np.array([0.3, 1.1, 2.7])
        values = np.polyval(coeffs[::-1], nodes)
        solved = vandermonde_solve(nodes, values)
        assert np.allclose(solved, coeffs, atol=1e-10)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            vandermonde_solve(np.array([1.0, 2.0]), np.array([1.0]))

    def test_duplicate_nodes(self):
        with pytest.raises(ValueError):
            vandermonde_solve(np.array([1.0, 1.0]), np.array([1.0, 2.0]))


class TestUnivariate:
    def test_quadratic(self):
        poly = lambda x: 3.0 + 2.0 * x - 0.7 * x * x
        coeffs = univariate_coefficients_from_evaluations(poly, degree=2)
        assert np.allclose(coeffs, [3.0, 2.0, -0.7], atol=1e-9)

    def test_degree_zero(self):
        coeffs = univariate_coefficients_from_evaluations(lambda x: 5.0, degree=0)
        assert np.allclose(coeffs, [5.0])

    def test_negative_degree(self):
        with pytest.raises(ValueError):
            univariate_coefficients_from_evaluations(lambda x: x, degree=-1)

    def test_characteristic_polynomial_use_case(self, rng):
        # det(I + z L) is a degree-n polynomial in z whose coefficients are the
        # elementary symmetric polynomials of L's eigenvalues.
        from repro.linalg.esp import esp_from_matrix
        from repro.workloads import random_psd_ensemble

        L = random_psd_ensemble(4, seed=5)
        coeffs = univariate_coefficients_from_evaluations(
            lambda z: float(np.linalg.det(np.eye(4) + z * L)), degree=4
        )
        assert np.allclose(coeffs, esp_from_matrix(L), rtol=1e-6, atol=1e-8)


class TestMultivariate:
    def test_bivariate_polynomial(self):
        # f(x, y) = 1 + 2x + 3y + 4xy
        def evaluate(point):
            x, y = point
            return 1.0 + 2.0 * x + 3.0 * y + 4.0 * x * y

        coeffs = multivariate_coefficients_from_evaluations(evaluate, degrees=[1, 1])
        assert coeffs[0, 0] == pytest.approx(1.0, abs=1e-9)
        assert coeffs[1, 0] == pytest.approx(2.0, abs=1e-9)
        assert coeffs[0, 1] == pytest.approx(3.0, abs=1e-9)
        assert coeffs[1, 1] == pytest.approx(4.0, abs=1e-9)

    def test_single_variable_reduces_to_univariate(self):
        def evaluate(point):
            (x,) = point
            return 2.0 - x + 0.5 * x ** 2

        coeffs = multivariate_coefficients_from_evaluations(evaluate, degrees=[2])
        assert np.allclose(coeffs, [2.0, -1.0, 0.5], atol=1e-9)

    def test_degree_zero_axis(self):
        def evaluate(point):
            x, y = point
            return 3.0 + 2.0 * y

        coeffs = multivariate_coefficients_from_evaluations(evaluate, degrees=[0, 1])
        assert coeffs.shape == (1, 2)
        assert coeffs[0, 1] == pytest.approx(2.0, abs=1e-8)

    def test_negative_degree_raises(self):
        with pytest.raises(ValueError):
            multivariate_coefficients_from_evaluations(lambda p: 0.0, degrees=[-1])
