"""Tests for the FKT / Kasteleyn perfect-matching counting oracle."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.planar.graphs import PlanarGraph, cycle_graph, grid_graph, ladder_graph
from repro.planar.kasteleyn import (
    count_perfect_matchings,
    log_count_perfect_matchings,
    matching_edge_marginal,
    pfaffian_orientation,
)
from repro.planar.matching import enumerate_perfect_matchings


def brute_force_count(graph: PlanarGraph) -> int:
    return len(enumerate_perfect_matchings(graph))


class TestKnownCounts:
    def test_single_edge(self):
        g = PlanarGraph(nx.path_graph(2))
        assert count_perfect_matchings(g) == 1

    def test_path_graphs(self):
        assert count_perfect_matchings(PlanarGraph(nx.path_graph(4))) == 1
        assert count_perfect_matchings(PlanarGraph(nx.path_graph(3))) == 0

    def test_cycles(self):
        assert count_perfect_matchings(cycle_graph(4)) == 2
        assert count_perfect_matchings(cycle_graph(6)) == 2
        assert count_perfect_matchings(cycle_graph(5)) == 0

    def test_complete_graph_k4(self):
        assert count_perfect_matchings(PlanarGraph(nx.complete_graph(4))) == 3

    def test_grid_2x2(self):
        assert count_perfect_matchings(grid_graph(2, 2)) == 2

    def test_grid_2x3(self):
        assert count_perfect_matchings(grid_graph(2, 3)) == 3

    def test_grid_4x4(self):
        # classic dimer count of the 4x4 grid
        assert count_perfect_matchings(grid_graph(4, 4)) == 36

    def test_grid_6x6(self):
        # known value 6728 for the 6x6 grid
        assert count_perfect_matchings(grid_graph(6, 6)) == 6728

    def test_grid_2xn_fibonacci(self):
        # 2 x n grid has Fibonacci(n+1) perfect matchings
        fib = [1, 1, 2, 3, 5, 8, 13, 21]
        for n in range(1, 8):
            assert count_perfect_matchings(ladder_graph(n)) == fib[n]

    def test_odd_vertices_zero(self):
        assert count_perfect_matchings(grid_graph(3, 3)) == 0

    def test_empty_graph(self):
        assert count_perfect_matchings(PlanarGraph(nx.Graph())) == 1

    def test_disconnected_graph_factorizes(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3), (3, 4), (4, 5), (5, 2)])  # edge + C4
        assert count_perfect_matchings(PlanarGraph(graph)) == 1 * 2

    def test_no_matching_disconnected_odd_component(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3), (3, 4)])
        assert count_perfect_matchings(PlanarGraph(graph)) == 0

    def test_isolated_vertex(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(2)
        assert count_perfect_matchings(PlanarGraph(graph)) == 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (2, 4), (2, 5), (4, 3)])
    def test_grids(self, rows, cols):
        g = grid_graph(rows, cols)
        assert count_perfect_matchings(g) == brute_force_count(g)

    def test_random_planar_graphs(self):
        rng = np.random.default_rng(0)
        for trial in range(8):
            # random subgraphs of a 3x4 grid with even vertex count
            g = grid_graph(3, 4)
            keep = [v for v in g.vertices() if rng.random() < 0.85]
            if len(keep) % 2 == 1:
                keep = keep[:-1]
            sub = g.subgraph(keep)
            assert count_perfect_matchings(sub) == brute_force_count(sub)

    def test_wheel_like_planar_graph(self):
        graph = nx.wheel_graph(7)  # planar, 8 vertices... actually 7 spokes + hub = 8? no, wheel_graph(7) has 7 nodes
        graph = nx.wheel_graph(8)  # 8 nodes: hub + C7 -> odd cycle, still planar
        g = PlanarGraph(graph)
        assert count_perfect_matchings(g) == brute_force_count(g)


class TestOrientation:
    def test_orientation_covers_all_edges(self):
        g = grid_graph(4, 4)
        orientation = pfaffian_orientation(g)
        assert len(orientation) == g.m
        for key, (u, v) in orientation.items():
            assert key == frozenset((u, v))
            assert g.graph.has_edge(u, v)

    def test_orientation_requires_connected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            pfaffian_orientation(PlanarGraph(graph))

    def test_determinant_is_square_of_count(self):
        g = grid_graph(2, 4)
        orientation = pfaffian_orientation(g)
        index = g.adjacency_index()
        A = np.zeros((g.n, g.n))
        for _, (u, v) in orientation.items():
            A[index[u], index[v]] = 1.0
            A[index[v], index[u]] = -1.0
        count = brute_force_count(g)
        assert np.linalg.det(A) == pytest.approx(count ** 2, rel=1e-8)


class TestLogCountsAndMarginals:
    def test_log_count_large_grid_is_finite(self):
        value = log_count_perfect_matchings(grid_graph(10, 10))
        assert math.isfinite(value)
        assert value > 10  # way more than e^10 matchings

    def test_count_overflow_guard(self):
        # the 56x56 grid has ~exp(914) matchings, beyond float range
        with pytest.raises(OverflowError):
            count_perfect_matchings(grid_graph(56, 56))

    def test_edge_marginals_sum_to_one_per_vertex(self):
        g = grid_graph(4, 4)
        for v in [(0, 0), (1, 1), (2, 3)]:
            total = sum(matching_edge_marginal(g, v, u) for u in g.neighbors(v))
            assert total == pytest.approx(1.0, rel=1e-8)

    def test_edge_marginal_matches_brute_force(self):
        g = grid_graph(2, 4)
        matchings = enumerate_perfect_matchings(g)
        edge = ((0, 0), (0, 1))
        expected = sum(1 for m in matchings if frozenset(edge) in m) / len(matchings)
        assert matching_edge_marginal(g, *edge) == pytest.approx(expected, rel=1e-8)

    def test_edge_marginal_nonedge_is_zero(self):
        g = grid_graph(2, 2)
        assert matching_edge_marginal(g, (0, 0), (1, 1)) == 0.0

    def test_edge_marginal_no_matching_raises(self):
        with pytest.raises(ValueError):
            matching_edge_marginal(grid_graph(3, 3), (0, 0), (0, 1))
