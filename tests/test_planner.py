"""Tests for the cost-aware execution planner (``backend="auto"``).

Covers the ISSUE-4 routing contract: small rounds stay on the in-process
vectorized backend, large pure-Python rounds route to the process backend,
explicit ``backend=`` choices are always honored, fixed-seed samples are
identical under ``auto`` and every forced backend (including the spectral
sampler now routed through the engine), and the parent cost model ships to
process workers for exact work parity.
"""

import os

import numpy as np
import pytest

from repro.distributions.generic import ExplicitDistribution
from repro.dpp.partition import PartitionDPP
from repro.dpp.spectral import sample_dpp_spectral, sample_kdpp_spectral
from repro.dpp.symmetric import SymmetricKDPP
from repro.engine import (
    AutoBackend,
    BackendTraits,
    OracleBatch,
    ProcessPoolBackend,
    RoundPlanner,
    SerialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
    resolve_backend,
    shared_memory_available,
    use_backend,
)
from repro.engine.backends import _pin_worker_blas_threads, _WORKER_BLAS_ENV_VARS
from repro.engine.planner import PLANNED_KINDS
from repro.core.symmetric import sample_symmetric_kdpp_parallel
from repro.core.partition import sample_partition_dpp_parallel
from repro.pram.cost import (
    CalibratedCostModel,
    CostModel,
    OracleCostHint,
    WallClockCoefficients,
    calibrate_wall_clock,
    calibrated_cost_model,
)
from repro.pram.tracker import Tracker, use_tracker
from repro.workloads import random_psd_ensemble

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


# ---------------------------------------------------------------------- #
# traits and the calibrated cost model
# ---------------------------------------------------------------------- #
class TestTraitsAndCalibration:
    def test_backend_traits_shapes(self):
        cores = os.cpu_count() or 1
        vec = VectorizedBackend().traits()
        assert vec.dispatch_overhead_s == 0.0 and not vec.scalar_loop
        ser = SerialBackend().traits()
        assert ser.scalar_loop and ser.parallelism == 1
        thr = ThreadPoolBackend(max_workers=3).traits()
        assert thr.scalar_loop and not thr.escapes_gil
        assert thr.parallelism == min(3, cores)  # effective lanes are host-capped
        proc = ProcessPoolBackend(max_workers=2).traits()
        assert proc.escapes_gil and proc.parallelism == min(2, cores)
        assert proc.dispatch_overhead_s > thr.dispatch_overhead_s

    def test_calibration_cached_per_process(self):
        first = calibrate_wall_clock()
        second = calibrate_wall_clock()
        assert first is second
        assert first.seconds_per_flop_unit > 0
        # interpreted python is far slower per work unit than LAPACK
        assert first.seconds_per_python_unit > first.seconds_per_flop_unit

    def test_calibrated_model_preserves_pram_schedule(self):
        base = CostModel(determinant_exponent=2.5)
        model = calibrated_cost_model(base)
        assert isinstance(model, CalibratedCostModel)
        assert model.determinant_work(10) == base.determinant_work(10)
        # already-calibrated models pass through untouched
        assert calibrated_cost_model(model) is model

    def test_estimate_batch_seconds_splits_lanes(self):
        model = CalibratedCostModel(coefficients=WallClockCoefficients(
            seconds_per_flop_unit=1e-9, seconds_per_python_unit=1e-6))
        lapack = OracleCostHint(matrix_order=20, python_fraction=0.0)
        scalar_python = OracleCostHint(matrix_order=20, python_fraction=1.0,
                                       batch_vectorized=False)
        # a fully interpreted scalar loop prices the full n^omega work at the
        # (1000x dearer) python coefficient
        assert model.estimate_batch_seconds(scalar_python, 10) == pytest.approx(
            1000 * model.estimate_batch_seconds(lapack, 10))
        assert model.python_seconds(lapack, 10) == 0.0
        assert model.python_seconds(scalar_python, 10) == pytest.approx(
            model.estimate_batch_seconds(scalar_python, 10))
        # a vectorized oracle's interpreted share sits one order below the
        # determinant work (bookkeeping around stacked LAPACK calls)
        vector_python = OracleCostHint(matrix_order=20, python_fraction=1.0)
        assert model.python_seconds(vector_python, 10) == pytest.approx(
            model.python_seconds(scalar_python, 10) / 20)


# ---------------------------------------------------------------------- #
# planner routing decisions
# ---------------------------------------------------------------------- #
class _FakeThreads(VectorizedBackend):
    """Thread-shaped traits with in-process execution (host-independent tests)."""

    name = "threads"

    def traits(self):
        return BackendTraits(name=self.name, parallelism=4, scalar_loop=True,
                             dispatch_overhead_s=5e-4, per_query_overhead_s=1e-5)


class _FakeProcess(VectorizedBackend):
    """Process-shaped traits with in-process execution (no pools in tests)."""

    name = "process"

    def traits(self):
        return BackendTraits(name=self.name, parallelism=4, escapes_gil=True,
                             dispatch_overhead_s=2e-3, per_query_overhead_s=5e-6)


def _make_planner(**overrides):
    """A planner with deterministic coefficients, stubbed 4-lane pooled
    backends, and pre-seeded overheads — no probes run, no pools spin up,
    and decisions depend only on the math, not the host's core count."""
    model = CalibratedCostModel(coefficients=WallClockCoefficients(
        seconds_per_flop_unit=1e-9, seconds_per_python_unit=1e-6))
    options = dict(
        backends={
            "vectorized": VectorizedBackend(),
            "threads": _FakeThreads(),
            "process": _FakeProcess(),
        },
        overheads={"vectorized": 0.0, "threads": 5e-4, "process": 2e-3},
    )
    options.update(overrides)
    return RoundPlanner(model, **options)


@pytest.fixture(scope="module")
def small_kdpp():
    return SymmetricKDPP(random_psd_ensemble(12, seed=0), 4)


@pytest.fixture(scope="module")
def partition_dpp():
    L = random_psd_ensemble(30, rank=10, seed=1)
    return PartitionDPP(L, [list(range(15)), list(range(15, 30))], [3, 2])


class TestPlannerRouting:
    def test_small_round_stays_vectorized(self, small_kdpp):
        planner = _make_planner()
        batch = OracleBatch.counting(small_kdpp, [(0,), (1,), (2, 3)])
        assert planner.choose(batch).name == "vectorized"
        decision = planner.last_decision
        assert decision.chosen == "vectorized"
        assert set(decision.estimates) == {"vectorized", "threads", "process"}

    def test_large_python_bound_round_goes_to_process(self, partition_dpp):
        planner = _make_planner()
        subsets = [(i % partition_dpp.n,) for i in range(400)]
        batch = OracleBatch.counting(partition_dpp, subsets)
        assert planner.choose(batch).name == "process"
        estimates = planner.last_decision.estimates
        assert estimates["process"] < estimates["vectorized"]

    def test_large_lapack_round_prefers_in_process(self, small_kdpp):
        # plenty of queries, but all LAPACK-bound on a tiny kernel: the
        # process pool's IPC overhead cannot pay for itself
        planner = _make_planner()
        batch = OracleBatch.counting(small_kdpp, [(0,), (1,)] * 50)
        assert planner.choose(batch).name == "vectorized"

    def test_fixed_route_kinds_skip_estimation(self, small_kdpp):
        planner = _make_planner()
        marginal = OracleBatch.marginal_vector(small_kdpp)
        assert planner.choose(marginal).name == "vectorized"
        assert planner.last_decision.reason == "fixed-route"
        projection = OracleBatch.projection_step(np.eye(6)[:, :3])
        assert planner.choose(projection).name == "vectorized"
        assert planner.last_decision.reason == "fixed-route"
        assert projection.kind not in PLANNED_KINDS

    def test_empty_batch_short_circuits(self, small_kdpp):
        planner = _make_planner()
        batch = OracleBatch.counting(small_kdpp, [])
        assert planner.choose(batch).name == "vectorized"
        assert planner.last_decision.reason == "empty"

    def test_generic_distribution_hint_is_python_bound(self):
        table = {(0, 1): 1.0, (0, 2): 2.0, (1, 2): 0.5}
        dist = ExplicitDistribution(3, table, cardinality=2)
        hint = dist.oracle_cost_hint()
        assert hint.batch_vectorized  # explicit tables vectorize in one pass
        from repro.distributions.base import SubsetDistribution

        default = SubsetDistribution.oracle_cost_hint(dist)
        assert default.python_fraction == 1.0 and not default.batch_vectorized

    def test_seeded_overheads_prevent_probes(self, small_kdpp):
        planner = _make_planner()
        planner.choose(OracleBatch.counting(small_kdpp, [(0,)]))
        # overheads were injected, so nothing was measured/overwritten
        assert planner._overheads["process"] == 2e-3


# ---------------------------------------------------------------------- #
# the auto backend: defaults, overrides, seeded identity
# ---------------------------------------------------------------------- #
class TestAutoBackend:
    def test_auto_is_registered_and_memoized(self):
        auto = resolve_backend("auto")
        assert isinstance(auto, AutoBackend)
        assert resolve_backend("auto") is auto

    def test_auto_rejects_conflicting_construction(self):
        with pytest.raises(ValueError, match="not both"):
            AutoBackend(RoundPlanner(), cost_model=CostModel())

    def test_result_reports_inner_backend(self, small_kdpp):
        auto = AutoBackend(_make_planner())
        result = auto.execute(OracleBatch.counting(small_kdpp, [(0,), (1,)]),
                              tracker=Tracker())
        assert result.backend == "vectorized"

    def test_explicit_backend_bypasses_planner(self, small_kdpp):
        auto = AutoBackend(_make_planner())
        with use_backend(auto):
            before = len(auto.planner.decisions)
            result = resolve_backend("serial").execute(
                OracleBatch.counting(small_kdpp, [(0,), (1,)]), tracker=Tracker())
            assert result.backend == "serial"
            assert len(auto.planner.decisions) == before

    def test_routed_batch_executes_on_chosen_backend(self, partition_dpp):
        executed = []

        class Recording(_FakeProcess):
            def execute(self, batch, *, tracker=None):
                executed.append(batch.kind)
                return super().execute(batch, tracker=tracker)

        planner = _make_planner(backends={
            "vectorized": VectorizedBackend(),
            "threads": _FakeThreads(),
            "process": Recording(),
        })
        auto = AutoBackend(planner)
        subsets = [(i % partition_dpp.n,) for i in range(400)]
        auto.execute(OracleBatch.counting(partition_dpp, subsets), tracker=Tracker())
        assert executed == ["counting"]

    @pytest.mark.parametrize("forced", ["serial", "vectorized", "threads"])
    def test_auto_identical_to_forced_symmetric(self, forced):
        L = random_psd_ensemble(16, rank=8, seed=3)
        reference = sample_symmetric_kdpp_parallel(L, k=5, seed=11, backend=forced)
        with use_backend("auto"):
            auto = sample_symmetric_kdpp_parallel(L, k=5, seed=11)
        assert auto.subset == reference.subset

    @pytest.mark.parametrize("forced", ["serial", "vectorized", "threads"])
    def test_auto_identical_to_forced_partition(self, forced):
        L = random_psd_ensemble(10, seed=4)
        parts = [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        reference = sample_partition_dpp_parallel(L, parts, [2, 2], seed=13,
                                                  backend=forced)
        with use_backend("auto"):
            auto = sample_partition_dpp_parallel(L, parts, [2, 2], seed=13)
        assert auto.subset == reference.subset

    @pytest.mark.parametrize("forced", ["serial", "vectorized", "threads", "auto"])
    def test_spectral_identity_across_backends(self, forced):
        L = random_psd_ensemble(18, rank=9, seed=5)
        reference = sample_kdpp_spectral(L, 5, seed=21, backend="vectorized")
        assert sample_kdpp_spectral(L, 5, seed=21, backend=forced) == reference
        dpp_reference = sample_dpp_spectral(L, seed=22, backend="vectorized")
        assert sample_dpp_spectral(L, seed=22, backend=forced) == dpp_reference


# ---------------------------------------------------------------------- #
# spectral path through the engine
# ---------------------------------------------------------------------- #
class TestSpectralEngineRounds:
    def test_projection_step_round_trip(self):
        rng = np.random.default_rng(0)
        basis, _ = np.linalg.qr(rng.standard_normal((10, 4)))
        batch = OracleBatch.projection_step(basis)
        result = resolve_backend("vectorized").execute(batch, tracker=Tracker())
        np.testing.assert_array_equal(result.values, np.sum(basis * basis, axis=1))
        (returned,) = result.artifacts["bases"]
        np.testing.assert_array_equal(returned, basis)

    def test_projection_step_identical_across_backends(self):
        rng = np.random.default_rng(1)
        basis, _ = np.linalg.qr(rng.standard_normal((12, 5)))
        reference = None
        for backend in (SerialBackend(), VectorizedBackend(), ThreadPoolBackend(max_workers=2)):
            result = backend.execute(
                OracleBatch.projection_step(basis, eliminate=(3,)), tracker=Tracker())
            if reference is None:
                reference = result
            else:
                np.testing.assert_array_equal(result.values, reference.values)
                np.testing.assert_array_equal(result.artifacts["bases"][0],
                                              reference.artifacts["bases"][0])

    def test_stacked_matches_single(self):
        """The fusion contract: G-stacked execution equals G=1 slices bitwise."""
        from repro.linalg.batch import hkpv_projection_step

        rng = np.random.default_rng(2)
        bases = [np.linalg.qr(rng.standard_normal((9, 3)))[0] for _ in range(4)]
        items = [0, 4, 7, 2]
        stacked_w, stacked_b = hkpv_projection_step(np.stack(bases), items)
        for g in range(4):
            single_w, single_b = hkpv_projection_step(bases[g][None], [items[g]])
            np.testing.assert_array_equal(stacked_w[g], single_w[0])
            np.testing.assert_array_equal(stacked_b[g], single_b[0])

    def test_spectral_depth_one_round_per_step(self):
        L = random_psd_ensemble(12, seed=6)
        tracker = Tracker()
        with use_tracker(tracker):
            sample_kdpp_spectral(L, 4, seed=7)
        # eigendecomposition round + one engine round per phase-2 step
        assert tracker.rounds == 5

    def test_spectral_sample_statistics_hold(self):
        # the engine rewrite must not perturb correctness of the sampler
        from repro.dpp.exact import exact_kdpp_distribution

        L = random_psd_ensemble(6, seed=8)
        exact = exact_kdpp_distribution(L, 2)
        rng = np.random.default_rng(9)
        counts = {}
        num_samples = 2000
        for _ in range(num_samples):
            s = sample_kdpp_spectral(L, 2, rng)
            counts[s] = counts.get(s, 0) + 1
        tv = 0.5 * sum(
            abs(counts.get(s, 0) / num_samples - exact.probability_vector([s])[0])
            for s in exact.support)
        assert tv < 0.08


# ---------------------------------------------------------------------- #
# process backend: cost-model passthrough and BLAS pinning
# ---------------------------------------------------------------------- #
class TestProcessBackendSatellites:
    def test_pin_worker_blas_threads_sets_defaults(self, monkeypatch):
        for var in _WORKER_BLAS_ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("MKL_NUM_THREADS", "7")  # explicit settings win
        _pin_worker_blas_threads()
        assert os.environ["OMP_NUM_THREADS"] == "1"
        assert os.environ["OPENBLAS_NUM_THREADS"] == "1"
        assert os.environ["MKL_NUM_THREADS"] == "7"

    def test_pinning_knob_controls_initializer(self):
        assert ProcessPoolBackend(max_workers=1).pin_blas_threads is True
        assert ProcessPoolBackend(max_workers=1,
                                  pin_blas_threads=False).pin_blas_threads is False

    @pytest.mark.skipif(not shared_memory_available(),
                        reason="multiprocessing.shared_memory unavailable")
    def test_custom_cost_model_ships_to_workers(self):
        L = random_psd_ensemble(10, seed=2)
        dist = PartitionDPP(L, [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]], [2, 1])
        subsets = [(0,), (1,), (5,), (0, 5), (2, 6)]
        model = CostModel(determinant_exponent=2.25)
        reference = Tracker(model)
        resolve_backend("vectorized").execute(OracleBatch.counting(dist, subsets),
                                              tracker=reference)
        shipped = Tracker(model)
        backend = resolve_backend("process")
        backend.execute(OracleBatch.counting(dist, subsets), tracker=shipped)
        # parity holds whether the batch ran in workers (shipped model) or
        # fell back in-process (same tracker): either way the custom
        # exponent prices every determinant
        assert shipped.work == pytest.approx(reference.work)


# ---------------------------------------------------------------------- #
# the per-byte shipping coefficient (payload-publication pricing)
# ---------------------------------------------------------------------- #
class TestShippingCoefficient:
    def test_shipping_seconds_prices_bytes_linearly(self):
        model = CalibratedCostModel(coefficients=WallClockCoefficients(
            seconds_per_shipped_byte=1e-6))
        assert model.shipping_seconds(1000) == pytest.approx(1e-3)
        assert model.shipping_seconds(0) == 0.0
        assert model.shipping_seconds(-5) == 0.0

    def test_calibration_measures_a_positive_coefficient(self):
        coefficients = calibrate_wall_clock()
        assert coefficients.seconds_per_shipped_byte > 0.0
        # sanity decade: publication cannot plausibly be slower than 1 ms/KB
        assert coefficients.seconds_per_shipped_byte < 1e-6

    def test_first_shipment_penalty_keeps_wide_rounds_in_process(self, partition_dpp):
        class _ShippingProcess(_FakeProcess):
            """Process-shaped backend reporting a huge unpublished payload."""

            def shipping_bytes(self, batch):
                return 1 << 30

        shipping_model = CalibratedCostModel(coefficients=WallClockCoefficients(
            seconds_per_flop_unit=1e-9, seconds_per_python_unit=1e-6,
            seconds_per_shipped_byte=1e-6))
        subsets = [(i % partition_dpp.n,) for i in range(400)]
        batch = OracleBatch.counting(partition_dpp, subsets)
        # without the penalty this batch routes to process (see
        # test_large_python_bound_round_goes_to_process)...
        assert _make_planner().choose(batch).name == "process"
        # ...with a 1 GiB unpublished payload priced at 1 µs/byte it cannot
        planner = _make_planner(backends={
            "vectorized": VectorizedBackend(),
            "threads": _FakeThreads(),
            "process": _ShippingProcess(),
        })
        planner._calibrated = shipping_model
        assert planner.choose(batch).name != "process"
        estimates = planner.last_decision.estimates
        assert estimates["process"] > 1000.0  # the publication term dominates

    def test_already_published_payloads_are_free(self, partition_dpp):
        # the stub inherits shipping_bytes() == 0, so with an explicit zero
        # payload the penalty vanishes and the process route wins again
        planner = _make_planner()
        subsets = [(i % partition_dpp.n,) for i in range(400)]
        batch = OracleBatch.counting(partition_dpp, subsets)
        assert planner.choose(batch).name == "process"
        assert planner.last_decision.estimates["process"] < \
            planner.last_decision.estimates["vectorized"]

    def test_process_backend_estimates_unpublished_bytes(self, small_kdpp):
        backend = ProcessPoolBackend(max_workers=1)
        matrix = np.eye(20)
        batch = OracleBatch.log_principal_minors(matrix, [(0,), (1,)])
        assert backend.shipping_bytes(batch) == matrix.nbytes
        backend._mark_shipped(batch)
        assert backend.shipping_bytes(batch) == 0  # same object: already shipped
        other = OracleBatch.log_principal_minors(np.eye(20), [(0,)])
        assert backend.shipping_bytes(other) == other.matrix.nbytes  # new object

    def test_distribution_payload_bytes_track_warm_artifacts(self):
        kdpp = SymmetricKDPP(random_psd_ensemble(12, seed=0), 4, validate=False)
        backend = ProcessPoolBackend(max_workers=1)
        batch = OracleBatch.counting(kdpp, [(0,)])
        cold_bytes = backend.shipping_bytes(batch)
        assert cold_bytes >= kdpp.L.nbytes
        kdpp.factor_gram  # warming enlarges the payload...
        warm_bytes = backend.shipping_bytes(batch)
        assert warm_bytes > cold_bytes
        backend._mark_shipped(batch)  # ...until it has shipped once
        assert backend.shipping_bytes(batch) == 0
