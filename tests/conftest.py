"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    clustered_ensemble,
    random_low_rank_ensemble,
    random_npsd_ensemble,
    random_psd_ensemble,
)


@pytest.fixture
def rng():
    return np.random.default_rng(20230428)


@pytest.fixture
def small_psd():
    """A well-conditioned 6x6 PSD ensemble matrix."""
    return random_psd_ensemble(6, rank=6, scale=1.5, seed=11)


@pytest.fixture
def small_low_rank_psd():
    """A 7x7 PSD ensemble of rank 4."""
    return random_low_rank_ensemble(7, rank=4, seed=13)


@pytest.fixture
def small_npsd():
    """A 6x6 nonsymmetric PSD ensemble matrix."""
    return random_npsd_ensemble(6, symmetric_scale=1.0, skew_scale=0.8, seed=17)


@pytest.fixture
def clustered():
    """A clustered PSD ensemble with 2 parts (for Partition-DPPs)."""
    L, parts = clustered_ensemble([4, 4], within=0.7, across=0.05, scale=1.5, seed=19)
    return L, parts


def empirical_distribution(samples, n):
    """Build a normalized subset->frequency table from a list of subsets."""
    from repro.distributions.generic import ExplicitDistribution

    table = {}
    for subset in samples:
        key = tuple(sorted(subset))
        table[key] = table.get(key, 0.0) + 1.0
    return ExplicitDistribution(n, table)
