"""Tests for sequential and parallel (Theorem 11) perfect-matching samplers."""

import numpy as np
import pytest

from repro.planar.graphs import PlanarGraph, cycle_graph, grid_graph, ladder_graph
from repro.planar.matching import enumerate_perfect_matchings, sample_planar_matching_sequential
from repro.planar.parallel_matching import sample_planar_matching_parallel
from repro.pram.tracker import Tracker

import networkx as nx


def is_perfect_matching(graph: PlanarGraph, edges) -> bool:
    covered = set()
    for edge in edges:
        u, v = tuple(edge)
        if not graph.graph.has_edge(u, v):
            return False
        if u in covered or v in covered:
            return False
        covered.update((u, v))
    return covered == set(graph.vertices())


def empirical_matching_tv(sample_fn, graph, num_samples, seed=0):
    matchings = enumerate_perfect_matchings(graph)
    target = 1.0 / len(matchings)
    rng = np.random.default_rng(seed)
    counts = {m: 0 for m in matchings}
    for _ in range(num_samples):
        result = sample_fn(rng)
        key = tuple(sorted(result.subset, key=lambda e: sorted(map(repr, e))))
        assert key in counts, "sampler produced a non-matching or unknown matching"
        counts[key] += 1
    return 0.5 * sum(abs(c / num_samples - target) for c in counts.values())


class TestSequentialMatchingSampler:
    def test_output_is_perfect_matching(self):
        g = grid_graph(4, 4)
        result = sample_planar_matching_sequential(g, seed=0)
        assert is_perfect_matching(g, result.subset)

    def test_depth_is_linear(self):
        g = grid_graph(4, 4)
        result = sample_planar_matching_sequential(g, seed=1)
        assert result.report.rounds == g.n // 2

    def test_uniformity_on_cycle(self):
        g = cycle_graph(6)
        tv = empirical_matching_tv(
            lambda rng: sample_planar_matching_sequential(g, seed=rng), g, 600, seed=2)
        assert tv < 0.08

    def test_uniformity_on_small_grid(self):
        g = grid_graph(2, 4)
        tv = empirical_matching_tv(
            lambda rng: sample_planar_matching_sequential(g, seed=rng), g, 900, seed=3)
        assert tv < 0.08

    def test_odd_graph_raises(self):
        with pytest.raises(ValueError):
            sample_planar_matching_sequential(grid_graph(3, 3), seed=0)

    def test_no_matching_raises(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3), (4, 5)])
        graph.add_node(6)
        graph.add_node(7)
        with pytest.raises(ValueError):
            sample_planar_matching_sequential(PlanarGraph(graph), seed=0)


class TestParallelMatchingSampler:
    def test_output_is_perfect_matching(self):
        g = grid_graph(6, 6)
        result = sample_planar_matching_parallel(g, seed=0)
        assert is_perfect_matching(g, result.subset)

    def test_uniformity_on_small_grid(self):
        g = grid_graph(2, 4)
        tv = empirical_matching_tv(
            lambda rng: sample_planar_matching_parallel(g, seed=rng), g, 900, seed=1)
        assert tv < 0.08

    def test_uniformity_on_4x4_grid(self):
        g = grid_graph(4, 4)
        tv = empirical_matching_tv(
            lambda rng: sample_planar_matching_parallel(g, seed=rng), g, 1200, seed=2)
        assert tv < 0.1

    def test_depth_improves_on_sequential(self):
        g = grid_graph(8, 8)
        parallel = sample_planar_matching_parallel(g, seed=3)
        sequential = sample_planar_matching_sequential(g, seed=3)
        assert parallel.report.rounds < sequential.report.rounds
        assert sequential.report.rounds == g.n // 2

    def test_depth_scales_sublinearly(self):
        rounds = {}
        for side in (4, 8):
            g = grid_graph(side, side)
            rounds[side] = sample_planar_matching_parallel(g, seed=4).report.rounds
        # quadrupling n should far less than quadruple the depth
        assert rounds[8] <= 3 * rounds[4]

    def test_ladder_graphs(self):
        g = ladder_graph(8)
        result = sample_planar_matching_parallel(g, seed=5)
        assert is_perfect_matching(g, result.subset)

    def test_odd_graph_raises(self):
        with pytest.raises(ValueError):
            sample_planar_matching_parallel(grid_graph(3, 3), seed=0)

    def test_no_matching_raises(self):
        # even cycle with a pendant pair that disconnects matchability
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        with pytest.raises(ValueError):
            sample_planar_matching_parallel(PlanarGraph(graph), seed=0)

    def test_tracker_passthrough(self):
        g = grid_graph(4, 4)
        tracker = Tracker()
        result = sample_planar_matching_parallel(g, seed=6, tracker=tracker)
        assert result.report.rounds == tracker.rounds

    def test_separator_size_recorded(self):
        g = grid_graph(8, 8)
        result = sample_planar_matching_parallel(g, seed=7)
        assert result.report.extra.get("max_separator", 0) >= 1
