"""Tests for end-to-end request tracing, SLO tracking and the flight recorder.

Covers the :mod:`repro.obs.context` id/propagation primitives, span recording
(including the ``dropped_spans`` counter), the P² streaming quantile
estimator, per-family SLO rollups in the Prometheus exposition, the
slow-request flight recorder with its Chrome trace-event export, the
``python -m repro.obs`` CLI, and the tracing determinism contract: fixed-seed
samples are byte-identical with tracing off / on / flight-recorder armed,
fused or unfused, single-node or cluster — and spans survive ``kill_node``
failover with the extra hop visible in the trace.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro import obs
from repro.cluster import LocalCluster
from repro.obs.context import (
    TraceContext,
    context_from_wire,
    next_span_id,
    next_trace_id,
    reset_ids,
)
from repro.obs.export import chrome_trace_events
from repro.obs.slo import P2Quantile, SLOTracker
from repro.obs.__main__ import main as obs_cli


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with process-wide observability dark."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def _psd(n: int = 24, rank: int = 6, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    factor = rng.standard_normal((n, rank))
    return factor @ factor.T


def _spans():
    return [r for r in obs.tracer().records() if r.get("type") == "span"]


# ---------------------------------------------------------------------- #
# trace-context primitives
# ---------------------------------------------------------------------- #
class TestTraceContext:
    def test_ids_are_deterministic_counters(self):
        reset_ids()
        first = (next_trace_id(), next_span_id())
        reset_ids()
        assert (next_trace_id(), next_span_id()) == first
        # never wall-clock or random: the same seed replays the same ids
        assert first[0].startswith("t") and first[1].startswith("s")

    def test_child_keeps_trace_id_and_sets_parent(self):
        ctx = TraceContext(trace_id="t1", span_id="s1")
        child = ctx.child()
        assert child.trace_id == "t1"
        assert child.parent_id == "s1"
        assert child.span_id != "s1"

    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id="t9", span_id="s9", parent_id="s8")
        wired = context_from_wire(ctx.as_wire())
        assert wired is not None
        assert (wired.trace_id, wired.span_id) == ("t9", "s9")
        # parent never ships: the wire form marks the remote span boundary
        assert wired.parent_id is None
        assert context_from_wire(None) is None

    def test_activate_scopes_ambient_context(self):
        ctx = TraceContext(trace_id="t2", span_id="s2")
        assert obs.current_context() is None
        with obs.activate(ctx):
            assert obs.current_context() is ctx
        assert obs.current_context() is None


# ---------------------------------------------------------------------- #
# span recording + dropped counter
# ---------------------------------------------------------------------- #
class TestSpanRecording:
    def test_spans_dark_when_disabled(self):
        assert obs.start_span("x", category="test") is None
        with obs.span("y", category="test"):
            pass
        assert obs.tracer().records() == []

    def test_span_tree_parents_nest(self):
        obs.enable(trace=True)
        with obs.span("outer", category="test"):
            with obs.span("inner", category="test"):
                pass
        spans = _spans()
        outer = next(s for s in spans if s["name"] == "outer")
        inner = next(s for s in spans if s["name"] == "inner")
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer.get("parent_id") is None

    def test_dropped_spans_counted_and_exported(self):
        tracer = obs.tracer()
        obs.enable(trace=True)
        capacity = tracer.capacity
        for index in range(capacity + 7):
            tracer.event("flood", index=index)
        assert tracer.dropped_spans == 7
        snap = obs.snapshot()
        assert snap["trace"]["dropped_spans"] == 7
        text = obs.render_prometheus()
        assert "repro_tracer_dropped_spans_total 7" in text


# ---------------------------------------------------------------------- #
# P² streaming quantiles + SLO tracker
# ---------------------------------------------------------------------- #
class TestSLO:
    def test_p2_exact_for_small_samples(self):
        q = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            q.observe(v)
        assert q.value() == pytest.approx(2.0)

    def test_p2_tracks_quantiles_of_large_stream(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(scale=1.0, size=5000)
        for p in (0.5, 0.95, 0.99):
            q = P2Quantile(p)
            for v in values:
                q.observe(float(v))
            exact = float(np.quantile(values, p))
            assert q.value() == pytest.approx(exact, rel=0.05)

    def test_tracker_snapshot_and_prometheus(self):
        tracker = SLOTracker(enabled=True)
        for ms in range(1, 101):
            tracker.observe_request("dpp", ms / 1000.0)
        tracker.observe_op("drain", 0.25)
        state = tracker.slo_state()
        fam = state["request_latency"]["dpp"]
        assert fam["count"] == 100
        assert fam["p50"] < fam["p95"] < fam["p99"]
        json.dumps(state)

    def test_slo_quantiles_reach_prometheus(self):
        obs.enable(slo=True)
        for ms in range(1, 40):
            obs.slo().observe_request("dpp", ms / 1000.0)
        text = obs.render_prometheus()
        for quantile in ("p50", "p95", "p99"):
            assert (f'repro_slo_request_latency_seconds{{family="dpp",'
                    f'quantile="{quantile}"}}') in text
        assert ('repro_slo_request_latency_seconds_observations_total'
                '{family="dpp"} 39') in text


# ---------------------------------------------------------------------- #
# flight recorder + chrome export
# ---------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_budget_zero_captures_every_root(self):
        obs.enable(trace=True, flight_budget=0.0)
        with obs.request("slow-thing", family="dpp"):
            pass
        recorder = obs.flight_recorder()
        assert recorder.captured_total == 1
        capture = recorder.captures()[0]
        assert capture["records"], "capture must hold the full span tree"

    def test_disarmed_recorder_captures_nothing(self):
        obs.enable(trace=True)
        with obs.request("fast-thing", family="dpp"):
            pass
        assert obs.flight_recorder().captured_total == 0

    def test_capture_converts_to_valid_chrome_trace(self):
        obs.enable(trace=True, flight_budget=0.0)
        with obs.request("root", family="dpp"):
            with obs.span("child", category="test"):
                pass
        capture = obs.flight_recorder().captures()[0]
        document = obs.chrome_trace(capture["records"])
        parsed = json.loads(json.dumps(document))
        events = parsed["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        for event in events:
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 1

    def test_chrome_lanes_separate_traces(self):
        records = [
            {"type": "span", "name": "a", "category": "t", "trace_id": "t1",
             "span_id": "s1", "start": 1.0, "duration": 0.5, "monotonic": 1.5},
            {"type": "span", "name": "b", "category": "t", "trace_id": "t2",
             "span_id": "s2", "start": 1.1, "duration": 0.5, "monotonic": 1.6},
        ]
        events = chrome_trace_events(records)
        assert len({e["tid"] for e in events}) == 2


# ---------------------------------------------------------------------- #
# single-node end to end
# ---------------------------------------------------------------------- #
class TestSingleNodeTracing:
    def test_fused_drain_produces_connected_tree_with_links(self):
        obs.enable(trace=True, slo=True)
        session = repro.serve(_psd())
        try:
            scheduler = session.scheduler(seed=7)
            for _ in range(4):
                scheduler.submit(3)
            scheduler.drain()
        finally:
            session.close()
        spans = _spans()
        by_id = {s["span_id"]: s for s in spans}
        orphans = [s for s in spans
                   if s.get("parent_id") and s["parent_id"] not in by_id]
        assert not orphans
        requests = [s for s in spans if s["name"] == "scheduled-request"]
        assert len(requests) == 4
        for req in requests:
            tree = [s for s in spans if s["trace_id"] == req["trace_id"]]
            assert any(s["name"] == "queue-wait" for s in tree)
        fused = [s for s in spans if s["category"] == "fused_round"]
        assert fused
        # fused rounds link back into every member's request trace
        linked_traces = {l["trace_id"]
                         for s in fused for l in (s.get("links") or [])}
        member_traces = {s["trace_id"] for s in requests}
        assert member_traces <= linked_traces

    def test_round_records_stamped_with_trace_ids(self):
        obs.enable(trace=True)
        session = repro.serve(_psd())
        try:
            session.sample(3, seed=11)
        finally:
            session.close()
        rounds = [r for r in obs.tracer().records() if r.get("type") == "round"]
        assert rounds
        assert all(r.get("trace_id") for r in rounds)

    def test_slo_observes_one_latency_per_request(self):
        obs.enable(trace=True, slo=True)
        session = repro.serve(_psd())
        try:
            scheduler = session.scheduler(seed=7)
            for _ in range(3):
                scheduler.submit(3)
            scheduler.drain()
            session.sample(3, seed=11)
        finally:
            session.close()
        state = obs.slo().slo_state()
        counts = {fam: row["count"]
                  for fam, row in state["request_latency"].items()}
        # 3 scheduled requests + 1 direct sample, no double count for the
        # nested session.sample inside the scheduler worker
        assert sum(counts.values()) == 4

    def test_process_backend_reports_worker_spans(self):
        from repro.dpp.symmetric import SymmetricKDPP
        from repro.engine.backends import ProcessPoolBackend
        from repro.engine.batch import OracleBatch
        from repro.pram.tracker import Tracker
        from repro.workloads import random_psd_ensemble

        obs.enable(trace=True)
        kdpp = SymmetricKDPP(random_psd_ensemble(14, seed=0), 6)
        subsets = [(0, 1), (2, 3), (4, 5), (6, 7)]
        backend = ProcessPoolBackend(max_workers=2, chunk_size=2)
        try:
            with obs.request("probe", family="kdpp"):
                backend.execute(OracleBatch.counting(kdpp, subsets),
                                tracker=Tracker())
        finally:
            backend.close()
        workers = [s for s in _spans() if s["category"] == "worker_chunk"]
        if not workers:
            pytest.skip("process pool degraded (no shared memory); "
                        "worker spans need real fan-out")
        for span in workers:
            assert span["parent_id"] and ".w" in span["span_id"]
        # chunks under one round get distinct, hierarchical span ids
        assert len({s["span_id"] for s in workers}) == len(workers)


# ---------------------------------------------------------------------- #
# determinism: tracing never changes samples
# ---------------------------------------------------------------------- #
class TestTracingDeterminism:
    def _draws(self, fused: bool):
        session = repro.serve(_psd())
        try:
            if fused:
                scheduler = session.scheduler(seed=7)
                for _ in range(3):
                    scheduler.submit(3)
                return [r.subset for r in scheduler.drain()]
            return [session.sample(3, seed=s).subset for s in (1, 2, 3)]
        finally:
            session.close()

    @pytest.mark.parametrize("fused", [False, True])
    def test_fixed_seed_identical_off_on_armed(self, fused):
        obs.reset(); obs.disable()
        base = self._draws(fused)
        obs.reset()
        obs.enable(trace=True, slo=True)
        traced = self._draws(fused)
        obs.reset()
        obs.enable(trace=True, slo=True, flight_budget=0.0)
        armed = self._draws(fused)
        assert base == traced == armed


# ---------------------------------------------------------------------- #
# cluster end to end
# ---------------------------------------------------------------------- #
class TestClusterTracing:
    def _cluster_draws(self, matrix):
        with LocalCluster(nodes=3, replication=2, backend="serial") as cluster:
            session = repro.serve_cluster(matrix, cluster=cluster,
                                          scheduler_seed=3)
            for _ in range(3):
                session.submit(3)
            draws = [r.subset for r in session.drain()]
            draws.append(session.sample(2, seed=9).subset)
            return draws

    def test_cluster_identity_and_connected_tree(self):
        matrix = _psd()
        obs.reset(); obs.disable()
        base = self._cluster_draws(matrix)
        obs.reset()
        obs.enable(trace=True, slo=True, flight_budget=0.0)
        traced = self._cluster_draws(matrix)
        assert base == traced

        spans = _spans()
        by_id = {s["span_id"]: s for s in spans}
        orphans = [s for s in spans
                   if s.get("parent_id") and s["parent_id"] not in by_id]
        assert not orphans
        requests = [s for s in spans if s["name"] == "cluster-request"]
        assert len(requests) == 3
        # each client-side request root reaches the node's scheduler
        for req in requests:
            tree = [s for s in spans if s["trace_id"] == req["trace_id"]]
            names = {s["name"] for s in tree}
            assert {"scheduled-request", "queue-wait"} <= names
        # the drain trace carries the wire hop + server-side op span and
        # links back to every queued request's root
        drain = next(s for s in spans if s["name"] == "cluster-drain")
        categories = {s["category"] for s in spans
                      if s["trace_id"] == drain["trace_id"]}
        assert {"wire", "node_op"} <= categories
        link_ids = {(l["trace_id"], l["span_id"])
                    for l in drain.get("links") or []}
        request_ids = {(s["trace_id"], s["span_id"]) for s in requests}
        assert request_ids <= link_ids
        # SLO saw the cluster requests; flight recorder captured roots
        assert obs.slo().slo_state()["request_latency"]
        assert obs.flight_recorder().captured_total > 0

    def test_spans_survive_kill_node_failover(self):
        obs.enable(trace=True)
        matrix = _psd()
        with LocalCluster(nodes=3, replication=2,
                          backend="serial") as cluster:
            session = repro.serve_cluster(matrix, cluster=cluster,
                                          scheduler_seed=3)
            cluster.kill_node(session.owners[0])
            session.submit(3)
            draws = [r.subset for r in session.drain()]
        assert draws
        assert obs.tracer().events("kill_node")
        wire = [s for s in _spans() if s["category"] == "wire"]
        outcomes = [s.get("outcome") for s in wire]
        # the dead primary shows up as a failover hop, the replica as ok
        assert "failover" in outcomes and "ok" in outcomes


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestObsCLI:
    def test_snapshot_subcommand(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        assert obs_cli(["snapshot", "--demo", "--out", str(out)]) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["trace"]["records"]
        assert snapshot["slo"]["request_latency"]

    def test_prom_subcommand(self, capsys):
        assert obs_cli(["prom", "--demo"]) == 0
        text = capsys.readouterr().out
        assert "repro_slo_request_latency_seconds" in text
        assert "repro_tracer_dropped_spans_total" in text

    def test_trace_subcommand_writes_chrome_json(self, tmp_path):
        out = tmp_path / "chrome.json"
        assert obs_cli(["trace", "--demo", "--flight", "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert all(e["ph"] == "X" for e in document["traceEvents"])

    def test_trace_reads_prior_snapshot(self, tmp_path):
        snap = tmp_path / "snap.json"
        chrome = tmp_path / "chrome.json"
        assert obs_cli(["snapshot", "--demo", "--out", str(snap)]) == 0
        assert obs_cli(["trace", "--in", str(snap),
                        "--out", str(chrome)]) == 0
        assert json.loads(chrome.read_text())["traceEvents"]
