"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_generator(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(3)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_children_are_independent_streams(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(4) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [g.random(3) for g in spawn_generators(5, 2)]
        b = [g.random(3) for g in spawn_generators(5, 2)]
        for x, y in zip(a, b):
            assert np.allclose(x, y)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(9)
        gens = spawn_generators(parent, 4)
        assert len(gens) == 4

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []
