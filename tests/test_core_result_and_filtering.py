"""Tests for SampleResult/SamplerReport containers and filtering internals."""

import math

import numpy as np
import pytest

from repro.core.filtering import _sample_small_kernel_dpp
from repro.core.result import SampleResult, SamplerReport
from repro.dpp.exact import exact_dpp_distribution
from repro.dpp.kernels import ensemble_to_kernel, kernel_to_ensemble
from repro.pram.tracker import Tracker
from repro.workloads import bounded_spectrum_ensemble


class TestSamplerReport:
    def test_defaults(self):
        report = SamplerReport()
        assert report.rounds == 0
        assert report.mean_acceptance == 1.0
        assert not report.failed

    def test_mean_acceptance(self):
        report = SamplerReport(acceptance_rates=[0.2, 0.4])
        assert report.mean_acceptance == pytest.approx(0.3)

    def test_from_tracker(self):
        tracker = Tracker()
        with tracker.round():
            tracker.charge(work=3.0, machines=2.0, oracle_calls=1)
        report = SamplerReport.from_tracker(tracker)
        assert report.rounds == 1
        assert report.work == pytest.approx(3.0)
        assert report.oracle_calls == 1
        assert report.peak_machines == pytest.approx(2.0)

    def test_update_from_tracker(self):
        tracker = Tracker()
        report = SamplerReport()
        with tracker.round():
            pass
        report.update_from_tracker(tracker)
        assert report.rounds == 1

    def test_extra_dict_is_per_instance(self):
        a, b = SamplerReport(), SamplerReport()
        a.extra["x"] = 1.0
        assert "x" not in b.extra


class TestSampleResult:
    def test_container_protocol(self):
        result = SampleResult(subset=(1, 3, 5), report=SamplerReport())
        assert len(result) == 3
        assert 3 in result
        assert 2 not in result
        assert list(result) == [1, 3, 5]

    def test_empty_subset(self):
        result = SampleResult(subset=(), report=SamplerReport())
        assert len(result) == 0
        assert list(result) == []


class TestSmallKernelSampler:
    """Lemma 44: rejection sampling against independent Bernoulli proposals."""

    def _sample_many(self, K, num, seed):
        rng = np.random.default_rng(seed)
        tracker = Tracker()
        samples = []
        for _ in range(num):
            report = SamplerReport()
            samples.append(_sample_small_kernel_dpp(K, 0.05, rng, tracker, report))
        return samples

    def test_distribution_matches_exact(self):
        # small-eigenvalue kernel on 5 elements
        L = bounded_spectrum_ensemble(5, kernel_lambda_max=0.3, seed=0)
        K = ensemble_to_kernel(L)
        K = 0.5 * (K + K.T)
        exact = exact_dpp_distribution(L)
        samples = self._sample_many(K, 2500, seed=1)
        counts = {}
        for s in samples:
            counts[s] = counts.get(s, 0) + 1
        tv = 0.5 * sum(
            abs(counts.get(s, 0) / len(samples) -
                (exact.probability_vector([s])[0] if s in exact.support else 0.0))
            for s in set(exact.support) | set(counts)
        )
        assert tv < 0.08

    def test_empty_kernel(self):
        rng = np.random.default_rng(0)
        out = _sample_small_kernel_dpp(np.zeros((0, 0)), 0.1, rng, Tracker(), SamplerReport())
        assert out == ()

    def test_kernel_with_eigenvalue_one_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            _sample_small_kernel_dpp(np.eye(3), 0.1, rng, Tracker(), SamplerReport())

    def test_charges_rounds(self):
        L = bounded_spectrum_ensemble(6, kernel_lambda_max=0.2, seed=2)
        K = ensemble_to_kernel(L)
        tracker = Tracker()
        rng = np.random.default_rng(3)
        _sample_small_kernel_dpp(0.5 * (K + K.T), 0.1, rng, tracker, SamplerReport())
        assert tracker.rounds >= 1


class TestKernelRoundtripWithRidge:
    def test_ridge_allows_near_singular_kernels(self):
        K = np.diag([0.999999999999, 0.5])
        L = kernel_to_ensemble(K, ridge=1e-9)
        assert np.all(np.isfinite(L))
