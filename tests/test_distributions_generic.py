"""Tests for ExplicitDistribution, proposals, and the base-class machinery."""

import numpy as np
import pytest

from repro.distributions.generic import (
    ExplicitDistribution,
    ProductMarginalProposal,
    uniform_distribution_on_size_k,
)
from repro.utils.subsets import all_subsets_of_size


class TestExplicitDistribution:
    def test_normalization(self):
        dist = ExplicitDistribution(3, {(0,): 1.0, (1,): 3.0})
        assert dist.probability((1,)) == pytest.approx(0.75)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            ExplicitDistribution(2, {(0,): -1.0})

    def test_rejects_empty_support(self):
        with pytest.raises(ValueError):
            ExplicitDistribution(2, {(0,): 0.0})

    def test_rejects_out_of_range_subsets(self):
        with pytest.raises(ValueError):
            ExplicitDistribution(2, {(5,): 1.0})

    def test_rejects_cardinality_violations(self):
        with pytest.raises(ValueError):
            ExplicitDistribution(3, {(0,): 1.0, (0, 1): 1.0}, cardinality=1)

    def test_counting(self):
        dist = ExplicitDistribution(3, {(0, 1): 1.0, (0, 2): 1.0, (1, 2): 2.0})
        assert dist.counting((0,)) == pytest.approx(0.5)
        assert dist.counting(()) == pytest.approx(1.0)

    def test_marginal_vector(self):
        dist = uniform_distribution_on_size_k(4, 2)
        assert np.allclose(dist.marginal_vector(), np.full(4, 0.5))

    def test_marginal_vector_conditioned(self):
        dist = uniform_distribution_on_size_k(4, 2)
        marginals = dist.marginal_vector((0,))
        assert marginals[0] == pytest.approx(1.0)
        assert np.allclose(marginals[1:], np.full(3, 1.0 / 3.0))

    def test_condition_relabels(self):
        dist = uniform_distribution_on_size_k(4, 2)
        cond = dist.condition((1,))
        assert cond.n == 3
        assert cond.ground_labels == (0, 2, 3)
        assert cond.cardinality == 1

    def test_condition_zero_probability(self):
        dist = ExplicitDistribution(3, {(0, 1): 1.0})
        with pytest.raises(ValueError):
            dist.condition((2,))

    def test_down_project_marginal_consistency(self):
        dist = uniform_distribution_on_size_k(5, 3)
        down = dist.down_project(1)
        # mu_1 assigns mass p_i / k to {i}
        assert down.cardinality == 1
        for i in range(5):
            assert down.unnormalized((i,)) == pytest.approx(3.0 / 5.0 / 3.0)

    def test_down_project_requires_cardinality(self):
        dist = ExplicitDistribution(3, {(0,): 1.0, (0, 1): 1.0})
        with pytest.raises(ValueError):
            dist.down_project(1)

    def test_down_project_invalid_ell(self):
        dist = uniform_distribution_on_size_k(4, 2)
        with pytest.raises(ValueError):
            dist.down_project(3)

    def test_total_variation_identical_is_zero(self):
        dist = uniform_distribution_on_size_k(4, 2)
        assert dist.total_variation(dist) == pytest.approx(0.0)

    def test_total_variation_disjoint_is_one(self):
        a = ExplicitDistribution(3, {(0,): 1.0})
        b = ExplicitDistribution(3, {(1,): 1.0})
        assert a.total_variation(b) == pytest.approx(1.0)

    def test_total_variation_mismatched_ground_sets(self):
        a = ExplicitDistribution(3, {(0,): 1.0})
        b = ExplicitDistribution(4, {(0,): 1.0})
        with pytest.raises(ValueError):
            a.total_variation(b)

    def test_sample_lands_in_support(self):
        dist = uniform_distribution_on_size_k(5, 2)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert len(dist.sample(rng)) == 2

    def test_probability_vector(self):
        dist = uniform_distribution_on_size_k(4, 2)
        probs = dist.probability_vector(list(all_subsets_of_size(4, 2)))
        assert np.allclose(probs, np.full(6, 1.0 / 6.0))

    def test_joint_marginal(self):
        dist = uniform_distribution_on_size_k(4, 2)
        assert dist.joint_marginal((0, 1)) == pytest.approx(1.0 / 6.0)

    def test_expected_size(self):
        dist = uniform_distribution_on_size_k(4, 2)
        assert dist.expected_size() == pytest.approx(2.0)

    def test_to_explicit_roundtrip(self):
        dist = uniform_distribution_on_size_k(4, 2)
        again = dist.to_explicit()
        assert dist.total_variation(again) < 1e-12

    def test_enumerate_support_guard(self):
        dist = uniform_distribution_on_size_k(4, 2)
        with pytest.raises(ValueError):
            list(dist.enumerate_support(max_ground_set=2))


class TestUniformDistribution:
    def test_support_size(self):
        dist = uniform_distribution_on_size_k(5, 3)
        assert len(dist.support) == 10

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            uniform_distribution_on_size_k(3, 5)


class TestProductMarginalProposal:
    def test_tuple_shapes(self):
        proposal = ProductMarginalProposal(np.array([0.5, 0.5, 1.0]), 2)
        tuples = proposal.sample_tuples(3, 10, seed=0)
        assert tuples.shape == (10, 3)
        assert tuples.min() >= 0 and tuples.max() <= 2

    def test_log_density_tuple(self):
        marginals = np.array([0.5, 1.0, 0.5])
        proposal = ProductMarginalProposal(marginals, 2)
        expected = np.log(0.5 / 2) + np.log(1.0 / 2)
        assert proposal.log_density_tuple([0, 1]) == pytest.approx(expected)

    def test_log_density_tuples_vectorized(self):
        marginals = np.array([0.5, 1.0, 0.5])
        proposal = ProductMarginalProposal(marginals, 2)
        tuples = np.array([[0, 1], [2, 2]])
        vec = proposal.log_density_tuples(tuples)
        assert vec[0] == pytest.approx(proposal.log_density_tuple([0, 1]))
        assert vec[1] == pytest.approx(proposal.log_density_tuple([2, 2]))

    def test_zero_marginal_gives_minus_inf(self):
        proposal = ProductMarginalProposal(np.array([0.0, 1.0]), 1)
        assert proposal.log_density_tuple([0]) == -np.inf

    def test_single_element_distribution_normalized(self):
        proposal = ProductMarginalProposal(np.array([0.2, 0.8, 1.0]), 2)
        assert proposal.single.sum() == pytest.approx(1.0)

    def test_empirical_frequencies_match(self):
        marginals = np.array([0.2, 0.8, 1.0])
        proposal = ProductMarginalProposal(marginals, 2)
        tuples = proposal.sample_tuples(1, 20000, seed=1).ravel()
        freqs = np.bincount(tuples, minlength=3) / 20000
        assert np.allclose(freqs, marginals / marginals.sum(), atol=0.02)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ProductMarginalProposal(np.array([-0.1, 0.5]), 1)
        with pytest.raises(ValueError):
            ProductMarginalProposal(np.array([0.5, 0.5]), 0)
        with pytest.raises(ValueError):
            ProductMarginalProposal(np.zeros(3), 1)

    def test_empty_tuples(self):
        proposal = ProductMarginalProposal(np.array([1.0, 1.0]), 2)
        tuples = proposal.sample_tuples(0, 5, seed=0)
        assert tuples.shape == (5, 0)
        assert np.allclose(proposal.log_density_tuples(tuples), np.zeros(5))
