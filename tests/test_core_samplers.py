"""Tests for the theorem-level samplers: Theorems 8, 9, 10, 29, 41."""

import numpy as np
import pytest

from repro.core.entropic import EntropicSamplerConfig, sample_entropic_parallel
from repro.core.filtering import sample_bounded_dpp_filtering
from repro.core.nonsymmetric import (
    sample_nonsymmetric_dpp_parallel,
    sample_nonsymmetric_kdpp_parallel,
)
from repro.core.partition import sample_partition_dpp_parallel
from repro.core.symmetric import (
    sample_symmetric_dpp_parallel,
    sample_symmetric_kdpp_parallel,
)
from repro.dpp.exact import (
    exact_dpp_distribution,
    exact_kdpp_distribution,
    exact_partition_dpp_distribution,
)
from repro.dpp.nonsymmetric import NonsymmetricKDPP
from repro.dpp.partition import PartitionDPP
from repro.dpp.symmetric import SymmetricKDPP
from repro.pram.tracker import Tracker
from repro.workloads import (
    bounded_spectrum_ensemble,
    clustered_ensemble,
    random_npsd_ensemble,
    random_psd_ensemble,
)


def empirical_tv(sample_fn, exact, num_samples, seed=0):
    """Empirical total-variation distance between sampler output and an exact table."""
    rng = np.random.default_rng(seed)
    counts = {}
    for _ in range(num_samples):
        subset = tuple(sorted(sample_fn(rng)))
        counts[subset] = counts.get(subset, 0) + 1
    support = set(exact.support) | set(counts)
    z = num_samples
    tv = 0.0
    for s in support:
        p_exact = exact.probability_vector([s])[0] if s in exact.support else 0.0
        tv += abs(counts.get(s, 0) / z - p_exact)
    return 0.5 * tv


class TestTheorem10Symmetric:
    def test_kdpp_sample_validity(self, small_psd):
        result = sample_symmetric_kdpp_parallel(small_psd, 3, seed=0)
        assert len(result.subset) == 3
        assert SymmetricKDPP(small_psd, 3).unnormalized(result.subset) > 0

    def test_kdpp_distribution_accuracy(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 2)
        tv = empirical_tv(
            lambda rng: sample_symmetric_kdpp_parallel(small_psd, 2, seed=rng).subset,
            exact, num_samples=2500, seed=1,
        )
        assert tv < 0.06

    def test_unconstrained_dpp_accuracy(self, small_low_rank_psd):
        exact = exact_dpp_distribution(small_low_rank_psd)
        tv = empirical_tv(
            lambda rng: sample_symmetric_dpp_parallel(small_low_rank_psd, seed=rng).subset,
            exact, num_samples=2500, seed=2,
        )
        assert tv < 0.08

    def test_depth_improves_on_sequential(self):
        from repro.core.sequential import sequential_sample

        L = random_psd_ensemble(80, rank=80, seed=3)
        k = 36
        parallel = sample_symmetric_kdpp_parallel(L, k, seed=4)
        sequential = sequential_sample(SymmetricKDPP(L, k), seed=4)
        assert parallel.report.rounds < sequential.report.rounds
        # quadratic speedup ballpark: rounds should be O(sqrt(k)) * const
        assert parallel.report.rounds <= 8 * np.sqrt(k)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            sample_symmetric_kdpp_parallel(np.diag([1.0, -1.0]), 1, seed=0)

    def test_report_contains_acceptance(self, small_psd):
        result = sample_symmetric_kdpp_parallel(small_psd, 4, seed=5)
        assert result.report.mean_acceptance > 0
        assert sum(result.report.batch_sizes) == 4

    def test_unconstrained_records_cardinality(self, small_psd):
        result = sample_symmetric_dpp_parallel(small_psd, seed=6)
        if result.subset:
            assert result.report.extra["sampled_cardinality"] == len(result.subset)

    def test_lemma27_acceptance_rate(self):
        # Lemma 27: acceptance >= exp(-ell^2/k) ~ exp(-1) for ell = ceil(sqrt k);
        # empirically the mean acceptance should comfortably exceed 0.2.
        L = random_psd_ensemble(48, rank=48, seed=7)
        result = sample_symmetric_kdpp_parallel(L, 16, seed=8)
        assert result.report.mean_acceptance > 0.2


class TestTheorem29Entropic:
    def test_config_batch_size_exponent(self):
        cfg = EntropicSamplerConfig(c=0.25)
        assert cfg.batch_size(256) == int(np.ceil(256 ** 0.25))
        assert cfg.batch_size(1) == 1

    def test_requires_fixed_cardinality(self, small_psd):
        from repro.dpp.symmetric import SymmetricDPP

        with pytest.raises(ValueError):
            sample_entropic_parallel(SymmetricDPP(small_psd), seed=0)

    def test_sample_validity_on_hard_instance(self):
        from repro.distributions.hard_instance import PairedHardInstance

        mu = PairedHardInstance(12, 6)
        result = sample_entropic_parallel(mu, EntropicSamplerConfig(c=0.3, epsilon=0.1), seed=1)
        assert len(result.subset) == 6

    def test_accuracy_on_hard_instance(self):
        from repro.distributions.hard_instance import PairedHardInstance

        mu = PairedHardInstance(8, 4)
        exact = mu.to_explicit()
        cfg = EntropicSamplerConfig(c=0.3, epsilon=0.05)
        tv = empirical_tv(
            lambda rng: sample_entropic_parallel(mu, cfg, seed=rng).subset,
            exact, num_samples=1500, seed=2,
        )
        assert tv < 0.1

    def test_conservative_constant(self):
        cfg = EntropicSamplerConfig(c=0.5, epsilon=0.1, conservative=True)
        constant = cfg.rejection_constant(10)
        assert constant(4, 2) > 1e3


class TestTheorem8Nonsymmetric:
    def test_kdpp_sample_validity(self, small_npsd):
        result = sample_nonsymmetric_kdpp_parallel(small_npsd, 3, seed=0)
        assert len(result.subset) == 3
        assert NonsymmetricKDPP(small_npsd, 3).unnormalized(result.subset) > 0

    def test_kdpp_distribution_accuracy(self, small_npsd):
        exact = exact_kdpp_distribution(small_npsd, 2)
        cfg = EntropicSamplerConfig(c=0.3, epsilon=0.05)
        tv = empirical_tv(
            lambda rng: sample_nonsymmetric_kdpp_parallel(small_npsd, 2, config=cfg, seed=rng).subset,
            exact, num_samples=2000, seed=1,
        )
        assert tv < 0.08

    def test_unconstrained_accuracy(self, small_npsd):
        exact = exact_dpp_distribution(small_npsd)
        tv = empirical_tv(
            lambda rng: sample_nonsymmetric_dpp_parallel(small_npsd, seed=rng).subset,
            exact, num_samples=2000, seed=2,
        )
        assert tv < 0.1

    def test_rejects_non_npsd(self):
        with pytest.raises(ValueError):
            sample_nonsymmetric_kdpp_parallel(np.diag([-2.0, 1.0]), 1, seed=0)


class TestTheorem9Partition:
    def test_sample_satisfies_constraints(self, clustered):
        L, parts = clustered
        counts = [2, 1]
        result = sample_partition_dpp_parallel(L, parts, counts, seed=0)
        assert len(result.subset) == 3
        tallies = [len(set(result.subset) & set(p)) for p in parts]
        assert tallies == counts

    def test_distribution_accuracy(self, clustered):
        L, parts = clustered
        counts = [1, 1]
        exact = exact_partition_dpp_distribution(L, parts, counts)
        cfg = EntropicSamplerConfig(c=0.3, epsilon=0.05)
        tv = empirical_tv(
            lambda rng: sample_partition_dpp_parallel(L, parts, counts, config=cfg, seed=rng).subset,
            exact, num_samples=1200, seed=1,
        )
        assert tv < 0.1

    def test_infeasible_constraints_raise(self, clustered):
        L, parts = clustered
        with pytest.raises(ValueError):
            sample_partition_dpp_parallel(L, parts, [5, 5], seed=0)


class TestTheorem41Filtering:
    def test_output_validity(self):
        L = bounded_spectrum_ensemble(20, kernel_lambda_max=0.15, seed=0)
        result = sample_bounded_dpp_filtering(L, epsilon=0.1, seed=1, strategy="filter")
        # every sampled subset has positive DPP mass
        if result.subset:
            sub = L[np.ix_(result.subset, result.subset)]
            assert np.linalg.det(sub) > 0

    def test_accuracy_small_instance(self):
        L = bounded_spectrum_ensemble(6, kernel_lambda_max=0.3, seed=2)
        exact = exact_dpp_distribution(L)
        tv = empirical_tv(
            lambda rng: sample_bounded_dpp_filtering(L, epsilon=0.05, seed=rng,
                                                     strategy="filter").subset,
            exact, num_samples=1500, seed=3,
        )
        assert tv < 0.12

    def test_trace_strategy_accuracy(self):
        L = bounded_spectrum_ensemble(6, kernel_lambda_max=0.3, seed=4)
        exact = exact_dpp_distribution(L)
        tv = empirical_tv(
            lambda rng: sample_bounded_dpp_filtering(L, epsilon=0.05, seed=rng,
                                                     strategy="trace").subset,
            exact, num_samples=1500, seed=5,
        )
        assert tv < 0.1

    def test_auto_strategy_picks_a_route(self):
        L = bounded_spectrum_ensemble(15, kernel_lambda_max=0.2, expected_size=2.0, seed=6)
        result = sample_bounded_dpp_filtering(L, epsilon=0.1, seed=7, strategy="auto")
        assert "lambda_max" in result.report.extra
        assert "trace" in result.report.extra

    def test_invalid_strategy(self, small_psd):
        with pytest.raises(ValueError):
            sample_bounded_dpp_filtering(small_psd, strategy="bogus", seed=0)

    def test_report_tracks_rounds(self):
        L = bounded_spectrum_ensemble(12, kernel_lambda_max=0.1, seed=8)
        tracker = Tracker()
        result = sample_bounded_dpp_filtering(L, epsilon=0.1, seed=9, tracker=tracker,
                                              strategy="filter")
        assert result.report.rounds == tracker.rounds
        assert tracker.rounds >= 1
