"""Tests for Partition-DPPs (Definition 7) and their interpolation oracle."""

import numpy as np
import pytest

from repro.dpp.exact import exact_partition_dpp_distribution
from repro.dpp.partition import PartitionDPP
from repro.utils.subsets import all_subsets_of_size
from repro.workloads import clustered_ensemble


@pytest.fixture
def partition_setup(clustered):
    L, parts = clustered
    counts = [2, 1]
    return L, parts, counts


class TestPartitionDPPBasics:
    def test_partition_function_matches_enumeration(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        exact_total = 0.0
        part_of = {i: idx for idx, part in enumerate(parts) for i in part}
        for s in all_subsets_of_size(8, 3):
            tallies = [0, 0]
            for item in s:
                tallies[part_of[item]] += 1
            if tallies == counts:
                exact_total += np.linalg.det(L[np.ix_(s, s)])
        assert pdpp.partition_function() == pytest.approx(exact_total, rel=1e-5)

    def test_unnormalized_zero_when_constraints_violated(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        # 3 elements from part 0, 0 from part 1 violates (2, 1)
        subset = tuple(parts[0][:3])
        assert pdpp.unnormalized(subset) == 0.0

    def test_unnormalized_positive_when_satisfied(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        subset = tuple(parts[0][:2]) + (parts[1][0],)
        assert pdpp.unnormalized(subset) > 0.0

    def test_counting_conditional_matches_enumeration(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        part_of = {i: idx for idx, part in enumerate(parts) for i in part}
        T = (parts[0][0],)
        total = 0.0
        for s in all_subsets_of_size(8, 3):
            if not set(T).issubset(s):
                continue
            tallies = [0, 0]
            for item in s:
                tallies[part_of[item]] += 1
            if tallies == counts:
                total += np.linalg.det(L[np.ix_(s, s)])
        assert pdpp.counting(T) == pytest.approx(total, rel=1e-5)

    def test_counting_zero_when_constraints_impossible(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        # conditioning on two elements of part 1 exceeds its count of 1
        T = tuple(parts[1][:2])
        assert pdpp.counting(T) == 0.0

    def test_marginals_match_exact(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        exact = exact_partition_dpp_distribution(L, parts, counts)
        assert np.allclose(pdpp.marginal_vector(), exact.marginal_vector(), atol=1e-6)

    def test_marginals_sum_to_k(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        assert pdpp.marginal_vector().sum() == pytest.approx(sum(counts), rel=1e-5)

    def test_condition_matches_exact(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        element = parts[0][1]
        mine = pdpp.condition((element,)).to_explicit()
        theirs = exact_partition_dpp_distribution(L, parts, counts).condition((element,))
        assert mine.total_variation(theirs) < 1e-6

    def test_condition_updates_counts(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        conditioned = pdpp.condition((parts[1][0],))
        assert conditioned.counts == (2, 0)
        assert conditioned.k == 2

    def test_condition_violating_constraints_raises(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        with pytest.raises(ValueError):
            pdpp.condition(tuple(parts[1][:2]))

    def test_part_of(self, partition_setup):
        L, parts, counts = partition_setup
        pdpp = PartitionDPP(L, parts, counts)
        for idx, part in enumerate(parts):
            for element in part:
                assert pdpp.part_of(element) == idx


class TestPartitionDPPValidation:
    def test_parts_must_cover_ground_set(self, partition_setup):
        L, parts, counts = partition_setup
        with pytest.raises(ValueError):
            PartitionDPP(L, [parts[0]], [2])

    def test_counts_length_mismatch(self, partition_setup):
        L, parts, counts = partition_setup
        with pytest.raises(ValueError):
            PartitionDPP(L, parts, [1])

    def test_count_exceeding_part_size(self, partition_setup):
        L, parts, counts = partition_setup
        with pytest.raises(ValueError):
            PartitionDPP(L, parts, [5, 1])

    def test_requires_symmetric_psd(self, partition_setup):
        _, parts, counts = partition_setup
        with pytest.raises(ValueError):
            PartitionDPP(np.diag([1.0] * 7 + [-1.0]), parts, counts)

    def test_single_part_reduces_to_kdpp(self, clustered):
        # A Partition-DPP with one part is exactly a k-DPP.
        L, _ = clustered
        from repro.dpp.exact import exact_kdpp_distribution

        pdpp = PartitionDPP(L, [list(range(8))], [3])
        exact = exact_kdpp_distribution(L, 3)
        assert pdpp.to_explicit().total_variation(exact) < 1e-6

    def test_three_parts(self):
        L, parts = clustered_ensemble([3, 3, 2], seed=5)
        pdpp = PartitionDPP(L, parts, [1, 1, 1])
        exact = exact_partition_dpp_distribution(L, parts, [1, 1, 1])
        assert np.allclose(pdpp.marginal_vector(), exact.marginal_vector(), atol=1e-6)
