"""The determinism & concurrency invariant checker, and its race harness.

Three layers under test:

* the static rules (R1-R4) each catch a seeded regression in a fixture
  snippet and stay quiet on the corrected version;
* the pragma allowlist grammar: justified pragmas suppress, bare pragmas
  and stale pragmas are themselves violations, and the CLI exit-code
  contract (0 clean / 1 violations / 2 usage) holds;
* the runtime harness: DebugLock rank assertions, guard_instance
  descriptors, and the seeded ChaosScheduler stress that fused drains and
  cluster failover stay byte-identical under perturbed interleavings.
"""

import json
import os
import shutil
import subprocess
import sys
import textwrap
import threading

import numpy as np
import pytest

import repro.analysis.lockorder as lockorder
from repro.analysis import (
    ALL_RULES,
    LOCK_ORDER,
    check_paths,
    check_source,
    collect_pragmas,
    lock_rank,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.runtime import (
    ChaosScheduler,
    DebugLock,
    RaceViolation,
    guard_instance,
    merged_guarded_by,
)
from repro.cluster import LocalCluster, serve_cluster
from repro.service import FactorizationCache, KernelRegistry, RoundScheduler, serve
from repro.workloads import random_psd_ensemble

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: iteration knobs — CI runs the full counts; tighten locally via env
STRESS_ITERATIONS = int(os.environ.get("REPRO_ANALYSIS_STRESS_ITERATIONS", "200"))
FAILOVER_ITERATIONS = int(os.environ.get("REPRO_ANALYSIS_FAILOVER_ITERATIONS", "10"))


def check(source, *, in_repro=True):
    """Run the full rule set over a dedented snippet as src/repro code."""
    return check_source(textwrap.dedent(source), "src/repro/fixture.py",
                        in_repro=in_repro)


def codes(report):
    return sorted(f"{v.rule}[{v.code}]" for v in report.violations)


# ---------------------------------------------------------------------- #
# R1 — determinism
# ---------------------------------------------------------------------- #
class TestDeterminismRule:
    def test_stdlib_random_flagged(self):
        report = check("""
            import random
            x = random.random()
        """)
        assert "R1[stdlib-random]" in codes(report)

    def test_seeded_random_instance_allowed(self):
        # the ChaosScheduler exception: an explicit, seeded instance
        report = check("""
            import random
            rng = random.Random(1234)
            x = rng.random()
        """)
        assert codes(report) == []

    def test_numpy_module_state_flagged(self):
        report = check("""
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(3)
        """)
        assert codes(report).count("R1[np-random-module-state]") == 2

    def test_unseeded_default_rng_flagged_seeded_ok(self):
        bad = check("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert "R1[unseeded-default-rng]" in codes(bad)
        good = check("""
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed)
        """)
        assert codes(good) == []

    def test_wall_clock_flagged_perf_counter_ok(self):
        bad = check("""
            import time
            stamp = time.time()
        """)
        assert "R1[wall-clock-value]" in codes(bad)
        good = check("""
            import time
            started = time.perf_counter()
        """)
        assert codes(good) == []

    def test_set_iteration_flagged_sorted_ok(self):
        bad = check("""
            def f(items):
                for x in {1, 2, 3}:
                    yield x
        """)
        assert "R1[set-iteration-order]" in codes(bad)
        good = check("""
            def f(items):
                for x in sorted(set(items)):
                    yield x
        """)
        assert codes(good) == []

    def test_scope_is_src_repro_only(self):
        report = check("""
            import random
            x = random.random()
        """, in_repro=False)
        assert codes(report) == []


# ---------------------------------------------------------------------- #
# R2 — lock discipline
# ---------------------------------------------------------------------- #
_R2_BAD = """
    import threading

    class Box:
        _GUARDED_BY = {"_lock": ("_items",)}

        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def size(self):
            return len(self._items)
"""

_R2_GOOD = """
    import threading

    class Box:
        _GUARDED_BY = {"_lock": ("_items",)}

        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def size(self):
            with self._lock:
                return len(self._items)

        def _sweep_locked(self):
            return list(self._items)
"""


class TestLockDisciplineRule:
    def test_unlocked_access_flagged(self):
        report = check(_R2_BAD)
        assert codes(report) == ["R2[unlocked-access]"]
        assert "_items" in report.violations[0].message

    def test_locked_access_and_locked_suffix_clean(self):
        assert codes(check(_R2_GOOD)) == []

    def test_init_exempt(self):
        # the __init__ writes in the bad fixture are not among the findings
        report = check(_R2_BAD)
        assert all(v.line > 9 for v in report.violations)

    def test_explicit_acquire_release_pair_counts(self):
        report = check("""
            import threading

            class Box:
                _GUARDED_BY = {"_lock": ("_items",)}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def pop(self):
                    self._lock.acquire()
                    item = self._items.pop()
                    self._lock.release()
                    return item
        """)
        assert codes(report) == []

    def test_inherited_declaration_applies_to_subclass(self):
        report = check("""
            import threading

            class Base:
                _GUARDED_BY = {"_lock": ("_items",)}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

            class Child(Base):
                def size(self):
                    return len(self._items)
        """)
        assert codes(report) == ["R2[unlocked-access]"]

    def test_lock_order_inversion_flagged(self, monkeypatch):
        # seed a two-lock class into the rank registry so the static
        # inversion path is exercised end to end
        monkeypatch.setitem(lockorder._RANK, ("Pair", "_outer"), 0)
        monkeypatch.setitem(lockorder._RANK, ("Pair", "_inner"), 1)
        report = check("""
            import threading

            class Pair:
                _GUARDED_BY = {"_outer": ("_a",), "_inner": ("_b",)}

                def __init__(self):
                    self._outer = threading.Lock()
                    self._inner = threading.Lock()
                    self._a = self._b = 0

                def wrong(self):
                    with self._inner:
                        with self._outer:
                            return self._a + self._b

                def right(self):
                    with self._outer:
                        with self._inner:
                            return self._a + self._b
        """)
        assert codes(report) == ["R2[lock-order]"]
        assert "inversion" in report.violations[0].message

    def test_registry_is_a_total_order(self):
        ranks = [lock_rank(cls, attr) for cls, attr in LOCK_ORDER]
        assert ranks == sorted(ranks) and len(set(ranks)) == len(ranks)
        # spot-check the topology the codebase relies on
        assert lock_rank("KernelRegistry", "_lock") < lock_rank(
            "FactorizationCache", "_lock")
        assert lock_rank("RoundScheduler", "_lock") < lock_rank(
            "FactorizationCache", "_lock")


# ---------------------------------------------------------------------- #
# R3 — shipping contract
# ---------------------------------------------------------------------- #
class TestShippingContractRule:
    def test_missing_rebuild_flagged(self):
        report = check("""
            class D:
                def worker_payload(self):
                    return {"kernel": self.matrix}, {"labels": self.labels}

                def oracle_cost_hint(self):
                    return 1.0
        """)
        assert codes(report) == ["R3[missing-from-worker-payload]"]

    def test_missing_cost_hint_flagged(self):
        report = check("""
            class D:
                def worker_payload(self):
                    return {"kernel": self.matrix}, {"labels": self.labels}

                @classmethod
                def from_worker_payload(cls, arrays, params):
                    return cls(arrays["kernel"], params["labels"])
        """)
        assert codes(report) == ["R3[missing-oracle-cost-hint]"]

    def test_consumed_key_never_produced_flagged(self):
        report = check("""
            class D:
                def worker_payload(self):
                    return {"kernel": self.matrix}, {"labels": self.labels}

                @classmethod
                def from_worker_payload(cls, arrays, params):
                    return cls(arrays["factor"], params["labels"])

                def oracle_cost_hint(self):
                    return 1.0
        """)
        assert codes(report) == ["R3[payload-key-mismatch]"]
        assert "'factor'" in report.violations[0].message

    def test_full_contract_clean(self):
        report = check("""
            class D:
                def worker_payload(self):
                    return {"kernel": self.matrix}, {"labels": self.labels}

                @classmethod
                def from_worker_payload(cls, arrays, params):
                    return cls(arrays["kernel"], params.get("labels"))

                def oracle_cost_hint(self):
                    return 1.0
        """)
        assert codes(report) == []

    def test_mixin_checked_through_subclass(self):
        report = check("""
            class Mixin:
                def worker_payload(self):
                    return {"factor": self.factor}, self._payload_params()

            class Concrete(Mixin):
                def _payload_params(self):
                    return {"z": self.z}

                @classmethod
                def from_worker_payload(cls, arrays, params):
                    return cls(arrays["factor"], params["z"])

                def oracle_cost_hint(self):
                    return 1.0
        """)
        assert codes(report) == []

    def test_helper_delegation_mismatch_still_caught(self):
        report = check("""
            class D:
                def worker_payload(self):
                    return {"factor": self.factor}, self._payload_params()

                def _payload_params(self):
                    return {"z": self.z}

                @classmethod
                def from_worker_payload(cls, arrays, params):
                    return cls(arrays["factor"], params["k"])

                def oracle_cost_hint(self):
                    return 1.0
        """)
        assert codes(report) == ["R3[payload-key-mismatch]"]

    def test_dynamic_payload_is_opaque(self):
        report = check("""
            class D:
                def worker_payload(self):
                    return dict(self._arrays), {**self._base, "extra": 1}

                @classmethod
                def from_worker_payload(cls, arrays, params):
                    return cls(arrays["anything"], params["at-all"])

                def oracle_cost_hint(self):
                    return 1.0
        """)
        assert codes(report) == []


# ---------------------------------------------------------------------- #
# R4 — export hygiene
# ---------------------------------------------------------------------- #
class TestExportHygieneRule:
    def test_set_in_export_flagged(self):
        report = check("""
            class S:
                def snapshot(self):
                    return {"nodes": {1, 2, 3}}
        """)
        assert codes(report) == ["R4[set-in-export]"]

    def test_lock_in_export_flagged(self):
        report = check("""
            import threading

            class S:
                _GUARDED_BY = {"_lock": ("_items",)}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def snapshot(self):
                    with self._lock:
                        return {"lock": self._lock, "n": len(self._items)}
        """)
        assert "R4[lock-in-export]" in codes(report)

    def test_numpy_in_export_flagged_coercion_ok(self):
        bad = check("""
            import numpy as np

            class S:
                def stats(self):
                    return {"mean": np.mean(self.values)}
        """)
        assert codes(bad) == ["R4[numpy-in-export]"]
        good = check("""
            import numpy as np

            class S:
                def stats(self):
                    return {"mean": float(np.mean(self.values)),
                            "ids": sorted({1, 2})}
        """)
        assert codes(good) == []

    def test_bytes_in_export_flagged(self):
        report = check("""
            class S:
                def cluster_info(self):
                    return {"fingerprint": b"abc123"}
        """)
        assert codes(report) == ["R4[bytes-in-export]"]

    def test_non_export_methods_ignored(self):
        report = check("""
            class S:
                def internal(self):
                    return {"nodes": {1, 2, 3}}
        """)
        assert codes(report) == []


# ---------------------------------------------------------------------- #
# pragmas
# ---------------------------------------------------------------------- #
class TestPragmas:
    def test_grammar(self):
        table = collect_pragmas(
            "x = 1  # repro: allow[R1] -- fixture justification\n"
            "# repro: allow[R2.unlocked-access]\n"
            "y = 2\n")
        assert table[1][0].justified and table[1][0].rules == ("R1",)
        # a standalone comment pragma applies to the next code line
        standalone = table[3][0]
        assert not standalone.justified
        assert standalone.covers("R2", "unlocked-access")
        assert not standalone.covers("R2", "lock-order")

    def test_justified_pragma_suppresses(self):
        report = check(_R2_BAD.replace(
            "return len(self._items)",
            "return len(self._items)  # repro: allow[R2] -- fixture: race is benign"))
        assert codes(report) == []
        assert report.pragmas_used == 1

    def test_bare_pragma_is_itself_a_violation(self):
        report = check(_R2_BAD.replace(
            "return len(self._items)",
            "return len(self._items)  # repro: allow[R2]"))
        # the original finding survives AND the pragma is flagged
        assert codes(report) == ["P0[unjustified-pragma]", "R2[unlocked-access]"]

    def test_stale_pragma_is_itself_a_violation(self):
        report = check(_R2_GOOD.replace(
            "with self._lock:",
            "with self._lock:  # repro: allow[R2] -- suppresses nothing"))
        assert codes(report) == ["P0[unused-pragma]"]

    def test_pragma_code_qualifier_must_match(self):
        report = check(_R2_BAD.replace(
            "return len(self._items)",
            "return len(self._items)  # repro: allow[R2.lock-order] -- wrong code"))
        assert "R2[unlocked-access]" in codes(report)


# ---------------------------------------------------------------------- #
# CLI / exit-code contract
# ---------------------------------------------------------------------- #
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert analysis_main([str(tmp_path)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("class S:\n"
                       "    def snapshot(self):\n"
                       "        return {'ids': {1, 2}}\n")
        assert analysis_main([str(tmp_path)]) == 1
        assert "set-in-export" in capsys.readouterr().out

    def test_exit_two_on_no_paths(self, capsys):
        assert analysis_main([]) == 2

    def test_json_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("class S:\n"
                       "    def snapshot(self):\n"
                       "        return {'ids': {1, 2}}\n")
        artifact = tmp_path / "report.json"
        assert analysis_main([str(bad), "--json", str(artifact)]) == 1
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "R4"

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_in_repro_scope_via_paths(self, tmp_path):
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        (nested / "mod.py").write_text("import random\nx = random.random()\n")
        report = check_paths([str(tmp_path)])
        assert codes(report) == ["R1[stdlib-random]"]

    def test_merged_tree_is_clean(self):
        """The repo gate: `python -m repro.analysis src benchmarks` exits 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(ROOT, "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "benchmarks"],
            cwd=ROOT, env=env, capture_output=True, text=True)
        assert result.returncode == 0, result.stdout + result.stderr


# ---------------------------------------------------------------------- #
# runtime harness units
# ---------------------------------------------------------------------- #
class _Guarded:
    _GUARDED_BY = {"_lock": ("_value", "_racy")}

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0
        self._racy = 0

    def bump(self):
        with self._lock:
            self._value += 1

    def peek(self):
        return self._value  # deliberate unguarded read


class TestRuntimeHarness:
    def test_merged_guarded_by_walks_mro(self):
        class Child(_Guarded):
            _GUARDED_BY = {"_lock": ("_value", "_racy", "_extra")}

        assert merged_guarded_by(Child)["_lock"] == ("_value", "_racy", "_extra")

    def test_guard_instance_catches_unguarded_read(self):
        collector = []
        obj = guard_instance(_Guarded(), collector=collector)
        obj.bump()  # locked path: clean
        assert collector == []
        obj.peek()  # unguarded read: recorded, not raised
        assert [v.kind for v in collector] == ["unguarded-access"]
        assert "_value" in collector[0].detail

    def test_guard_instance_raises_without_collector(self):
        obj = guard_instance(_Guarded())
        obj.bump()
        with pytest.raises(AssertionError, match="unguarded-access"):
            obj.peek()

    def test_guard_instance_exempt(self):
        collector = []
        obj = guard_instance(_Guarded(), collector=collector, exempt=("_value",))
        obj.peek()
        assert collector == []

    def test_guard_instance_preserves_state_and_requires_declaration(self):
        obj = _Guarded()
        obj.bump()
        guard_instance(obj, collector=[])
        with obj._lock:
            assert obj._value == 1
        with pytest.raises(ValueError):
            guard_instance(object())

    def test_debuglock_flags_rank_inversion(self):
        collector = []
        # FactorizationCache ranks inside KernelRegistry: registry-then-cache
        # is the canonical order, cache-then-registry is the inversion
        registry_lock = DebugLock(threading.Lock(), owner="KernelRegistry",
                                  collector=collector)
        cache_lock = DebugLock(threading.Lock(), owner="FactorizationCache",
                               collector=collector)
        with registry_lock:
            with cache_lock:
                pass
        assert collector == []
        with cache_lock:
            with registry_lock:
                pass
        assert [v.kind for v in collector] == ["lock-order"]

    def test_debuglock_reentrant_rlock_not_an_inversion(self):
        collector = []
        lock = DebugLock(threading.RLock(), owner="LocalCluster",
                         collector=collector)
        with lock:
            with lock:
                pass
        assert collector == []

    def test_chaos_scheduler_is_seed_deterministic(self):
        def switch_trace(seed):
            chaos = ChaosScheduler(seed, max_sleep=0.0)
            trace = []
            for _ in range(64):
                chaos.maybe_switch()
                trace.append(chaos.switches)
            return trace

        assert switch_trace(7) == switch_trace(7)
        assert switch_trace(7) != switch_trace(8)

    def test_chaos_scheduler_restores_switch_interval(self):
        before = sys.getswitchinterval()
        with ChaosScheduler(0):
            assert sys.getswitchinterval() != before or before == 1e-5
        assert sys.getswitchinterval() == before


# ---------------------------------------------------------------------- #
# chaos stress: the contracts hold under perturbed interleavings
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def stress_kernel():
    return random_psd_ensemble(6, rank=4, seed=3)


class TestChaosStress:
    def test_fused_drain_byte_identical_across_seeded_schedules(self, stress_kernel):
        """STRESS_ITERATIONS seeded interleavings of a concurrent submit +
        fused drain, each guarded by the runtime harness, all producing the
        samples the unfused path produces."""
        registry = KernelRegistry()
        reference_session = serve(stress_kernel, registry=registry)
        seeds = list(range(100, 116))
        expected = {s: reference_session.sample(2, seed=s, method="parallel").subset
                    for s in seeds}

        failures = []
        for chaos_seed in range(STRESS_ITERATIONS):
            collector = []
            with ChaosScheduler(chaos_seed) as chaos:
                session = serve(stress_kernel, registry=registry)
                scheduler = RoundScheduler(session, seed=0)
                guard_instance(session, collector=collector, chaos=chaos)
                guard_instance(scheduler, collector=collector, chaos=chaos)

                indices = {}
                index_lock = threading.Lock()

                def submit_range(chunk):
                    for s in chunk:
                        chaos.maybe_switch()
                        ticket = scheduler.submit(2, seed=s)
                        with index_lock:
                            indices[ticket.index] = s

                threads = [threading.Thread(target=submit_range,
                                            args=(seeds[i::4],))
                           for i in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                results = scheduler.drain()
                session.close()

            for index, result in enumerate(results):
                if result.subset != expected[indices[index]]:
                    failures.append(
                        f"seed {chaos_seed}: request {indices[index]} drained "
                        f"{result.subset}, expected {expected[indices[index]]}")
            failures.extend(f"seed {chaos_seed}: {v.render()}" for v in collector)
        reference_session.close()
        assert not failures, "\n".join(failures[:20])

    def test_kill_node_failover_under_chaos(self, stress_kernel):
        """Fresh 2-node replication-2 cluster per iteration: kill the
        primary mid-session and require the failover sample byte-identical,
        with the guarded client/session reporting no contract breaches."""
        failures = []
        for chaos_seed in range(FAILOVER_ITERATIONS):
            collector = []
            with ChaosScheduler(chaos_seed) as chaos, \
                    LocalCluster(nodes=2, replication=2) as cluster:
                session = serve_cluster(stress_kernel, cluster=cluster)
                client = cluster.client()
                guard_instance(client, collector=collector, chaos=chaos)
                guard_instance(session, collector=collector, chaos=chaos)

                want = session.sample(k=2, seed=21).subset
                cluster.kill_node(session.owners[0])
                got = session.sample(k=2, seed=21).subset
                if got != want:
                    failures.append(
                        f"seed {chaos_seed}: failover sample {got} != {want}")
                if client.failover_count() < 1:
                    failures.append(f"seed {chaos_seed}: no failover recorded")
                session.close()
            failures.extend(f"seed {chaos_seed}: {v.render()}" for v in collector)
        assert not failures, "\n".join(failures[:20])


# ---------------------------------------------------------------------- #
# typing gate
# ---------------------------------------------------------------------- #
def test_mypy_strict_on_analysis_package():
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed here; the CI analysis job runs it")
    result = subprocess.run(
        ["mypy", "--strict", os.path.join("src", "repro", "analysis")],
        cwd=ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
