"""Tests for ensemble/kernel conversions and DPP likelihood helpers."""

import numpy as np
import pytest

from repro.dpp.kernels import (
    ensemble_to_kernel,
    kernel_to_ensemble,
    marginal_kernel_conditioned,
    validate_ensemble,
    validate_kernel,
)
from repro.dpp.likelihood import (
    all_principal_minor_sums,
    batched_joint_marginals,
    dpp_log_unnormalized,
    dpp_unnormalized,
    sum_principal_minors,
)
from repro.dpp.exact import exact_dpp_distribution
from repro.workloads import random_npsd_ensemble, random_psd_ensemble


class TestKernelConversions:
    def test_roundtrip_L_K_L(self, small_psd):
        K = ensemble_to_kernel(small_psd)
        L_back = kernel_to_ensemble(K)
        assert np.allclose(L_back, small_psd, atol=1e-8)

    def test_kernel_eigenvalues_in_unit_interval(self, small_psd):
        K = ensemble_to_kernel(small_psd)
        eigs = np.linalg.eigvalsh(0.5 * (K + K.T))
        assert eigs.min() >= -1e-10
        assert eigs.max() <= 1 + 1e-10

    def test_identity_relationship(self, small_psd):
        # K = I - (I + L)^{-1}
        K = ensemble_to_kernel(small_psd)
        expected = np.eye(6) - np.linalg.inv(np.eye(6) + small_psd)
        assert np.allclose(K, expected, atol=1e-10)

    def test_kernel_to_ensemble_singular_raises(self):
        K = np.eye(3)  # eigenvalue 1 -> no finite L
        with pytest.raises(ValueError):
            kernel_to_ensemble(K)

    def test_empty_matrices(self):
        empty = np.zeros((0, 0))
        assert ensemble_to_kernel(empty).shape == (0, 0)
        assert kernel_to_ensemble(empty).shape == (0, 0)

    def test_marginal_kernel_diag_are_marginals(self, small_psd):
        # K_ii = P[i in S] computed from brute force enumeration
        K = ensemble_to_kernel(small_psd)
        exact = exact_dpp_distribution(small_psd)
        marginals = exact.marginal_vector()
        assert np.allclose(np.diag(K), marginals, atol=1e-8)

    def test_marginal_kernel_conditioned(self, small_psd):
        K_cond, remaining = marginal_kernel_conditioned(small_psd, (1,))
        exact = exact_dpp_distribution(small_psd)
        conditioned = exact.condition((1,))
        assert np.allclose(np.diag(K_cond), conditioned.marginal_vector(), atol=1e-7)
        assert list(remaining) == [0, 2, 3, 4, 5]


class TestValidation:
    def test_validate_ensemble_psd(self, small_psd):
        validate_ensemble(small_psd, symmetric=True)

    def test_validate_ensemble_rejects_indefinite(self):
        with pytest.raises(ValueError):
            validate_ensemble(np.diag([1.0, -0.5]), symmetric=True)

    def test_validate_ensemble_rejects_asymmetric_when_symmetric_requested(self, small_npsd):
        with pytest.raises(ValueError):
            validate_ensemble(small_npsd, symmetric=True)

    def test_validate_ensemble_npsd(self, small_npsd):
        validate_ensemble(small_npsd, symmetric=False)

    def test_validate_ensemble_npsd_rejects(self):
        with pytest.raises(ValueError):
            validate_ensemble(np.diag([-3.0, 1.0]), symmetric=False)

    def test_validate_kernel(self, small_psd):
        validate_kernel(ensemble_to_kernel(small_psd))

    def test_validate_kernel_rejects_eigenvalue_above_one(self):
        with pytest.raises(ValueError):
            validate_kernel(np.diag([0.5, 1.5]))


class TestLikelihood:
    def test_unnormalized_is_principal_minor(self, small_psd):
        subset = (0, 2, 5)
        expected = np.linalg.det(small_psd[np.ix_(subset, subset)])
        assert dpp_unnormalized(small_psd, subset) == pytest.approx(expected)

    def test_log_unnormalized(self, small_psd):
        subset = (1, 3)
        assert dpp_log_unnormalized(small_psd, subset) == pytest.approx(
            np.log(np.linalg.det(small_psd[np.ix_(subset, subset)]))
        )

    def test_log_unnormalized_zero_minor(self):
        L = np.zeros((3, 3))
        assert dpp_log_unnormalized(L, (0, 1)) == -np.inf

    def test_sum_principal_minors_matches_brute_force(self):
        L = random_npsd_ensemble(5, seed=2)
        from itertools import combinations

        for order in range(6):
            expected = sum(
                np.linalg.det(L[np.ix_(s, s)]) if s else 1.0
                for s in combinations(range(5), order)
            )
            assert sum_principal_minors(L, order) == pytest.approx(expected, rel=1e-7, abs=1e-9)

    def test_sum_principal_minors_out_of_range(self, small_psd):
        assert sum_principal_minors(small_psd, 99) == 0.0
        assert sum_principal_minors(small_psd, -1) == 0.0

    def test_all_principal_minor_sums_consistent(self, small_npsd):
        sums = all_principal_minor_sums(small_npsd)
        for order in range(small_npsd.shape[0] + 1):
            assert sums[order] == pytest.approx(sum_principal_minors(small_npsd, order), rel=1e-7, abs=1e-9)

    def test_batched_joint_marginals_match_exact(self, small_psd):
        K = ensemble_to_kernel(small_psd)
        exact = exact_dpp_distribution(small_psd)
        subsets = [(0, 1), (2, 4), (3, 5)]
        batched = batched_joint_marginals(K, subsets)
        for subset, value in zip(subsets, batched):
            assert value == pytest.approx(exact.counting(subset), rel=1e-7)
