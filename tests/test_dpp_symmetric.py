"""Tests for SymmetricDPP / SymmetricKDPP against brute-force ground truth."""

import numpy as np
import pytest

from repro.dpp.exact import exact_dpp_distribution, exact_kdpp_distribution
from repro.dpp.symmetric import SymmetricDPP, SymmetricKDPP
from repro.utils.subsets import all_subsets_of_size
from repro.workloads import random_low_rank_ensemble, random_psd_ensemble


class TestSymmetricDPP:
    def test_partition_function(self, small_psd):
        dpp = SymmetricDPP(small_psd)
        # det(I + L) equals the sum of det(L_S) over all subsets S
        from itertools import combinations

        brute = sum(
            np.linalg.det(small_psd[np.ix_(s, s)]) if s else 1.0
            for size in range(7)
            for s in combinations(range(6), size)
        )
        assert dpp.partition_function() == pytest.approx(np.linalg.det(np.eye(6) + small_psd))
        assert dpp.partition_function() == pytest.approx(brute, rel=1e-8)

    def test_counting_matches_enumeration(self, small_psd):
        dpp = SymmetricDPP(small_psd)
        # brute force: sum of det(L_S) over supersets of T
        from itertools import combinations

        for T in [(), (0,), (1, 3), (0, 2, 5)]:
            total = 0.0
            for size in range(6 + 1):
                for S in combinations(range(6), size):
                    if set(T).issubset(S):
                        idx = list(S)
                        total += np.linalg.det(small_psd[np.ix_(idx, idx)]) if idx else 1.0
            assert dpp.counting(T) == pytest.approx(total, rel=1e-7)

    def test_marginal_vector_matches_exact(self, small_psd):
        dpp = SymmetricDPP(small_psd)
        exact = exact_dpp_distribution(small_psd)
        assert np.allclose(dpp.marginal_vector(), exact.marginal_vector(), atol=1e-8)

    def test_conditional_marginals_match_exact(self, small_psd):
        dpp = SymmetricDPP(small_psd)
        exact = exact_dpp_distribution(small_psd)
        given = (2,)
        mine = dpp.marginal_vector(given)
        theirs_inner = exact.condition(given).marginal_vector()
        # exact.condition relabels; rebuild the full-length vector
        full = np.ones(6)
        labels = exact.condition(given).ground_labels
        for local, label in enumerate(labels):
            full[label] = theirs_inner[local]
        assert np.allclose(mine, full, atol=1e-8)

    def test_condition_preserves_distribution(self, small_psd):
        dpp = SymmetricDPP(small_psd)
        conditioned = dpp.condition((1, 4))
        exact_cond = exact_dpp_distribution(small_psd).condition((1, 4))
        mine = conditioned.to_explicit()
        assert mine.total_variation(exact_cond) < 1e-8

    def test_cardinality_distribution_sums_to_one(self, small_psd):
        dist = SymmetricDPP(small_psd).cardinality_distribution()
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist >= 0)

    def test_cardinality_distribution_matches_exact(self, small_psd):
        dpp = SymmetricDPP(small_psd)
        exact = exact_dpp_distribution(small_psd)
        sizes = np.zeros(7)
        for subset, prob in exact.items():
            sizes[len(subset)] += prob
        assert np.allclose(dpp.cardinality_distribution(), sizes, atol=1e-8)

    def test_expected_size_equals_trace_of_kernel(self, small_psd):
        dpp = SymmetricDPP(small_psd)
        assert dpp.expected_size() == pytest.approx(np.trace(dpp.kernel), rel=1e-8)

    def test_rejects_non_psd(self):
        with pytest.raises(ValueError):
            SymmetricDPP(np.diag([1.0, -1.0]))

    def test_ground_labels_after_conditioning(self, small_psd):
        dpp = SymmetricDPP(small_psd).condition((0, 3))
        assert dpp.ground_labels == (1, 2, 4, 5)

    def test_restrict_to_size(self, small_psd):
        kdpp = SymmetricDPP(small_psd).restrict_to_size(3)
        assert isinstance(kdpp, SymmetricKDPP)
        assert kdpp.k == 3


class TestSymmetricKDPP:
    def test_counting_empty_is_partition_function(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3)
        total = sum(
            np.linalg.det(small_psd[np.ix_(s, s)]) for s in all_subsets_of_size(6, 3)
        )
        assert kdpp.counting(()) == pytest.approx(total, rel=1e-8)

    def test_counting_conditional_matches_enumeration(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3)
        T = (1, 4)
        total = sum(
            np.linalg.det(small_psd[np.ix_(s, s)])
            for s in all_subsets_of_size(6, 3)
            if set(T).issubset(s)
        )
        assert kdpp.counting(T) == pytest.approx(total, rel=1e-7)

    def test_counting_full_subset_is_minor(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3)
        S = (0, 2, 5)
        assert kdpp.counting(S) == pytest.approx(np.linalg.det(small_psd[np.ix_(S, S)]))

    def test_counting_oversized_subset_is_zero(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 2)
        assert kdpp.counting((0, 1, 2)) == 0.0

    def test_marginals_match_exact(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3)
        exact = exact_kdpp_distribution(small_psd, 3)
        assert np.allclose(kdpp.marginal_vector(), exact.marginal_vector(), atol=1e-8)

    def test_marginals_sum_to_k(self, small_psd):
        for k in (1, 2, 3, 4):
            kdpp = SymmetricKDPP(small_psd, k)
            assert kdpp.marginal_vector().sum() == pytest.approx(k, rel=1e-6)

    def test_conditional_marginals_match_exact(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3)
        exact = exact_kdpp_distribution(small_psd, 3)
        given = (5,)
        mine = kdpp.marginal_vector(given)
        cond = exact.condition(given)
        full = np.ones(6)
        for local, label in enumerate(cond.ground_labels):
            full[label] = cond.marginal_vector()[local]
        assert np.allclose(mine, full, atol=1e-7)

    def test_joint_marginals_batch_match_exact(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3)
        exact = exact_kdpp_distribution(small_psd, 3)
        subsets = [(0, 1), (2, 4), (1, 5)]
        z = exact.counting(())
        batch = kdpp.joint_marginals_batch(subsets)
        for subset, value in zip(subsets, batch):
            assert value == pytest.approx(exact.counting(subset) / z, abs=1e-9)

    def test_condition_matches_exact(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3).condition((2,))
        exact = exact_kdpp_distribution(small_psd, 3).condition((2,))
        assert kdpp.k == 2
        assert kdpp.to_explicit().total_variation(exact) < 1e-8

    def test_k_larger_than_rank_raises(self):
        L = random_low_rank_ensemble(6, rank=2, seed=7)
        with pytest.raises(ValueError):
            SymmetricKDPP(L, 4)

    def test_k_exceeding_n_raises(self, small_psd):
        with pytest.raises(ValueError):
            SymmetricKDPP(small_psd, 7)

    def test_unnormalized_wrong_size_zero(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 3)
        assert kdpp.unnormalized((0, 1)) == 0.0

    def test_cardinality_distribution_is_point_mass(self, small_psd):
        kdpp = SymmetricKDPP(small_psd, 2)
        dist = kdpp.cardinality_distribution()
        assert dist[2] == pytest.approx(1.0)
        assert dist.sum() == pytest.approx(1.0)
