"""Property-based tests (hypothesis) on core invariants.

These exercise randomly generated instances of the library's fundamental data
structures: PSD/nPSD ensembles, kernels, subsets, ESPs, the down operator, the
batch schedule, divergences, and the PRAM tracker.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core.batched import batch_schedule
from repro.distributions.divergences import kl_divergence, total_variation
from repro.dpp.spectral import sample_kdpp_spectral
from repro.service import FactorizationCache, KernelRegistry, RoundScheduler, serve
from repro.distributions.generic import ExplicitDistribution
from repro.dpp.kernels import ensemble_to_kernel, kernel_to_ensemble
from repro.dpp.likelihood import sum_principal_minors
from repro.linalg.esp import elementary_symmetric_polynomials
from repro.linalg.psd import is_npsd, is_psd
from repro.linalg.schur import condition_ensemble
from repro.pram.tracker import Tracker
from repro.utils.subsets import binomial, subset_key

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
def psd_matrices(max_n=6):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_n))
        rows = draw(
            st.lists(
                st.lists(st.floats(min_value=-2, max_value=2, allow_nan=False), min_size=n, max_size=n),
                min_size=n, max_size=n,
            )
        )
        B = np.array(rows)
        return B @ B.T + 1e-6 * np.eye(n)

    return build()


def npsd_matrices(max_n=6):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_n))
        sym_rows = draw(
            st.lists(
                st.lists(st.floats(min_value=-2, max_value=2, allow_nan=False), min_size=n, max_size=n),
                min_size=n, max_size=n,
            )
        )
        skew_rows = draw(
            st.lists(
                st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=n, max_size=n),
                min_size=n, max_size=n,
            )
        )
        B = np.array(sym_rows)
        G = np.array(skew_rows)
        return B @ B.T + 0.5 * (G - G.T) + 1e-6 * np.eye(n)

    return build()


probability_vectors = st.lists(
    st.floats(min_value=1e-3, max_value=1.0, allow_nan=False), min_size=2, max_size=8
).map(lambda xs: np.array(xs) / np.sum(xs))


# ---------------------------------------------------------------------- #
# PSD / kernel properties
# ---------------------------------------------------------------------- #
class TestKernelProperties:
    @SETTINGS
    @given(psd_matrices())
    def test_psd_construction_is_psd(self, L):
        assert is_psd(L, tol=1e-6)

    @SETTINGS
    @given(npsd_matrices())
    def test_npsd_construction_is_npsd(self, L):
        assert is_npsd(L, tol=1e-6)

    @SETTINGS
    @given(npsd_matrices())
    def test_npsd_principal_minors_nonnegative(self, L):
        # [Gar+19, Lemma 1] via random 2x2 and full minors
        n = L.shape[0]
        assert np.linalg.det(L) >= -1e-7 * max(1.0, abs(np.linalg.det(L)))
        for i in range(n):
            for j in range(i + 1, n):
                sub = L[np.ix_((i, j), (i, j))]
                assert np.linalg.det(sub) >= -1e-8

    @SETTINGS
    @given(psd_matrices())
    def test_kernel_roundtrip(self, L):
        K = ensemble_to_kernel(L)
        back = kernel_to_ensemble(K)
        assert np.allclose(back, L, atol=1e-6 * max(1.0, np.abs(L).max()))

    @SETTINGS
    @given(psd_matrices())
    def test_kernel_eigenvalues_unit_interval(self, L):
        K = ensemble_to_kernel(L)
        eigs = np.linalg.eigvalsh(0.5 * (K + K.T))
        assert eigs.min() >= -1e-8
        assert eigs.max() <= 1 + 1e-8

    @SETTINGS
    @given(psd_matrices(), st.integers(min_value=0, max_value=5))
    def test_schur_determinant_identity(self, L, seed):
        n = L.shape[0]
        rng = np.random.default_rng(seed)
        if n < 2:
            return
        element = int(rng.integers(n))
        if L[element, element] <= 1e-9:
            return
        cond, remaining = condition_ensemble(L, (element,))
        # det(L_{i} cup A) = L_ii * det(cond_A) for A = all remaining
        lhs = np.linalg.det(L)
        rhs = L[element, element] * np.linalg.det(cond)
        assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-9)


# ---------------------------------------------------------------------- #
# ESP / minor-sum properties
# ---------------------------------------------------------------------- #
class TestESPProperties:
    @SETTINGS
    @given(st.lists(st.floats(min_value=0, max_value=5, allow_nan=False), min_size=1, max_size=8))
    def test_esp_nonnegative_for_nonnegative_inputs(self, values):
        esp = elementary_symmetric_polynomials(np.array(values))
        assert np.all(esp >= -1e-12)

    @SETTINGS
    @given(st.lists(st.floats(min_value=0.1, max_value=3, allow_nan=False), min_size=1, max_size=7))
    def test_esp_total_equals_product_of_one_plus(self, values):
        esp = elementary_symmetric_polynomials(np.array(values))
        assert esp.sum() == pytest.approx(np.prod(1.0 + np.array(values)), rel=1e-9)

    @SETTINGS
    @given(psd_matrices(), st.integers(min_value=0, max_value=6))
    def test_minor_sums_nonnegative_for_psd(self, L, order):
        if order > L.shape[0]:
            return
        assert sum_principal_minors(L, order) >= -1e-7


# ---------------------------------------------------------------------- #
# batch schedule (Proposition 28)
# ---------------------------------------------------------------------- #
class TestScheduleProperties:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=100000))
    def test_schedule_sums_and_length(self, k):
        schedule = batch_schedule(k)
        assert sum(schedule) == k
        assert len(schedule) <= 2 * math.sqrt(k) + 1

    @SETTINGS
    @given(st.integers(min_value=1, max_value=100000))
    def test_schedule_sizes_decrease(self, k):
        schedule = batch_schedule(k)
        assert all(a >= b for a, b in zip(schedule, schedule[1:]))


# ---------------------------------------------------------------------- #
# divergences
# ---------------------------------------------------------------------- #
class TestDivergenceProperties:
    @SETTINGS
    @given(probability_vectors, probability_vectors)
    def test_kl_nonnegative(self, q, p):
        if q.size != p.size:
            return
        assert kl_divergence(q, p) >= -1e-10

    @SETTINGS
    @given(probability_vectors, probability_vectors)
    def test_pinsker(self, q, p):
        if q.size != p.size:
            return
        assert total_variation(q, p) <= math.sqrt(max(kl_divergence(q, p), 0.0) / 2.0) + 1e-9

    @SETTINGS
    @given(probability_vectors)
    def test_tv_to_self_zero(self, p):
        assert total_variation(p, p) == pytest.approx(0.0, abs=1e-12)


# ---------------------------------------------------------------------- #
# explicit distributions and subsets
# ---------------------------------------------------------------------- #
class TestDistributionProperties:
    @SETTINGS
    @given(st.dictionaries(
        st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4)),
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        min_size=1, max_size=10,
    ))
    def test_explicit_distribution_normalizes(self, raw):
        table = {subset_key(set(key)): value for key, value in raw.items()}
        dist = ExplicitDistribution(5, table)
        total = sum(prob for _, prob in dist.items())
        assert total == pytest.approx(1.0, rel=1e-9)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12))
    def test_binomial_symmetry(self, n, k):
        assert binomial(n, k) == binomial(n, n - k) if 0 <= k <= n else True

    @SETTINGS
    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=1, max_value=7))
    def test_uniform_marginals_sum_to_k(self, n, k):
        if k > n:
            return
        from repro.distributions.generic import uniform_distribution_on_size_k

        dist = uniform_distribution_on_size_k(n, k)
        assert dist.marginal_vector().sum() == pytest.approx(k, rel=1e-9)


# ---------------------------------------------------------------------- #
# serving layer: caching and fusion never change samples
# ---------------------------------------------------------------------- #
SERVING_SETTINGS = settings(max_examples=8, deadline=None,
                            suppress_health_check=[HealthCheck.too_slow])
SERVING_BACKENDS = ("serial", "vectorized", "threads")


def conditioned_psd_matrices(max_n=6, ridge=0.05):
    """PSD ensembles with spectrum bounded away from zero.

    The seed repo's HKPV phase 2 can run out of probability mass on
    numerically rank-deficient spectra (eigenvalues at the QR drop
    tolerance); the serving-layer properties are about caching/fusion, so
    they use instances every sampler handles.
    """
    return psd_matrices(max_n=max_n).map(
        lambda L: L + ridge * np.eye(L.shape[0]))


class TestServingProperties:
    @SERVING_SETTINGS
    @given(conditioned_psd_matrices(max_n=6), st.integers(min_value=0, max_value=10**6))
    def test_cached_sampling_is_seed_identical(self, L, seed):
        """Warm SamplerSession draws == cold module-level draws, every backend."""
        k = min(2, L.shape[0])
        session = serve(L, registry=KernelRegistry())
        assert session.sample(k=k, seed=seed).subset == sample_kdpp_spectral(L, k, seed=seed)
        for backend in SERVING_BACKENDS:
            warm = session.sample(k=k, seed=seed, method="parallel", backend=backend).subset
            cold = repro.sample_symmetric_kdpp_parallel(L, k, seed=seed, backend=backend).subset
            assert warm == cold

    @SERVING_SETTINGS
    @given(conditioned_psd_matrices(max_n=6), st.integers(min_value=0, max_value=10**6))
    def test_fused_scheduling_is_seed_identical(self, L, seed):
        """Scheduler-fused rounds == per-request draws, every backend."""
        k = min(2, L.shape[0])
        seeds = [seed, seed + 1, seed + 2]
        session = serve(L, registry=KernelRegistry())
        for backend in SERVING_BACKENDS:
            scheduler = RoundScheduler(session, backend=backend)
            for s in seeds:
                scheduler.submit(k, seed=s)
            fused = [r.subset for r in scheduler.drain()]
            unfused = [session.sample(k=k, seed=s, method="parallel", backend=backend).subset
                       for s in seeds]
            assert fused == unfused

    @SERVING_SETTINGS
    @given(psd_matrices(max_n=6))
    def test_factorization_cache_content_addressing(self, L):
        """Equal content hits one entry; perturbed content misses."""
        cache = FactorizationCache(capacity=4)
        first = cache.factorization(L)
        assert cache.factorization(L.copy()) is first
        assert cache.factorization(L + 1e-6 * np.eye(L.shape[0])) is not first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2


# ---------------------------------------------------------------------- #
# tracker
# ---------------------------------------------------------------------- #
class TestTrackerProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=6))
    def test_merge_parallel_depth_is_max(self, depths):
        parent = Tracker()
        children = []
        for d in depths:
            child = parent.spawn()
            for _ in range(d):
                with child.round():
                    pass
            children.append(child)
        parent.merge_parallel(children)
        assert parent.rounds == max(depths)

    @SETTINGS
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=20))
    def test_work_accumulates(self, works):
        t = Tracker()
        for w in works:
            t.charge(work=w)
        assert t.work == pytest.approx(sum(works), rel=1e-9)
