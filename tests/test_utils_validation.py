"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_square,
    check_subset,
)


class TestCheckSquare:
    def test_valid(self):
        out = check_square(np.eye(3))
        assert out.shape == (3, 3)

    def test_rectangular_raises(self):
        with pytest.raises(ValueError):
            check_square(np.zeros((2, 3)))

    def test_vector_raises(self):
        with pytest.raises(ValueError):
            check_square(np.zeros(4))

    def test_nan_raises(self):
        bad = np.eye(2)
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            check_square(bad)

    def test_casts_to_float(self):
        out = check_square(np.eye(2, dtype=int))
        assert out.dtype == float


class TestCheckProbability:
    def test_valid(self):
        assert check_probability(0.5) == 0.5

    def test_endpoints(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_excluded_endpoints(self):
        with pytest.raises(ValueError):
            check_probability(0.0, allow_zero=False)
        with pytest.raises(ValueError):
            check_probability(1.0, allow_one=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_nan(self):
        with pytest.raises(ValueError):
            check_probability(float("nan"))


class TestCheckSubset:
    def test_sorted_output(self):
        assert check_subset([3, 1], 5) == (1, 3)

    def test_duplicates_raise(self):
        with pytest.raises(ValueError):
            check_subset([1, 1], 5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            check_subset([5], 5)
        with pytest.raises(ValueError):
            check_subset([-1], 5)

    def test_empty(self):
        assert check_subset([], 5) == ()


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3) == 3

    def test_minimum(self):
        assert check_positive_int(0, minimum=0) == 0
        with pytest.raises(ValueError):
            check_positive_int(0, minimum=1)

    def test_non_integer(self):
        with pytest.raises(ValueError):
            check_positive_int(2.5)

    def test_integral_float_accepted(self):
        assert check_positive_int(4.0) == 4
