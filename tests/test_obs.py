"""Tests for the observability layer (:mod:`repro.obs`).

Covers the metrics registry / tracer / feedback primitives, the Prometheus
and JSON exports, the planner's measured-cost feedback loop, the stable
stats rollup schemas, and the determinism contract: enabling observability
(metrics, tracing, even routing feedback) never changes sampled values.
"""

from __future__ import annotations

import json
import re
import threading

import numpy as np
import pytest

import repro
from repro import obs
from repro.engine.backends import BackendTraits, ExecutionBackend
from repro.engine.batch import OracleBatch, OracleBatchResult
from repro.obs.feedback import ObservedCostFeedback, shape_bucket
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.pram.cost import CalibratedCostModel, OracleCostHint, WallClockCoefficients


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with process-wide observability dark."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


# ---------------------------------------------------------------------- #
# metrics primitives
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("t_total", "help")
        gauge = reg.gauge("t_gauge", "help")
        hist = reg.histogram("t_seconds", "help")
        counter.inc()
        gauge.set(5.0)
        hist.observe(1.0)
        assert counter.value() == 0.0
        assert gauge.value() == 0.0
        snap = reg.snapshot()
        assert snap["enabled"] is False

    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("ops_total", "help", labelnames=("op",))
        counter.inc(op="ping")
        counter.inc(2.0, op="ping")
        counter.inc(op="stats")
        assert counter.value(op="ping") == pytest.approx(3.0)
        assert counter.value(op="stats") == pytest.approx(1.0)

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("neg_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry(enabled=True)
        gauge = reg.gauge("level", "help")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value() == pytest.approx(7.0)

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("lat", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            hist.observe(v)
        state = hist.value()
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(55.55)
        # bucket counts are per-bin here; cumulation happens at render time
        assert sum(state["counts"]) == 4

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry(enabled=True)
        a = reg.counter("same_total", "help")
        b = reg.counter("same_total", "help")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("clash", "help")
        with pytest.raises(ValueError):
            reg.gauge("clash", "help")

    def test_unknown_label_rejected(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("lbl_total", "help", labelnames=("op",))
        with pytest.raises(ValueError):
            counter.inc(other="x")

    def test_thread_safety_of_counter(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("race_total", "help")

        def worker():
            for _ in range(500):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == pytest.approx(4000.0)

    def test_reset_clears_values_keeps_instruments(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("kept_total", "help")
        counter.inc()
        reg.reset()
        assert counter.value() == 0.0
        assert reg.counter("kept_total", "help") is counter


class TestPrometheusRendering:
    """render_prometheus() must follow the text exposition format 0.0.4."""

    _SAMPLE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")

    def _parse(self, text):
        """Minimal format check: every line is HELP, TYPE, or a sample."""
        families = {}
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP "):
                families[line.split()[2]] = {"help": True}
            elif line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                families.setdefault(name, {})["type"] = kind
                assert kind in ("counter", "gauge", "histogram", "untyped")
            else:
                assert self._SAMPLE.match(line), f"bad sample line: {line!r}"
        return families

    def test_render_parses_and_covers_catalog(self):
        obs.enable()
        matrix = np.eye(4)
        batch = OracleBatch.log_principal_minors(matrix, [(0,), (1,)], label="t")
        result = OracleBatchResult(values=np.zeros(2), backend="serial",
                                   wall_time=0.01, n_queries=2)
        obs.record_round(batch, result)
        families = self._parse(obs.render_prometheus())
        assert families["repro_rounds_total"]["type"] == "counter"
        assert families["repro_round_seconds"]["type"] == "histogram"
        assert families["repro_round_queries"]["type"] == "histogram"

    def test_histogram_rendering_is_cumulative_with_inf(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("h", "help", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            hist.observe(v)
        text = reg.render_prometheus()
        assert 'h_bucket{le="1"} 1' in text or 'h_bucket{le="1.0"} 1' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text
        # cumulative: the le="2" bucket includes the le="1" observations
        match = re.search(r'h_bucket\{le="2(\.0)?"\} (\d+)', text)
        assert match and int(match.group(2)) == 2

    def test_label_values_escaped(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("esc_total", "help", labelnames=("label",))
        counter.inc(label='a"b\\c\nd')
        text = reg.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text


# ---------------------------------------------------------------------- #
# tracer
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record_round(label="r", kind="counting", family="F",
                            backend="serial", queries=3, wall_time=0.1)
        assert len(tracer) == 0

    def test_ring_buffer_caps_capacity(self):
        tracer = Tracer(capacity=4, enabled=True)
        for i in range(10):
            tracer.event("tick", i=i)
        events = tracer.events("tick")
        assert len(events) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]

    def test_round_spans_carry_required_fields(self):
        tracer = Tracer(enabled=True)
        tracer.record_round(label="phase-1", kind="counting", family="DppKDpp",
                            backend="vectorized", queries=7, wall_time=0.25,
                            queue_wait=0.01, predicted_seconds=0.2)
        (span,) = tracer.spans()
        assert span["type"] == "round"
        assert span["label"] == "phase-1"
        assert span["backend"] == "vectorized"
        assert span["queries"] == 7
        assert span["predicted_seconds"] == pytest.approx(0.2)
        json.dumps(span)  # every span must be JSON-safe

    def test_numpy_scalars_coerced(self):
        tracer = Tracer(enabled=True)
        tracer.event("e", value=np.float64(1.5), count=np.int64(3))
        (event,) = tracer.events("e")
        assert isinstance(event["value"], float)
        assert isinstance(event["count"], int)
        json.dumps(event)


# ---------------------------------------------------------------------- #
# measured-cost feedback
# ---------------------------------------------------------------------- #
class TestObservedCostFeedback:
    def test_shape_bucket_powers_of_two(self):
        assert shape_bucket(1) == 1
        assert shape_bucket(2) == 2
        assert shape_bucket(3) == 4
        assert shape_bucket(100) == 128

    def test_disabled_correction_is_identity(self):
        fb = ObservedCostFeedback(enabled=False)
        fb.observe("vectorized", "F", 8, predicted_seconds=0.1, actual_seconds=1.0)
        assert fb.correction("vectorized", "F", 8) == pytest.approx(1.0)

    def test_first_observation_seeds_directly(self):
        fb = ObservedCostFeedback(enabled=True)
        fb.observe("vectorized", "F", 8, predicted_seconds=0.1, actual_seconds=0.4)
        assert fb.correction("vectorized", "F", 8) == pytest.approx(4.0)

    def test_ewma_moves_toward_new_ratio(self):
        fb = ObservedCostFeedback(alpha=0.5, enabled=True)
        fb.observe("b", "F", 4, predicted_seconds=1.0, actual_seconds=4.0)
        fb.observe("b", "F", 4, predicted_seconds=1.0, actual_seconds=1.0)
        correction = fb.correction("b", "F", 4)
        assert 1.0 < correction < 4.0

    def test_clamped_to_bounds(self):
        fb = ObservedCostFeedback(clamp=64.0, enabled=True)
        fb.observe("b", "F", 4, predicted_seconds=1e-9, actual_seconds=10.0)
        assert fb.correction("b", "F", 4) == pytest.approx(64.0)

    def test_regimes_are_independent(self):
        fb = ObservedCostFeedback(enabled=True)
        fb.observe("b", "F", 4, predicted_seconds=1.0, actual_seconds=2.0)
        assert fb.correction("b", "F", 400) == pytest.approx(1.0)
        assert fb.correction("other", "F", 4) == pytest.approx(1.0)

    def test_snapshot_is_json_serializable(self):
        fb = ObservedCostFeedback(enabled=True)
        fb.observe("b", "F", 4, predicted_seconds=1.0, actual_seconds=2.0)
        snap = fb.snapshot()
        json.dumps(snap)
        (entry,) = snap["corrections"]
        assert entry["backend"] == "b"
        assert entry["shape_bucket"] == 4


# ---------------------------------------------------------------------- #
# planner feedback loop: mis-calibration converges to the fast backend
# ---------------------------------------------------------------------- #
class _StubBackend(ExecutionBackend):
    """Backend whose reported wall time is scripted, not measured."""

    def __init__(self, name, wall_time, **traits):
        self.name = name
        self._wall = wall_time
        self._traits = BackendTraits(name=name, **traits)
        self.calls = 0

    def execute(self, batch, *, tracker=None):
        self.calls += 1
        return OracleBatchResult(values=np.zeros(batch.n_queries),
                                 backend=self.name, wall_time=self._wall,
                                 n_queries=batch.n_queries)

    def traits(self):
        return self._traits

    def _counting(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError

    def _joint_marginals(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError

    def _log_principal_minors(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError


class TestPlannerFeedbackLoop:
    def _batch(self):
        matrix = np.eye(8)
        subsets = [(i,) for i in range(8)] * 4  # 32 queries
        return OracleBatch.log_principal_minors(matrix, subsets, label="loop")

    def test_miscalibrated_model_converges_to_fast_backend(self):
        """A cost model that flatters the slow backend loses to measurement.

        The hand-built coefficients price everything identically, so the
        planner's static estimates tie and the candidate order makes it
        start on ``vectorized``.  The scripted wall times then say
        ``vectorized`` is ~16x slower than predicted (inside the clamp, so
        the regimes stay distinguishable) while ``process`` is far faster;
        the EWMA corrections must reroute the round to ``process`` within a
        few observations — the acceptance criterion of the feedback loop.
        """
        model = CalibratedCostModel(coefficients=WallClockCoefficients(
            seconds_per_flop_unit=1e-3, seconds_per_python_unit=1e-3,
            seconds_per_shipped_byte=0.0))
        slow = _StubBackend("vectorized", wall_time=0.5)
        fast = _StubBackend("process", wall_time=1e-4, parallelism=4,
                            escapes_gil=True)
        planner = repro.RoundPlanner(
            model, candidates=("vectorized", "process"),
            backends={"vectorized": slow, "process": fast},
            overheads={"vectorized": 0.0, "process": 0.0},
            feedback=ObservedCostFeedback(enabled=True))
        auto = repro.AutoBackend(planner)

        chosen = []
        for _ in range(8):
            auto.execute(self._batch())
            chosen.append(planner.last_decision.chosen)
        assert chosen[0] == "vectorized"          # mis-calibration wins round 1
        assert "process" in chosen, f"never rerouted: {chosen}"
        switched = chosen.index("process")
        assert switched <= 4, f"took too long to converge: {chosen}"
        assert all(c == "process" for c in chosen[switched:]), chosen

    def test_feedback_disabled_keeps_static_routing(self):
        model = CalibratedCostModel(coefficients=WallClockCoefficients(
            seconds_per_flop_unit=1e-3, seconds_per_python_unit=1e-3,
            seconds_per_shipped_byte=0.0))
        slow = _StubBackend("vectorized", wall_time=0.5)
        fast = _StubBackend("process", wall_time=1e-4, parallelism=4,
                            escapes_gil=True)
        planner = repro.RoundPlanner(
            model, candidates=("vectorized", "process"),
            backends={"vectorized": slow, "process": fast},
            overheads={"vectorized": 0.0, "process": 0.0},
            feedback=ObservedCostFeedback(enabled=False))
        auto = repro.AutoBackend(planner)
        for _ in range(4):
            auto.execute(self._batch())
        assert fast.calls == 0  # without feedback the tie never breaks


# ---------------------------------------------------------------------- #
# process-wide switches and exports
# ---------------------------------------------------------------------- #
class TestObsFacade:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert not obs.tracer().enabled
        assert not obs.feedback().enabled

    def test_enable_disable_cycle(self):
        obs.enable()
        assert obs.enabled() and obs.tracer().enabled
        assert not obs.feedback().enabled  # routing knob stays separate
        obs.disable()
        assert not obs.enabled() and not obs.tracer().enabled

    def test_configure_feedback_knob(self):
        state = obs.configure(feedback=True)
        assert state["feedback"] is True
        assert obs.feedback().enabled
        assert not obs.enabled()  # metrics stay dark unless asked

    def test_snapshot_shape_and_json(self):
        obs.enable()
        obs.record_fusion(3)
        snap = obs.snapshot()
        json.dumps(snap)
        assert set(snap) == {"metrics", "trace", "feedback", "slo", "flight"}
        assert snap["metrics"]["enabled"] is True

    def test_record_round_populates_metrics_and_trace(self):
        obs.enable()
        matrix = np.eye(4)
        batch = OracleBatch.log_principal_minors(matrix, [(0,), (1,)], label="t")
        result = OracleBatchResult(values=np.zeros(2), backend="serial",
                                   wall_time=0.01, n_queries=2)
        obs.record_round(batch, result)
        counter = obs.registry().counter(
            "repro_rounds_total", "", labelnames=("backend", "kind"))
        assert counter.value(backend="serial",
                             kind="log_principal_minors") == pytest.approx(1.0)
        (span,) = obs.tracer().spans()
        assert span["family"] == "matrix"

    def test_reset_clears_everything(self):
        obs.enable()
        obs.record_fusion(2)
        obs.tracer().event("x")
        obs.reset()
        assert len(obs.tracer()) == 0
        # value-less instruments are omitted from exports entirely
        assert "repro_scheduler_fusion_width" not in obs.snapshot()["metrics"]["metrics"]


# ---------------------------------------------------------------------- #
# stats rollups: one registry, stable schemas, JSON-safe
# ---------------------------------------------------------------------- #
class TestStatsRollups:
    def test_session_stats_schema_and_json(self, small_psd):
        with repro.serve(small_psd, registry=repro.KernelRegistry()) as session:
            session.sample(k=3, seed=1)
            stats = session.stats
        json.dumps(stats)
        assert set(stats) >= {"kernel", "kind", "n", "samples_served",
                              "cache", "cached_artifacts_bytes"}
        assert stats["samples_served"] == 1
        assert set(stats["cache"]) == {"hits", "misses", "evictions",
                                       "size_evictions", "expired",
                                       "invalidations", "update_patched",
                                       "update_recomputed"}

    def test_scheduler_stats_json(self, small_psd):
        with repro.serve(small_psd, registry=repro.KernelRegistry()) as session:
            scheduler = repro.RoundScheduler(session)
            scheduler.submit(3, seed=1)
            scheduler.drain()
            json.dumps(scheduler.stats)
            json.dumps(session.stats)  # session view now includes scheduler

    def test_registry_and_cache_info_json(self, small_psd):
        registry = repro.KernelRegistry()
        with repro.serve(small_psd, registry=registry) as session:
            session.sample(k=3, seed=1)
            json.dumps(registry.registry_info())
            json.dumps(session.cache.cache_info())
            json.dumps(registry.census())

    def test_cluster_info_schema_shared_between_frontends(self, small_psd):
        from repro.cluster import LocalCluster

        with LocalCluster(nodes=2, replication=1) as cluster:
            client = cluster.client()
            entry = client.register(small_psd, name="k")
            client.sample(entry.name, k=3, seed=2)
            via_client = client.cluster_info()
            via_cluster = cluster.cluster_info()
        json.dumps(via_client)
        assert set(via_client) == {"nodes", "alive", "ring", "registered",
                                   "samples_served", "failovers", "cache"}
        assert set(via_client["ring"]) == {"nodes", "vnodes", "replication"}
        assert set(via_cluster) == set(via_client)
        assert via_client["alive"] == 2
        assert via_client["registered"] == 1
        assert via_client["samples_served"] == 1

    def test_cluster_session_stats_json(self, small_psd):
        with repro.serve_cluster(small_psd, nodes=2) as session:
            session.sample(k=3, seed=3)
            json.dumps(session.stats)

    def test_obs_snapshot_json_after_real_traffic(self, small_psd):
        obs.enable()
        with repro.serve(small_psd, registry=repro.KernelRegistry()) as session:
            session.sample(k=3, seed=1)
        json.dumps(obs.snapshot())
        text = obs.render_prometheus()
        assert "repro_cache_hits_total" in text
        assert "repro_registry_kernels" in text


# ---------------------------------------------------------------------- #
# determinism: observability never changes sampled values
# ---------------------------------------------------------------------- #
class TestByteIdentity:
    BACKENDS = ("serial", "vectorized", "threads", "auto")
    SEEDS = (1, 7, 42)

    def _draws(self, matrix, backend):
        return [repro.sample_symmetric_kdpp_parallel(
            matrix, 3, seed=seed, backend=backend).subset
            for seed in self.SEEDS]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_direct_sampling_identical_under_obs(self, small_psd, backend):
        baseline = self._draws(small_psd, backend)
        obs.enable()
        with_obs = self._draws(small_psd, backend)
        obs.configure(feedback=True)
        with_feedback = self._draws(small_psd, backend)
        assert with_obs == baseline
        assert with_feedback == baseline

    def test_fused_and_unfused_identical_under_obs(self, small_psd):
        def fused_draws():
            with repro.serve(small_psd, registry=repro.KernelRegistry()) as session:
                scheduler = repro.RoundScheduler(session)
                for seed in self.SEEDS:
                    scheduler.submit(3, seed=seed)
                return [r.subset for r in scheduler.drain()]

        def unfused_draws():
            # method="parallel" matches the scheduler's default, so fused
            # and unfused draws are comparable draw for draw
            with repro.serve(small_psd, registry=repro.KernelRegistry()) as session:
                return [session.sample(3, seed=seed, method="parallel").subset
                        for seed in self.SEEDS]

        base_fused, base_unfused = fused_draws(), unfused_draws()
        assert base_fused == base_unfused
        obs.enable()
        obs.configure(feedback=True)
        assert fused_draws() == base_fused
        assert unfused_draws() == base_unfused

    def test_cluster_identical_under_obs(self, small_psd):
        def draws():
            with repro.serve_cluster(small_psd, nodes=2) as session:
                return [session.sample(k=3, seed=seed).subset
                        for seed in self.SEEDS]

        baseline = draws()
        obs.enable()
        obs.configure(feedback=True)
        assert draws() == baseline

    def test_intermediate_sampler_identical_and_traced(self):
        rng = np.random.default_rng(5)
        B = rng.standard_normal((40, 4))
        kernel = repro.LowRankKernel(B)
        baseline = repro.sample_kdpp_intermediate(kernel, 3, seed=11)
        obs.enable()
        again = repro.sample_kdpp_intermediate(kernel, 3, seed=11)
        assert again == baseline
        outcomes = [e["outcome"] for e in obs.tracer().events("intermediate")]
        assert outcomes, "intermediate sampler emitted no acceptance events"
        assert set(outcomes) <= {"direct", "accepted", "rejected",
                                 "skipped_trace", "skipped_certificate"}
