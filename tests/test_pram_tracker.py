"""Tests for the PRAM cost model and tracker."""

import pytest

from repro.pram.cost import CostModel
from repro.pram.tracker import Tracker, current_tracker, null_tracker, use_tracker


class TestCostModel:
    def test_determinant_work_scaling(self):
        model = CostModel(determinant_exponent=3.0)
        assert model.determinant_work(10) == pytest.approx(1000.0)

    def test_determinant_work_minimum(self):
        model = CostModel()
        assert model.determinant_work(0) == pytest.approx(1.0)

    def test_oracle_query_work(self):
        model = CostModel(determinant_exponent=2.0)
        assert model.oracle_query_work(4, queries=3) == pytest.approx(3 * 16.0)


class TestTrackerRounds:
    def test_single_round(self):
        t = Tracker()
        with t.round():
            pass
        assert t.rounds == 1

    def test_nested_rounds_count_once(self):
        t = Tracker()
        with t.round("outer"):
            with t.round("inner"):
                with t.round("inner2"):
                    pass
        assert t.rounds == 1

    def test_sequential_rounds_add(self):
        t = Tracker()
        for _ in range(5):
            with t.round():
                pass
        assert t.rounds == 5

    def test_add_rounds(self):
        t = Tracker()
        t.add_rounds(3)
        assert t.rounds == 3
        with pytest.raises(ValueError):
            t.add_rounds(-1)

    def test_round_log(self):
        t = Tracker(record_rounds=True)
        with t.round("alpha"):
            t.charge(work=2.0, oracle_calls=1)
        assert len(t.round_log) == 1
        assert t.round_log[0].label == "alpha"
        assert t.round_log[0].work == pytest.approx(2.0)


class TestTrackerCharges:
    def test_charge_accumulates(self):
        t = Tracker()
        t.charge(work=5.0, machines=3.0, oracle_calls=2)
        t.charge(work=1.0, machines=1.0, oracle_calls=1)
        assert t.work == pytest.approx(6.0)
        assert t.oracle_calls == 3
        assert t.peak_machines == pytest.approx(3.0)

    def test_charge_determinant(self):
        t = Tracker(CostModel(determinant_exponent=3.0))
        t.charge_determinant(4, count=2)
        assert t.work == pytest.approx(2 * 64.0)
        assert t.oracle_calls == 2

    def test_charge_oracle(self):
        t = Tracker()
        t.charge_oracle(5, queries=7)
        assert t.oracle_calls == 7
        assert t.peak_machines == pytest.approx(7.0)

    def test_snapshot_keys(self):
        t = Tracker()
        snap = t.snapshot()
        assert set(snap) == {"rounds", "work", "oracle_calls", "peak_machines"}


class TestTrackerMerging:
    def test_merge_parallel_takes_max_depth(self):
        parent = Tracker()
        a, b = parent.spawn(), parent.spawn()
        for _ in range(3):
            with a.round():
                a.charge(work=1.0)
        for _ in range(5):
            with b.round():
                b.charge(work=2.0)
        parent.merge_parallel([a, b])
        assert parent.rounds == 5
        assert parent.work == pytest.approx(3.0 + 10.0)

    def test_merge_parallel_empty(self):
        parent = Tracker()
        parent.merge_parallel([])
        assert parent.rounds == 0

    def test_merge_parallel_sums_machines(self):
        parent = Tracker()
        a, b = parent.spawn(), parent.spawn()
        a.charge(machines=4.0)
        b.charge(machines=6.0)
        parent.merge_parallel([a, b])
        assert parent.peak_machines == pytest.approx(10.0)

    def test_merge_sequential_adds_depth(self):
        parent = Tracker()
        with parent.round():
            pass
        child = parent.spawn()
        for _ in range(2):
            with child.round():
                pass
        parent.merge_sequential(child)
        assert parent.rounds == 3


class TestCurrentTracker:
    def test_default_is_null_tracker(self):
        assert current_tracker() is null_tracker()

    def test_use_tracker_installs_and_restores(self):
        t = Tracker()
        with use_tracker(t):
            assert current_tracker() is t
        assert current_tracker() is not t

    def test_nested_use_tracker(self):
        outer, inner = Tracker(), Tracker()
        with use_tracker(outer):
            with use_tracker(inner):
                assert current_tracker() is inner
            assert current_tracker() is outer
