"""Tests for the PRAM cost model and tracker."""

import pytest

from repro.pram.cost import CostModel
from repro.pram.tracker import Tracker, current_tracker, null_tracker, use_tracker


class TestCostModel:
    def test_determinant_work_scaling(self):
        model = CostModel(determinant_exponent=3.0)
        assert model.determinant_work(10) == pytest.approx(1000.0)

    def test_determinant_work_minimum(self):
        model = CostModel()
        assert model.determinant_work(0) == pytest.approx(1.0)

    def test_oracle_query_work(self):
        model = CostModel(determinant_exponent=2.0)
        assert model.oracle_query_work(4, queries=3) == pytest.approx(3 * 16.0)


class TestTrackerRounds:
    def test_single_round(self):
        t = Tracker()
        with t.round():
            pass
        assert t.rounds == 1

    def test_nested_rounds_count_once(self):
        t = Tracker()
        with t.round("outer"):
            with t.round("inner"):
                with t.round("inner2"):
                    pass
        assert t.rounds == 1

    def test_sequential_rounds_add(self):
        t = Tracker()
        for _ in range(5):
            with t.round():
                pass
        assert t.rounds == 5

    def test_add_rounds(self):
        t = Tracker()
        t.add_rounds(3)
        assert t.rounds == 3
        with pytest.raises(ValueError):
            t.add_rounds(-1)

    def test_round_log(self):
        t = Tracker(record_rounds=True)
        with t.round("alpha"):
            t.charge(work=2.0, oracle_calls=1)
        assert len(t.round_log) == 1
        assert t.round_log[0].label == "alpha"
        assert t.round_log[0].work == pytest.approx(2.0)


class TestRoundRecords:
    """record_rounds=True keeps one labelled RoundRecord per outermost round."""

    def test_labels_in_order(self):
        t = Tracker(record_rounds=True)
        for label in ("select", "filter", "commit"):
            with t.round(label):
                t.charge(work=1.0)
        assert [r.label for r in t.round_log] == ["select", "filter", "commit"]

    def test_nested_charges_attributed_to_outermost_record(self):
        t = Tracker(record_rounds=True)
        with t.round("outer"):
            t.charge(work=1.0, machines=2.0, oracle_calls=1)
            with t.round("inner"):
                t.charge(work=4.0, machines=5.0, oracle_calls=2)
        assert len(t.round_log) == 1
        record = t.round_log[0]
        assert record.label == "outer"
        assert record.work == pytest.approx(5.0)
        assert record.machines == pytest.approx(5.0)
        assert record.oracle_calls == 3

    def test_record_machines_is_per_round_peak(self):
        t = Tracker(record_rounds=True)
        with t.round("a"):
            t.charge(machines=7.0)
            t.charge(machines=3.0)
        assert t.round_log[0].machines == pytest.approx(7.0)

    def test_disabled_by_default(self):
        t = Tracker()
        with t.round("unlogged"):
            t.charge(work=1.0)
        assert t.round_log == []

    def test_charges_outside_rounds_not_recorded(self):
        t = Tracker(record_rounds=True)
        t.charge(work=9.0)
        with t.round("only"):
            pass
        t.charge(work=9.0)
        assert t.round_log[0].work == pytest.approx(0.0)

    def test_round_log_totals_match_tracker(self):
        t = Tracker(record_rounds=True)
        with t.round("a"):
            t.charge(work=2.0, oracle_calls=3)
        with t.round("b"):
            t.charge(work=5.0, oracle_calls=1)
        assert sum(r.work for r in t.round_log) == pytest.approx(t.work)
        assert sum(r.oracle_calls for r in t.round_log) == t.oracle_calls
        assert len(t.round_log) == t.rounds


class TestTrackerCharges:
    def test_charge_accumulates(self):
        t = Tracker()
        t.charge(work=5.0, machines=3.0, oracle_calls=2)
        t.charge(work=1.0, machines=1.0, oracle_calls=1)
        assert t.work == pytest.approx(6.0)
        assert t.oracle_calls == 3
        assert t.peak_machines == pytest.approx(3.0)

    def test_charge_determinant(self):
        t = Tracker(CostModel(determinant_exponent=3.0))
        t.charge_determinant(4, count=2)
        assert t.work == pytest.approx(2 * 64.0)
        assert t.oracle_calls == 2

    def test_charge_oracle(self):
        t = Tracker()
        t.charge_oracle(5, queries=7)
        assert t.oracle_calls == 7
        assert t.peak_machines == pytest.approx(7.0)

    def test_snapshot_keys(self):
        t = Tracker()
        snap = t.snapshot()
        assert set(snap) == {"rounds", "work", "oracle_calls", "peak_machines"}


class TestTrackerMerging:
    def test_merge_parallel_takes_max_depth(self):
        parent = Tracker()
        a, b = parent.spawn(), parent.spawn()
        for _ in range(3):
            with a.round():
                a.charge(work=1.0)
        for _ in range(5):
            with b.round():
                b.charge(work=2.0)
        parent.merge_parallel([a, b])
        assert parent.rounds == 5
        assert parent.work == pytest.approx(3.0 + 10.0)

    def test_merge_parallel_empty(self):
        parent = Tracker()
        parent.merge_parallel([])
        assert parent.rounds == 0

    def test_merge_parallel_sums_machines(self):
        parent = Tracker()
        a, b = parent.spawn(), parent.spawn()
        a.charge(machines=4.0)
        b.charge(machines=6.0)
        parent.merge_parallel([a, b])
        assert parent.peak_machines == pytest.approx(10.0)

    def test_merge_parallel_round_accounting(self):
        """Depth is the max branch depth; work/oracle-calls sum; a parent
        round opened before the merge still counts separately."""
        parent = Tracker()
        with parent.round("setup"):
            parent.charge(oracle_calls=1)
        branches = [parent.spawn() for _ in range(3)]
        for depth, branch in zip((2, 4, 1), branches):
            for _ in range(depth):
                with branch.round():
                    branch.charge_oracle(4, queries=2)
        parent.merge_parallel(branches)
        assert parent.rounds == 1 + 4
        assert parent.oracle_calls == 1 + 2 * (2 + 4 + 1)

    def test_merge_parallel_zero_depth_branches(self):
        parent = Tracker()
        a, b = parent.spawn(), parent.spawn()
        a.charge(work=1.0)
        b.charge(work=2.0)
        parent.merge_parallel([a, b])
        assert parent.rounds == 0
        assert parent.work == pytest.approx(3.0)
        # idle branches still occupy one machine each while active
        assert parent.peak_machines == pytest.approx(2.0)

    def test_spawn_does_not_record_rounds(self):
        parent = Tracker(record_rounds=True)
        child = parent.spawn()
        with child.round("child-round"):
            child.charge(work=1.0)
        assert child.round_log == []
        parent.merge_parallel([child])
        assert parent.round_log == []
        assert parent.rounds == 1

    def test_merge_sequential_adds_depth(self):
        parent = Tracker()
        with parent.round():
            pass
        child = parent.spawn()
        for _ in range(2):
            with child.round():
                pass
        parent.merge_sequential(child)
        assert parent.rounds == 3


class TestCurrentTracker:
    def test_default_is_null_tracker(self):
        assert current_tracker() is null_tracker()

    def test_use_tracker_installs_and_restores(self):
        t = Tracker()
        with use_tracker(t):
            assert current_tracker() is t
        assert current_tracker() is not t

    def test_nested_use_tracker(self):
        outer, inner = Tracker(), Tracker()
        with use_tracker(outer):
            with use_tracker(inner):
                assert current_tracker() is inner
            assert current_tracker() is outer
