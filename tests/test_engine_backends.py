"""Tests for the oracle-batch engine: backend equivalence, configuration,
normalizer caching, schedule edge cases, and oracle validation."""

import numpy as np
import pytest

from repro.core.batched import batch_schedule, batched_sample
from repro.core.filtering import sample_bounded_dpp_filtering
from repro.core.partition import sample_partition_dpp_parallel
from repro.core.symmetric import sample_symmetric_kdpp_parallel
from repro.distributions.base import CountingOracleError, SubsetDistribution
from repro.distributions.generic import ExplicitDistribution, uniform_distribution_on_size_k
from repro.dpp.partition import PartitionDPP
from repro.dpp.symmetric import SymmetricKDPP
from repro.engine import (
    OracleBatch,
    SerialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
    configure_backend,
    current_backend,
    execute_batch,
    resolve_backend,
    use_backend,
)
from repro.pram.tracker import Tracker
from repro.workloads import random_psd_ensemble

BACKENDS = [SerialBackend(), VectorizedBackend(), ThreadPoolBackend(max_workers=4)]
BACKEND_IDS = ["serial", "vectorized", "threads"]


@pytest.fixture(scope="module")
def kdpp():
    return SymmetricKDPP(random_psd_ensemble(14, seed=0), 6)


@pytest.fixture(scope="module")
def explicit():
    rng = np.random.default_rng(1)
    table = {}
    from repro.utils.subsets import all_subsets_of_size

    for subset in all_subsets_of_size(8, 3):
        table[subset] = float(rng.random()) + 0.05
    return ExplicitDistribution(8, table, cardinality=3)


@pytest.fixture(scope="module")
def partition_dpp():
    L = random_psd_ensemble(9, seed=2)
    return PartitionDPP(L, [[0, 1, 2, 3], [4, 5, 6, 7, 8]], [2, 1])


def _random_subsets(rng, n, sizes, per_size=4):
    subsets = []
    for t in sizes:
        for _ in range(per_size):
            subsets.append(tuple(sorted(rng.choice(n, size=t, replace=False).tolist())))
    return subsets


class TestBatchValueEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_counting_kdpp(self, kdpp, backend):
        rng = np.random.default_rng(3)
        subsets = _random_subsets(rng, kdpp.n, [0, 1, 2, 3, 6, 7])
        reference = np.array([kdpp.counting(s) for s in subsets])
        result = backend.execute(OracleBatch.counting(kdpp, subsets), tracker=Tracker())
        np.testing.assert_allclose(result.values, reference, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_joint_marginals_explicit(self, explicit, backend):
        rng = np.random.default_rng(4)
        subsets = _random_subsets(rng, explicit.n, [0, 1, 2, 3])
        z = explicit.counting(())
        reference = np.array([explicit.counting(s) / z for s in subsets])
        result = backend.execute(OracleBatch.joint_marginals(explicit, subsets), tracker=Tracker())
        np.testing.assert_allclose(result.values, reference, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_counting_partition(self, partition_dpp, backend):
        rng = np.random.default_rng(5)
        subsets = _random_subsets(rng, partition_dpp.n, [0, 1, 2, 3], per_size=3)
        reference = np.array([partition_dpp.counting(s) for s in subsets])
        result = backend.execute(OracleBatch.counting(partition_dpp, subsets), tracker=Tracker())
        np.testing.assert_allclose(result.values, reference, rtol=1e-8, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_log_principal_minors(self, backend):
        rng = np.random.default_rng(6)
        L = random_psd_ensemble(10, seed=7)
        subsets = _random_subsets(rng, 10, [0, 1, 2, 4], per_size=3)
        result = backend.execute(OracleBatch.log_principal_minors(L, subsets), tracker=Tracker())
        for value, subset in zip(result.values, subsets):
            if subset:
                sign, logdet = np.linalg.slogdet(L[np.ix_(subset, subset)])
                expected = logdet if sign > 0 else -np.inf
            else:
                expected = 0.0
            assert value == pytest.approx(expected, rel=1e-9)

    def test_result_metadata(self, kdpp):
        backend = VectorizedBackend()
        result = backend.execute(OracleBatch.counting(kdpp, [(0,), (1,)]), tracker=Tracker())
        assert result.backend == "vectorized"
        assert result.n_queries == 2
        assert result.wall_time >= 0.0

    def test_round_accounting_is_backend_independent(self, kdpp):
        subsets = [(0, 1), (2, 3), (4, 5)]
        depths = []
        for backend in BACKENDS:
            tracker = Tracker()
            backend.execute(OracleBatch.joint_marginals(kdpp, subsets), tracker=tracker)
            depths.append(tracker.rounds)
        assert depths == [1, 1, 1]


class TestSamplerEquivalence:
    """Fixed seeds must give identical samples on every backend."""

    def test_symmetric_kdpp(self):
        L = random_psd_ensemble(16, seed=8)
        subsets = {
            name: sample_symmetric_kdpp_parallel(L, 6, seed=123, backend=backend).subset
            for name, backend in zip(BACKEND_IDS, BACKENDS)
        }
        assert len(set(subsets.values())) == 1, subsets

    def test_explicit_table(self, explicit):
        subsets = {
            name: batched_sample(explicit, seed=321, backend=backend).subset
            for name, backend in zip(BACKEND_IDS, BACKENDS)
        }
        assert len(set(subsets.values())) == 1, subsets

    def test_partition_dpp(self):
        L = random_psd_ensemble(10, seed=9)
        parts = [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        subsets = {
            name: sample_partition_dpp_parallel(L, parts, [2, 2], seed=213, backend=backend).subset
            for name, backend in zip(BACKEND_IDS, BACKENDS)
        }
        assert len(set(subsets.values())) == 1, subsets

    def test_filtering(self):
        L = 0.05 * random_psd_ensemble(14, seed=10)
        subsets = {
            name: sample_bounded_dpp_filtering(L, seed=132, strategy="filter",
                                               backend=backend).subset
            for name, backend in zip(BACKEND_IDS, BACKENDS)
        }
        assert len(set(subsets.values())) == 1, subsets


class TestBackendConfiguration:
    def test_configure_and_restore(self):
        previous = current_backend()
        try:
            installed = configure_backend("serial")
            assert isinstance(installed, SerialBackend)
            assert current_backend() is installed
            assert resolve_backend(None) is installed
        finally:
            configure_backend(previous)

    def test_use_backend_scopes_override(self):
        base = current_backend()
        with use_backend("serial") as scoped:
            assert current_backend() is scoped
        assert current_backend() is base

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            configure_backend("quantum")

    def test_instance_passthrough(self):
        backend = ThreadPoolBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_options_forwarded(self):
        backend = resolve_backend(None)
        with use_backend("threads", max_workers=3) as scoped:
            assert scoped.max_workers == 3
        assert current_backend() is backend

    def test_sampler_accepts_backend_name(self):
        L = random_psd_ensemble(12, seed=11)
        result = sample_symmetric_kdpp_parallel(L, 4, seed=5, backend="serial")
        assert len(result.subset) == 4


class TestThreadPoolReuse:
    """The executor is created once and reused across batches (satellite fix:
    a fresh ThreadPoolExecutor per OracleBatch dominated small rounds)."""

    def test_executor_survives_across_batches(self, kdpp):
        backend = ThreadPoolBackend(max_workers=2)
        try:
            assert backend._pool is None  # lazy: no pool before the first batch
            backend.execute(OracleBatch.counting(kdpp, [(0,), (1,)]), tracker=Tracker())
            pool = backend._pool
            assert pool is not None
            backend.execute(OracleBatch.counting(kdpp, [(2,), (3,)]), tracker=Tracker())
            assert backend._pool is pool
        finally:
            backend.close()

    def test_close_then_reuse_recreates_pool(self, kdpp):
        backend = ThreadPoolBackend(max_workers=2)
        try:
            first = backend.execute(OracleBatch.counting(kdpp, [(0,)]), tracker=Tracker())
            backend.close()
            assert backend._pool is None
            again = backend.execute(OracleBatch.counting(kdpp, [(0,)]), tracker=Tracker())
            np.testing.assert_allclose(again.values, first.values)
        finally:
            backend.close()

    def test_values_unchanged_by_reuse(self, kdpp):
        subsets = [(0,), (1,), (0, 1), (2, 3, 4)]
        backend = ThreadPoolBackend(max_workers=3)
        try:
            reference = SerialBackend().execute(OracleBatch.counting(kdpp, subsets),
                                                tracker=Tracker())
            for _ in range(3):
                result = backend.execute(OracleBatch.counting(kdpp, subsets),
                                         tracker=Tracker())
                np.testing.assert_allclose(result.values, reference.values,
                                           rtol=1e-9, atol=1e-12)
        finally:
            backend.close()


class _CountingSpy(SubsetDistribution):
    """Wraps a distribution, counting how often the normalizer is queried."""

    def __init__(self, inner):
        self.inner = inner
        self.n = inner.n
        self.empty_queries = 0

    def counting(self, given=()):
        if not tuple(given):
            self.empty_queries += 1
        return self.inner.counting(given)

    def condition(self, include):
        return _CountingSpy(self.inner.condition(include))


class TestNormalizerCaching:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_normalizer_computed_once_per_batch(self, backend):
        spy = _CountingSpy(uniform_distribution_on_size_k(8, 3))
        subsets = [(0,), (1,), (2,), (3,), (0, 1), (1, 2)]
        backend.execute(OracleBatch.joint_marginals(spy, subsets), tracker=Tracker())
        assert spy.empty_queries == 1

    def test_batch_caches_normalizer_across_backends(self):
        spy = _CountingSpy(uniform_distribution_on_size_k(6, 2))
        batch = OracleBatch.joint_marginals(spy, [(0,), (1,)])
        assert batch.normalizer() == pytest.approx(1.0)
        assert batch.normalizer() == pytest.approx(1.0)
        assert spy.empty_queries == 1


class TestBatchScheduleEdgeCases:
    def test_zero_k(self):
        assert batch_schedule(0) == []

    def test_k_one(self):
        assert batch_schedule(1) == [1]

    def test_custom_schedule_exceeding_remaining_is_clamped(self):
        assert batch_schedule(5, batch_size=lambda k: 100) == [5]
        assert batch_schedule(7, batch_size=lambda k: 4) == [4, 3]

    def test_nonpositive_batch_size_clamped_to_one(self):
        assert batch_schedule(3, batch_size=lambda k: 0) == [1, 1, 1]
        assert batch_schedule(2, batch_size=lambda k: -5) == [1, 1]


class _NegativeOracle(SubsetDistribution):
    """Broken oracle: one element reports negative mass."""

    n = 5

    def counting(self, given=()):
        items = tuple(given)
        if len(items) == 1 and items[0] == 3:
            return -0.25
        return 1.0

    def condition(self, include):  # pragma: no cover - not reached
        return self


class TestOracleValidation:
    def test_negative_counting_raises_clear_error(self):
        with pytest.raises(CountingOracleError, match="element 3"):
            _NegativeOracle().marginal_vector()

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            _NegativeOracle().marginal_vector()

    def test_tiny_negative_noise_is_clipped(self):
        class Noisy(_NegativeOracle):
            def counting(self, given=()):
                items = tuple(given)
                if len(items) == 1 and items[0] == 3:
                    return -1e-15
                return 1.0

        marginals = Noisy().marginal_vector()
        assert marginals[3] == 0.0
        assert np.all(marginals >= 0.0)


class TestBatchProtocol:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            OracleBatch(kind="divination")

    def test_matrix_kind_requires_matrix(self):
        with pytest.raises(ValueError):
            OracleBatch(kind="log_principal_minors")

    def test_distribution_kind_requires_distribution(self):
        with pytest.raises(ValueError):
            OracleBatch(kind="counting")

    def test_execute_batch_uses_configured_backend(self, kdpp):
        with use_backend("serial"):
            result = execute_batch(OracleBatch.counting(kdpp, [(0,)]), tracker=Tracker())
        assert result.backend == "serial"
