"""Tests for repro.linalg: charpoly, determinants, Schur, ESPs, PSD helpers."""

import numpy as np
import pytest

from repro.linalg.charpoly import char_poly_coefficients, faddeev_leverrier
from repro.linalg.determinant import (
    batched_principal_minors,
    determinant,
    log_determinant,
    principal_minor,
)
from repro.linalg.esp import elementary_symmetric_polynomials, esp_from_matrix
from repro.linalg.psd import (
    is_npsd,
    is_psd,
    project_psd,
    psd_sqrt,
    random_orthogonal,
    symmetrize,
)
from repro.linalg.schur import condition_ensemble, schur_complement
from repro.workloads import random_psd_ensemble


class TestCharPoly:
    def test_faddeev_matches_numpy_poly(self, rng):
        a = rng.standard_normal((5, 5))
        coeffs = faddeev_leverrier(a)
        expected = np.poly(a)
        assert np.allclose(coeffs, expected, atol=1e-8)

    def test_char_poly_matches_numpy_poly(self, rng):
        a = rng.standard_normal((6, 6))
        coeffs = char_poly_coefficients(a)
        expected = np.poly(a)
        assert np.allclose(coeffs, expected, atol=1e-6 * max(1.0, np.abs(expected).max()))

    def test_identity_matrix(self):
        coeffs = faddeev_leverrier(np.eye(3))
        # det(tI - I) = (t-1)^3 = t^3 - 3t^2 + 3t - 1
        assert np.allclose(coeffs, [1, -3, 3, -1])

    def test_constant_term_is_signed_determinant(self, rng):
        a = rng.standard_normal((4, 4))
        coeffs = faddeev_leverrier(a)
        assert coeffs[-1] == pytest.approx((-1) ** 4 * np.linalg.det(a), rel=1e-8)

    def test_empty_matrix(self):
        assert np.allclose(char_poly_coefficients(np.zeros((0, 0))), [1.0])


class TestDeterminants:
    def test_determinant_matches_numpy(self, rng):
        a = rng.standard_normal((5, 5))
        assert determinant(a) == pytest.approx(np.linalg.det(a))

    def test_empty_determinant_is_one(self):
        assert determinant(np.zeros((0, 0))) == 1.0

    def test_log_determinant(self, rng):
        a = np.eye(4) + 0.1 * rng.standard_normal((4, 4))
        sign, logabs = log_determinant(a)
        assert sign * np.exp(logabs) == pytest.approx(np.linalg.det(a))

    def test_principal_minor(self, small_psd):
        subset = (1, 3, 4)
        expected = np.linalg.det(small_psd[np.ix_(subset, subset)])
        assert principal_minor(small_psd, subset) == pytest.approx(expected)

    def test_principal_minor_empty(self, small_psd):
        assert principal_minor(small_psd, ()) == 1.0

    def test_principal_minor_out_of_range(self, small_psd):
        with pytest.raises(ValueError):
            principal_minor(small_psd, (0, 99))

    def test_batched_matches_loop(self, small_psd):
        subsets = [(0, 1), (2, 3), (1, 4)]
        batched = batched_principal_minors(small_psd, subsets)
        direct = [principal_minor(small_psd, s) for s in subsets]
        assert np.allclose(batched, direct)

    def test_batched_empty_subsets(self, small_psd):
        assert np.allclose(batched_principal_minors(small_psd, [(), ()]), [1.0, 1.0])

    def test_batched_requires_equal_sizes(self, small_psd):
        with pytest.raises(ValueError):
            batched_principal_minors(small_psd, [(0,), (1, 2)])

    def test_batched_no_subsets(self, small_psd):
        assert batched_principal_minors(small_psd, []).size == 0


class TestSchur:
    def test_determinant_factorization(self, small_psd):
        # det(M) = det(M_BB) * det(schur complement)
        block = (0, 2)
        sc = schur_complement(small_psd, block)
        det_block = np.linalg.det(small_psd[np.ix_(block, block)])
        assert np.linalg.det(small_psd) == pytest.approx(det_block * np.linalg.det(sc), rel=1e-8)

    def test_empty_block_is_identity_operation(self, small_psd):
        assert np.allclose(schur_complement(small_psd, ()), small_psd)

    def test_full_block_gives_empty(self, small_psd):
        out = schur_complement(small_psd, tuple(range(6)))
        assert out.shape == (0, 0)

    def test_condition_ensemble_matches_conditional_minors(self, small_psd):
        # det(L_{T ∪ A}) = det(L_T) * det((L^T)_A)
        T = (1, 4)
        L_cond, remaining = condition_ensemble(small_psd, T)
        A_local = (0, 2)  # indices into remaining
        A_global = tuple(remaining[i] for i in A_local)
        lhs = np.linalg.det(small_psd[np.ix_(T + A_global, T + A_global)])
        rhs = np.linalg.det(small_psd[np.ix_(T, T)]) * np.linalg.det(L_cond[np.ix_(A_local, A_local)])
        assert lhs == pytest.approx(rhs, rel=1e-8)

    def test_condition_on_zero_probability_event_raises(self):
        L = np.zeros((3, 3))
        with pytest.raises(ValueError):
            condition_ensemble(L, (0,))

    def test_remaining_labels(self, small_psd):
        _, remaining = condition_ensemble(small_psd, (0, 3))
        assert list(remaining) == [1, 2, 4, 5]


class TestESP:
    def test_small_case_by_hand(self):
        esp = elementary_symmetric_polynomials(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(esp, [1.0, 6.0, 11.0, 6.0])

    def test_max_order_truncation(self):
        esp = elementary_symmetric_polynomials(np.array([1.0, 2.0, 3.0]), max_order=1)
        assert np.allclose(esp, [1.0, 6.0])

    def test_empty_values(self):
        assert np.allclose(elementary_symmetric_polynomials(np.array([])), [1.0])

    def test_esp_from_matrix_matches_eigenvalues(self, small_psd):
        eigs = np.linalg.eigvalsh(small_psd)
        expected = elementary_symmetric_polynomials(eigs)
        via_matrix = esp_from_matrix(small_psd)
        assert np.allclose(via_matrix, expected, rtol=1e-8)

    def test_esp_charpoly_route_agrees(self, small_psd):
        a = esp_from_matrix(small_psd, method="eigenvalues")
        b = esp_from_matrix(small_psd, method="charpoly")
        assert np.allclose(a, b, rtol=1e-6, atol=1e-8)

    def test_esp_sum_of_minors_identity(self, rng):
        # e_j(eigenvalues) equals the sum of j x j principal minors
        a = random_psd_ensemble(5, seed=3)
        esp = esp_from_matrix(a)
        from itertools import combinations

        for j in range(6):
            total = sum(
                np.linalg.det(a[np.ix_(s, s)]) if s else 1.0
                for s in combinations(range(5), j)
            )
            assert esp[j] == pytest.approx(total, rel=1e-8)

    def test_unknown_method_raises(self, small_psd):
        with pytest.raises(ValueError):
            esp_from_matrix(small_psd, method="nope")


class TestPSD:
    def test_is_psd_true(self, small_psd):
        assert is_psd(small_psd)

    def test_is_psd_false_for_indefinite(self):
        assert not is_psd(np.diag([1.0, -1.0]))

    def test_is_psd_false_for_asymmetric(self, rng):
        a = rng.standard_normal((4, 4))
        assert not is_psd(a + 5 * np.eye(4)) or np.allclose(a, a.T)

    def test_is_npsd(self, small_npsd):
        assert is_npsd(small_npsd)

    def test_is_npsd_false(self):
        assert not is_npsd(np.diag([-2.0, 1.0]))

    def test_project_psd_is_psd(self, rng):
        a = rng.standard_normal((5, 5))
        assert is_psd(project_psd(a))

    def test_project_psd_fixes_negative_eigenvalues(self):
        a = np.diag([1.0, -0.5])
        out = project_psd(a)
        assert np.linalg.eigvalsh(out).min() >= -1e-12

    def test_psd_sqrt_squares_back(self, small_psd):
        root = psd_sqrt(small_psd)
        assert np.allclose(root @ root, small_psd, atol=1e-8)

    def test_psd_sqrt_rejects_indefinite(self):
        with pytest.raises(ValueError):
            psd_sqrt(np.diag([1.0, -1.0]))

    def test_random_orthogonal(self):
        q = random_orthogonal(6, seed=0)
        assert np.allclose(q @ q.T, np.eye(6), atol=1e-10)

    def test_symmetrize(self, rng):
        a = rng.standard_normal((4, 4))
        s = symmetrize(a)
        assert np.allclose(s, s.T)
