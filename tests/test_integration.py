"""End-to-end integration tests across modules.

These tests exercise the public API the way the examples and benchmarks do:
depth comparisons between parallel samplers and sequential baselines, chained
conditioning, workload-to-sampler pipelines, and the paper's headline
quadratic-speedup claim on mid-size instances.
"""

import math

import numpy as np
import pytest

import repro
from repro.core.sequential import sequential_sample
from repro.dpp.exact import exact_kdpp_distribution
from repro.dpp.spectral import sample_kdpp_spectral
from repro.dpp.symmetric import SymmetricKDPP
from repro.planar.graphs import grid_graph
from repro.pram.tracker import Tracker, use_tracker
from repro.workloads import random_psd_ensemble, rbf_kernel_ensemble
from repro.workloads.datasets import documents_to_ensemble, synthetic_documents


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in (
            "sample_symmetric_kdpp_parallel",
            "sample_nonsymmetric_kdpp_parallel",
            "sample_partition_dpp_parallel",
            "sample_planar_matching_parallel",
            "sequential_sample",
            "Tracker",
        ):
            assert hasattr(repro, name)

    def test_sample_result_behaves_like_container(self, small_psd):
        result = repro.sample_symmetric_kdpp_parallel(small_psd, 3, seed=0)
        assert len(result) == 3
        assert list(result) == list(result.subset)
        assert result.subset[0] in result


class TestQuadraticSpeedupHeadline:
    def test_symmetric_kdpp_speedup(self):
        # The headline claim: parallel rounds ~ sqrt(k) vs sequential ~ k.
        L = random_psd_ensemble(96, rank=96, seed=0)
        k = 49
        parallel = repro.sample_symmetric_kdpp_parallel(L, k, seed=1)
        sequential = sequential_sample(SymmetricKDPP(L, k), seed=1)
        assert sequential.report.rounds == 2 * k
        # parallel rounds should be closer to sqrt(k): allow generous constant
        assert parallel.report.rounds <= 10 * math.sqrt(k)
        assert parallel.report.rounds < 0.5 * sequential.report.rounds

    def test_planar_matching_speedup(self):
        g = grid_graph(8, 8)
        parallel = repro.sample_planar_matching_parallel(g, seed=2)
        sequential = repro.sample_planar_matching_sequential(g, seed=2)
        assert sequential.report.rounds == 32
        assert parallel.report.rounds < sequential.report.rounds

    def test_depth_exponent_estimate(self):
        # Fit log(rounds) vs log(k): the exponent should be well below 1
        # (sequential) and in the vicinity of 1/2.
        L = random_psd_ensemble(120, rank=120, seed=3)
        ks = [9, 25, 49, 100]
        rounds = []
        for k in ks:
            result = repro.sample_symmetric_kdpp_parallel(L, k, seed=5)
            rounds.append(result.report.rounds)
        slope = np.polyfit(np.log(ks), np.log(rounds), 1)[0]
        assert slope < 0.85
        assert slope > 0.2


class TestChainedConditioning:
    def test_conditioning_chain_consistency(self, small_psd):
        # conditioning twice equals conditioning once on the union
        kdpp = SymmetricKDPP(small_psd, 4)
        once = kdpp.condition((0, 3))
        twice = kdpp.condition((0,)).condition(
            (kdpp.condition((0,)).ground_labels.index(3),)
        )
        assert once.to_explicit().total_variation(twice.to_explicit()) < 1e-8

    def test_parallel_sampler_on_conditioned_distribution(self, small_psd):
        from repro.core.batched import batched_sample

        kdpp = SymmetricKDPP(small_psd, 4).condition((1,))
        result = batched_sample(kdpp, seed=0)
        assert len(result.subset) == 3
        assert 1 not in result.subset  # labels exclude the conditioned element


class TestWorkloadPipelines:
    def test_document_summarization_pipeline(self):
        docs = synthetic_documents(18, num_topics=3, seed=0)
        L = documents_to_ensemble(docs)
        result = repro.sample_symmetric_kdpp_parallel(L, 5, seed=1)
        assert len(result.subset) == 5
        topics = {docs[i].topic for i in result.subset}
        assert len(topics) >= 2  # diversity: more than one topic represented

    def test_rbf_kernel_pipeline(self):
        L, _ = rbf_kernel_ensemble(30, dimension=4, seed=2)
        result = repro.sample_symmetric_kdpp_parallel(L, 6, seed=3)
        assert len(result.subset) == 6

    def test_parallel_matches_spectral_baseline_distribution(self, small_psd):
        # Theorem 10 sampler and the HKPV baseline sample the same distribution.
        exact = exact_kdpp_distribution(small_psd, 2)
        rng = np.random.default_rng(4)
        num = 1500
        counts_parallel, counts_spectral = {}, {}
        for _ in range(num):
            a = repro.sample_symmetric_kdpp_parallel(small_psd, 2, seed=rng).subset
            b = tuple(sorted(sample_kdpp_spectral(small_psd, 2, rng)))
            counts_parallel[a] = counts_parallel.get(a, 0) + 1
            counts_spectral[b] = counts_spectral.get(b, 0) + 1
        tv = 0.5 * sum(
            abs(counts_parallel.get(s, 0) / num - counts_spectral.get(s, 0) / num)
            for s in set(counts_parallel) | set(counts_spectral)
        )
        assert tv < 0.1


class TestTrackerIntegration:
    def test_shared_tracker_across_samplers(self, small_psd):
        tracker = Tracker()
        repro.sample_symmetric_kdpp_parallel(small_psd, 2, seed=0, tracker=tracker)
        first = tracker.rounds
        repro.sample_symmetric_kdpp_parallel(small_psd, 2, seed=1, tracker=tracker)
        assert tracker.rounds > first

    def test_oracle_calls_charged(self, small_psd):
        tracker = Tracker()
        with use_tracker(tracker):
            SymmetricKDPP(small_psd, 3).marginal_vector()
        assert tracker.oracle_calls >= 1
        assert tracker.work > 0
