"""Process execution backend: shm transport, payload round trips, backend
equivalence on every batch kind, and fixed-seed sample identity across all
backends (``serial`` / ``vectorized`` / ``threads`` / ``process`` / the
planner-driven ``auto``) on every theorem sampler — spectral included,
fused and unfused."""

import pickle
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core.batched import batched_sample
from repro.core.filtering import sample_bounded_dpp_filtering
from repro.distributions.generic import ExplicitDistribution
from repro.dpp.nonsymmetric import NonsymmetricKDPP
from repro.dpp.partition import PartitionDPP
from repro.dpp.symmetric import SymmetricKDPP
from repro.engine import (
    ArrayRef,
    OracleBatch,
    ProcessPoolBackend,
    SerialBackend,
    SharedArrayStore,
    resolve_backend,
    shared_memory_available,
)
from repro.engine.shm import attach_shared_array
from repro.pram.tracker import Tracker
from repro.utils.subsets import all_subsets_of_size
from repro.workloads import random_npsd_ensemble, random_psd_ensemble

BACKEND_NAMES = ("serial", "vectorized", "threads", "process")


@pytest.fixture(scope="module")
def process_backend():
    """One worker pool for the whole module (spawn cost paid once)."""
    backend = ProcessPoolBackend(max_workers=2)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def backends(process_backend):
    return {
        "serial": resolve_backend("serial"),
        "vectorized": resolve_backend("vectorized"),
        "threads": resolve_backend("threads"),
        "process": process_backend,
        "auto": resolve_backend("auto"),  # the planner must never change values
    }


@pytest.fixture(scope="module")
def kdpp():
    return SymmetricKDPP(random_psd_ensemble(14, seed=0), 6)


@pytest.fixture(scope="module")
def partition_dpp():
    return PartitionDPP(random_psd_ensemble(9, seed=2),
                        [[0, 1, 2, 3], [4, 5, 6, 7, 8]], [2, 1])


@pytest.fixture(scope="module")
def explicit():
    rng = np.random.default_rng(1)
    table = {s: float(rng.random()) + 0.05 for s in all_subsets_of_size(8, 3)}
    return ExplicitDistribution(8, table, cardinality=3)


def _random_subsets(rng, n, sizes, per_size=3):
    out = []
    for t in sizes:
        for _ in range(per_size):
            out.append(tuple(sorted(rng.choice(n, size=t, replace=False).tolist())))
    return out


# ---------------------------------------------------------------------- #
# batch-value equivalence against the serial reference
# ---------------------------------------------------------------------- #
class TestProcessBatchEquivalence:
    def test_counting_kdpp(self, kdpp, process_backend):
        subsets = _random_subsets(np.random.default_rng(3), kdpp.n, [0, 1, 2, 3, 6, 7])
        reference = SerialBackend().execute(OracleBatch.counting(kdpp, subsets),
                                            tracker=Tracker())
        result = process_backend.execute(OracleBatch.counting(kdpp, subsets),
                                         tracker=Tracker())
        np.testing.assert_allclose(result.values, reference.values, rtol=1e-9, atol=1e-12)
        assert result.backend == "process"

    def test_counting_nonsymmetric(self, process_backend):
        dist = NonsymmetricKDPP(random_npsd_ensemble(10, seed=4), 4)
        subsets = _random_subsets(np.random.default_rng(5), dist.n, [0, 1, 2, 4])
        reference = SerialBackend().execute(OracleBatch.counting(dist, subsets),
                                            tracker=Tracker())
        result = process_backend.execute(OracleBatch.counting(dist, subsets),
                                         tracker=Tracker())
        np.testing.assert_allclose(result.values, reference.values, rtol=1e-8, atol=1e-12)

    def test_joint_marginals_partition(self, partition_dpp, process_backend):
        subsets = _random_subsets(np.random.default_rng(6), partition_dpp.n, [0, 1, 2])
        reference = SerialBackend().execute(
            OracleBatch.joint_marginals(partition_dpp, subsets), tracker=Tracker())
        result = process_backend.execute(
            OracleBatch.joint_marginals(partition_dpp, subsets), tracker=Tracker())
        np.testing.assert_allclose(result.values, reference.values, rtol=1e-8, atol=1e-12)

    def test_joint_marginals_explicit_pickle_fallback_path(self, explicit, process_backend):
        """ExplicitDistribution has no worker spec: it ships via pickle."""
        subsets = _random_subsets(np.random.default_rng(7), explicit.n, [0, 1, 2, 3])
        reference = SerialBackend().execute(
            OracleBatch.joint_marginals(explicit, subsets), tracker=Tracker())
        result = process_backend.execute(
            OracleBatch.joint_marginals(explicit, subsets), tracker=Tracker())
        np.testing.assert_allclose(result.values, reference.values, rtol=1e-9, atol=1e-12)

    def test_log_principal_minors(self, process_backend):
        L = random_psd_ensemble(10, seed=7)
        subsets = _random_subsets(np.random.default_rng(8), 10, [0, 1, 2, 4])
        reference = SerialBackend().execute(OracleBatch.log_principal_minors(L, subsets),
                                            tracker=Tracker())
        result = process_backend.execute(OracleBatch.log_principal_minors(L, subsets),
                                         tracker=Tracker())
        np.testing.assert_allclose(result.values, reference.values, rtol=1e-9)

    def test_round_and_work_accounting(self, kdpp, process_backend):
        subsets = [(0, 1), (2, 3), (4, 5)]
        tracker = Tracker()
        process_backend.execute(OracleBatch.joint_marginals(kdpp, subsets), tracker=tracker)
        assert tracker.rounds == 1
        assert tracker.peak_machines == 3.0
        assert tracker.work > 0.0  # worker-side charges merged into the round

    def test_chunk_size_knob_preserves_values(self, kdpp):
        subsets = _random_subsets(np.random.default_rng(9), kdpp.n, [1, 2, 3], per_size=4)
        reference = SerialBackend().execute(OracleBatch.counting(kdpp, subsets),
                                            tracker=Tracker())
        backend = ProcessPoolBackend(max_workers=2, chunk_size=2)
        try:
            result = backend.execute(OracleBatch.counting(kdpp, subsets), tracker=Tracker())
        finally:
            backend.close()
        np.testing.assert_allclose(result.values, reference.values, rtol=1e-9, atol=1e-12)


# ---------------------------------------------------------------------- #
# fixed-seed sample identity: all four backends, every theorem sampler
# ---------------------------------------------------------------------- #
class TestFourBackendSamplerIdentity:
    """The acceptance contract: byte-identical samples on every backend."""

    def _assert_identical(self, run, backends):
        subsets = {name: run(backend).subset for name, backend in backends.items()}
        assert len(set(subsets.values())) == 1, subsets

    def test_symmetric_kdpp(self, backends):
        L = random_psd_ensemble(16, seed=8)
        self._assert_identical(
            lambda b: repro.sample_symmetric_kdpp_parallel(L, 6, seed=123, backend=b),
            backends)

    def test_symmetric_dpp(self, backends):
        L = random_psd_ensemble(12, seed=18)
        self._assert_identical(
            lambda b: repro.sample_symmetric_dpp_parallel(L, seed=31, backend=b),
            backends)

    def test_nonsymmetric_kdpp(self, backends):
        L = random_npsd_ensemble(12, seed=19)
        self._assert_identical(
            lambda b: repro.sample_nonsymmetric_kdpp_parallel(L, 4, seed=41, backend=b),
            backends)

    def test_nonsymmetric_dpp(self, backends):
        L = random_npsd_ensemble(10, seed=20)
        self._assert_identical(
            lambda b: repro.sample_nonsymmetric_dpp_parallel(L, seed=51, backend=b),
            backends)

    def test_partition_dpp(self, backends):
        L = random_psd_ensemble(10, seed=9)
        parts = [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        self._assert_identical(
            lambda b: repro.sample_partition_dpp_parallel(L, parts, [2, 2], seed=213,
                                                          backend=b),
            backends)

    def test_bounded_dpp_filtering(self, backends):
        L = 0.05 * random_psd_ensemble(14, seed=10)
        self._assert_identical(
            lambda b: sample_bounded_dpp_filtering(L, seed=132, strategy="filter",
                                                   backend=b),
            backends)

    def test_entropic_explicit_table(self, explicit, backends):
        self._assert_identical(lambda b: batched_sample(explicit, seed=321, backend=b),
                               backends)

    def test_spectral_kdpp(self, backends):
        from repro.dpp.spectral import sample_kdpp_spectral

        L = random_psd_ensemble(14, rank=8, seed=24)
        subsets = {name: sample_kdpp_spectral(L, 5, seed=77, backend=b)
                   for name, b in backends.items()}
        assert len(set(subsets.values())) == 1, subsets

    def test_spectral_dpp(self, backends):
        from repro.dpp.spectral import sample_dpp_spectral

        L = random_psd_ensemble(12, rank=6, seed=25)
        subsets = {name: sample_dpp_spectral(L, seed=78, backend=b)
                   for name, b in backends.items()}
        assert len(set(subsets.values())) == 1, subsets

    def test_fused_spectral_on_process_backend(self, process_backend):
        """Stacked HKPV steps through the process-backed scheduler keep
        seed identity (the projection kind is fixed-route on every backend)."""
        registry = repro.KernelRegistry()
        L = random_psd_ensemble(20, rank=12, seed=26)
        with repro.serve(L, registry=registry) as session:
            scheduler = repro.RoundScheduler(session, backend=process_backend)
            seeds = [71, 72, 73]
            for seed in seeds:
                scheduler.submit(5, seed=seed, method="spectral")
            fused = [result.subset for result in scheduler.drain()]
            unfused = [session.sample(k=5, seed=seed, method="spectral").subset
                       for seed in seeds]
        assert fused == unfused

    @pytest.mark.parametrize("kind", ["symmetric", "nonsymmetric", "partition"])
    def test_fused_equals_unfused_on_process_backend(self, kind, process_backend):
        """Scheduler-fused rounds through worker processes keep seed identity
        for every kernel family the serving layer understands."""
        registry = repro.KernelRegistry()
        if kind == "symmetric":
            L = random_psd_ensemble(20, rank=12, seed=21)
            session = repro.serve(L, registry=registry)
            k = 5
        elif kind == "nonsymmetric":
            L = random_npsd_ensemble(12, seed=22)
            session = repro.serve(L, kind=kind, registry=registry)
            k = 4
        else:
            L = random_psd_ensemble(10, seed=23)
            session = repro.serve(L, kind=kind, registry=registry,
                                  parts=[[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]],
                                  counts=[2, 2])
            k = 4
        with session:
            scheduler = repro.RoundScheduler(session, backend=process_backend)
            seeds = [61, 62, 63]
            for seed in seeds:
                scheduler.submit(k, seed=seed)
            fused = [result.subset for result in scheduler.drain()]
            unfused = [session.sample(k=k, seed=seed, method="parallel",
                                      backend="serial").subset
                       for seed in seeds]
        assert fused == unfused
        stats = scheduler.stats
        assert stats["executed_batches"] < stats["submitted_batches"]


# ---------------------------------------------------------------------- #
# payload round-trip contract
# ---------------------------------------------------------------------- #
class TestPayloadRoundTrip:
    DISTS = ["kdpp", "partition_dpp", "explicit"]

    @pytest.fixture
    def by_name(self, kdpp, partition_dpp, explicit):
        return {"kdpp": kdpp, "partition_dpp": partition_dpp, "explicit": explicit}

    @pytest.mark.parametrize("name", DISTS)
    def test_pickle_round_trip_preserves_values(self, name, by_name):
        dist = by_name[name]
        subsets = _random_subsets(np.random.default_rng(11), dist.n, [0, 1, 2])
        batch = OracleBatch.counting(dist, subsets)
        payload = pickle.loads(pickle.dumps(batch.to_payload()))
        rebuilt = payload.to_batch()
        assert rebuilt.kind == batch.kind
        assert rebuilt.subsets == batch.subsets
        original = SerialBackend().execute(batch, tracker=Tracker())
        roundtripped = SerialBackend().execute(rebuilt, tracker=Tracker())
        np.testing.assert_allclose(roundtripped.values, original.values,
                                   rtol=1e-12, atol=0.0)

    def test_normalizer_travels_with_payload(self, kdpp):
        batch = OracleBatch.joint_marginals(kdpp, [(0,), (1,)])
        z = batch.normalizer()
        payload = pickle.loads(pickle.dumps(batch.to_payload()))
        assert payload.normalizer == z
        assert payload.to_batch().normalizer() == z

    def test_matrix_batch_round_trip(self):
        L = random_psd_ensemble(8, seed=12)
        batch = OracleBatch.log_principal_minors(L, [(0, 1), (2,), ()])
        rebuilt = pickle.loads(pickle.dumps(batch.to_payload())).to_batch()
        np.testing.assert_array_equal(rebuilt.matrix, L)
        original = SerialBackend().execute(batch, tracker=Tracker())
        roundtripped = SerialBackend().execute(rebuilt, tracker=Tracker())
        np.testing.assert_allclose(roundtripped.values, original.values)

    def test_spec_key_caches_distribution_rebuilds(self, kdpp):
        payload = OracleBatch.counting(kdpp, [(0,)]).to_payload()
        cache = {}
        first = payload.to_batch(cache=cache).distribution
        second = payload.to_batch(cache=cache).distribution
        assert first is second
        assert list(cache) == [payload.spec["key"]]

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_property_shm_round_trip(self, data):
        """Property test: publish → attach round-trips arbitrary batches."""
        if not shared_memory_available():  # pragma: no cover - sandboxed hosts
            pytest.skip("shared memory unavailable")
        n = data.draw(st.integers(min_value=2, max_value=8), label="n")
        k = data.draw(st.integers(min_value=1, max_value=n), label="k")
        seed = data.draw(st.integers(min_value=0, max_value=2**20), label="seed")
        rng = np.random.default_rng(seed)
        B = rng.normal(size=(n, n))
        dist = SymmetricKDPP(B @ B.T + 1e-6 * np.eye(n), k, validate=False)
        sizes = data.draw(st.lists(st.integers(min_value=0, max_value=n),
                                   min_size=1, max_size=5), label="sizes")
        subsets = [tuple(sorted(rng.choice(n, size=t, replace=False).tolist()))
                   for t in sizes]
        batch = OracleBatch.counting(dist, subsets)
        store = SharedArrayStore(capacity=8)
        try:
            payload = pickle.loads(pickle.dumps(batch.to_payload(publish=store.publish)))
            for token in payload.spec["arrays"].values():
                assert isinstance(token, ArrayRef) and token.name is not None
            rebuilt = payload.to_batch(attach=attach_shared_array)
            original = SerialBackend().execute(batch, tracker=Tracker())
            roundtripped = SerialBackend().execute(rebuilt, tracker=Tracker())
            np.testing.assert_allclose(roundtripped.values, original.values,
                                       rtol=1e-12, atol=0.0)
        finally:
            from repro.engine.shm import release_worker_caches

            release_worker_caches()
            store.close()

    def test_publish_deduplicates_by_content(self):
        store = SharedArrayStore(capacity=4)
        try:
            a = np.arange(9.0).reshape(3, 3)
            ref1 = store.publish(a)
            ref2 = store.publish(a.copy())  # equal content, different object
            assert ref1.name == ref2.name
            assert len(store) == 1
            np.testing.assert_array_equal(attach_shared_array(ref1), a)
        finally:
            from repro.engine.shm import release_worker_caches

            release_worker_caches()
            store.close()


# ---------------------------------------------------------------------- #
# graceful degradation
# ---------------------------------------------------------------------- #
class _Unpicklable(ExplicitDistribution):
    """A distribution the process backend cannot ship (closure state)."""

    def __init__(self, inner):
        super().__init__(inner.n, inner.as_dict(), cardinality=inner.cardinality)
        self._closure = lambda: None  # lambdas cannot pickle


class TestFallback:
    def test_shm_unavailable_degrades_to_vectorized(self, kdpp, monkeypatch):
        monkeypatch.setattr("repro.engine.shm._SHM_AVAILABLE", False)
        backend = ProcessPoolBackend(max_workers=2)
        try:
            with pytest.warns(RuntimeWarning, match="degraded to vectorized"):
                result = backend.execute(OracleBatch.counting(kdpp, [(0,), (1,)]),
                                         tracker=Tracker())
            reference = SerialBackend().execute(OracleBatch.counting(kdpp, [(0,), (1,)]),
                                                tracker=Tracker())
            np.testing.assert_allclose(result.values, reference.values, rtol=1e-9)
        finally:
            backend.close()

    def test_unshippable_distribution_falls_back_per_batch(self, explicit, process_backend):
        dist = _Unpicklable(explicit)
        subsets = [(0,), (1,), (0, 1)]
        with pytest.warns(RuntimeWarning, match="cannot ship _Unpicklable"):
            result = process_backend.execute(OracleBatch.counting(dist, subsets),
                                             tracker=Tracker())
        reference = SerialBackend().execute(OracleBatch.counting(dist, subsets),
                                            tracker=Tracker())
        np.testing.assert_allclose(result.values, reference.values, rtol=1e-12)
        # the backend did not permanently degrade: shippable batches still fan out
        assert process_backend._degraded is None

    def test_configure_backend_accepts_process(self):
        previous = repro.current_backend()
        try:
            installed = repro.configure_backend("process", max_workers=2)
            assert isinstance(installed, ProcessPoolBackend)
            assert repro.current_backend() is installed
        finally:
            repro.configure_backend(previous)

    def test_named_backend_resolution_is_memoized(self):
        """String specs share one instance — one worker pool, not one per call."""
        assert resolve_backend("process") is resolve_backend("process")
        assert resolve_backend("threads") is resolve_backend("threads")
        assert resolve_backend("process").workers >= 1


# ---------------------------------------------------------------------- #
# worker artifact write-back
# ---------------------------------------------------------------------- #
class TestArtifactWriteBack:
    def _cold_kdpp(self, n=12, k=4, seed=8):
        L = random_psd_ensemble(n, seed=seed)
        dist = SymmetricKDPP(L, k, validate=False)  # stays cold: no eigvalsh yet
        assert dist._eigenvalues is None and dist._factor is None
        return L, dist

    def test_cold_parent_absorbs_worker_artifacts(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        L, dist = self._cold_kdpp()
        backend = ProcessPoolBackend(max_workers=2)
        try:
            # () forces the normalizer (eigenvalues); size-1 subsets force
            # the factor/Gram route — all materialized worker-side only
            batch = OracleBatch.counting(dist, [(), (0,), (1, 2)])
            backend.execute(batch, tracker=Tracker())
            if backend._degraded is not None:
                pytest.skip(f"process backend degraded: {backend._degraded}")
            assert dist._eigenvalues is not None
            assert dist._factor is not None and dist._factor_gram is not None
            reference = SymmetricKDPP(L, 4, validate=False)
            np.testing.assert_allclose(dist._eigenvalues, reference.eigenvalues,
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(dist._factor, reference.factor,
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(dist._factor_gram, reference.factor_gram,
                                       rtol=1e-12, atol=1e-12)
        finally:
            backend.close()

    def test_write_back_knob_off_keeps_parent_cold(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        _L, dist = self._cold_kdpp(seed=9)
        backend = ProcessPoolBackend(max_workers=2, write_back=False)
        try:
            backend.execute(OracleBatch.counting(dist, [(), (0,)]), tracker=Tracker())
            if backend._degraded is not None:
                pytest.skip(f"process backend degraded: {backend._degraded}")
            assert dist._eigenvalues is None and dist._factor is None
        finally:
            backend.close()

    def test_artifact_cache_is_warmed_under_the_serving_key(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        from repro.service import FactorizationCache, KernelRegistry

        cache = FactorizationCache()
        L, dist = self._cold_kdpp(seed=10)
        backend = ProcessPoolBackend(max_workers=2, artifact_cache=cache)
        try:
            backend.execute(OracleBatch.counting(dist, [(), (0,), (1,)]),
                            tracker=Tracker())
            if backend._degraded is not None:
                pytest.skip(f"process backend degraded: {backend._degraded}")
            # the write-back must land on the SAME entry the serving layer
            # addresses (the kind-tagged registry fingerprint), so a later
            # registration of this kernel starts warm
            registry = KernelRegistry(cache)
            entry = registry.register("written-back", L)
            session = registry.session("written-back")
            materialized = set(session.factorization.materialized)
            assert {"eigenvalues", "factor"} <= materialized
            assert len(cache) == 1  # no duplicate array-only-keyed entry
            np.testing.assert_allclose(
                session.factorization.eigenvalues,
                np.clip(np.linalg.eigvalsh(0.5 * (L + L.T)), 0.0, None),
                rtol=1e-12, atol=1e-12)
            assert entry.fingerprint == dist.artifact_cache_key()
        finally:
            backend.close()

    def test_chunked_artifacts_merge_across_routes(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        L, dist = self._cold_kdpp(seed=13)
        # chunk_size=1: the normalizer-only chunk materializes the spectrum,
        # the size-1 chunks the PSD factor — the parent must absorb BOTH
        backend = ProcessPoolBackend(max_workers=2, chunk_size=1)
        try:
            backend.execute(OracleBatch.counting(dist, [(), (0,)]), tracker=Tracker())
            if backend._degraded is not None:
                pytest.skip(f"process backend degraded: {backend._degraded}")
            assert dist._eigenvalues is not None
            assert dist._factor is not None and dist._factor_gram is not None
        finally:
            backend.close()

    def test_gram_absorbs_onto_a_factor_warm_parent(self):
        L = random_psd_ensemble(10, seed=14)
        dist = SymmetricKDPP(L, 3, validate=False)
        dist.factor  # factor warm, Gram cold: workers would return only the Gram
        gram = dist._factor.T @ dist._factor
        dist.absorb_worker_arrays({"factor_gram": gram})
        np.testing.assert_array_equal(dist._factor_gram, gram)

    def test_warm_parent_ships_everything_and_absorbs_nothing_new(self, kdpp):
        # a warm distribution's payload already carries the artifacts, so
        # workers have nothing to return (zero steady-state overhead)
        kdpp.factor_gram  # materialize everything the payload ships
        kdpp.eigenvalues
        payload = OracleBatch.counting(kdpp, [(0,)]).to_payload(want_artifacts=True)
        from repro.engine.backends import _worker_new_arrays

        rebuilt = payload.build_distribution()
        rebuilt.counting_batch([(0,), ()])
        assert _worker_new_arrays(payload, rebuilt) == {}

    def test_payload_want_artifacts_requires_spec(self, explicit):
        payload = OracleBatch.counting(explicit, [(0, 1, 2)]).to_payload(
            want_artifacts=True)
        assert payload.spec is None and not payload.want_artifacts

    def test_factorization_seed_is_guarded(self):
        from repro.service import FactorizationCache

        L = random_psd_ensemble(6, seed=11)
        factorization = FactorizationCache().factorization(L)
        eigs = np.clip(np.linalg.eigvalsh(0.5 * (L + L.T)), 0.0, None)
        assert factorization.seed("eigenvalues", eigs)
        assert not factorization.seed("eigenvalues", eigs + 1)  # no overwrite
        assert not factorization.seed("unknown-name", eigs)
        np.testing.assert_array_equal(factorization.eigenvalues, eigs)

    def test_absorb_ignores_foreign_and_mismatched_arrays(self):
        L = random_psd_ensemble(8, seed=12)
        dist = SymmetricKDPP(L, 3, validate=False)
        dist.absorb_worker_arrays({"eigenvalues": np.zeros(3),  # wrong shape
                                   "garbage": np.zeros(8)})
        assert dist._eigenvalues is None
        from repro.distributions.base import SubsetDistribution

        SubsetDistribution.absorb_worker_arrays(dist, {"anything": np.ones(2)})
        assert dist._eigenvalues is None  # base default is a no-op
