"""Property-based tests (hypothesis) for incremental factorization updates.

The secular-equation machinery in :mod:`repro.linalg.updates` must agree with
direct refactorization on exactly the inputs that break naive implementations:
near-degenerate eigenvalue clusters (where the eigenbasis is only defined up
to rotation), zero-norm update vectors, downdates that graze indefiniteness,
and updated-then-conditioned ensembles (the :mod:`repro.linalg.schur`
interaction the module docstring promises).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dpp.kernels import ensemble_to_kernel
from repro.linalg.schur import condition_ensemble, schur_complement
from repro.linalg.updates import (
    KernelUpdate,
    cholesky_update,
    factor_from_eigh,
    rank_one_eigh_update,
    rank_one_kernel_update,
    symmetric_rank_one_terms,
)
from repro.linalg.batch import psd_factor

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
@st.composite
def eigh_instances(draw, max_n=8, clustered=False):
    """(eigenvalues, eigenvectors, z, rho) with an exact orthonormal basis."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    raw = draw(st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False),
                        min_size=n, max_size=n))
    d = np.sort(np.asarray(raw, dtype=float))
    if clustered and n >= 2:
        # collapse a prefix into an exactly degenerate cluster, and push two
        # more values within the deflation tolerance of each other
        half = max(2, n // 2)
        d[:half] = d[0]
        if n > half:
            d[half] = d[half - 1] + 1e-14
        d = np.sort(d)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    basis = np.linalg.qr(rng.standard_normal((n, n)))[0]
    z = rng.standard_normal(n)
    rho = draw(st.sampled_from([-1.5, -0.4, 0.3, 1.0, 2.5]))
    return d, basis, z, float(rho)


# ---------------------------------------------------------------------- #
# rank_one_eigh_update vs direct refactorization
# ---------------------------------------------------------------------- #
class TestRankOneEighUpdate:
    @SETTINGS
    @given(eigh_instances())
    def test_matches_direct_eigh(self, instance):
        d, V, z, rho = instance
        A = V @ np.diag(d) @ V.T
        new_d, new_V = rank_one_eigh_update(d, V, z, rho)
        target = 0.5 * ((A + rho * np.outer(z, z))
                        + (A + rho * np.outer(z, z)).T)
        assert np.all(np.diff(new_d) >= 0)
        np.testing.assert_allclose(new_d, np.linalg.eigvalsh(target),
                                   rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(new_V @ np.diag(new_d) @ new_V.T, target,
                                   rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(new_V.T @ new_V, np.eye(d.size),
                                   atol=1e-10)

    @SETTINGS
    @given(eigh_instances(clustered=True))
    def test_survives_degenerate_clusters(self, instance):
        d, V, z, rho = instance
        A = V @ np.diag(d) @ V.T
        new_d, new_V = rank_one_eigh_update(d, V, z, rho)
        target = 0.5 * ((A + rho * np.outer(z, z))
                        + (A + rho * np.outer(z, z)).T)
        np.testing.assert_allclose(new_d, np.linalg.eigvalsh(target),
                                   rtol=1e-7, atol=1e-7)
        np.testing.assert_allclose(new_V @ np.diag(new_d) @ new_V.T, target,
                                   rtol=1e-7, atol=1e-7)
        np.testing.assert_allclose(new_V.T @ new_V, np.eye(d.size),
                                   atol=1e-9)

    def test_zero_vector_and_zero_weight_are_exact_noops(self):
        d = np.array([0.5, 1.0, 2.0])
        V = np.eye(3)
        for z, rho in ((np.zeros(3), 1.0), (np.ones(3), 0.0)):
            new_d, new_V = rank_one_eigh_update(d, V, z, rho)
            np.testing.assert_array_equal(new_d, d)
            np.testing.assert_array_equal(new_V, V)

    def test_rejects_descending_eigenvalues(self):
        with pytest.raises(ValueError, match="ascending"):
            rank_one_eigh_update(np.array([2.0, 1.0]), np.eye(2),
                                 np.ones(2), 1.0)

    @SETTINGS
    @given(eigh_instances(max_n=6))
    def test_factor_from_patched_eigh_spans_the_ensemble(self, instance):
        d, V, z, rho = instance
        A = V @ np.diag(d) @ V.T
        target = 0.5 * ((A + rho * np.outer(z, z))
                        + (A + rho * np.outer(z, z)).T)
        new_d, new_V = rank_one_eigh_update(d, V, z, rho)
        patched = factor_from_eigh(new_d, new_V)
        direct = psd_factor(0.5 * (target + target.T))
        # both factors reconstruct the PSD part of the mutated ensemble
        # (column counts may differ by eigenvalues grazing the rank tol,
        # but the reconstructions must agree)
        np.testing.assert_allclose(patched @ patched.T, direct @ direct.T,
                                   rtol=1e-7, atol=1e-7)
        assert patched.shape[0] == d.size


# ---------------------------------------------------------------------- #
# marginal-kernel and Cholesky patches
# ---------------------------------------------------------------------- #
class TestKernelAndCholeskyPatches:
    @SETTINGS
    @given(eigh_instances(max_n=7))
    def test_sherman_morrison_matches_cold_kernel(self, instance):
        d, V, z, rho = instance
        L = V @ np.diag(np.abs(d) + 0.1) @ V.T  # PSD: a valid DPP ensemble
        K = ensemble_to_kernel(L)
        terms = symmetric_rank_one_terms(z, weight=rho)
        patched = K
        ratio = 1.0
        mutated = L.copy()
        for vec, weight in terms:
            patched, r = rank_one_kernel_update(patched, vec, weight=weight)
            ratio *= r
            mutated = mutated + weight * np.outer(vec, vec)
        if np.linalg.eigvalsh(0.5 * (mutated + mutated.T)).min() < 1e-8:
            return  # the mutation left the PSD cone; nothing to compare
        np.testing.assert_allclose(patched, ensemble_to_kernel(mutated),
                                   rtol=1e-7, atol=1e-7)
        det_ratio = (np.linalg.det(np.eye(L.shape[0]) + mutated)
                     / np.linalg.det(np.eye(L.shape[0]) + L))
        np.testing.assert_allclose(ratio, det_ratio, rtol=1e-7)

    def test_singular_update_raises(self):
        L = np.diag([1.0, 2.0])
        K = ensemble_to_kernel(L)
        # drive 1 + w * v M u to zero: u = e0, M00 = 1/(1+L00) = 1/2 => w = -2
        with pytest.raises(ValueError, match="singular"):
            rank_one_kernel_update(K, np.array([1.0, 0.0]), weight=-2.0)

    @SETTINGS
    @given(eigh_instances(max_n=7))
    def test_cholesky_update_matches_cold_factorization(self, instance):
        d, V, z, rho = instance
        A = V @ np.diag(np.abs(d) + 0.5) @ V.T
        A = 0.5 * (A + A.T)
        chol = np.linalg.cholesky(A)
        target = A + rho * np.outer(z, z)
        floor = np.linalg.eigvalsh(0.5 * (target + target.T)).min()
        if floor < 1e-8:
            with pytest.raises(ValueError):
                cholesky_update(chol, z, rho)
            return
        patched = cholesky_update(chol, z, rho)
        np.testing.assert_allclose(patched @ patched.T, target,
                                   rtol=1e-7, atol=1e-7)
        assert np.all(np.diag(patched) > 0)

    def test_downdate_past_definiteness_raises(self):
        chol = np.linalg.cholesky(np.eye(3))
        with pytest.raises(ValueError, match="indefinite"):
            cholesky_update(chol, np.array([2.0, 0.0, 0.0]), weight=-1.0)


# ---------------------------------------------------------------------- #
# interaction with Schur conditioning (the schur.py edge cases)
# ---------------------------------------------------------------------- #
class TestUpdateThenCondition:
    @SETTINGS
    @given(eigh_instances(max_n=6), st.integers(min_value=0, max_value=5))
    def test_update_then_condition_equals_condition_of_mutated(self, instance,
                                                               pick):
        d, V, z, rho = instance
        n = d.size
        if n < 2:
            return
        L = V @ np.diag(np.abs(d) + 0.2) @ V.T
        L = 0.5 * (L + L.T)
        mutated = L + rho * np.outer(z, z)
        mutated = 0.5 * (mutated + mutated.T)
        if np.linalg.eigvalsh(mutated).min() < 1e-6:
            return
        include = [pick % n]
        via_update, labels_a = condition_ensemble(mutated, include)
        # the same conditioning computed from the patched eigendecomposition
        new_d, new_V = rank_one_eigh_update(*np.linalg.eigh(L), z, rho)
        rebuilt = new_V @ np.diag(new_d) @ new_V.T
        via_patch, labels_b = condition_ensemble(0.5 * (rebuilt + rebuilt.T),
                                                 include)
        np.testing.assert_array_equal(labels_a, labels_b)
        np.testing.assert_allclose(via_patch, via_update, rtol=1e-6, atol=1e-6)

    @SETTINGS
    @given(st.integers(min_value=2, max_value=7),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_nested_schur_conditioning_associates(self, n, seed):
        """Conditioning on {i} then {j} equals conditioning on {i, j} once."""
        rng = np.random.default_rng(seed)
        B = rng.standard_normal((n, n))
        A = B @ B.T + np.eye(n)
        if n < 3:
            return
        once = schur_complement(A, [0, 1])
        first = schur_complement(A, [0])
        # after removing row/col 0, original index 1 is the new index 0
        twice = schur_complement(first, [0])
        np.testing.assert_allclose(twice, once, rtol=1e-9, atol=1e-9)

    def test_block_diagonal_complement_is_the_other_block(self):
        A = np.block([[2.0 * np.eye(2), np.zeros((2, 3))],
                      [np.zeros((3, 2)), 5.0 * np.eye(3)]])
        np.testing.assert_allclose(schur_complement(A, [0, 1]),
                                   5.0 * np.eye(3))


# ---------------------------------------------------------------------- #
# the serializable descriptor
# ---------------------------------------------------------------------- #
class TestKernelUpdateDescriptor:
    def test_validation_matrix(self):
        up = KernelUpdate.rank_one(np.ones(4))
        up.validate_for("symmetric", 4)
        with pytest.raises(ValueError, match="does not apply"):
            up.validate_for("lowrank", 4)
        with pytest.raises(ValueError, match="length"):
            up.validate_for("symmetric", 5)
        rows = KernelUpdate.append_rows(np.ones((2, 3)))
        with pytest.raises(ValueError, match="does not apply"):
            rows.validate_for("symmetric", 4)
        with pytest.raises(ValueError, match="at least one"):
            KernelUpdate.delete_rows([])
        with pytest.raises(ValueError, match="duplicate"):
            KernelUpdate.delete_rows([1, 1])
        with pytest.raises(ValueError, match="every row"):
            KernelUpdate.delete_rows([0, 1]).validate_for("lowrank", 2)

    def test_chain_fingerprint_is_deterministic_and_order_sensitive(self):
        a = KernelUpdate.rank_one(np.arange(3.0), weight=0.5)
        b = KernelUpdate.rank_one(np.arange(3.0), weight=0.25)
        base = "f" * 64
        assert a.chained_fingerprint(base) == a.chained_fingerprint(base)
        assert a.chained_fingerprint(base) != b.chained_fingerprint(base)
        ab = b.chained_fingerprint(a.chained_fingerprint(base))
        ba = a.chained_fingerprint(b.chained_fingerprint(base))
        assert ab != ba
        # and derived keys never collide with content fingerprints
        from repro.utils.fingerprint import array_fingerprint

        assert a.chained_fingerprint(base) != array_fingerprint(
            *a.arrays(), extra=a.signature())

    def test_apply_matches_dense_arithmetic(self):
        rng = np.random.default_rng(3)
        L = rng.standard_normal((4, 4))
        u = rng.standard_normal(4)
        v = rng.standard_normal(4)
        sym = KernelUpdate.rank_one(u, v, weight=0.7).apply(L, "symmetric")
        np.testing.assert_allclose(
            sym, L + 0.7 * 0.5 * (np.outer(u, v) + np.outer(v, u)))
        nonsym = KernelUpdate.rank_one(u, v, weight=0.7).apply(L, "nonsymmetric")
        np.testing.assert_allclose(nonsym, L + 0.7 * np.outer(u, v))
        assert not sym.flags.writeable

    def test_delta_nbytes_counts_payload_only(self):
        up = KernelUpdate.append_rows(np.ones((3, 5)))
        assert up.delta_nbytes == 3 * 5 * 8
        assert KernelUpdate.delete_rows([1, 2]).delta_nbytes == 0
