"""Tests for the Algorithm 1 driver, the batch schedule, and the JVV baseline."""

import math

import numpy as np
import pytest

from repro.core.batched import (
    BatchedSamplerConfig,
    batch_schedule,
    batched_sample,
    default_batch_size,
)
from repro.core.sequential import sequential_sample
from repro.distributions.generic import uniform_distribution_on_size_k
from repro.dpp.exact import exact_kdpp_distribution
from repro.dpp.symmetric import SymmetricDPP, SymmetricKDPP
from repro.pram.tracker import Tracker
from repro.workloads import random_psd_ensemble


class TestBatchSchedule:
    def test_default_batch_size(self):
        assert default_batch_size(16) == 4
        assert default_batch_size(17) == 5
        assert default_batch_size(1) == 1

    def test_schedule_sums_to_k(self):
        for k in (1, 2, 5, 16, 100, 1000):
            assert sum(batch_schedule(k)) == k

    def test_schedule_length_at_most_two_sqrt_k(self):
        # Proposition 28
        for k in (1, 4, 10, 64, 100, 500, 2500, 10000):
            assert len(batch_schedule(k)) <= 2 * math.sqrt(k) + 1

    def test_schedule_zero(self):
        assert batch_schedule(0) == []

    def test_schedule_negative_raises(self):
        with pytest.raises(ValueError):
            batch_schedule(-1)

    def test_first_batch_is_ceil_sqrt(self):
        assert batch_schedule(50)[0] == math.ceil(math.sqrt(50))

    def test_custom_batch_size(self):
        schedule = batch_schedule(10, batch_size=lambda k: 2)
        assert schedule == [2, 2, 2, 2, 2]


class TestBatchedSampler:
    def test_output_size_and_validity(self, small_psd):
        dist = SymmetricKDPP(small_psd, 3)
        result = batched_sample(dist, seed=0)
        assert len(result.subset) == 3
        assert len(set(result.subset)) == 3
        assert dist.unnormalized(result.subset) > 0

    def test_requires_fixed_cardinality(self, small_psd):
        with pytest.raises(ValueError):
            batched_sample(SymmetricDPP(small_psd), seed=0)

    def test_rounds_scale_with_sqrt_k(self):
        # Compare measured rounds for small and large k on a larger ensemble.
        L = random_psd_ensemble(64, rank=64, seed=0)
        r_small = batched_sample(SymmetricKDPP(L, 4), seed=1)
        r_large = batched_sample(SymmetricKDPP(L, 36), seed=1)
        # sqrt(36)/sqrt(4) = 3; allow a factor-2 slack over the ideal sqrt
        # ratio -- still far below the 9x ratio a sequential sampler shows.
        assert r_large.report.rounds <= 2 * 3 * r_small.report.rounds
        # and the number of accepted batches obeys Proposition 28 directly
        assert len(r_large.report.batch_sizes) <= 2 * 6 + 1

    def test_report_batch_sizes_sum_to_k(self, small_psd):
        result = batched_sample(SymmetricKDPP(small_psd, 4), seed=2)
        assert sum(result.report.batch_sizes) == 4

    def test_acceptance_rates_recorded(self, small_psd):
        result = batched_sample(SymmetricKDPP(small_psd, 4), seed=3)
        assert len(result.report.acceptance_rates) >= 1
        assert result.report.proposals > 0

    def test_tracker_passthrough(self, small_psd):
        tracker = Tracker()
        result = batched_sample(SymmetricKDPP(small_psd, 3), seed=4, tracker=tracker)
        assert result.report.rounds == tracker.rounds
        assert tracker.rounds > 0

    def test_works_on_generic_distribution(self):
        # the driver only needs the counting-oracle interface
        dist = uniform_distribution_on_size_k(8, 4)
        result = batched_sample(dist, seed=5)
        assert len(result.subset) == 4

    def test_distribution_accuracy_uniform(self):
        # On the uniform size-k distribution (negatively correlated), batched
        # sampling with the Lemma 27 constant is exact: check empirically.
        dist = uniform_distribution_on_size_k(6, 2)
        counts = {}
        rng = np.random.default_rng(6)
        num_samples = 1500
        for _ in range(num_samples):
            result = batched_sample(dist, seed=rng)
            counts[result.subset] = counts.get(result.subset, 0) + 1
        probs = np.array([counts.get(s, 0) / num_samples for s in dist.support])
        assert np.abs(probs - 1.0 / 15.0).max() < 0.035

    def test_custom_config_single_element_batches(self, small_psd):
        config = BatchedSamplerConfig(batch_size=lambda k: 1)
        result = batched_sample(SymmetricKDPP(small_psd, 3), config, seed=7)
        assert result.report.batch_sizes == [1, 1, 1]

    def test_failure_fallback_keeps_output_valid(self, small_psd):
        # Force failures by making the rejection constant absurdly large with
        # almost no machines and no retries.
        config = BatchedSamplerConfig(
            rejection_constant=lambda k, ell: 1e12,
            machine_cap=2,
            max_rounds_per_batch=1,
        )
        dist = SymmetricKDPP(small_psd, 3)
        result = batched_sample(dist, config, seed=8)
        assert len(result.subset) == 3
        assert dist.unnormalized(result.subset) > 0


class TestSequentialSampler:
    def test_output_validity(self, small_psd):
        dist = SymmetricKDPP(small_psd, 3)
        result = sequential_sample(dist, seed=0)
        assert len(result.subset) == 3
        assert dist.unnormalized(result.subset) > 0

    def test_depth_is_linear_in_k(self, small_psd):
        for k in (1, 2, 4):
            result = sequential_sample(SymmetricKDPP(small_psd, k), seed=1)
            assert result.report.rounds == 2 * k  # marginals round + pick round per step

    def test_requires_fixed_cardinality(self, small_psd):
        with pytest.raises(ValueError):
            sequential_sample(SymmetricDPP(small_psd), seed=0)

    def test_distribution_accuracy(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 2)
        counts = {}
        rng = np.random.default_rng(2)
        num_samples = 2500
        for _ in range(num_samples):
            result = sequential_sample(SymmetricKDPP(small_psd, 2), seed=rng)
            counts[result.subset] = counts.get(result.subset, 0) + 1
        tv = 0.5 * sum(
            abs(counts.get(s, 0) / num_samples - exact.probability_vector([s])[0])
            for s in exact.support
        )
        assert tv < 0.06

    def test_works_on_generic_distribution(self):
        dist = uniform_distribution_on_size_k(7, 3)
        result = sequential_sample(dist, seed=3)
        assert len(result.subset) == 3
