"""Streaming kernels end-to-end: incremental updates replace recompute.

The contract under test is byte-identity: after any chain of
``update()`` / ``append_items()`` / ``delete_items()`` calls, fixed-seed
draws from the live session equal draws from a *cold* registration of the
mutated matrix — on every kernel family, sampling method, execution
backend, through the fused scheduler, and across cluster replicas.  The
cache must report honest patched-vs-recomputed decisions, the planner's
break-even policy must flip long chains back to full refactorization, and
the cluster must ship O(n·k) deltas over a verified fingerprint chain.
"""

import numpy as np
import pytest

import repro
from repro import obs
from repro.cluster import LocalCluster, serve_cluster
from repro.linalg.updates import KernelUpdate
from repro.service.registry import KernelRegistry
from repro.service.session import SamplerSession
from repro.workloads import random_npsd_ensemble, random_psd_ensemble

SEEDS = [0, 3, 11]
K = 4


@pytest.fixture(scope="module")
def psd():
    return random_psd_ensemble(14, seed=5)


@pytest.fixture(scope="module")
def npsd():
    return random_npsd_ensemble(10, symmetric_scale=1.0, skew_scale=0.5, seed=7)


@pytest.fixture(scope="module")
def factor():
    rng = np.random.default_rng(9)
    return rng.standard_normal((24, 4)) / 2.0


def _cold(matrix, **kwargs):
    """A fresh single-node session on an independent registry/cache."""
    return repro.serve(matrix, registry=KernelRegistry(), **kwargs)


def _vectors(n, seed=100):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) / np.sqrt(n), rng.standard_normal(n) / np.sqrt(n)


# ---------------------------------------------------------------------- #
# dense kernels: update == cold re-registration, every method/backend
# ---------------------------------------------------------------------- #
class TestDenseUpdateIdentity:
    @pytest.mark.parametrize("method", ["spectral", "parallel"])
    @pytest.mark.parametrize("backend", ["serial", "vectorized", "threads"])
    def test_symmetric_update_matches_cold(self, psd, method, backend):
        session = _cold(psd)
        session.sample(k=K, seed=0, method=method)  # warm the artifacts
        u, _ = _vectors(psd.shape[0])
        entry = session.update(u, weight=0.4)
        expected = psd + 0.4 * np.outer(u, u)
        np.testing.assert_allclose(np.asarray(entry.matrix), expected)
        cold = _cold(np.asarray(entry.matrix))
        for seed in SEEDS:
            assert session.sample(k=K, seed=seed, method=method,
                                  backend=backend).subset == \
                cold.sample(k=K, seed=seed, method=method,
                            backend=backend).subset

    def test_symmetric_uv_update_symmetrizes(self, psd):
        session = _cold(psd)
        u, v = _vectors(psd.shape[0], seed=101)
        entry = session.update(u, v, weight=0.3)
        expected = psd + 0.3 * 0.5 * (np.outer(u, v) + np.outer(v, u))
        np.testing.assert_allclose(np.asarray(entry.matrix), expected)
        cold = _cold(np.asarray(entry.matrix))
        for seed in SEEDS:
            assert session.sample(k=K, seed=seed).subset == \
                cold.sample(k=K, seed=seed).subset

    def test_nonsymmetric_update_matches_cold(self, npsd):
        session = _cold(npsd, kind="nonsymmetric")
        session.sample(k=3, seed=0)
        u, v = _vectors(npsd.shape[0], seed=102)
        entry = session.update(u, v, weight=0.2)
        np.testing.assert_allclose(np.asarray(entry.matrix),
                                   npsd + 0.2 * np.outer(u, v))
        cold = _cold(np.asarray(entry.matrix), kind="nonsymmetric")
        for seed in SEEDS:
            assert session.sample(k=3, seed=seed).subset == \
                cold.sample(k=3, seed=seed).subset

    def test_update_chain_stays_identical(self, psd):
        """Several stacked patches must not drift off the cold path."""
        session = _cold(psd)
        session.sample(k=K, seed=0)
        matrix = psd.copy()
        for step in range(3):
            u, _ = _vectors(psd.shape[0], seed=200 + step)
            weight = 0.1 * (step + 1)
            entry = session.update(u, weight=weight)
            matrix = matrix + weight * np.outer(u, u)
        np.testing.assert_allclose(np.asarray(entry.matrix), matrix)
        cold = _cold(np.asarray(entry.matrix))
        for seed in SEEDS:
            assert session.sample(k=K, seed=seed).subset == \
                cold.sample(k=K, seed=seed).subset


# ---------------------------------------------------------------------- #
# low-rank kernels: append/delete are exact factor edits
# ---------------------------------------------------------------------- #
class TestLowRankStreaming:
    def test_append_and_delete_are_bitwise_exact(self, factor):
        session = _cold(factor, kind="lowrank")
        session.sample(k=K, seed=0)
        rng = np.random.default_rng(13)
        rows = rng.standard_normal((2, factor.shape[1])) / 2.0
        entry = session.append_items(rows)
        grown = np.concatenate([factor, rows], axis=0)
        assert np.asarray(entry.matrix).tobytes() == grown.tobytes()
        entry = session.delete_items([0, 5])
        shrunk = np.delete(grown, [0, 5], axis=0)
        assert np.asarray(entry.matrix).tobytes() == shrunk.tobytes()
        cold = _cold(shrunk, kind="lowrank")
        for seed in SEEDS:
            assert session.sample(k=K, seed=seed).subset == \
                cold.sample(k=K, seed=seed).subset

    def test_process_backend_after_update(self, factor):
        session = _cold(factor, kind="lowrank")
        rng = np.random.default_rng(17)
        entry = session.append_items(rng.standard_normal(factor.shape[1]) / 2.0)
        cold = _cold(np.asarray(entry.matrix), kind="lowrank")
        assert session.sample(k=K, seed=1, backend="process").subset == \
            cold.sample(k=K, seed=1, backend="process").subset


# ---------------------------------------------------------------------- #
# epochs: stamped on results and fused tickets
# ---------------------------------------------------------------------- #
class TestEpochs:
    def test_epoch_stamp_only_after_first_update(self, psd):
        session = _cold(psd)
        assert "kernel_epoch" not in session.sample(k=K, seed=0).report.extra
        u, _ = _vectors(psd.shape[0], seed=300)
        session.update(u, weight=0.1)
        assert session.epoch == 1
        assert session.sample(k=K, seed=0).report.extra["kernel_epoch"] == 1.0

    def test_fused_tickets_carry_their_epoch(self, psd):
        session = _cold(psd)
        scheduler = session.scheduler(seed=0)
        before = scheduler.submit(K, seed=1)
        u, _ = _vectors(psd.shape[0], seed=301)
        session.update(u, weight=0.2)
        after = scheduler.submit(K, seed=2)
        assert before.epoch == 0 and after.epoch == 1
        results = scheduler.drain()
        # fused draws run against the *current* epoch, identical to a cold
        # session on the mutated kernel
        cold = _cold(np.asarray(session.entry.matrix))
        assert [r.subset for r in results] == \
            [cold.sample(k=K, seed=seed, method="parallel").subset
             for seed in (1, 2)]

    def test_standalone_session_updates_without_registry(self, psd):
        registry = KernelRegistry()
        registry.register("solo", psd)
        session = SamplerSession(registry.get("solo"), registry.cache)
        u, _ = _vectors(psd.shape[0], seed=302)
        entry = session.update(u, weight=0.25)
        assert entry.epoch == 1
        cold = _cold(np.asarray(entry.matrix))
        for seed in SEEDS:
            assert session.sample(k=K, seed=seed).subset == \
                cold.sample(k=K, seed=seed).subset
        # the registry never saw the update: it still serves epoch 0
        assert registry.get("solo").epoch == 0

    def test_adopt_entry_refuses_rollback(self, psd):
        registry = KernelRegistry()
        registry.register("roll", psd)
        session = registry.session("roll")
        old = session.entry
        u, _ = _vectors(psd.shape[0], seed=303)
        session.update(u, weight=0.1)
        assert session.adopt_entry(old) is False
        assert session.epoch == 1


# ---------------------------------------------------------------------- #
# cache accounting and the break-even policy
# ---------------------------------------------------------------------- #
class TestCacheDecisions:
    def test_warm_update_is_patched_cold_is_recomputed(self, psd):
        registry = KernelRegistry()
        registry.register("acct", psd)
        session = registry.session("acct")
        u, _ = _vectors(psd.shape[0], seed=400)
        # no artifacts warmed yet: nothing to patch, honest "recomputed"
        entry = registry.apply_update("acct", KernelUpdate.rank_one(u, weight=0.1))
        assert entry.update_log[-1].decision == "recomputed"
        session.adopt_entry(entry)
        session.sample(k=K, seed=0)  # warm this epoch's artifacts
        entry = registry.apply_update("acct", KernelUpdate.rank_one(u, weight=0.1))
        assert entry.update_log[-1].decision == "patched"
        info = registry.cache.cache_info()
        assert info["update_patched"] >= 1
        assert info["update_recomputed"] >= 1
        artifacts = info["artifacts"]
        assert any(stats["patched"] > 0 for stats in artifacts.values())

    def test_break_even_depth_flips_to_refactorization(self):
        # n=4 dense: break-even depth is n, so the 4th auto update recomputes
        psd = random_psd_ensemble(4, seed=1)
        registry = KernelRegistry()
        registry.register("tiny", psd)
        session = registry.session("tiny")
        decisions = []
        for step in range(4):
            session.sample(k=2, seed=0)  # keep each epoch warm
            u, _ = _vectors(4, seed=500 + step)
            entry = session.update(u, weight=0.05)
            decisions.append(entry.update_log[-1].decision)
        assert decisions[:3] == ["patched"] * 3
        assert decisions[3] == "recomputed"

    def test_refactor_flag_forces_either_path(self, psd):
        session = _cold(psd)
        session.sample(k=K, seed=0)
        u, _ = _vectors(psd.shape[0], seed=501)
        forced = session.update(u, weight=0.1, refactor=True)
        assert forced.update_log[-1].decision == "recomputed"
        session.sample(k=K, seed=0)
        patched = session.update(u, weight=0.1, refactor=False)
        assert patched.update_log[-1].decision == "patched"

    def test_partition_kernels_refuse_updates(self):
        from repro.workloads import clustered_ensemble

        L, parts = clustered_ensemble([3, 3], within=0.6, across=0.05, seed=2)
        registry = KernelRegistry()
        registry.register("parts", L, kind="partition", parts=parts, counts=[1, 1])
        with pytest.raises(ValueError, match="partition"):
            registry.apply_update("parts", KernelUpdate.rank_one(np.ones(6)))

    def test_stale_expect_fingerprint_is_refused(self, psd):
        registry = KernelRegistry()
        registry.register("guard", psd)
        u, _ = _vectors(psd.shape[0], seed=502)
        update = KernelUpdate.rank_one(u, weight=0.1)
        with pytest.raises(ValueError, match="stale or rebased"):
            registry.apply_update("guard", update, expect_fingerprint="0" * 64)


# ---------------------------------------------------------------------- #
# cluster: verified fingerprint chain, stable routing, delta shipping
# ---------------------------------------------------------------------- #
class TestClusterStreaming:
    @pytest.fixture(scope="class")
    def cluster(self):
        with LocalCluster(nodes=3, replication=2) as cluster:
            yield cluster

    def test_lowrank_stream_matches_single_node(self, cluster, factor):
        session = serve_cluster(factor, kind="lowrank", cluster=cluster)
        reference = _cold(factor, kind="lowrank")
        rng = np.random.default_rng(21)
        row = rng.standard_normal(factor.shape[1]) / 2.0
        session.append_items(row)
        reference.append_items(row)
        session.delete_items([2])
        reference.delete_items([2])
        assert session.epoch == 2
        for seed in SEEDS:
            assert session.sample(k=K, seed=seed).subset == \
                reference.sample(k=K, seed=seed).subset

    def test_dense_update_matches_cold_through_cluster(self, cluster, psd):
        session = serve_cluster(psd, cluster=cluster, warm=True)
        u, _ = _vectors(psd.shape[0], seed=600)
        session.update(u, weight=0.3)
        cold = _cold(psd + 0.3 * np.outer(u, u))
        for seed in SEEDS:
            assert session.sample(k=K, seed=seed).subset == \
                cold.sample(k=K, seed=seed).subset

    def test_chain_fingerprint_and_routing_are_stable(self, cluster, factor):
        client = cluster.client()
        registered = client.register(factor, name="chain-a", kind="lowrank")
        owners_before = client.owners(registered.route)
        rng = np.random.default_rng(23)
        update = KernelUpdate.append_rows(
            rng.standard_normal((1, factor.shape[1])) / 2.0)
        expected = update.chained_fingerprint(registered.fingerprint)
        entry = client.update(registered.name, update)
        assert entry.fingerprint == expected
        assert entry.epoch == registered.epoch + 1
        # routing key is the chain *base*: the kernel never moves mid-stream
        assert entry.route == registered.route
        assert client.owners(entry.route) == owners_before

    def test_node_refuses_stale_chain_tip(self, cluster, factor):
        client = cluster.client()
        registered = client.register(factor, name="chain-b", kind="lowrank")
        rng = np.random.default_rng(25)
        update = KernelUpdate.append_rows(
            rng.standard_normal((1, factor.shape[1])) / 2.0)
        owner = client.owners(registered.route)[0]
        with pytest.raises(ValueError, match="stale or rebased"):
            client.call_node(owner, {"op": "update", "name": registered.name,
                                     "update": update, "prev": "0" * 64,
                                     "refactor": "auto"})

    def test_update_replies_carry_chain_metadata(self, cluster, psd):
        client = cluster.client()
        registered = client.register(psd, name="chain-c")
        u, _ = _vectors(psd.shape[0], seed=601)
        update = KernelUpdate.rank_one(u, weight=0.1)
        owner = client.owners(registered.route)[0]
        info = client.call_node(owner, {"op": "update", "name": registered.name,
                                        "update": update,
                                        "prev": registered.fingerprint,
                                        "refactor": "auto"})
        assert info["fingerprint"] == update.chained_fingerprint(
            registered.fingerprint)
        assert info["base_fingerprint"] == registered.fingerprint
        assert info["epoch"] == 1
        assert info["decision"] in ("patched", "recomputed")


# ---------------------------------------------------------------------- #
# observability: update decisions and delta bytes are measured
# ---------------------------------------------------------------------- #
class TestStreamingObservability:
    def test_update_metrics_and_delta_bytes(self, factor):
        obs.reset()
        obs.enable()
        try:
            with LocalCluster(nodes=2, replication=1) as cluster:
                session = serve_cluster(factor, kind="lowrank", cluster=cluster)
                rng = np.random.default_rng(27)
                session.append_items(rng.standard_normal(factor.shape[1]) / 2.0)
            counter = obs.registry().counter(
                "repro_kernel_updates_total", "", labelnames=("kind", "decision"))
            total = sum(counter.value(kind="lowrank", decision=decision)
                        for decision in ("patched", "recomputed"))
            assert total >= 1.0
            metrics = obs.snapshot()["metrics"]["metrics"]
            assert "repro_kernel_update_depth" in metrics
            assert "repro_cluster_update_delta_bytes" in metrics
        finally:
            obs.reset()
            obs.disable()

    def test_session_stats_count_update_decisions(self, psd):
        registry = KernelRegistry()
        registry.register("stats", psd)
        session = registry.session("stats")
        session.sample(k=K, seed=0)
        u, _ = _vectors(psd.shape[0], seed=700)
        session.update(u, weight=0.1)
        stats = session.stats
        assert stats["cache"]["update_patched"] + \
            stats["cache"]["update_recomputed"] >= 1
