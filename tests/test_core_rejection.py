"""Tests for rejection-sampling primitives (Algorithms 2/3, Props 25/26)."""

import math

import numpy as np
import pytest

from repro.core.rejection import (
    boosted_rejection_sample,
    machines_for_boosting,
    modified_rejection_round,
)
from repro.pram.tracker import Tracker


class TestMachinesForBoosting:
    def test_scaling_with_C(self):
        assert machines_for_boosting(10.0, 0.01) >= 10 * math.log(100)

    def test_floor(self):
        assert machines_for_boosting(0.5, 0.5) >= 4

    def test_cap(self):
        assert machines_for_boosting(1e9, 1e-9, cap=1000) == 1000

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            machines_for_boosting(2.0, 0.0)
        with pytest.raises(ValueError):
            machines_for_boosting(2.0, 1.5)


class TestModifiedRejectionRound:
    def test_accepts_certain_proposal(self):
        rng = np.random.default_rng(0)
        tracker = Tracker()
        outcome = modified_rejection_round(np.array([0.0]), 0.0, rng, tracker=tracker)
        assert outcome.accepted
        assert outcome.accepted_index == 0
        assert tracker.rounds == 1

    def test_never_accepts_minus_inf(self):
        rng = np.random.default_rng(0)
        outcome = modified_rejection_round(np.full(50, -np.inf), 0.0, rng, tracker=Tracker())
        assert not outcome.accepted
        assert outcome.ratio_violations == 0

    def test_counts_violations_and_never_accepts_them(self):
        rng = np.random.default_rng(0)
        # log ratio above log C: proposals in the bad set of Algorithm 3
        outcome = modified_rejection_round(np.full(20, 5.0), 1.0, rng, tracker=Tracker())
        assert outcome.ratio_violations == 20
        assert not outcome.accepted

    def test_acceptance_probability_statistics(self):
        # acceptance probability should be exp(log_ratio - log_C)
        rng = np.random.default_rng(1)
        log_C = math.log(4.0)
        accepted = 0
        trials = 3000
        for _ in range(trials):
            outcome = modified_rejection_round(np.array([0.0]), log_C, rng, tracker=Tracker())
            accepted += outcome.accepted
        assert accepted / trials == pytest.approx(0.25, abs=0.03)

    def test_picks_first_accepted(self):
        rng = np.random.default_rng(2)
        # all proposals accepted with probability 1 -> index 0 wins
        outcome = modified_rejection_round(np.zeros(10), 0.0, rng, tracker=Tracker())
        assert outcome.accepted_index == 0

    def test_charges_one_round_and_machines(self):
        tracker = Tracker()
        rng = np.random.default_rng(3)
        modified_rejection_round(np.zeros(17), 0.0, rng, tracker=tracker)
        assert tracker.rounds == 1
        assert tracker.peak_machines >= 17


class TestBoostedRejection:
    def test_samples_target_distribution(self):
        # target: {0: 0.7, 1: 0.3}; proposal: uniform.  C = max ratio = 1.4
        target = np.array([0.7, 0.3])
        proposal = np.array([0.5, 0.5])
        C = float(np.max(target / proposal))
        rng = np.random.default_rng(4)

        def propose(count, gen):
            return gen.choice(2, size=count, p=proposal)

        def log_ratio(batch):
            return np.log(target[batch] / proposal[batch])

        counts = np.zeros(2)
        for _ in range(2000):
            idx, batch, outcome = boosted_rejection_sample(propose, log_ratio, C, 0.01, rng,
                                                           tracker=Tracker())
            assert idx is not None
            counts[batch[idx]] += 1
        freqs = counts / counts.sum()
        assert np.allclose(freqs, target, atol=0.03)

    def test_returns_none_when_impossible(self):
        rng = np.random.default_rng(5)

        def propose(count, gen):
            return np.zeros(count, dtype=int)

        def log_ratio(batch):
            return np.full(len(batch), -np.inf)

        idx, _, outcome = boosted_rejection_sample(propose, log_ratio, 2.0, 0.1, rng,
                                                   tracker=Tracker(), max_rounds=3)
        assert idx is None
        assert outcome.proposals > 0

    def test_violation_accounting(self):
        rng = np.random.default_rng(6)

        def propose(count, gen):
            return np.zeros(count, dtype=int)

        def log_ratio(batch):
            return np.full(len(batch), 10.0)  # way above log C

        idx, _, outcome = boosted_rejection_sample(propose, log_ratio, 2.0, 0.1, rng,
                                                   tracker=Tracker(), max_rounds=2)
        assert idx is None
        assert outcome.ratio_violations == outcome.proposals
