"""Tests for simulated parallel scheduling helpers."""

import pytest

from repro.pram.schedule import parallel_branches, parallel_map
from repro.pram.tracker import Tracker, current_tracker, use_tracker


class TestParallelMap:
    def test_results_in_order(self):
        t = Tracker()
        out = parallel_map(lambda x: x * x, [1, 2, 3], tracker=t)
        assert out == [1, 4, 9]

    def test_charges_one_round(self):
        t = Tracker()
        parallel_map(lambda x: x, list(range(10)), tracker=t)
        assert t.rounds == 1
        assert t.peak_machines >= 10

    def test_inner_charges_absorbed_into_round(self):
        t = Tracker()

        def work(x):
            current_tracker().charge(work=1.0)
            return x

        with use_tracker(t):
            parallel_map(work, [1, 2, 3, 4])
        assert t.rounds == 1
        assert t.work == pytest.approx(4.0)

    def test_empty_items(self):
        t = Tracker()
        assert parallel_map(lambda x: x, [], tracker=t) == []
        assert t.rounds == 1


class TestParallelBranches:
    def test_depth_is_max_of_branches(self):
        t = Tracker()

        def make_branch(depth):
            def branch():
                trk = current_tracker()
                for _ in range(depth):
                    with trk.round():
                        trk.charge(work=1.0)
                return depth

            return branch

        with use_tracker(t):
            results = parallel_branches([make_branch(2), make_branch(7), make_branch(3)])
        assert results == [2, 7, 3]
        assert t.rounds == 7
        assert t.work == pytest.approx(12.0)

    def test_no_branches(self):
        t = Tracker()
        assert parallel_branches([], tracker=t) == []
        assert t.rounds == 0

    def test_branch_results_preserved(self):
        t = Tracker()
        with use_tracker(t):
            results = parallel_branches([lambda: "a", lambda: "b"])
        assert results == ["a", "b"]
