"""Tests for repro.utils.subsets."""

import math

import numpy as np
import pytest

from repro.utils.subsets import (
    all_subsets,
    all_subsets_of_size,
    binomial,
    mask_to_subset,
    subset_key,
    subset_to_mask,
)


class TestSubsetKey:
    def test_sorts(self):
        assert subset_key([3, 1, 2]) == (1, 2, 3)

    def test_empty(self):
        assert subset_key([]) == ()

    def test_coerces_ints(self):
        assert subset_key(np.array([2, 0])) == (0, 2)


class TestEnumeration:
    def test_all_subsets_count(self):
        assert len(list(all_subsets(4))) == 16

    def test_all_subsets_of_size_count(self):
        assert len(list(all_subsets_of_size(5, 2))) == 10

    def test_all_subsets_of_size_out_of_range(self):
        assert list(all_subsets_of_size(3, 5)) == []
        assert list(all_subsets_of_size(3, -1)) == []

    def test_subsets_are_sorted_tuples(self):
        for s in all_subsets_of_size(5, 3):
            assert tuple(sorted(s)) == s

    def test_all_subsets_includes_empty_and_full(self):
        subsets = set(all_subsets(3))
        assert () in subsets
        assert (0, 1, 2) in subsets


class TestMasks:
    def test_roundtrip(self):
        subset = (0, 2, 4)
        assert mask_to_subset(subset_to_mask(subset, 6)) == subset

    def test_empty_mask(self):
        mask = subset_to_mask([], 4)
        assert mask.sum() == 0
        assert mask_to_subset(mask) == ()

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            subset_to_mask([5], 4)


class TestBinomial:
    def test_values(self):
        assert binomial(5, 2) == 10
        assert binomial(10, 0) == 1
        assert binomial(10, 10) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-2, 1) == 0

    def test_matches_math_comb(self):
        for n in range(8):
            for k in range(n + 1):
                assert binomial(n, k) == math.comb(n, k)
