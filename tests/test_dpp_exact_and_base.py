"""Tests for the brute-force exact module and SubsetDistribution default methods."""

import numpy as np
import pytest

from repro.distributions.base import SubsetDistribution
from repro.dpp.exact import (
    exact_dpp_distribution,
    exact_kdpp_distribution,
    exact_partition_dpp_distribution,
)
from repro.utils.subsets import binomial
from repro.workloads import clustered_ensemble, random_psd_ensemble


class TestExactModule:
    def test_exact_dpp_guard(self):
        with pytest.raises(ValueError):
            exact_dpp_distribution(np.eye(25))

    def test_exact_kdpp_guard(self):
        with pytest.raises(ValueError):
            exact_kdpp_distribution(np.eye(25), 3)

    def test_exact_partition_guard(self):
        with pytest.raises(ValueError):
            exact_partition_dpp_distribution(np.eye(25), [list(range(25))], [3])

    def test_exact_kdpp_support_size(self, small_psd):
        exact = exact_kdpp_distribution(small_psd, 2)
        assert len(exact.support) == binomial(6, 2)

    def test_exact_dpp_includes_empty_set(self, small_psd):
        exact = exact_dpp_distribution(small_psd)
        assert () in exact.support

    def test_exact_identity_matrix_kdpp_is_uniform(self):
        exact = exact_kdpp_distribution(np.eye(5), 2)
        probs = exact.probability_vector(list(exact.support))
        assert np.allclose(probs, 1.0 / binomial(5, 2))

    def test_exact_partition_respects_constraints(self, clustered):
        L, parts = clustered
        exact = exact_partition_dpp_distribution(L, parts, [2, 0])
        for subset in exact.support:
            assert len(set(subset) & set(parts[0])) == 2
            assert len(set(subset) & set(parts[1])) == 0


class _OracleOnlyDistribution(SubsetDistribution):
    """Minimal distribution implementing only the abstract interface, used to
    exercise the default (counting-oracle based) implementations in the base
    class: a k-DPP wrapped behind an opaque oracle."""

    def __init__(self, L, k):
        self.L = np.asarray(L, dtype=float)
        self.n = self.L.shape[0]
        self.k = k

    @property
    def cardinality(self):
        return self.k

    def counting(self, given=()):
        from itertools import combinations

        base = set(given)
        total = 0.0
        for subset in combinations(range(self.n), self.k):
            if base.issubset(subset):
                idx = list(subset)
                total += float(np.linalg.det(self.L[np.ix_(idx, idx)]))
        return total

    def condition(self, include):
        raise NotImplementedError


class TestBaseClassDefaults:
    @pytest.fixture
    def oracle_dist(self, small_psd):
        return _OracleOnlyDistribution(small_psd, 3)

    def test_default_unnormalized(self, oracle_dist, small_psd):
        subset = (0, 2, 4)
        expected = np.linalg.det(small_psd[np.ix_(subset, subset)])
        assert oracle_dist.unnormalized(subset) == pytest.approx(expected)

    def test_default_probability(self, oracle_dist, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        subset = (1, 2, 5)
        assert oracle_dist.probability(subset) == pytest.approx(
            exact.probability_vector([subset])[0], rel=1e-8)

    def test_default_joint_marginal(self, oracle_dist, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        z = exact.counting(())
        assert oracle_dist.joint_marginal((0, 1)) == pytest.approx(
            exact.counting((0, 1)) / z, rel=1e-8)

    def test_default_marginal(self, oracle_dist, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        assert oracle_dist.marginal(2) == pytest.approx(exact.marginal_vector()[2], rel=1e-8)

    def test_default_marginal_of_conditioned_element_is_one(self, oracle_dist):
        assert oracle_dist.marginal(1, given=(1,)) == 1.0

    def test_default_marginal_vector(self, oracle_dist, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        assert np.allclose(oracle_dist.marginal_vector(), exact.marginal_vector(), atol=1e-8)

    def test_default_to_explicit(self, oracle_dist, small_psd):
        exact = exact_kdpp_distribution(small_psd, 3)
        assert oracle_dist.to_explicit().total_variation(exact) < 1e-9

    def test_zero_probability_conditioning_raises(self, small_psd):
        dist = _OracleOnlyDistribution(small_psd, 2)
        with pytest.raises(ValueError):
            # conditioning on 3 elements is impossible for a 2-homogeneous law
            dist.marginal_vector(given=(0, 1, 2))

    def test_expected_size_for_homogeneous(self, oracle_dist):
        assert oracle_dist.expected_size() == pytest.approx(3.0)
