"""Batched linear algebra for one adaptive oracle round.

The engine (:mod:`repro.engine`) turns each adaptive round of a sampler into
an :class:`~repro.engine.batch.OracleBatch` — many independent determinant /
Schur-complement / spectrum queries against the same matrix.  This module
provides the NumPy-stacked primitives the vectorized execution backend fans
those queries out with:

* :func:`stacked_principal_submatrices` / :func:`grouped_principal_minors` /
  :func:`grouped_log_principal_minors` — principal minors of many (possibly
  mixed-size) index subsets via stacked ``det`` / ``slogdet`` calls;
* :func:`batched_schur_complements` — Schur complements ``M^T`` for many
  equal-size blocks ``T`` in one stacked ``solve``;
* :func:`batched_esp` — elementary symmetric polynomials of many spectra at
  once (the vectorized form of the stable DP in :mod:`repro.linalg.esp`);
* :func:`lowrank_conditioned_gram` — the rank-``r`` Gram reduction: for a PSD
  ``L = B Bᵀ`` the nonzero spectrum of the Schur complement ``L^T`` equals the
  spectrum of the ``r x r`` matrix ``Q (BᵀB - B_TᵀB_T) Q`` with
  ``Q = I - B_Tᵀ L_{T,T}^{-1} B_T``, collapsing a per-query
  ``O((n-t)³)`` eigendecomposition to ``O(r³)``.

All routines charge the current PRAM tracker exactly like their scalar
counterparts in :mod:`repro.linalg.determinant` and :mod:`repro.linalg.schur`:
``count`` independent queries inside one ``Õ(1)``-depth block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square

__all__ = [
    "stacked_principal_submatrices",
    "grouped_principal_minors",
    "grouped_log_principal_minors",
    "batched_schur_complements",
    "batched_esp",
    "lowrank_conditioned_gram",
    "psd_factor",
    "group_by_size",
    "hkpv_projection_step",
]


def group_by_size(subsets: Sequence[Sequence[int]]) -> Dict[int, List[int]]:
    """Map ``size -> positions`` grouping mixed-size subsets for stacked calls."""
    groups: Dict[int, List[int]] = {}
    for pos, subset in enumerate(subsets):
        groups.setdefault(len(subset), []).append(pos)
    return groups


def _index_array(subsets: Sequence[Sequence[int]], n: int) -> np.ndarray:
    """Sorted ``(batch, m)`` index array with range validation."""
    idx = np.asarray([sorted(int(i) for i in s) for s in subsets], dtype=int)
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise ValueError(f"subset index out of range for matrix of size {n}")
    return idx


def stacked_principal_submatrices(matrix: np.ndarray, subsets: Sequence[Sequence[int]]) -> np.ndarray:
    """``(batch, m, m)`` stack of principal submatrices (equal-size subsets)."""
    a = check_square(matrix, "matrix")
    idx = _index_array(subsets, a.shape[0])
    return a[idx[:, :, None], idx[:, None, :]]


def grouped_principal_minors(matrix: np.ndarray, subsets: Sequence[Sequence[int]]) -> np.ndarray:
    """``det(M_{S,S})`` for many subsets of *mixed* sizes.

    Subsets are grouped by cardinality and each group is evaluated with one
    stacked ``np.linalg.det`` call; results are returned in input order.
    Charged as ``len(subsets)`` parallel oracle queries.
    """
    a = check_square(matrix, "matrix")
    values = np.empty(len(subsets), dtype=float)
    tracker = current_tracker()
    for size, positions in group_by_size(subsets).items():
        tracker.charge_determinant(size, count=len(positions))
        if size == 0:
            values[positions] = 1.0
            continue
        stacked = stacked_principal_submatrices(a, [subsets[p] for p in positions])
        values[positions] = np.linalg.det(stacked)
    return values


def grouped_log_principal_minors(matrix: np.ndarray, subsets: Sequence[Sequence[int]]) -> np.ndarray:
    """``log det(M_{S,S})`` for mixed-size subsets; ``-inf`` for nonpositive minors.

    The vectorized form of looping :func:`repro.linalg.determinant.log_determinant`
    over principal submatrices (empty subsets contribute ``0.0``).
    """
    a = check_square(matrix, "matrix")
    values = np.full(len(subsets), -np.inf)
    tracker = current_tracker()
    for size, positions in group_by_size(subsets).items():
        tracker.charge_determinant(size, count=len(positions))
        if size == 0:
            values[positions] = 0.0
            continue
        stacked = stacked_principal_submatrices(a, [subsets[p] for p in positions])
        signs, logdets = np.linalg.slogdet(stacked)
        values[positions] = np.where(signs > 0, logdets, -np.inf)
    return values


def batched_schur_complements(matrix: np.ndarray, subsets: Sequence[Sequence[int]]
                              ) -> Tuple[np.ndarray, np.ndarray]:
    """Schur complements ``M^T`` for many equal-size blocks ``T`` at once.

    Returns ``(stack, complements)`` where ``stack[b]`` is the Schur complement
    with respect to ``subsets[b]`` and ``complements[b]`` lists the surviving
    row/column labels (ascending).  Mirrors the scalar operation order of
    :func:`repro.linalg.schur.schur_complement` so results agree bitwise.
    """
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    idx = _index_array(subsets, n)
    batch, m = idx.shape
    sizes = {len(s) for s in subsets}
    if len(sizes) > 1:
        raise ValueError(f"all subsets must have equal size, got sizes {sorted(sizes)}")
    current_tracker().charge_determinant(n, count=batch)
    mask = np.zeros((batch, n), dtype=bool)
    if m:
        mask[np.arange(batch)[:, None], idx] = True
    comp = np.nonzero(~mask)[1].reshape(batch, n - m)
    if m == 0:
        return np.broadcast_to(a, (batch, n, n)).copy(), comp
    a_bb = a[idx[:, :, None], idx[:, None, :]]
    a_bo = a[idx[:, :, None], comp[:, None, :]]
    a_ob = a[comp[:, :, None], idx[:, None, :]]
    a_oo = a[comp[:, :, None], comp[:, None, :]]
    solve = np.linalg.solve(a_bb, a_bo)
    return a_oo - a_ob @ solve, comp


def batched_esp(values: np.ndarray, max_order: int) -> np.ndarray:
    """ESPs ``e_0..e_{max_order}`` of each row of ``values`` (shape ``(batch, m)``).

    The vectorized form of the stable DP in
    :func:`repro.linalg.esp.elementary_symmetric_polynomials` — identical
    update order per row, so results match the scalar routine bit for bit.
    Accepts complex input (nonsymmetric spectra); the caller takes real parts.
    """
    vals = np.asarray(values)
    if vals.ndim != 2:
        raise ValueError("values must have shape (batch, m)")
    if max_order < 0:
        raise ValueError("max_order must be nonnegative")
    batch, m = vals.shape
    dtype = complex if np.iscomplexobj(vals) else float
    esp = np.zeros((batch, max_order + 1), dtype=dtype)
    esp[:, 0] = 1.0
    upper = min(max_order, m)
    for j in range(m):
        x = vals[:, j:j + 1]
        esp[:, 1:upper + 1] = esp[:, 1:upper + 1] + x * esp[:, 0:upper]
    return esp


def psd_factor(L: np.ndarray, *, tol: float = 1e-12) -> np.ndarray:
    """Rank-revealing factor ``B`` with ``L ≈ B Bᵀ`` from one eigendecomposition.

    Eigenvalues below ``tol * λmax`` are dropped, so ``B`` has ``rank(L)``
    columns for numerically low-rank ensembles.
    """
    a = check_square(L, "L")
    n = a.shape[0]
    current_tracker().charge_determinant(n)
    if n == 0:
        return np.zeros((0, 0))
    lam, vec = np.linalg.eigh(0.5 * (a + a.T))
    lam = np.clip(lam, 0.0, None)
    top = float(lam.max(initial=0.0))
    keep = lam > tol * max(top, 1.0) if top > 0 else np.zeros(n, dtype=bool)
    if not np.any(keep):
        return np.zeros((n, 0))
    return vec[:, keep] * np.sqrt(lam[keep])


def lowrank_conditioned_gram(factor: np.ndarray, gram: np.ndarray,
                             subsets: Sequence[Sequence[int]]
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Batched rank-``r`` reduction of conditioned PSD spectra.

    For ``L = B Bᵀ`` (``B = factor``, ``gram = BᵀB``) and equal-size blocks
    ``T``, the Schur complement satisfies ``L^T = B_O Q B_Oᵀ`` with the
    projector ``Q = I - B_Tᵀ (B_T B_Tᵀ)^{-1} B_T``, so its nonzero spectrum
    equals that of the ``r x r`` matrix ``C_T = Q (BᵀB - B_TᵀB_T) Q``.

    Returns ``(det_T, C)`` where ``det_T[b] = det(L_{T_b,T_b})`` and ``C[b]``
    is the symmetrized ``r x r`` reduction (rows with ``det_T <= 0`` hold
    garbage and must be masked by the caller — the conditioning event has zero
    probability there).
    """
    B = np.asarray(factor, dtype=float)
    n, r = B.shape
    idx = _index_array(subsets, n)
    batch, t = idx.shape
    current_tracker().charge_determinant(r, count=batch)
    if t == 0:
        C = np.broadcast_to(gram, (batch, r, r)).copy()
        return np.ones(batch), C
    B_T = B[idx]                                    # (batch, t, r)
    L_TT = B_T @ B_T.transpose(0, 2, 1)             # (batch, t, t)
    det_T = np.linalg.det(L_TT)
    ok = det_T > 0
    safe_L_TT = np.where(ok[:, None, None], L_TT, np.eye(t)[None])
    X = np.linalg.solve(safe_L_TT, B_T)             # (batch, t, r)
    P = B_T.transpose(0, 2, 1) @ X                  # (batch, r, r) projector onto rowspace(B_T)
    G_O = gram[None] - B_T.transpose(0, 2, 1) @ B_T  # (batch, r, r) = B_OᵀB_O
    QG = G_O - P @ G_O
    C = QG - QG @ P
    C = 0.5 * (C + C.transpose(0, 2, 1))
    return det_T, C


def hkpv_projection_step(bases: np.ndarray,
                         eliminate: Optional[Sequence[int]] = None
                         ) -> Tuple[np.ndarray, List[np.ndarray]]:
    """One HKPV phase-2 round for ``G`` stacked eigenbases at once.

    ``bases`` is a ``(G, n, m)`` stack of orthonormal bases (``G`` concurrent
    requests in lockstep — same kernel, same step).  When ``eliminate`` gives
    one row index per basis, each basis is first projected onto the
    orthogonal complement of its ``e_item`` and re-orthonormalized (batched
    QR, with the pivoted-QR fallback of the scalar sampler when unpivoted QR
    hides a surviving dimension); the returned ``weights[g]`` are the squared
    row norms of basis ``g`` afterwards — the element-selection probabilities
    of the next draw.

    Every operation is a gufunc that processes slices independently, so the
    per-request numbers are **identical for any stacking factor** ``G`` —
    the single-request sampler calls this with ``G = 1`` and the
    :class:`~repro.service.scheduler.RoundScheduler` fuses concurrent
    requests by stacking, without perturbing any request's samples.

    Returns ``(weights, new_bases)``: ``weights`` is ``(G, n)``;
    ``new_bases`` is a list of ``G`` 2-D arrays (kept column counts can
    differ per request when the rank test retains an extra dimension, so the
    output is not necessarily stackable).
    """
    stacked = np.asarray(bases, dtype=float)
    if stacked.ndim != 3:
        raise ValueError(f"bases must be a (G, n, m) stack, got shape {stacked.shape}")
    G, n, m = stacked.shape
    if eliminate is None:
        weights = np.sum(stacked * stacked, axis=2)
        return weights, [stacked[g] for g in range(G)]

    items = np.asarray(list(eliminate), dtype=int)
    if items.shape != (G,):
        raise ValueError(f"eliminate must give one row per basis, got {items.shape} for G={G}")
    current_tracker().charge(work=float(G) * n * m * m)
    rows = stacked[np.arange(G), items]                      # (G, m)
    norms = np.sqrt(np.sum(rows * rows, axis=1))
    if np.any(norms <= 0):
        raise RuntimeError("selected an element with zero residual norm")
    directions = rows / norms[:, None]
    coeff = np.matmul(stacked, directions[:, :, None])       # (G, n, 1)
    projected = stacked - coeff * directions[:, None, :]
    q, r = np.linalg.qr(projected)
    diag = np.abs(np.diagonal(r, axis1=1, axis2=2))          # (G, m)
    if m >= 1 and np.all(diag[:, :m - 1] > 1e-9) and np.all(diag[:, m - 1:] <= 1e-9):
        # Common case, fully vectorized: the collapsed dimension landed in
        # the last QR column for every member, so each kept basis is the
        # leading m-1 columns — identical values to the per-member loop
        # below (same columns, same per-slice reductions), just without G
        # rounds of Python bookkeeping.
        kept = q[:, :, :m - 1]
        return np.sum(kept * kept, axis=2), [kept[g] for g in range(G)]
    weights = np.empty((G, n), dtype=float)
    new_bases: List[np.ndarray] = []
    for g in range(G):
        keep = diag[g] > 1e-9
        if int(keep.sum()) < m - 1:
            # Unpivoted QR can hide a surviving dimension's mass in the upper
            # triangle when a leading column is nearly zero; pivoted QR
            # orders the diagonal by magnitude so the first m-1 columns are
            # exactly the surviving subspace (same fallback as the scalar
            # sampler used before this routine existed).
            from scipy.linalg import qr as _pivoted_qr

            q_g, _r_g, _perm = _pivoted_qr(projected[g], mode="economic", pivoting=True)
            basis = q_g[:, :m - 1]
        else:
            basis = q[g][:, keep]
        new_bases.append(basis)
        weights[g] = np.sum(basis * basis, axis=1)
    return weights, new_bases
