"""Polynomial interpolation via Vandermonde systems.

The Partition-DPP counting oracle [Cel+16, Cel+17] evaluates the generating
polynomial at grids of points (each evaluation is one determinant,
``det(L + diag(z))``) and recovers the coefficients by solving (multi-
dimensional) Vandermonde systems — linear algebra, hence ``NC``.  This module
implements the univariate and tensor-product multivariate solves.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.pram.tracker import current_tracker


def vandermonde_solve(nodes: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Solve ``V c = values`` where ``V[i, j] = nodes[i] ** j``.

    Returns the coefficient vector ``c`` (length ``len(nodes)``), i.e. the
    unique polynomial of degree ``< len(nodes)`` interpolating the values.
    """
    x = np.asarray(nodes, dtype=float).ravel()
    y = np.asarray(values, dtype=float).ravel()
    if x.size != y.size:
        raise ValueError("nodes and values must have equal length")
    if np.unique(x).size != x.size:
        raise ValueError("interpolation nodes must be distinct")
    vander = np.vander(x, increasing=True)
    current_tracker().charge(work=float(x.size) ** 3, machines=float(x.size))
    return np.linalg.solve(vander, y)


def univariate_coefficients_from_evaluations(evaluate: Callable[[float], float],
                                             degree: int,
                                             *, node_scale: float = 1.0) -> np.ndarray:
    """Coefficients of a degree-``degree`` polynomial from point evaluations.

    Uses Chebyshev-spaced nodes scaled by ``node_scale`` for conditioning; all
    ``degree + 1`` evaluations are charged as one batched oracle round.
    """
    if degree < 0:
        raise ValueError("degree must be nonnegative")
    m = degree + 1
    if m == 1:
        return np.array([float(evaluate(0.0))])
    # Chebyshev nodes mapped to [0, 2*node_scale]; strictly positive nodes keep
    # det(L + z I) well conditioned for PSD L.
    cheb = np.cos((2 * np.arange(m) + 1) * np.pi / (2 * m))
    nodes = node_scale * (cheb + 1.0) + node_scale * 1e-3
    tracker = current_tracker()
    with tracker.round("interpolation-evaluations"):
        values = np.array([evaluate(float(z)) for z in nodes])
    return vandermonde_solve(nodes, values)


def tensor_product_nodes(degrees: Sequence[int], *, node_scale: float = 1.0) -> list:
    """Chebyshev-spaced node sets for a tensor-product interpolation grid.

    ``degrees[i]`` is the maximum degree in variable ``i``; axis ``i`` gets
    ``degrees[i] + 1`` strictly positive nodes.
    """
    degs = [int(d) for d in degrees]
    if any(d < 0 for d in degs):
        raise ValueError("degrees must be nonnegative")
    node_sets = []
    for m in (d + 1 for d in degs):
        if m == 1:
            node_sets.append(np.array([node_scale]))
        else:
            cheb = np.cos((2 * np.arange(m) + 1) * np.pi / (2 * m))
            node_sets.append(node_scale * (cheb + 1.0) + node_scale * 1e-3)
    return node_sets


def tensor_vandermonde_solve(values: np.ndarray, node_sets: Sequence[np.ndarray]) -> np.ndarray:
    """Invert the tensor-product Vandermonde system one axis at a time.

    ``values`` has shape ``tuple(len(nodes) for nodes in node_sets)``; the
    result holds ``coeffs[a_1, ..., a_r]``, the coefficient of ``∏ z_i^{a_i}``.
    """
    tracker = current_tracker()
    coeffs = np.asarray(values, dtype=float)
    for axis, nodes in enumerate(node_sets):
        vander = np.vander(nodes, increasing=True)
        coeffs = np.moveaxis(coeffs, axis, 0)
        flat = coeffs.reshape(coeffs.shape[0], -1)
        solved = np.linalg.solve(vander, flat)
        coeffs = np.moveaxis(solved.reshape(coeffs.shape), 0, axis)
        tracker.charge(work=float(len(nodes)) ** 3, machines=float(flat.shape[1]))
    return coeffs


def multivariate_coefficients_from_evaluations(evaluate: Callable[[Sequence[float]], float],
                                               degrees: Sequence[int],
                                               *, node_scale: float = 1.0) -> np.ndarray:
    """Coefficients of a multivariate polynomial on a tensor-product grid.

    ``degrees[i]`` is the maximum degree in variable ``i``; the result is an
    array of shape ``tuple(d + 1 for d in degrees)`` with
    ``coeffs[a_1, ..., a_r]`` the coefficient of ``∏ z_i^{a_i}``.

    The number of variables is ``r = O(1)`` for Partition-DPPs, so the grid has
    ``∏ (degrees[i] + 1) = poly(n)`` points; all evaluations form one batched
    oracle round followed by ``r`` rounds of Vandermonde solves along each
    axis (constant depth overall).
    """
    node_sets = tensor_product_nodes(degrees, node_scale=node_scale)
    grid_shape = tuple(len(nodes) for nodes in node_sets)
    values = np.empty(grid_shape, dtype=float)
    tracker = current_tracker()
    with tracker.round("interpolation-evaluations"):
        for multi_index in np.ndindex(*grid_shape):
            point = [float(node_sets[axis][multi_index[axis]]) for axis in range(len(node_sets))]
            values[multi_index] = evaluate(point)
        tracker.charge(machines=float(values.size))
    return tensor_vandermonde_solve(values, node_sets)
