"""Determinants and batched principal minors.

Unnormalized DPP probabilities are principal minors ``det(L_{S,S})``; partition
functions are determinants like ``det(L + I)``.  This module provides:

* scalar determinants / log-determinants (depth-charged),
* :func:`principal_minor` for a single index subset,
* :func:`batched_principal_minors` which evaluates many principal minors of
  the *same size* in one vectorized ``slogdet`` call over a stacked array —
  this is the workhorse of one batched-oracle round.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square


def determinant(matrix: np.ndarray) -> float:
    """Determinant of a (possibly empty) square matrix, charged as one oracle call."""
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    current_tracker().charge_determinant(n)
    if n == 0:
        return 1.0
    return float(np.linalg.det(a))


def log_determinant(matrix: np.ndarray) -> Tuple[float, float]:
    """``(sign, logabsdet)`` of a square matrix (empty matrix -> ``(1, 0)``)."""
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    current_tracker().charge_determinant(n)
    if n == 0:
        return 1.0, 0.0
    sign, logabs = np.linalg.slogdet(a)
    return float(sign), float(logabs)


def principal_minor(matrix: np.ndarray, subset: Iterable[int]) -> float:
    """``det(M_{S,S})`` for the given index subset ``S`` (empty ``S`` -> 1)."""
    a = check_square(matrix, "matrix")
    idx = np.asarray(sorted(int(i) for i in subset), dtype=int)
    if idx.size == 0:
        current_tracker().charge_determinant(0)
        return 1.0
    if idx.min() < 0 or idx.max() >= a.shape[0]:
        raise ValueError(f"subset {idx.tolist()} out of range for matrix of size {a.shape[0]}")
    sub = a[np.ix_(idx, idx)]
    current_tracker().charge_determinant(idx.size)
    return float(np.linalg.det(sub))


def batched_principal_minors(matrix: np.ndarray, subsets: Sequence[Sequence[int]]) -> np.ndarray:
    """Determinants of many principal submatrices in one vectorized batch.

    All subsets must have the same cardinality ``m`` (pad/group by size at the
    call site); the result is an array of length ``len(subsets)``.  Charged as
    ``len(subsets)`` parallel oracle queries inside a single round.
    """
    a = check_square(matrix, "matrix")
    if len(subsets) == 0:
        return np.empty(0, dtype=float)
    sizes = {len(s) for s in subsets}
    if len(sizes) != 1:
        raise ValueError(f"all subsets must have equal size, got sizes {sorted(sizes)}")
    m = sizes.pop()
    tracker = current_tracker()
    if m == 0:
        tracker.charge_determinant(0, count=len(subsets))
        return np.ones(len(subsets), dtype=float)
    idx = np.asarray([sorted(int(i) for i in s) for s in subsets], dtype=int)
    if idx.min() < 0 or idx.max() >= a.shape[0]:
        raise ValueError("subset index out of range")
    # Build the stacked (batch, m, m) array of principal submatrices with fancy
    # indexing and evaluate all determinants in one LAPACK-batched call.
    stacked = a[idx[:, :, None], idx[:, None, :]]
    tracker.charge_determinant(m, count=len(subsets))
    return np.linalg.det(stacked)
