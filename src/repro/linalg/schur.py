"""Schur complements and DPP conditioning (Section 3.2 of the paper).

Conditioning a DPP with ensemble matrix ``L`` on the event ``Y ⊆ sample``
yields another DPP on the remaining ground set whose ensemble matrix is the
Schur complement

``L^Y = L_{~Y,~Y} - L_{~Y,Y} L_{Y,Y}^{-1} L_{Y,~Y}``        (paper, Sec. 3.2)

and similarly the marginal kernel of the conditioned process is obtained by a
Schur complement of ``I - K`` / ``K`` blocks.  These routines are used by every
sampler when a batch is accepted and the distribution must be updated.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square


def _split_indices(n: int, subset: Iterable[int]) -> Tuple[np.ndarray, np.ndarray]:
    inside = np.asarray(sorted(int(i) for i in subset), dtype=int)
    if inside.size and (inside.min() < 0 or inside.max() >= n):
        raise ValueError(f"subset {inside.tolist()} out of range for ground set of size {n}")
    mask = np.zeros(n, dtype=bool)
    mask[inside] = True
    outside = np.flatnonzero(~mask)
    return inside, outside


def schur_complement(matrix: np.ndarray, block: Iterable[int]) -> np.ndarray:
    """Schur complement of ``matrix`` with respect to the index ``block``.

    Returns ``M_{~B,~B} - M_{~B,B} M_{B,B}^{-1} M_{B,~B}`` indexed by the
    complement of ``block`` in their original (sorted) order.
    """
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    inside, outside = _split_indices(n, block)
    current_tracker().charge_determinant(n)
    if inside.size == 0:
        return a.copy()
    if outside.size == 0:
        return np.zeros((0, 0))
    a_bb = a[np.ix_(inside, inside)]
    a_ob = a[np.ix_(outside, inside)]
    a_bo = a[np.ix_(inside, outside)]
    a_oo = a[np.ix_(outside, outside)]
    solve = np.linalg.solve(a_bb, a_bo)
    return a_oo - a_ob @ solve


def condition_ensemble(L: np.ndarray, include: Iterable[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Ensemble matrix of the DPP conditioned on ``include ⊆ sample``.

    Returns ``(L_cond, remaining)`` where ``remaining`` maps rows/columns of
    ``L_cond`` back to the original ground-set labels.

    Raises
    ------
    ValueError
        If ``det(L_{Y,Y}) <= 0`` within tolerance, i.e. the conditioning event
        has probability zero.
    """
    a = check_square(L, "L")
    n = a.shape[0]
    inside, outside = _split_indices(n, include)
    if inside.size == 0:
        return a.copy(), outside
    block = a[np.ix_(inside, inside)]
    sign, logabs = np.linalg.slogdet(block)
    if sign <= 0:
        raise ValueError(
            "conditioning event has zero probability: det(L_{Y,Y}) <= 0 for Y="
            f"{inside.tolist()}"
        )
    cond = schur_complement(a, inside)
    return cond, outside


def condition_kernel(K: np.ndarray, include: Iterable[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Marginal kernel of a DPP conditioned on ``include ⊆ sample``.

    Uses the identity ``K^Y = K_{~Y,~Y} - K_{~Y,Y} (K_{Y,Y})^{-1} K_{Y,~Y}``
    applied to the *complement* formulation: conditioning a DPP with kernel
    ``K`` on containing ``Y`` gives kernel
    ``K' = K_{~Y,~Y} - K_{~Y,Y} K_{Y,Y}^{-1} K_{Y,~Y}`` **plus** the rank
    correction... to avoid sign pitfalls we go through the ensemble matrix:
    ``L = K (I - K)^{-1}``, condition, and convert back.  Matrices with
    eigenvalue 1 in ``K`` (elements contained almost surely) are handled by a
    small ridge.
    """
    k = check_square(K, "K")
    n = k.shape[0]
    inside, outside = _split_indices(n, include)
    if inside.size == 0:
        return k.copy(), outside
    eye = np.eye(n)
    ridge = 1e-12
    L = k @ np.linalg.inv(eye - k + ridge * eye)
    L_cond, remaining = condition_ensemble(L, inside)
    m = L_cond.shape[0]
    if m == 0:
        return np.zeros((0, 0)), remaining
    K_cond = L_cond @ np.linalg.inv(np.eye(m) + L_cond)
    return K_cond, remaining
