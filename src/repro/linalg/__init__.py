"""NC-flavoured linear algebra substrate.

The paper's counting oracles reduce to determinants, characteristic
polynomials, and Schur complements — all computable in ``NC`` [Csa75, Ber84].
This package implements those primitives with NumPy/SciPy (vectorized, batched
where possible) and exposes depth/work-aware wrappers that charge the PRAM
tracker.
"""

from repro.linalg.charpoly import faddeev_leverrier, char_poly_coefficients
from repro.linalg.determinant import (
    determinant,
    log_determinant,
    principal_minor,
    batched_principal_minors,
)
from repro.linalg.schur import schur_complement, condition_ensemble, condition_kernel
from repro.linalg.esp import elementary_symmetric_polynomials, esp_from_matrix
from repro.linalg.batch import (
    batched_esp,
    batched_schur_complements,
    grouped_log_principal_minors,
    grouped_principal_minors,
    lowrank_conditioned_gram,
    psd_factor,
    stacked_principal_submatrices,
)
from repro.linalg.updates import (
    KernelUpdate,
    cholesky_update,
    factor_from_eigh,
    rank_one_eigh_update,
    rank_one_kernel_update,
    symmetric_rank_one_terms,
)
from repro.linalg.interpolation import (
    vandermonde_solve,
    univariate_coefficients_from_evaluations,
    multivariate_coefficients_from_evaluations,
    tensor_product_nodes,
    tensor_vandermonde_solve,
)
from repro.linalg.psd import (
    is_psd,
    is_npsd,
    project_psd,
    random_orthogonal,
    symmetrize,
    psd_sqrt,
)

__all__ = [
    "faddeev_leverrier",
    "char_poly_coefficients",
    "determinant",
    "log_determinant",
    "principal_minor",
    "batched_principal_minors",
    "schur_complement",
    "condition_ensemble",
    "condition_kernel",
    "elementary_symmetric_polynomials",
    "esp_from_matrix",
    "batched_esp",
    "batched_schur_complements",
    "grouped_log_principal_minors",
    "grouped_principal_minors",
    "lowrank_conditioned_gram",
    "psd_factor",
    "stacked_principal_submatrices",
    "KernelUpdate",
    "cholesky_update",
    "factor_from_eigh",
    "rank_one_eigh_update",
    "rank_one_kernel_update",
    "symmetric_rank_one_terms",
    "vandermonde_solve",
    "univariate_coefficients_from_evaluations",
    "multivariate_coefficients_from_evaluations",
    "tensor_product_nodes",
    "tensor_vandermonde_solve",
    "is_psd",
    "is_npsd",
    "project_psd",
    "random_orthogonal",
    "symmetrize",
    "psd_sqrt",
]
