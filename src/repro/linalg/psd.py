"""PSD / nonsymmetric-PSD validation and construction helpers.

Definitions 3–5 of the paper: a symmetric DPP requires ``L ⪰ 0``; a
nonsymmetric DPP requires ``L + Lᵀ ⪰ 0`` (nPSD), which by [Gar+19, Lemma 1]
guarantees all principal minors are nonnegative.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_square

_DEFAULT_TOL = 1e-10


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """``(M + Mᵀ) / 2``."""
    a = check_square(matrix, "matrix")
    return 0.5 * (a + a.T)


def is_psd(matrix: np.ndarray, tol: float = _DEFAULT_TOL) -> bool:
    """True iff ``matrix`` is symmetric positive semidefinite (within ``tol``)."""
    a = check_square(matrix, "matrix")
    if a.shape[0] == 0:
        return True
    if not np.allclose(a, a.T, atol=max(tol, 1e-8) * max(1.0, np.abs(a).max())):
        return False
    eigenvalues = np.linalg.eigvalsh(symmetrize(a))
    scale = max(1.0, float(np.abs(eigenvalues).max()))
    return bool(eigenvalues.min() >= -tol * scale)


def is_npsd(matrix: np.ndarray, tol: float = _DEFAULT_TOL) -> bool:
    """True iff ``matrix + matrixᵀ ⪰ 0`` (the paper's nPSD condition, Def. 4)."""
    a = check_square(matrix, "matrix")
    if a.shape[0] == 0:
        return True
    eigenvalues = np.linalg.eigvalsh(a + a.T)
    scale = max(1.0, float(np.abs(eigenvalues).max()))
    return bool(eigenvalues.min() >= -tol * scale)


def project_psd(matrix: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Nearest PSD matrix (in Frobenius norm) to ``symmetrize(matrix)``.

    Eigenvalues are clipped at ``floor`` (use a small positive floor to obtain
    a strictly positive definite matrix).
    """
    a = symmetrize(matrix)
    if a.shape[0] == 0:
        return a
    eigenvalues, vectors = np.linalg.eigh(a)
    clipped = np.clip(eigenvalues, floor, None)
    return (vectors * clipped) @ vectors.T


def psd_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Symmetric PSD square root ``M^{1/2}``."""
    a = check_square(matrix, "matrix")
    if a.shape[0] == 0:
        return a
    if not is_psd(a, tol=1e-8):
        raise ValueError("psd_sqrt requires a symmetric PSD matrix")
    eigenvalues, vectors = np.linalg.eigh(symmetrize(a))
    clipped = np.clip(eigenvalues, 0.0, None)
    return (vectors * np.sqrt(clipped)) @ vectors.T


def random_orthogonal(n: int, seed: SeedLike = None) -> np.ndarray:
    """Haar-ish random orthogonal matrix via QR of a Gaussian matrix."""
    rng = as_generator(seed)
    if n == 0:
        return np.zeros((0, 0))
    gauss = rng.standard_normal((n, n))
    q, r = np.linalg.qr(gauss)
    # Fix the sign convention so the distribution is uniform over O(n).
    q = q * np.sign(np.diag(r))
    return q
