"""Incremental (rank-1 / low-rank) updates of kernel factorizations.

Real serving traffic mutates kernels — a recommender appends items, a
summarizer re-weights quality scores — and recomputing an ``n x n``
eigendecomposition per mutation costs ``O(n³)``.  This module makes each
mutation an ``O(n²)`` (dense) or ``O(n·k)`` (factor) *patch* instead:

* :func:`rank_one_eigh_update` — the secular-equation update of Bunch,
  Nielsen & Sorensen / Gu & Eisenstat: given ``A = V diag(d) Vᵀ``, the
  spectrum of ``A + ρ z zᵀ`` is found from the roots of the rational secular
  function ``f(λ) = 1 + ρ Σ w_j²/(d_j − λ)`` with ``w = Vᵀz``, and the new
  eigenvectors are a column transform of ``V`` — no fresh ``eigh``.
* :func:`symmetric_rank_one_terms` — splits the symmetrized outer-product
  update ``weight · (u vᵀ + v uᵀ)/2`` into at most two *symmetric* rank-1
  terms ``ρ z zᵀ`` so the secular machinery applies term by term.
* :func:`rank_one_kernel_update` — Sherman–Morrison patch of the marginal
  kernel ``K = L (I + L)⁻¹`` plus the matrix-determinant-lemma ratio for
  ``det(I + L)``.
* :func:`cholesky_update` — hyperbolic-rotation rank-1 up/downdate of a
  Cholesky factor (the Barthelmé–Tremblay–Amblard per-step trick, exposed
  here for callers that keep triangular factors).
* :func:`factor_from_eigh` — rebuilds the rank-revealing PSD factor from a
  patched eigenpair with exactly :func:`repro.linalg.batch.psd_factor`'s
  clipping/threshold semantics (minus the tracker charge — patches are
  serving-layer bookkeeping, not sampler rounds).
* :class:`KernelUpdate` — the serializable mutation descriptor the serving
  and cluster layers ship instead of full matrices (``rank_one`` for dense
  kinds, ``append_rows`` / ``delete_rows`` for ``LowRankKernel`` factors).

Relationship to :mod:`repro.linalg.schur`: Schur complements handle the
*conditioning* direction (fixing items in/out of a draw), these routines
handle the *additive* direction (mutating the kernel between draws); the
property tests exercise their agreement on updated-then-conditioned
ensembles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "KernelUpdate",
    "rank_one_eigh_update",
    "symmetric_rank_one_terms",
    "rank_one_kernel_update",
    "cholesky_update",
    "factor_from_eigh",
]

#: relative deflation / clustering tolerance for the secular update.
#: ``sqrt(eps)`` balances the two error sources: deflating a cluster commits
#: error bounded by its spread (``<= tol * scale``), while *not* deflating
#: amplifies roundoff by ``eps / gap`` in the eigenvector division — at a
#: gap of ``1e-10`` the undeflated path loses ~1e-6 of reconstruction
#: accuracy where deflation stays below 1e-12.
_DEFLATION_TOL = float(np.sqrt(np.finfo(float).eps))


def _frozen(a: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(np.asarray(a, dtype=float))
    if out is a:
        out = out.copy()
    out.flags.writeable = False
    return out


# --------------------------------------------------------------------------- #
# secular-equation eigen update
# --------------------------------------------------------------------------- #
def _deflate_clusters(d: np.ndarray, V: np.ndarray, w: np.ndarray,
                      tol: float) -> None:
    """Rotate each near-degenerate eigenvalue cluster's update weight.

    For a cluster of (numerically) equal ``d`` values, any orthogonal mix of
    the cluster's eigenvectors is still an eigenbasis, so a Householder
    reflection concentrates the cluster's whole ``w``-mass into its last
    member — the rest deflate exactly.  Mutates ``V`` and ``w`` in place;
    the committed error is bounded by the cluster's eigenvalue spread,
    itself below ``tol * scale``.
    """
    n = d.size
    scale = max(float(np.abs(d).max(initial=0.0)), 1.0)
    i = 0
    while i < n:
        j = i
        while j + 1 < n and d[j + 1] - d[j] <= tol * scale:
            j += 1
        if j > i:
            g = slice(i, j + 1)
            wg = w[g]
            norm = float(np.linalg.norm(wg))
            if norm > 0.0:
                h = wg.copy()
                h[-1] -= norm
                hn = float(h @ h)
                if hn > 0.0:
                    Vg = V[:, g]
                    V[:, g] = Vg - np.outer(Vg @ h, (2.0 / hn) * h)
                w[g] = 0.0
                w[j] = norm
        i = j + 1


def _secular_roots(d: np.ndarray, w2: np.ndarray, rho: float) -> np.ndarray:
    """All roots of ``f(λ) = 1 + ρ Σ w2_j/(d_j − λ)`` by safeguarded bisection.

    Interlacing gives one root per open interval — ``(d_i, d_{i+1})`` for
    ``ρ > 0`` with the last root in ``(d_m, d_m + ρ Σ w2)``, mirrored below
    for ``ρ < 0`` — and ``f`` is monotone on each, so bisection converges
    unconditionally; the loop runs to interval widths at the floating-point
    floor, which keeps the iteration count data-independent in practice.
    """
    m = d.size
    total = float(w2.sum())
    if rho > 0:
        lo = d.copy()
        hi = np.concatenate([d[1:], [d[-1] + rho * total]])
    else:
        lo = np.concatenate([[d[0] + rho * total], d[:-1]])
        hi = d.copy()
    sign = 1.0 if rho > 0 else -1.0
    span = np.maximum(np.abs(lo) + np.abs(hi), 1.0)
    eps = np.finfo(float).eps
    for _ in range(128):
        mid = 0.5 * (lo + hi)
        # f(mid) for every interval at once: (m, m) pole matrix
        diff = d[:, None] - mid[None, :]
        f = 1.0 + rho * (w2[:, None] / diff).sum(axis=0)
        grow = sign * f < 0.0
        lo = np.where(grow, mid, lo)
        hi = np.where(grow, hi, mid)
        if np.all(hi - lo <= 2.0 * eps * span):
            break
    return 0.5 * (lo + hi)


def _gu_eisenstat_weights(d: np.ndarray, lam: np.ndarray, rho: float) -> np.ndarray:
    """Recomputed update weights ``ŵ`` consistent with the computed roots.

    Evaluating ``ŵ_j² = Π_i (λ_i − d_j) / (ρ Π_{i≠j} (d_i − d_j))`` with the
    interlacing-aware pairing keeps every partial product ``O(1)`` (no
    overflow) and makes the eigenvectors computed from ``ŵ`` numerically
    orthogonal even for clustered spectra [Gu & Eisenstat '94].
    """
    m = d.size
    rows = np.arange(m)[:, None]
    cols = np.arange(m)[None, :]
    num = lam[:, None] - d[None, :]
    if rho > 0:
        # pair λ_i with d_i below the diagonal and d_{i+1} on/above it; the
        # final root λ_{m-1} (beyond d_{m-1}) pairs with ρ itself
        shifted = np.where(rows < cols, rows, np.minimum(rows + 1, m - 1))
        den = d[shifted] - d[cols]
        ratios = np.empty_like(num)
        ratios[:-1, :] = num[:-1, :] / den[:-1, :]
        ratios[-1, :] = num[-1, :] / rho
    else:
        shifted = np.where(rows > cols, rows, np.maximum(rows - 1, 0))
        den = d[shifted] - d[cols]
        ratios = np.empty_like(num)
        ratios[1:, :] = num[1:, :] / den[1:, :]
        ratios[0, :] = num[0, :] / rho
    w2 = np.prod(ratios, axis=0)
    return np.sqrt(np.clip(w2, 0.0, None))


def rank_one_eigh_update(eigenvalues: np.ndarray, eigenvectors: np.ndarray,
                         vector: np.ndarray, weight: float, *,
                         tol: float = _DEFLATION_TOL
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of ``A + weight · z zᵀ`` from that of ``A``.

    ``eigenvalues`` must be ascending with ``eigenvectors`` the matching
    orthonormal columns (the :func:`numpy.linalg.eigh` contract).  Returns a
    fresh ascending ``(eigenvalues, eigenvectors)`` pair; the inputs are not
    modified.  Cost is ``O(n²)`` plus one ``n x n`` by ``n x m`` product for
    the eigenvector transform — never a fresh ``O(n³)`` ``eigh``.

    Components with ``|w_j| = |(Vᵀz)_j|`` below ``tol·‖z‖`` deflate (their
    eigenpairs pass through unchanged), as do all but one member of each
    eigenvalue cluster tighter than ``tol·scale`` — both standard moves of
    the secular method, each committing error bounded by ``tol``.
    """
    d = np.asarray(eigenvalues, dtype=float)
    V = np.asarray(eigenvectors, dtype=float)
    z = np.asarray(vector, dtype=float).reshape(-1)
    n = d.size
    if V.shape != (n, n) or z.size != n:
        raise ValueError(
            f"shape mismatch: eigenvalues {d.shape}, eigenvectors {V.shape}, "
            f"vector {z.shape}")
    rho = float(weight)
    znorm = float(np.linalg.norm(z))
    if n == 0 or rho == 0.0 or znorm == 0.0:
        return d.copy(), V.copy()
    if np.any(np.diff(d) < 0):
        raise ValueError("eigenvalues must be ascending (numpy.linalg.eigh order)")

    V = V.copy()
    w = V.T @ z
    _deflate_clusters(d, V, w, tol)
    active = np.abs(w) > tol * max(znorm, 1.0)
    if not np.any(active):
        return d.copy(), V

    d_act = d[active]
    w_act = w[active]
    lam = _secular_roots(d_act, w_act * w_act, rho)
    # recomputed magnitudes carry no sign (the secular function only sees
    # w²); the eigenvector formula needs the original signs back
    w_hat = np.copysign(_gu_eisenstat_weights(d_act, lam, rho), w_act)

    # eigenvectors of diag(d) + ρ w wᵀ: u_i ∝ (ŵ_j / (d_j − λ_i))_j
    denom = d_act[:, None] - lam[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        U = w_hat[:, None] / denom
    bad = ~np.isfinite(U)
    if np.any(bad):
        U[bad] = 0.0
    norms = np.linalg.norm(U, axis=0)
    degenerate = norms <= 0.0
    if np.any(degenerate):
        # a root collapsed onto its pole (fully deflatable component that
        # survived the threshold): the eigenvector is the pole's own axis
        for i in np.nonzero(degenerate)[0]:
            U[np.argmin(np.abs(denom[:, i])), i] = 1.0
        norms = np.linalg.norm(U, axis=0)
    U /= norms

    new_d = np.concatenate([d[~active], lam])
    new_V = np.concatenate([V[:, ~active], V[:, active] @ U], axis=1)
    order = np.argsort(new_d, kind="stable")
    return new_d[order], new_V[:, order]


def symmetric_rank_one_terms(u: np.ndarray, v: Optional[np.ndarray] = None,
                             weight: float = 1.0
                             ) -> Tuple[Tuple[np.ndarray, float], ...]:
    """Symmetric rank-1 terms ``(z, ρ)`` summing to ``weight · sym(u vᵀ)``.

    ``v=None`` means the pure rank-1 update ``weight · u uᵀ`` (one term);
    otherwise ``weight · (u vᵀ + v uᵀ)/2 = weight·(p pᵀ − q qᵀ)`` with
    ``p = (u+v)/2`` and ``q = (u−v)/2`` (at most two terms).  Zero-weight
    and zero-vector terms are dropped.
    """
    u = np.asarray(u, dtype=float).reshape(-1)
    w = float(weight)
    if w == 0.0:
        return ()
    if v is None:
        return ((u.copy(), w),) if np.any(u) else ()
    v = np.asarray(v, dtype=float).reshape(-1)
    if v.shape != u.shape:
        raise ValueError(f"u and v must match: {u.shape} vs {v.shape}")
    p = 0.5 * (u + v)
    q = 0.5 * (u - v)
    terms = []
    if np.any(p):
        terms.append((p, w))
    if np.any(q):
        terms.append((q, -w))
    return tuple(terms)


def rank_one_kernel_update(kernel: np.ndarray, u: np.ndarray,
                           v: Optional[np.ndarray] = None,
                           weight: float = 1.0) -> Tuple[np.ndarray, float]:
    """Patch ``K = L (I + L)⁻¹`` after ``L += weight · u vᵀ``; returns ``(K', r)``.

    Sherman–Morrison on ``M = (I + L)⁻¹ = I − K`` gives
    ``K' = K + weight · (M u)(vᵀ M) / r`` with ``r = 1 + weight · vᵀ M u`` —
    ``r`` is also the matrix-determinant-lemma ratio
    ``det(I + L') / det(I + L)``.  Raises when the update makes ``I + L``
    (numerically) singular, i.e. the mutated ensemble stops being a DPP.
    """
    K = np.asarray(kernel, dtype=float)
    u = np.asarray(u, dtype=float).reshape(-1)
    v = u if v is None else np.asarray(v, dtype=float).reshape(-1)
    n = K.shape[0]
    if K.shape != (n, n) or u.size != n or v.size != n:
        raise ValueError(
            f"shape mismatch: kernel {K.shape}, u {u.shape}, v {v.shape}")
    w = float(weight)
    if w == 0.0:
        return K.copy(), 1.0
    Mu = u - K @ u
    vM = v - v @ K
    ratio = 1.0 + w * float(v @ Mu)
    if not np.isfinite(ratio) or abs(ratio) <= 1e-14 * max(1.0, abs(w) * float(v @ v)):
        raise ValueError(
            "rank-1 update makes I + L numerically singular: the mutated "
            "ensemble no longer defines a DPP")
    return K + np.outer(Mu, vM) * (w / ratio), ratio


def cholesky_update(chol: np.ndarray, vector: np.ndarray,
                    weight: float = 1.0) -> np.ndarray:
    """Lower Cholesky factor of ``A + weight · z zᵀ`` from that of ``A``.

    Classic ``O(n²)`` Givens (``weight > 0``) / hyperbolic (``weight < 0``)
    rotation sweep.  Downdates raise :class:`ValueError` when the result is
    not positive definite.  The input factor is not modified.
    """
    L = np.asarray(chol, dtype=float).copy()
    n = L.shape[0]
    z = np.asarray(vector, dtype=float).reshape(-1)
    if L.shape != (n, n) or z.size != n:
        raise ValueError(f"shape mismatch: chol {L.shape}, vector {z.shape}")
    w = float(weight)
    if w == 0.0 or not np.any(z):
        return L
    x = z * np.sqrt(abs(w))
    down = w < 0.0
    for k in range(n):
        lkk = L[k, k]
        if lkk <= 0.0:
            raise ValueError("chol must be a lower Cholesky factor with a "
                             "positive diagonal")
        if down:
            r2 = lkk * lkk - x[k] * x[k]
            if r2 <= 0.0:
                raise ValueError(
                    "rank-1 downdate leaves the matrix indefinite")
            r = np.sqrt(r2)
        else:
            r = np.hypot(lkk, x[k])
        c = r / lkk
        s = x[k] / lkk
        L[k, k] = r
        if k + 1 < n:
            if down:
                L[k + 1:, k] = (L[k + 1:, k] - s * x[k + 1:]) / c
                x[k + 1:] = c * x[k + 1:] - s * L[k + 1:, k]
            else:
                L[k + 1:, k] = (L[k + 1:, k] + s * x[k + 1:]) / c
                x[k + 1:] = c * x[k + 1:] - s * L[k + 1:, k]
    return L


def factor_from_eigh(eigenvalues: np.ndarray, eigenvectors: np.ndarray, *,
                     tol: float = 1e-12) -> np.ndarray:
    """Rank-revealing ``B`` with ``L ≈ B Bᵀ`` from an (updated) eigenpair.

    Applies exactly :func:`repro.linalg.batch.psd_factor`'s post-``eigh``
    clipping and ``tol·λmax`` rank threshold so a factor rebuilt from a
    secular-patched spectrum matches what a cold ``psd_factor`` of the
    mutated ensemble computes, up to the patch's own rounding.
    """
    lam = np.clip(np.asarray(eigenvalues, dtype=float), 0.0, None)
    vec = np.asarray(eigenvectors, dtype=float)
    n = lam.size
    if n == 0:
        return np.zeros((0, 0))
    top = float(lam.max(initial=0.0))
    keep = lam > tol * max(top, 1.0) if top > 0 else np.zeros(n, dtype=bool)
    if not np.any(keep):
        return np.zeros((n, 0))
    return vec[:, keep] * np.sqrt(lam[keep])


# --------------------------------------------------------------------------- #
# the serializable mutation descriptor
# --------------------------------------------------------------------------- #
#: kernel kinds a given op may be applied to
_OP_KINDS = {
    "rank_one": ("symmetric", "nonsymmetric"),
    "append_rows": ("lowrank",),
    "delete_rows": ("lowrank",),
}


@dataclass(frozen=True)
class KernelUpdate:
    """One incremental kernel mutation, shippable as a delta.

    Construct through the classmethods — they validate, copy and freeze the
    payload arrays:

    * :meth:`rank_one` — dense kinds: ``L += weight · u uᵀ`` (``v=None``),
      ``weight · (u vᵀ + v uᵀ)/2`` (symmetric) or ``weight · u vᵀ``
      (nonsymmetric).
    * :meth:`append_rows` — ``lowrank``: new factor rows (ground-set items).
    * :meth:`delete_rows` — ``lowrank``: drop factor rows by index.

    The payload is ``O(n)``/``O(m·k)`` — this is what the cluster ships in
    place of a full ``n x n`` (or ``n x k``) re-registration, and what the
    fingerprint chain (:func:`repro.utils.fingerprint.chain_fingerprint`)
    digests to derive the mutated kernel's cache identity without the
    mutated matrix.
    """

    op: str
    u: Optional[np.ndarray] = None
    v: Optional[np.ndarray] = None
    weight: float = 1.0
    rows: Optional[np.ndarray] = None
    indices: Tuple[int, ...] = field(default=())

    # ------------------------------------------------------------------ #
    @classmethod
    def rank_one(cls, u: np.ndarray, v: Optional[np.ndarray] = None, *,
                 weight: float = 1.0) -> "KernelUpdate":
        uu = _frozen(np.asarray(u, dtype=float).reshape(-1))
        vv = None
        if v is not None:
            vv = _frozen(np.asarray(v, dtype=float).reshape(-1))
            if vv.shape != uu.shape:
                raise ValueError(f"u and v must match: {uu.shape} vs {vv.shape}")
        return cls(op="rank_one", u=uu, v=vv, weight=float(weight))

    @classmethod
    def append_rows(cls, rows: np.ndarray) -> "KernelUpdate":
        arr = np.asarray(rows, dtype=float)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValueError(f"rows must be a nonempty (m, k) array, got {arr.shape}")
        return cls(op="append_rows", rows=_frozen(arr))

    @classmethod
    def delete_rows(cls, indices: Sequence[int]) -> "KernelUpdate":
        idx = tuple(int(i) for i in indices)
        if not idx:
            raise ValueError("delete_rows needs at least one index")
        if len(set(idx)) != len(idx):
            raise ValueError(f"duplicate delete indices: {sorted(idx)}")
        return cls(op="delete_rows", indices=idx)

    # ------------------------------------------------------------------ #
    def arrays(self) -> Tuple[np.ndarray, ...]:
        """The update's array payload, in a deterministic order (for digests)."""
        out = []
        for a in (self.u, self.v, self.rows):
            if a is not None:
                out.append(a)
        return tuple(out)

    def signature(self) -> Tuple[object, ...]:
        """Scalar identity of the update (joined with :meth:`arrays` in digests)."""
        return (self.op, repr(self.weight), self.indices)

    @property
    def delta_nbytes(self) -> int:
        """Bytes of array payload — the delta the cluster ships over the wire."""
        return sum(a.nbytes for a in self.arrays())

    def chained_fingerprint(self, previous: str) -> str:
        """Fingerprint of the kernel this update derives from ``previous``.

        Computable by anyone holding the predecessor's fingerprint and the
        delta — a cluster client derives the expected post-update identity
        of every replica without ever seeing the mutated matrix.
        """
        from repro.utils.fingerprint import chain_fingerprint

        return chain_fingerprint(previous, *self.arrays(), extra=self.signature())

    # ------------------------------------------------------------------ #
    def validate_for(self, kind: str, n: int) -> None:
        """Raise unless this update applies to a ``kind`` kernel of order ``n``."""
        allowed = _OP_KINDS.get(self.op)
        if allowed is None:
            raise ValueError(f"unknown update op {self.op!r}")
        if kind not in allowed:
            raise ValueError(
                f"update op {self.op!r} does not apply to kind={kind!r} "
                f"(supported: {', '.join(allowed)})")
        if self.op == "rank_one":
            if self.u is None or self.u.size != n:
                got = None if self.u is None else self.u.size
                raise ValueError(f"rank_one vector length {got} != kernel order {n}")
        elif self.op == "delete_rows":
            bad = [i for i in self.indices if not 0 <= i < n]
            if bad:
                raise ValueError(f"delete indices {bad} out of range for n={n}")
            if len(self.indices) >= n:
                raise ValueError("cannot delete every row of a kernel")

    def rank_one_terms(self, kind: str) -> Tuple[Tuple[np.ndarray, float], ...]:
        """The symmetric rank-1 terms a dense patch applies sequentially.

        Symmetric kernels receive the *symmetrized* update (so they stay
        symmetric); nonsymmetric kernels receive ``weight · u vᵀ`` literally
        (one general term, encoded as ``(u, v, weight)``).
        """
        if self.op != "rank_one":
            raise ValueError(f"op {self.op!r} has no rank-1 terms")
        if kind == "symmetric":
            return symmetric_rank_one_terms(self.u, self.v, self.weight)
        raise ValueError(f"rank_one_terms is for symmetric kernels, got {kind!r}")

    def apply(self, matrix: np.ndarray, kind: str) -> np.ndarray:
        """The mutated matrix (dense ensemble or low-rank factor), frozen.

        This is the *content* ground truth every patched artifact must agree
        with — ``updated_entry`` installs exactly this array so a cold
        re-registration of the result reproduces the served kernel bitwise.
        """
        self.validate_for(kind, matrix.shape[0])
        if self.op == "rank_one":
            out = np.array(matrix, dtype=float, copy=True)
            if kind == "symmetric":
                for z, rho in self.rank_one_terms(kind):
                    out += rho * np.outer(z, z)
            else:
                v = self.u if self.v is None else self.v
                out += self.weight * np.outer(self.u, v)
        elif self.op == "append_rows":
            if self.rows.shape[1] != matrix.shape[1]:
                raise ValueError(
                    f"appended rows have {self.rows.shape[1]} columns, factor "
                    f"has {matrix.shape[1]}")
            out = np.concatenate([matrix, self.rows], axis=0)
        else:  # delete_rows
            out = np.delete(matrix, list(self.indices), axis=0)
        return _frozen(out)
