"""Elementary symmetric polynomials (ESPs).

The k-DPP partition function is ``e_k(λ_1, ..., λ_n)``, the k-th elementary
symmetric polynomial of the ensemble matrix's eigenvalues [KT12b].  ESPs also
appear in the size distribution of an unconstrained DPP and in the
polynomial-interpolation counting oracle for Partition-DPPs [Cel+16].

We compute them with the standard stable dynamic program (equivalent to
expanding ``∏ (1 + λ_i t)``) and, as an ``NC``-flavoured alternative, from the
characteristic polynomial of the matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.charpoly import char_poly_coefficients
from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square


def elementary_symmetric_polynomials(values: np.ndarray, max_order: Optional[int] = None) -> np.ndarray:
    """All ESPs ``e_0, ..., e_m`` of ``values`` (``m = max_order`` or ``len(values)``).

    Uses the O(n·m) dynamic program ``e_j <- e_j + x * e_{j-1}``, which is the
    coefficient recurrence of ``∏ (1 + x_i t)`` and is numerically stable for
    nonnegative inputs.
    """
    vals = np.asarray(values, dtype=float).ravel()
    n = vals.size
    m = n if max_order is None else int(max_order)
    if m < 0:
        raise ValueError("max_order must be nonnegative")
    m = min(m, n) if max_order is None else m
    esp = np.zeros(m + 1, dtype=float)
    esp[0] = 1.0
    limit = min(m, n)
    for x in vals:
        upper = limit
        # reverse order so each e_j uses the previous iteration's e_{j-1}
        esp[1:upper + 1] = esp[1:upper + 1] + x * esp[0:upper]
    return esp


def esp_from_matrix(matrix: np.ndarray, max_order: Optional[int] = None,
                    method: str = "eigenvalues") -> np.ndarray:
    """ESPs of the eigenvalues of ``matrix``.

    Parameters
    ----------
    method:
        ``"eigenvalues"`` (default, eigh/eig then the stable DP) or
        ``"charpoly"`` (read ESPs off the characteristic polynomial,
        ``e_j = (-1)^j c_j`` — the genuinely NC route, used for cross-checks).
    """
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    current_tracker().charge_determinant(n)
    if method == "charpoly":
        coeffs = char_poly_coefficients(a)
        esp = np.array([(-1.0) ** j * coeffs[j] for j in range(n + 1)])
    elif method == "eigenvalues":
        if n == 0:
            esp = np.array([1.0])
        else:
            if np.allclose(a, a.T):
                eigenvalues = np.linalg.eigvalsh(a)
            else:
                eigenvalues = np.real_if_close(np.linalg.eigvals(a))
            esp = elementary_symmetric_polynomials(np.real(eigenvalues))
    else:
        raise ValueError(f"unknown method {method!r}")
    if max_order is not None:
        if max_order + 1 <= esp.size:
            return esp[: max_order + 1]
        return np.concatenate([esp, np.zeros(max_order + 1 - esp.size)])
    return esp
