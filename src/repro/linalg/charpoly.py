"""Characteristic polynomials in the spirit of Csanky / Faddeev–LeVerrier.

Csanky [Csa75] showed determinants (and hence all our partition functions) are
computable in ``NC``.  The textbook sequential analogue with the same
algebraic structure is the Faddeev–LeVerrier recurrence, which computes the
characteristic polynomial

``det(tI - A) = t^n + c_{n-1} t^{n-1} + ... + c_0``

using only matrix products and traces — exactly the primitives that
parallelize to polylog depth.  We use it both as a reference implementation
(cross-checked against ``numpy.poly`` in tests) and to extract elementary
symmetric polynomials of eigenvalues for the k-DPP oracle.
"""

from __future__ import annotations

import numpy as np

from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square


def faddeev_leverrier(matrix: np.ndarray) -> np.ndarray:
    """Coefficients of ``det(tI - A)`` by the Faddeev–LeVerrier recurrence.

    Returns
    -------
    numpy.ndarray
        Array ``c`` of length ``n + 1`` with ``c[0] = 1`` (coefficient of
        ``t^n``) down to ``c[n] = (-1)^n det(A)`` (constant coefficient), i.e.
        the same convention as :func:`numpy.poly`.
    """
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    tracker = current_tracker()
    tracker.charge_determinant(n)

    coeffs = np.empty(n + 1, dtype=float)
    coeffs[0] = 1.0
    m = np.zeros_like(a)
    identity = np.eye(n)
    for k in range(1, n + 1):
        m = a @ m + coeffs[k - 1] * identity
        coeffs[k] = -np.trace(a @ m) / k
    return coeffs


def char_poly_coefficients(matrix: np.ndarray) -> np.ndarray:
    """Characteristic-polynomial coefficients, choosing the stabler backend.

    For well-conditioned small matrices the Faddeev–LeVerrier recurrence is
    exact in exact arithmetic but can lose digits for ``n`` beyond a few tens;
    we therefore compute eigenvalues (Schur form via LAPACK — also an
    ``NC``-parallelizable computation through the characteristic polynomial)
    and expand the monic polynomial from its roots, which is numerically much
    better behaved.  Tests cross-check both paths.
    """
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    tracker = current_tracker()
    tracker.charge_determinant(n)
    if n == 0:
        return np.array([1.0])
    eigenvalues = np.linalg.eigvals(a)
    coeffs = np.atleast_1d(np.poly(eigenvalues))
    return np.real_if_close(coeffs, tol=1e6).astype(float)
