"""CLI entry point: ``python -m repro.analysis src benchmarks``.

Exit codes: ``0`` clean, ``1`` violations (or scan errors), ``2`` usage /
internal error — the contract CI's ``analysis`` job gates on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.checker import ALL_RULES, check_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("determinism & concurrency invariant checker: "
                     "R1 determinism, R2 lock discipline, R3 shipping "
                     "contract, R4 export hygiene"),
    )
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directory trees to scan (e.g. src benchmarks)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the machine-readable report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-violation lines; summary only")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2
    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.summary}")
        print("P0: pragma hygiene: every `# repro: allow[...]` carries a "
              "justification and suppresses at least one finding")
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    try:
        report = check_paths(options.paths)
    except Exception as exc:  # pragma: no cover - internal-error guard
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if options.json:
        try:
            with open(options.json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write {options.json}: {exc}", file=sys.stderr)
            return 2
    if options.quiet:
        lines = report.render().splitlines()
        print(lines[-1])
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
