"""R3 — shipping contract: ``worker_payload`` round-trips statically.

The process backend and the cluster tier rebuild distributions on the far
side of a pickle/socket boundary from ``worker_payload()`` (producing
``(arrays, params)`` dicts) via ``from_worker_payload(arrays, params)``.
A key mismatch between the two — a renamed array, a param consumed but never
shipped — corrupts samples only under the process backend, and only for the
distribution class that drifted, which is exactly the kind of bug seed tests
on the default backend never see.

R3 requires, for every class on which ``worker_payload`` is visible (own or
via same-module bases):

* a visible ``from_worker_payload`` (and an ``oracle_cost_hint``, so the
  planner can price the round);
* every payload key *consumed* by ``from_worker_payload`` (string subscript
  reads, ``.get("k")``, ``"k" in x`` membership probes) to be *produced*
  somewhere in ``worker_payload`` — dict-literal keys, ``d["k"] = ...``
  assignments, or the keys of a visible ``self._helper()`` the return
  statement delegates to.  Extra produced keys are fine — consumers may
  ignore warm artifacts; consuming a key that is never produced is the bug.

Mixins are checked through their subclasses: a class that is itself
subclassed in the module and lacks half the contract is skipped (its
concrete subclasses carry the obligation).  Dynamic payload construction
(``**spread``, computed keys, delegation to unresolvable callables) makes a
class opaque to the key check; method-presence requirements still apply.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Union

from repro.analysis.report import Violation
from repro.analysis.rulebase import Rule, RuleContext, dotted_name

__all__ = ["ShippingContractRule"]

#: either flavor of method definition (bodies are walked identically)
_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _own_methods(cls: ast.ClassDef) -> Dict[str, _FuncDef]:
    return {stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _resolved_methods(cls: ast.ClassDef,
                      module_classes: Dict[str, ast.ClassDef]) -> Dict[str, _FuncDef]:
    """Methods visible on ``cls`` (name -> def), subclass definitions winning."""
    resolved: Dict[str, _FuncDef] = {}
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id in module_classes:
            base_cls = module_classes[base.id]
            if base_cls is not cls:
                resolved.update(_resolved_methods(base_cls, module_classes))
    resolved.update(_own_methods(cls))
    return resolved


def _produced_keys(func: _FuncDef, methods: Dict[str, _FuncDef],
                   seen: Set[str]) -> Optional[Set[str]]:
    """String keys the payload builder emits; ``None`` when dynamic/opaque."""
    keys: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
                elif key is None:
                    return None  # ``**spread`` — opaque
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    if (isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)):
                        keys.add(target.slice.value)
                    else:
                        return None  # computed key — opaque
        elif isinstance(node, ast.Return) and node.value is not None:
            components = (node.value.elts if isinstance(node.value, ast.Tuple)
                          else [node.value])
            for component in components:
                if isinstance(component, (ast.Dict, ast.Name, ast.Constant)):
                    continue  # literals counted above; names built via writes
                if isinstance(component, ast.Call):
                    name = dotted_name(component.func)
                    parts = name.split(".") if name else []
                    if (len(parts) == 2 and parts[0] in ("self", "cls")
                            and parts[1] in methods and parts[1] not in seen):
                        sub = _produced_keys(methods[parts[1]], methods,
                                             seen | {parts[1]})
                        if sub is None:
                            return None
                        keys |= sub
                        continue
                return None  # delegation we cannot resolve — opaque
    return keys


def _consumed_keys(func: _FuncDef) -> Iterator[ast.AST]:
    """Yield one node per string payload-key consumption site."""
    for node in ast.walk(func):
        if (isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            yield node
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
              and node.func.attr == "get" and node.args
              and isinstance(node.args[0], ast.Constant)
              and isinstance(node.args[0].value, str)):
            yield node
        elif (isinstance(node, ast.Compare) and len(node.ops) == 1
              and isinstance(node.ops[0], (ast.In, ast.NotIn))
              and isinstance(node.left, ast.Constant)
              and isinstance(node.left.value, str)):
            yield node


def _key_of(node: ast.AST) -> str:
    # shapes guaranteed by _consumed_keys; the isinstance chains re-narrow
    if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Constant):
        return str(node.slice.value)
    if isinstance(node, ast.Call) and isinstance(node.args[0], ast.Constant):
        return str(node.args[0].value)
    if isinstance(node, ast.Compare) and isinstance(node.left, ast.Constant):
        return str(node.left.value)
    raise AssertionError(f"unexpected consumption site {ast.dump(node)}")


class ShippingContractRule(Rule):
    id = "R3"
    summary = ("shipping contract: worker_payload implies from_worker_payload "
               "+ oracle_cost_hint with statically consistent payload keys")

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        module_classes = {node.name: node for node in ctx.tree.body
                          if isinstance(node, ast.ClassDef)}
        subclassed: Set[str] = set()
        for cls in module_classes.values():
            for base in cls.bases:
                if isinstance(base, ast.Name) and base.id in module_classes:
                    subclassed.add(base.id)
        for cls in module_classes.values():
            methods = _resolved_methods(cls, module_classes)
            payload = methods.get("worker_payload")
            if payload is None:
                continue
            incomplete = ("from_worker_payload" not in methods
                          or "oracle_cost_hint" not in methods)
            if incomplete and cls.name in subclassed:
                continue  # mixin/abstract half — its subclasses carry the contract
            if "from_worker_payload" not in methods:
                yield ctx.violation(
                    self.id, "missing-from-worker-payload", cls,
                    f"{cls.name} defines worker_payload but no "
                    "from_worker_payload: the process backend cannot rebuild "
                    "it on the far side of the pickle boundary")
            if "oracle_cost_hint" not in methods:
                yield ctx.violation(
                    self.id, "missing-oracle-cost-hint", cls,
                    f"{cls.name} defines worker_payload but no "
                    "oracle_cost_hint: backend='auto' cannot price its "
                    "rounds, so planner choices become arbitrary")
            rebuild = methods.get("from_worker_payload")
            if rebuild is None or rebuild.name != "from_worker_payload":
                continue
            produced = _produced_keys(payload, methods, {"worker_payload"})
            if produced is None:
                continue  # dynamic construction — opaque to the static check
            for site in _consumed_keys(rebuild):
                key = _key_of(site)
                if key not in produced:
                    yield ctx.violation(
                        self.id, "payload-key-mismatch", site,
                        f"{cls.name}.from_worker_payload consumes payload key "
                        f"{key!r} which {cls.name}.worker_payload never "
                        f"produces (produced: {sorted(produced)})")
