"""The checker driver: walk files, run rules, apply pragmas, build the report."""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.determinism import DeterminismRule
from repro.analysis.exports import ExportHygieneRule
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.pragmas import Pragma, collect_pragmas
from repro.analysis.report import AnalysisReport, Violation
from repro.analysis.rulebase import Rule, RuleContext
from repro.analysis.shipping import ShippingContractRule

__all__ = ["ALL_RULES", "check_source", "check_paths", "iter_python_files"]

#: default rule set, in report order
ALL_RULES: Sequence[Rule] = (
    DeterminismRule(),
    LockDisciplineRule(),
    ShippingContractRule(),
    ExportHygieneRule(),
)

#: directory names never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".pytest_cache", "node_modules"}


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` walk."""
    seen: Set[str] = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                collected.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if full not in seen:
                    seen.add(full)
                    collected.append(full)
    return iter(sorted(collected))


def _in_repro(path: str) -> bool:
    """Whether ``path`` is library code under ``src/repro`` (R1's scope)."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    for index, part in enumerate(parts[:-1]):
        if part == "src" and parts[index + 1] == "repro":
            return True
    return False


def check_source(source: str, path: str = "<string>", *,
                 in_repro: Optional[bool] = None,
                 rules: Optional[Sequence[Rule]] = None,
                 report: Optional[AnalysisReport] = None) -> AnalysisReport:
    """Run the rule set over one source string, applying pragmas.

    ``in_repro`` defaults to path inspection; fixture tests force it so R1
    fires on temp-dir snippets.  Pass ``report`` to accumulate across files.
    """
    if report is None:
        report = AnalysisReport()
    if in_repro is None:
        in_repro = _in_repro(path)
    if rules is None:
        rules = ALL_RULES
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
        return report
    ctx = RuleContext(path=path, source=source, tree=tree, in_repro=in_repro)
    pragma_table = collect_pragmas(source)
    all_pragmas: List[Pragma] = [p for plist in pragma_table.values() for p in plist]
    report.pragmas_seen += len(all_pragmas)
    report.files_scanned += 1

    for rule in rules:
        for violation in rule.check(ctx):
            if violation.suppressible and _suppressed(violation, pragma_table):
                continue
            report.violations.append(violation)

    for pragma in all_pragmas:
        if not pragma.justified:
            report.violations.append(Violation(
                rule="P0", code="unjustified-pragma", path=path,
                line=pragma.line, col=0,
                message=("pragma without justification: write "
                         "`# repro: allow[...] -- <why this is safe>`"),
                snippet=ctx.snippet(pragma.line), suppressible=False))
        elif not pragma.used:
            report.violations.append(Violation(
                rule="P0", code="unused-pragma", path=path,
                line=pragma.line, col=0,
                message=(f"pragma allow[{', '.join(pragma.rules)}] suppresses "
                         "nothing: stale allowlist entries hide future "
                         "regressions — delete it"),
                snippet=ctx.snippet(pragma.line), suppressible=False))
        else:
            report.pragmas_used += 1
    return report


def _suppressed(violation: Violation,
                pragma_table: Dict[int, List[Pragma]]) -> bool:
    for pragma in pragma_table.get(violation.line, []):
        if pragma.covers(violation.rule, violation.code):
            if pragma.justified:
                pragma.used = True
                return True
            pragma.used = True  # counted used, but P0[unjustified] still fires
            return False
    return False


def check_paths(paths: Iterable[str], *,
                rules: Optional[Sequence[Rule]] = None) -> AnalysisReport:
    """Run the checker over files and directory trees."""
    report = AnalysisReport()
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.errors.append(f"{path}: unreadable: {exc}")
            continue
        check_source(source, path, rules=rules, report=report)
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.code))
    return report
