"""Shared rule plumbing: the per-file context and small AST helpers."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.report import Violation

__all__ = ["RuleContext", "Rule", "dotted_name", "import_aliases", "self_attr"]


@dataclass
class RuleContext:
    """Everything a rule needs to check one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    #: whether this file is library code under ``src/repro`` (R1's scope)
    in_repro: bool = True
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def violation(self, rule: str, code: str, node: ast.AST, message: str,
                  *, suppressible: bool = True) -> Violation:
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        return Violation(rule=rule, code=code, path=self.path, line=line,
                         col=col, message=message, snippet=self.snippet(line),
                         suppressible=suppressible)


class Rule:
    """One named check over a parsed module; subclasses yield violations."""

    #: rule family id ("R1" .. "R4")
    id: str = ""
    #: one-line description for ``--list-rules``
    summary: str = ""

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        raise NotImplementedError


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object path they refer to.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy.random import default_rng as rng`` ->
    ``{"rng": "numpy.random.default_rng"}``.  Only top-level and
    function/class-nested imports are collected (all of them — the walk is
    over the whole tree).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else ``None``."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def resolve(aliases: Dict[str, str], dotted: str) -> str:
    """Rewrite the leading segment of ``dotted`` through the alias table."""
    head, _, rest = dotted.partition(".")
    base = aliases.get(head, head)
    return f"{base}.{rest}" if rest else base


def literal_str_keys(node: ast.Dict) -> Optional[Tuple[str, ...]]:
    """All keys of a dict literal when every key is a string literal.

    ``None`` when any key is dynamic (``**`` spread, variable, f-string) —
    callers treat that dict as opaque rather than guessing.
    """
    keys: List[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
        else:
            return None
    return tuple(keys)
