"""repro.analysis — determinism & concurrency invariant checker.

Two enforcement layers over one declared protocol:

* **static** (``python -m repro.analysis src benchmarks``): AST rules
  R1 (determinism), R2 (lock discipline over ``_GUARDED_BY``),
  R3 (worker-payload shipping contract), R4 (export hygiene), plus P0
  pragma hygiene — see :mod:`repro.analysis.checker`;
* **dynamic** (:mod:`repro.analysis.runtime`): ``DebugLock`` rank-order
  assertions, ``guard_instance`` runtime guarded-attribute enforcement and
  the seeded ``ChaosScheduler`` interleaving randomizer used by the stress
  tests in ``tests/test_analysis.py``.

Both layers read the same ``_GUARDED_BY`` declarations and the same
:data:`repro.analysis.lockorder.LOCK_ORDER` registry, so the contract the
linter checks is exactly the contract the race harness enforces.
"""

from __future__ import annotations

from repro.analysis.checker import ALL_RULES, check_paths, check_source
from repro.analysis.lockorder import LOCK_ORDER, lock_rank
from repro.analysis.pragmas import Pragma, collect_pragmas
from repro.analysis.report import AnalysisReport, Violation

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "LOCK_ORDER",
    "Pragma",
    "Violation",
    "check_paths",
    "check_source",
    "collect_pragmas",
    "lock_rank",
]
