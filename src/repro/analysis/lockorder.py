"""The global lock-order registry: one canonical acquisition order.

Deadlock freedom across the stack is guaranteed by a single total order —
any thread may only acquire a lock whose rank is *strictly greater* than
every lock it already holds.  The order below follows the call topology
discovered in the codebase (outermost orchestration first, innermost leaf
state last):

* ``LocalCluster`` drives node lifecycle and may call into nodes/clients;
* ``ClusterClient`` routes to ``ShardNode`` sessions;
* ``RoundScheduler.drain`` executes batches whose oracles consult the
  ``KernelRegistry`` which invalidates the ``FactorizationCache`` which
  touches per-kernel ``KernelFactorization`` state;
* observability locks (metrics/trace/feedback) are leaves — nothing may be
  acquired while holding them, so they get the highest ranks.

Both enforcement layers read this table: the static R2 ``lock-order`` check
(:mod:`repro.analysis.locks`) for nested acquisitions visible in one method,
and the runtime :class:`repro.analysis.runtime.DebugLock` for cross-object
chains the AST cannot see.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["LOCK_ORDER", "lock_rank"]

#: canonical acquisition order, outermost first: ``(class_name, lock_attr)``
LOCK_ORDER: Tuple[Tuple[str, str], ...] = (
    ("LocalCluster", "_lock"),
    ("ClusterClient", "_lock"),
    ("ClusterSession", "_lock"),
    ("ShardNode", "_lock"),
    ("Connection", "_lock"),
    ("RoundScheduler", "_lock"),
    ("SamplerSession", "_lock"),
    ("KernelRegistry", "_lock"),
    ("FactorizationCache", "_lock"),
    ("KernelFactorization", "_lock"),
    ("SharedArrayStore", "_lock"),
    ("RoundPlanner", "_lock"),
    ("MetricsRegistry", "_lock"),
    ("_Instrument", "_lock"),
    ("Counter", "_lock"),
    ("Gauge", "_lock"),
    ("Histogram", "_lock"),
    ("Tracer", "_lock"),
    ("ObservedCostFeedback", "_lock"),
    ("SLOTracker", "_lock"),
    ("FlightRecorder", "_lock"),
    ("_IdAllocator", "_lock"),
)

_RANK: Dict[Tuple[str, str], int] = {key: rank for rank, key in enumerate(LOCK_ORDER)}


def lock_rank(class_name: str, lock_attr: str) -> Optional[int]:
    """Rank of ``(class_name, lock_attr)`` in the canonical order.

    ``None`` for locks not in the registry — unranked locks are exempt from
    ordering checks (but still subject to guarded-attribute discipline).
    """
    return _RANK.get((class_name, lock_attr))
