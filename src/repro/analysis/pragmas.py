"""``# repro: allow[...]`` pragma parsing.

A pragma allowlists specific rule hits on one line of source::

    rng = np.random.default_rng()  # repro: allow[R1] -- calibration probe, never feeds a sample

Syntax: ``# repro: allow[<rules>] -- <justification>`` where ``<rules>`` is a
comma-separated list of rule families (``R1``) and/or specific codes
(``R1.unseeded-default-rng``).  The justification after ``--`` is
**mandatory**: a pragma without one is itself reported (``P0``) and does not
suppress anything, so the allowlist stays an auditable record of *why* each
exception is safe rather than a mute button.  A pragma on a comment-only line
applies to the next source line; otherwise it applies to its own line.

Pragmas that suppress nothing in a run are reported too (``P0[unused]``):
stale allowlist entries hide future regressions on their line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["Pragma", "collect_pragmas", "PRAGMA_PATTERN"]

PRAGMA_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


@dataclass
class Pragma:
    """One parsed allowlist pragma."""

    line: int
    applies_to: int
    rules: Tuple[str, ...]
    justification: str = ""
    used: bool = field(default=False, compare=False)

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())

    def covers(self, rule: str, code: str) -> bool:
        """Whether this pragma suppresses a hit of ``rule`` / ``rule.code``."""
        return rule in self.rules or f"{rule}.{code}" in self.rules


def collect_pragmas(source: str) -> Dict[int, List[Pragma]]:
    """Map *effective* line numbers to the pragmas that apply there.

    Tokenizes rather than greps so ``# repro:`` inside string literals is
    never mistaken for a pragma.  A pragma whose line holds no code applies
    to the next line (the conventional standalone-comment placement).
    """
    pragmas: List[Pragma] = []
    code_lines: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}
    for token in tokens:
        kind, text, start = token.type, token.string, token.start
        if kind == tokenize.COMMENT:
            match = PRAGMA_PATTERN.search(text)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            pragmas.append(Pragma(
                line=start[0], applies_to=start[0], rules=rules,
                justification=(match.group("why") or "").strip(),
            ))
        elif kind not in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                          tokenize.DEDENT, tokenize.ENDMARKER, tokenize.ENCODING):
            code_lines.add(start[0])
    table: Dict[int, List[Pragma]] = {}
    for pragma in pragmas:
        if pragma.line not in code_lines:
            pragma.applies_to = pragma.line + 1
        table.setdefault(pragma.applies_to, []).append(pragma)
    return table
