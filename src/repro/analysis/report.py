"""Violation records and the JSON report the checker emits.

A :class:`Violation` pins one finding to a (rule, file, line, column) with a
human-readable message; :class:`AnalysisReport` aggregates every finding of
one run together with scan metadata so CI can upload a machine-readable
artifact (``python -m repro.analysis ... --json report.json``) next to the
benchmark trajectory files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Violation", "AnalysisReport"]


@dataclass(frozen=True)
class Violation:
    """One finding: a rule hit at a specific source location.

    ``rule`` is the coarse rule family (``"R1"`` .. ``"R4"``, or ``"P0"`` for
    pragma hygiene); ``code`` the specific check within it (e.g.
    ``"unseeded-default-rng"``); ``suppressible`` is False for findings that
    a pragma must not silence (pragma hygiene itself).
    """

    rule: str
    code: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressible: bool = True

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule}[{self.code}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class AnalysisReport:
    """Everything one checker run found, JSON-serializable for CI artifacts."""

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    pragmas_seen: int = 0
    pragmas_used: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "pragmas_seen": self.pragmas_seen,
            "pragmas_used": self.pragmas_used,
            "violations_by_rule": self.by_rule(),
            "violations": [v.as_dict() for v in self.violations],
            "errors": list(self.errors),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable multi-line summary (one line per violation)."""
        lines = [violation.render() for violation in self.violations]
        lines.extend(f"error: {message}" for message in self.errors)
        counts = self.by_rule()
        summary = ", ".join(f"{rule}={count}" for rule, count in sorted(counts.items()))
        lines.append(
            f"{len(self.violations)} violation(s) in {self.files_scanned} file(s)"
            + (f" [{summary}]" if summary else "")
            + f"; pragmas used: {self.pragmas_used}/{self.pragmas_seen}"
        )
        return "\n".join(lines)
