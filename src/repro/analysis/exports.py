"""R4 — export hygiene: stats/snapshot builders emit JSON-safe values only.

``snapshot()`` / ``stats`` / ``cluster_info()`` payloads cross two
boundaries: CI uploads them as JSON artifacts, and the cluster protocol
ships them over sockets.  A numpy scalar, a set, a ``bytes`` blob, or —
the classic slip — a lock object leaking into one of these dicts either
crashes ``json.dumps`` or (worse) serializes differently per platform.

The rule walks every ``return`` expression of an export builder and flags
statically *known-unsafe* value expressions:

* set displays / set comprehensions (not JSON; iteration order unstable),
* ``bytes`` literals and ``lambda``s,
* bare ``numpy.*`` calls (arrays and numpy scalars are not JSON types —
  wrap in ``int()`` / ``float()`` / ``list()``),
* a raw ``self.<lock>`` read for any lock declared in ``_GUARDED_BY``.

Coercion wrappers (``int``, ``float``, ``str``, ``bool``, ``list``,
``dict``, ``sorted``, ``len``, ``round``, ``min``, ``max``, ``sum``,
``abs``, ``tuple``) sanitize their argument, so anything under one is
accepted without further inspection.  Opaque calls (helper methods) are
trusted — the rule is a tripwire for the constructs that are wrong on
their face, not a type system.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Union

from repro.analysis.locks import guarded_by_of_class
from repro.analysis.report import Violation
from repro.analysis.rulebase import Rule, RuleContext, dotted_name, import_aliases, resolve, self_attr

__all__ = ["ExportHygieneRule"]

#: method/property names treated as export builders
_EXPORT_NAMES = {"snapshot", "stats", "cluster_info", "as_dict"}

#: builtins that coerce their argument into a JSON-safe value
_SANITIZERS = {"int", "float", "str", "bool", "list", "dict", "sorted", "len",
               "round", "min", "max", "sum", "abs", "tuple", "repr", "format"}


class ExportHygieneRule(Rule):
    id = "R4"
    summary = ("export hygiene: snapshot()/stats/cluster_info() return only "
               "JSON-safe values (no sets, bytes, numpy objects, or locks)")

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        aliases = import_aliases(ctx.tree)
        module_classes = {node.name: node for node in ctx.tree.body
                         if isinstance(node, ast.ClassDef)}
        for cls in module_classes.values():
            lock_names = set(guarded_by_of_class(cls, module_classes))
            for stmt in cls.body:
                if (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name in _EXPORT_NAMES):
                    yield from self._check_builder(ctx, cls.name, stmt,
                                                   aliases, lock_names)

    def _check_builder(self, ctx: RuleContext, class_name: str,
                       func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                       aliases: Dict[str, str],
                       lock_names: Set[str]) -> Iterator[Violation]:
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                yield from self._check_value(ctx, class_name, func.name,
                                             node.value, aliases, lock_names)

    def _check_value(self, ctx: RuleContext, class_name: str, builder: str,
                     expr: ast.expr, aliases: Dict[str, str],
                     lock_names: Set[str]) -> Iterator[Violation]:
        where = f"{class_name}.{builder}"
        if isinstance(expr, (ast.Set, ast.SetComp)):
            yield ctx.violation(
                self.id, "set-in-export", expr,
                f"{where} emits a set: not JSON-serializable and iteration "
                "order is hash-seed dependent; emit sorted(...) instead")
            return
        if isinstance(expr, ast.Constant) and isinstance(expr.value, bytes):
            yield ctx.violation(
                self.id, "bytes-in-export", expr,
                f"{where} emits a bytes literal: not JSON-serializable")
            return
        if isinstance(expr, ast.Lambda):
            yield ctx.violation(
                self.id, "callable-in-export", expr,
                f"{where} emits a lambda: not JSON-serializable")
            return
        attr = self_attr(expr)
        if attr is not None and attr in lock_names:
            yield ctx.violation(
                self.id, "lock-in-export", expr,
                f"{where} emits self.{attr}, a lock object declared in "
                "_GUARDED_BY: locks must never leave the instance")
            return
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is not None:
                resolved = resolve(aliases, name)
                if resolved in _SANITIZERS:
                    return  # coercion wrapper sanitizes whatever is inside
                if resolved.split(".")[0] == "numpy":
                    yield ctx.violation(
                        self.id, "numpy-in-export", expr,
                        f"{where} emits the result of {resolved}(): numpy "
                        "arrays/scalars are not JSON types; coerce with "
                        "int()/float()/list()")
                    return
            # opaque helper call — trusted
            return
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    yield from self._check_value(ctx, class_name, builder,
                                                 value, aliases, lock_names)
            return
        if isinstance(expr, (ast.List, ast.Tuple)):
            for element in expr.elts:
                yield from self._check_value(ctx, class_name, builder,
                                             element, aliases, lock_names)
            return
        if isinstance(expr, ast.IfExp):
            yield from self._check_value(ctx, class_name, builder, expr.body,
                                         aliases, lock_names)
            yield from self._check_value(ctx, class_name, builder, expr.orelse,
                                         aliases, lock_names)
            return
        if isinstance(expr, (ast.DictComp, ast.ListComp, ast.GeneratorExp)):
            inner = expr.value if isinstance(expr, ast.DictComp) else expr.elt
            yield from self._check_value(ctx, class_name, builder, inner,
                                         aliases, lock_names)
            return
        # Names, attribute reads, arithmetic, f-strings: accepted
