"""R1 — determinism: no hidden randomness or ambient-order state in library code.

Everything this repository claims — byte-identical fixed-seed samples across
serial/vectorized/threads/process backends, fused or unfused, cached or
uncached, single-node or cluster — rests on randomness flowing *only* through
explicitly seeded :class:`numpy.random.Generator` objects threaded through
call signatures (``repro/utils/rng.py``).  R1 statically forbids the ways
that invariant quietly dies inside ``src/repro``:

* ``np.random.<fn>()`` **module-level RNG state** (``np.random.seed``,
  ``np.random.rand``, ...): global state shared across threads and invisible
  to the substream derivation.  Type references (``np.random.Generator``,
  ``np.random.SeedSequence`` and the bit generators) are fine — they carry no
  state.
* **unseeded** ``default_rng()``: fresh OS entropy per call, unreproducible
  by construction.  ``default_rng(seed)`` with any argument is the blessed
  spelling.
* the stdlib ``random`` module: its module-level functions are global-state
  RNG; even ``random.Random(x)`` seeded instances hash some types
  platform-dependently.  Seeded ``random.Random(seed)`` *instances* are
  allowed (the chaos harness uses one); bare module functions are not.
* **time-derived values**: ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` / ``date.today()`` produce run-dependent values that
  end up in seeds, cache keys, or tie-breaks.  Monotonic *duration* clocks
  (``time.monotonic``, ``time.perf_counter``) are explicitly fine — they
  feed metrics and TTLs, never selection.
* **set iteration feeding selection paths**: ``for x in {a, b}`` (and
  comprehensions over set displays / ``set(...)`` calls) iterate in
  hash-seed order.  Iterate a sorted or insertion-ordered container instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.report import Violation
from repro.analysis.rulebase import Rule, RuleContext, dotted_name, import_aliases, resolve

__all__ = ["DeterminismRule"]

#: ``numpy.random`` attributes that are types/constructors, not module state
_SAFE_NP_RANDOM = {
    "Generator", "BitGenerator", "SeedSequence", "RandomState",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    "default_rng",  # call sites are checked separately for seeding
}

#: banned wall-clock value sources (monotonic duration clocks stay legal)
_TIME_BANNED = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
}


class DeterminismRule(Rule):
    id = "R1"
    summary = ("determinism: no module-level RNG state, unseeded default_rng, "
               "stdlib random functions, wall-clock values, or set iteration")

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.in_repro:
            return
        aliases = import_aliases(ctx.tree)
        call_funcs = {id(node.func) for node in ast.walk(ctx.tree)
                      if isinstance(node, ast.Call)}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)
            elif isinstance(node, ast.Attribute) and id(node) not in call_funcs:
                yield from self._check_attribute(ctx, node, aliases)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                violation = self._check_set_iteration(ctx, iterable, aliases)
                if violation is not None:
                    yield violation

    # ------------------------------------------------------------------ #
    def _check_import_from(self, ctx: RuleContext,
                           node: ast.ImportFrom) -> Iterator[Violation]:
        if node.module == "random":
            banned = [item.name for item in node.names if item.name != "Random"]
            if banned:
                yield ctx.violation(
                    self.id, "stdlib-random", node,
                    f"import of stdlib random function(s) {banned}: module-level "
                    "RNG state; thread a seeded np.random.Generator instead")
        elif node.module == "numpy.random":
            banned = [item.name for item in node.names
                      if item.name not in _SAFE_NP_RANDOM]
            if banned:
                yield ctx.violation(
                    self.id, "np-random-module-state", node,
                    f"import of numpy.random module-state function(s) {banned}")

    def _check_call(self, ctx: RuleContext, node: ast.Call,
                    aliases: Dict[str, str]) -> Iterator[Violation]:
        name = dotted_name(node.func)
        if name is None:
            return
        resolved = resolve(aliases, name)
        if resolved in ("numpy.random.default_rng", "default_rng"):
            if not node.args and not node.keywords:
                yield ctx.violation(
                    self.id, "unseeded-default-rng", node,
                    "default_rng() without a seed draws OS entropy: pass an "
                    "explicit seed/SeedSequence (see repro.utils.rng)")
            return
        if resolved in _TIME_BANNED:
            yield ctx.violation(
                self.id, "wall-clock-value", node,
                f"{resolved}() is a run-dependent wall-clock value; use "
                "time.monotonic()/time.perf_counter() for durations, or an "
                "injectable clock for TTLs")
            return
        parts = resolved.split(".")
        if parts[0] == "random" and len(parts) >= 2:
            if parts[1] == "Random":
                if not node.args and not node.keywords:
                    yield ctx.violation(
                        self.id, "stdlib-random", node,
                        "random.Random() without a seed is unreproducible; "
                        "pass an explicit seed")
            else:
                yield ctx.violation(
                    self.id, "stdlib-random", node,
                    f"stdlib {resolved}() uses global RNG state; use a seeded "
                    "np.random.Generator")
            return
        if parts[0] == "numpy" and len(parts) >= 3 and parts[1] == "random":
            if parts[2] not in _SAFE_NP_RANDOM:
                yield ctx.violation(
                    self.id, "np-random-module-state", node,
                    f"{resolved}() mutates/reads numpy's module-level RNG "
                    "state; thread a seeded Generator instead")

    def _check_attribute(self, ctx: RuleContext, node: ast.Attribute,
                         aliases: Dict[str, str]) -> Iterator[Violation]:
        """Non-call references: ``np.random.seed`` passed around, etc."""
        name = dotted_name(node)
        if name is None:
            return
        resolved = resolve(aliases, name)
        parts = resolved.split(".")
        if (parts[0] == "numpy" and len(parts) == 3 and parts[1] == "random"
                and parts[2] not in _SAFE_NP_RANDOM):
            yield ctx.violation(
                self.id, "np-random-module-state", node,
                f"reference to numpy module-level RNG state {resolved}")

    def _check_set_iteration(self, ctx: RuleContext, iterable: ast.AST,
                             aliases: Dict[str, str]) -> Optional[Violation]:
        direct = self._is_set_expr(iterable, aliases)
        if direct:
            return ctx.violation(
                self.id, "set-iteration-order", iterable,
                "iteration over a set: order follows the hash seed, so any "
                "selection derived from it is unreproducible; iterate "
                "sorted(...) or an ordered container")
        return None

    def _is_set_expr(self, node: ast.AST, aliases: Dict[str, str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and resolve(aliases, name) == "set":
                return True
            # set ops that return sets: a.union(b) etc. are left to review;
            # only the unambiguous constructor is flagged statically
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                                ast.Sub, ast.BitXor)):
            # ``{a} | other`` style set algebra — flag when either side is a set
            return (self._is_set_expr(node.left, aliases)
                    or self._is_set_expr(node.right, aliases))
        return False
