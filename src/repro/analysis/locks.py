"""R2 — lock discipline: guarded attributes are only touched under their lock.

Concurrency-bearing classes declare their protocol explicitly::

    class FactorizationCache:
        _GUARDED_BY = {"_lock": ("_entries", "_sizes", "_total_bytes")}

and R2 flags any method body that reads or writes ``self._entries`` (etc.)
outside a ``with self._lock:`` block.  The declaration is the contract; the
checker (statically) and :func:`repro.analysis.runtime.guard_instance`
(dynamically, under the chaos harness) both enforce it, so the two layers can
never drift apart.

Conventions understood by the checker:

* ``__init__`` / ``__new__`` / ``__del__`` are exempt — no other thread can
  hold a reference yet (or anymore).
* a method whose name ends in ``_locked`` asserts "caller already holds the
  lock" (the codebase's existing idiom, e.g. ``_sweep_locked``); its body is
  treated as lock-held throughout.  Same for names starting ``_unsafe_``.
* ``_GUARDED_BY`` merges down same-module inheritance chains
  (``Counter(_Instrument)`` inherits the instrument's declaration).
* nested ``lambda``/``def`` bodies are skipped statically — closures that
  escape the lock scope are the runtime harness's job.
* ``with self._lock:`` and ``with self._lock, other:`` both count; so does
  an explicit ``self._lock.acquire()`` ... ``release()`` pair **within one
  straight-line suite** (tracked conservatively: acquire marks held until a
  release at the same nesting depth).

R2 also emits ``lock-order`` findings: inside one class, nested ``with``
acquisitions of *declared* locks must follow the global rank registry in
:mod:`repro.analysis.lockorder` (cross-class cycles are caught there and at
runtime by ``DebugLock``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.lockorder import lock_rank
from repro.analysis.report import Violation
from repro.analysis.rulebase import Rule, RuleContext, self_attr

__all__ = ["LockDisciplineRule", "guarded_by_of_class"]

_EXEMPT_METHODS = {"__init__", "__new__", "__del__", "__getstate__", "__setstate__",
                   "__reduce__", "__repr__"}

#: either flavor of method definition (bodies are walked identically)
_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def guarded_by_of_class(cls: ast.ClassDef,
                        module_classes: Dict[str, ast.ClassDef]) -> Dict[str, Tuple[str, ...]]:
    """The effective ``_GUARDED_BY`` of ``cls``, merged over same-module bases."""
    merged: Dict[str, Tuple[str, ...]] = {}
    # bases first so the subclass's own declaration wins per-lock
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id in module_classes:
            base_cls = module_classes[base.id]
            if base_cls is not cls:
                merged.update(guarded_by_of_class(base_cls, module_classes))
    merged.update(_own_guarded_by(cls))
    return merged


def _own_guarded_by(cls: ast.ClassDef) -> Dict[str, Tuple[str, ...]]:
    for stmt in cls.body:
        target_name: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                target_name = target.id
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target_name = stmt.target.id
            value = stmt.value
        if target_name != "_GUARDED_BY" or not isinstance(value, ast.Dict):
            continue
        declared: Dict[str, Tuple[str, ...]] = {}
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            attrs: List[str] = []
            if isinstance(val, (ast.Tuple, ast.List, ast.Set)):
                for element in val.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        attrs.append(element.value)
            declared[key.value] = tuple(attrs)
        return declared
    return {}


class LockDisciplineRule(Rule):
    id = "R2"
    summary = ("lock discipline: _GUARDED_BY attributes accessed only under "
               "`with self.<lock>`; intra-method acquisitions follow the "
               "global lock-order registry")

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        module_classes = {node.name: node for node in ctx.tree.body
                          if isinstance(node, ast.ClassDef)}
        for cls in module_classes.values():
            guarded = guarded_by_of_class(cls, module_classes)
            if not guarded:
                continue
            attr_to_lock: Dict[str, str] = {}
            for lock, attrs in guarded.items():
                for attr in attrs:
                    attr_to_lock[attr] = lock
            for method in self._methods(cls):
                if method.name in _EXEMPT_METHODS:
                    continue
                held_at_entry = set(guarded)
                if not (method.name.endswith("_locked")
                        or method.name.startswith("_unsafe_")):
                    held_at_entry = set()
                walker = _MethodWalker(ctx, self.id, cls.name, method,
                                       attr_to_lock, set(guarded), held_at_entry)
                yield from walker.run()

    @staticmethod
    def _methods(cls: ast.ClassDef) -> Iterator[_FuncDef]:
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt


class _MethodWalker:
    """Single-method traversal tracking which declared locks are held."""

    def __init__(self, ctx: RuleContext, rule_id: str, class_name: str,
                 method: _FuncDef, attr_to_lock: Dict[str, str],
                 lock_names: Set[str], held_at_entry: Set[str]) -> None:
        self.ctx = ctx
        self.rule_id = rule_id
        self.class_name = class_name
        self.method = method
        self.attr_to_lock = attr_to_lock
        self.lock_names = lock_names
        self.violations: List[Violation] = []
        self.held: List[str] = sorted(held_at_entry)

    def run(self) -> Iterator[Violation]:
        for stmt in self.method.body:
            self._visit_stmt(stmt)
        return iter(self.violations)

    # -- statements --------------------------------------------------- #
    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes: runtime harness territory
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in stmt.items:
                lock = self._lock_expr(item.context_expr)
                if lock is not None:
                    self._check_order(lock, item.context_expr)
                    if lock not in self.held:
                        self.held.append(lock)
                        acquired.append(lock)
                else:
                    self._visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._visit_expr(item.optional_vars)
            for inner in stmt.body:
                self._visit_stmt(inner)
            for lock in acquired:
                self.held.remove(lock)
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            handled = self._acquire_release(stmt.value)
            if handled:
                return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.stmt):
                self._visit_stmt(child)
            elif isinstance(child, (ast.excepthandler,)):
                for grand in ast.iter_child_nodes(child):
                    if isinstance(grand, ast.stmt):
                        self._visit_stmt(grand)
                    elif isinstance(grand, ast.expr):
                        self._visit_expr(grand)

    def _acquire_release(self, call: ast.Call) -> bool:
        """Model bare ``self._lock.acquire()`` / ``.release()`` statements."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        lock = self._lock_expr(func.value)
        if lock is None:
            return False
        if func.attr == "acquire":
            self._check_order(lock, call)
            if lock not in self.held:
                self.held.append(lock)
            return True
        if func.attr == "release":
            if lock in self.held:
                self.held.remove(lock)
            return True
        return False

    # -- expressions --------------------------------------------------- #
    def _visit_expr(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Lambda):
            return
        attr = self_attr(expr)
        if attr is not None and attr in self.attr_to_lock:
            lock = self.attr_to_lock[attr]
            if lock not in self.held:
                self.violations.append(self.ctx.violation(
                    self.rule_id, "unlocked-access", expr,
                    f"{self.class_name}.{self.method.name} touches guarded "
                    f"attribute self.{attr} without holding self.{lock} "
                    f"(declared in _GUARDED_BY)"))
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.comprehension):
                self._visit_expr(child.iter)
                for cond in child.ifs:
                    self._visit_expr(cond)

    # -- helpers ------------------------------------------------------- #
    def _lock_expr(self, expr: ast.expr) -> Optional[str]:
        """``self.<lock>`` for a declared lock (optionally ``.acquire()`` etc.)."""
        attr = self_attr(expr)
        if attr is not None and attr in self.lock_names:
            return attr
        return None

    def _check_order(self, lock: str, node: ast.AST) -> None:
        """New acquisition must rank after every lock already held."""
        new_rank = lock_rank(self.class_name, lock)
        if new_rank is None:
            return
        for held in self.held:
            held_rank = lock_rank(self.class_name, held)
            if held_rank is not None and held_rank > new_rank:
                self.violations.append(self.ctx.violation(
                    self.rule_id, "lock-order", node,
                    f"{self.class_name}.{self.method.name} acquires "
                    f"self.{lock} (rank {new_rank}) while holding self.{held} "
                    f"(rank {held_rank}); registry order in "
                    f"repro.analysis.lockorder forbids this inversion"))
