"""Dynamic enforcement: DebugLock, guarded-attribute descriptors, chaos.

The static R2 pass proves what it can see in one method body; this module
enforces the *same* ``_GUARDED_BY`` contract at runtime, where closures,
cross-object call chains and genuine thread interleavings live:

* :class:`DebugLock` wraps a ``threading.Lock``/``RLock`` and keeps a
  per-thread held-stack, asserting every new acquisition respects the
  global :data:`repro.analysis.lockorder.LOCK_ORDER` ranking — a runtime
  deadlock detector that fires on the *potential* inversion, not the hang;
* :func:`guard_instance` rewrites one live object so each declared guarded
  attribute becomes a data descriptor that asserts its lock is held by the
  current thread on every read/write — the lint rule, but executed;
* :class:`ChaosScheduler` is a seeded interleaving randomizer: hooked into
  every ``DebugLock.acquire`` (and callable from test code), it inserts
  probabilistic tiny sleeps and shrinks the interpreter switch interval so
  200 seeds explore 200 different schedules, reproducibly.

Violations either raise ``AssertionError`` immediately (default) or append
:class:`RaceViolation` records to a caller-supplied collector list, which
lets a stress test drain all threads first and fail with the full picture.
"""

from __future__ import annotations

import random
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from repro.analysis.lockorder import lock_rank

__all__ = ["ChaosScheduler", "DebugLock", "RaceViolation", "guard_instance",
           "merged_guarded_by"]

_held = threading.local()


def _held_stack() -> List["DebugLock"]:
    stack: Optional[List["DebugLock"]] = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


@dataclass
class RaceViolation:
    """One runtime contract breach observed by the harness."""

    kind: str  # "lock-order" | "unguarded-access"
    detail: str
    thread: str

    def render(self) -> str:
        return f"[{self.kind}] {self.detail} (thread {self.thread})"


class ChaosScheduler:
    """Seeded thread-interleaving randomizer (reproducible chaos).

    ``random.Random(seed)`` is a deliberate, seeded instance — exactly the
    exception R1 carves out — because the schedule perturbation must be
    reproducible per seed while staying independent of the numpy streams
    that produce samples.  Use as a context manager to also shrink the
    interpreter switch interval for the duration of a stress run.
    """

    def __init__(self, seed: int, *, switch_probability: float = 0.25,
                 max_sleep: float = 2e-4, switch_interval: float = 1e-5) -> None:
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self.seed = seed
        self.switch_probability = switch_probability
        self.max_sleep = max_sleep
        self.switch_interval = switch_interval
        self.switches = 0
        self._saved_interval: Optional[float] = None

    def maybe_switch(self) -> None:
        """Probabilistically yield/sleep to force a schedule perturbation."""
        with self._rng_lock:
            roll = self._rng.random()
            delay = self._rng.random() * self.max_sleep
            fire = roll < self.switch_probability
            if fire:
                self.switches += 1
        if fire:
            time.sleep(delay)

    def __enter__(self) -> "ChaosScheduler":
        self._saved_interval = sys.getswitchinterval()
        sys.setswitchinterval(self.switch_interval)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._saved_interval is not None:
            sys.setswitchinterval(self._saved_interval)
            self._saved_interval = None


class DebugLock:
    """Lock wrapper asserting rank order against the global registry.

    Duck-types ``threading.Lock``/``RLock`` (``acquire``/``release``/context
    manager) so it can be swapped into an instance's ``_lock`` slot without
    the instance noticing.  Reentrant acquisitions of a wrapped RLock skip
    the order check (re-acquiring a held lock is never an inversion).
    """

    def __init__(self, inner: Any, *, owner: str = "", attr: str = "_lock",
                 collector: Optional[List[RaceViolation]] = None,
                 chaos: Optional[ChaosScheduler] = None) -> None:
        self._inner = inner
        self.owner = owner
        self.attr = attr
        self.rank = lock_rank(owner, attr)
        self._collector = collector
        self._chaos = chaos

    # -- violation plumbing ------------------------------------------- #
    def report(self, kind: str, detail: str) -> None:
        violation = RaceViolation(kind=kind, detail=detail,
                                  thread=threading.current_thread().name)
        if self._collector is not None:
            self._collector.append(violation)
        else:
            raise AssertionError(violation.render())

    def held_by_current_thread(self) -> bool:
        return any(entry is self for entry in _held_stack())

    # -- lock protocol -------------------------------------------------- #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._chaos is not None:
            self._chaos.maybe_switch()
        stack = _held_stack()
        if self.rank is not None and not self.held_by_current_thread():
            for held in stack:
                if held is not self and held.rank is not None and held.rank > self.rank:
                    self.report(
                        "lock-order",
                        f"acquiring {self.owner}.{self.attr} (rank {self.rank}) "
                        f"while holding {held.owner}.{held.attr} "
                        f"(rank {held.rank}): inversion against "
                        "repro.analysis.lockorder.LOCK_ORDER")
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack.append(self)
        return bool(acquired)

    def release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def merged_guarded_by(cls: Type[Any]) -> Dict[str, Tuple[str, ...]]:
    """Effective ``_GUARDED_BY`` of ``cls``, merged over its full MRO."""
    merged: Dict[str, Tuple[str, ...]] = {}
    for klass in reversed(cls.__mro__):
        declared = klass.__dict__.get("_GUARDED_BY")
        if isinstance(declared, dict):
            for lock_attr, attrs in declared.items():
                merged[str(lock_attr)] = tuple(str(a) for a in attrs)
    return merged


class _GuardedAttribute:
    """Data descriptor asserting the guarding lock is held on every access.

    Values continue to live in the instance ``__dict__``; the descriptor
    (installed on a dynamic subclass) shadows them for get/set/delete, so
    construction-time state survives the class swap untouched.
    """

    def __init__(self, name: str, lock_attr: str) -> None:
        self.name = name
        self.lock_attr = lock_attr

    def _check(self, obj: Any) -> None:
        lock = obj.__dict__.get(self.lock_attr)
        if isinstance(lock, DebugLock) and not lock.held_by_current_thread():
            lock.report(
                "unguarded-access",
                f"{lock.owner}.{self.name} accessed without holding "
                f"{self.lock_attr} (declared in _GUARDED_BY)")

    def __get__(self, obj: Any, objtype: Optional[Type[Any]] = None) -> Any:
        if obj is None:
            return self
        self._check(obj)
        try:
            return obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(self.name) from None

    def __set__(self, obj: Any, value: Any) -> None:
        self._check(obj)
        obj.__dict__[self.name] = value

    def __delete__(self, obj: Any) -> None:
        self._check(obj)
        del obj.__dict__[self.name]


def guard_instance(obj: Any, *,
                   collector: Optional[List[RaceViolation]] = None,
                   chaos: Optional[ChaosScheduler] = None,
                   exempt: Iterable[str] = ()) -> Any:
    """Turn one live object's ``_GUARDED_BY`` declaration into runtime checks.

    Swaps each declared lock for a :class:`DebugLock` and the object's class
    for a dynamic subclass whose guarded attributes are
    :class:`_GuardedAttribute` descriptors.  Call after construction (the
    ``__init__`` exemption the static rule grants is realized by guarding
    only finished instances).  ``exempt`` names attributes to leave
    unchecked — for documented, pragma'd benign races.  Returns ``obj``.
    """
    cls = type(obj)
    guarded = merged_guarded_by(cls)
    if not guarded:
        raise ValueError(f"{cls.__name__} declares no _GUARDED_BY protocol")
    exempt_set = set(exempt)
    namespace: Dict[str, Any] = {}
    for lock_attr, attrs in guarded.items():
        inner = obj.__dict__.get(lock_attr)
        if inner is None:
            continue
        if not isinstance(inner, DebugLock):
            obj.__dict__[lock_attr] = DebugLock(
                inner, owner=cls.__name__, attr=lock_attr,
                collector=collector, chaos=chaos)
        for attr in attrs:
            if attr not in exempt_set:
                namespace[attr] = _GuardedAttribute(attr, lock_attr)
    obj.__class__ = type("Guarded" + cls.__name__, (cls,), namespace)
    return obj
