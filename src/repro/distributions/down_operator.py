"""The down operator ``D_{k→ℓ}`` (Definition 20 of the paper).

``D_{k→ℓ}`` is the row-stochastic matrix indexed by size-``k`` and size-``ℓ``
subsets with ``D(S, T) = 1[T ⊆ S] / C(k, ℓ)``; applying it to a distribution
``μ`` on size-``k`` sets produces the marginal distribution ``μ_ℓ`` on size-``ℓ``
sets.  Explicit matrices are only built for small ground sets (tests); the
projection itself is available for any :class:`ExplicitDistribution` via
:meth:`~repro.distributions.generic.ExplicitDistribution.down_project`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.distributions.generic import ExplicitDistribution
from repro.utils.subsets import Subset, all_subsets_of_size, binomial


def down_operator_matrix(n: int, k: int, ell: int) -> Tuple[np.ndarray, List[Subset], List[Subset]]:
    """Explicit ``D_{k→ℓ}`` matrix together with its row/column subset labels.

    Returns
    -------
    (matrix, rows, cols):
        ``matrix[i, j] = 1[cols[j] ⊆ rows[i]] / C(k, ℓ)`` where ``rows`` lists
        size-``k`` subsets and ``cols`` lists size-``ℓ`` subsets, both in
        lexicographic order.
    """
    if not 0 <= ell <= k <= n:
        raise ValueError(f"need 0 <= ell <= k <= n, got ell={ell}, k={k}, n={n}")
    rows = list(all_subsets_of_size(n, k))
    cols = list(all_subsets_of_size(n, ell))
    denom = binomial(k, ell)
    matrix = np.zeros((len(rows), len(cols)), dtype=float)
    col_index = {c: j for j, c in enumerate(cols)}
    from itertools import combinations

    for i, row in enumerate(rows):
        for sub in combinations(row, ell):
            matrix[i, col_index[sub]] = 1.0 / denom
    return matrix, rows, cols


def down_project(distribution: ExplicitDistribution, ell: int) -> ExplicitDistribution:
    """``μ_ℓ = μ D_{k→ℓ}`` for an explicit fixed-cardinality distribution."""
    return distribution.down_project(ell)
