"""Abstract subset distributions, diagnostics, and transformations.

This package defines the interfaces every concrete distribution (DPP variants,
planar matchings, synthetic hard instances) implements, plus the
information-theoretic machinery of the paper: the down operator
``D_{k→ℓ}`` (Definition 20), KL/Rényi divergences (Section 3.1), entropic
independence and fractional log-concavity checkers (Definitions 19/22),
negative correlation checks (Lemma 16), the isotropic subdivision transform
(Definition 30), and the Section 7 hard instance.
"""

from repro.distributions.base import SubsetDistribution, HomogeneousDistribution
from repro.distributions.generic import (
    ExplicitDistribution,
    ProductMarginalProposal,
    uniform_distribution_on_size_k,
)
from repro.distributions.down_operator import down_operator_matrix, down_project
from repro.distributions.divergences import (
    kl_divergence,
    renyi_divergence_exp,
    total_variation,
    lemma12_bound,
)
from repro.distributions.entropic import (
    entropic_independence_constant,
    is_entropically_independent,
    is_fractionally_log_concave,
)
from repro.distributions.negative_corr import (
    is_negatively_correlated,
    negative_correlation_violations,
)
from repro.distributions.isotropic import IsotropicTransform
from repro.distributions.hard_instance import PairedHardInstance, duplicate_count
from repro.distributions.lowrank import LowRankDPP, LowRankKDPP, LowRankKernel

__all__ = [
    "LowRankDPP",
    "LowRankKDPP",
    "LowRankKernel",
    "SubsetDistribution",
    "HomogeneousDistribution",
    "ExplicitDistribution",
    "ProductMarginalProposal",
    "uniform_distribution_on_size_k",
    "down_operator_matrix",
    "down_project",
    "kl_divergence",
    "renyi_divergence_exp",
    "total_variation",
    "lemma12_bound",
    "entropic_independence_constant",
    "is_entropically_independent",
    "is_fractionally_log_concave",
    "is_negatively_correlated",
    "negative_correlation_violations",
    "IsotropicTransform",
    "PairedHardInstance",
    "duplicate_count",
]
