"""Table-backed distributions and product proposals.

:class:`ExplicitDistribution` stores ``μ`` as an explicit subset → weight
table.  It is the ground truth used by tests and accuracy benchmarks (total
variation against samplers), the carrier for down-projected marginal
distributions ``μ_ℓ``, and the representation on which the brute-force
entropic-independence / log-concavity checkers operate.

:class:`ProductMarginalProposal` is the proposal distribution of the paper's
rejection sampler: ``ℓ`` i.i.d. draws from the normalized marginal vector
``p / k`` (Section 4, Section 5.3).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import SubsetDistribution
from repro.pram.cost import OracleCostHint
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import Subset, all_subsets_of_size, binomial, subset_key
from repro.utils.validation import check_subset


class ExplicitDistribution(SubsetDistribution):
    """A distribution given by an explicit ``subset -> weight`` table."""

    def __init__(self, n: int, weights: Mapping[Sequence[int], float], *,
                 cardinality: Optional[int] = None, normalize: bool = True):
        self.n = int(n)
        table: Dict[Subset, float] = {}
        for subset, weight in weights.items():
            key = subset_key(subset)
            w = float(weight)
            if w < 0:
                raise ValueError(f"negative weight {w} for subset {key}")
            if key and (min(key) < 0 or max(key) >= self.n):
                raise ValueError(f"subset {key} outside ground set of size {self.n}")
            if w > 0:
                table[key] = table.get(key, 0.0) + w
        if not table:
            raise ValueError("distribution has empty support")
        self._support_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._cardinality = cardinality
        if cardinality is not None:
            bad = [s for s in table if len(s) != cardinality]
            if bad:
                raise ValueError(f"subsets {bad[:3]} violate the fixed cardinality {cardinality}")
        total = sum(table.values())
        if normalize:
            table = {s: w / total for s, w in table.items()}
            total = 1.0
        self._table = table
        self._total = total

    # ------------------------------------------------------------------ #
    @property
    def cardinality(self) -> Optional[int]:
        return self._cardinality

    @property
    def support(self) -> Tuple[Subset, ...]:
        return tuple(sorted(self._table))

    def items(self):
        return self._table.items()

    def as_dict(self) -> Dict[Subset, float]:
        return dict(self._table)

    def _support_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(mask, weights)`` arrays over the support (table order)."""
        if self._support_cache is None:
            mask = np.zeros((len(self._table), self.n), dtype=float)
            weights = np.empty(len(self._table), dtype=float)
            for row, (subset, weight) in enumerate(self._table.items()):
                if subset:
                    mask[row, list(subset)] = 1.0
                weights[row] = weight
            self._support_cache = (mask, weights)
        return self._support_cache

    def oracle_cost_hint(self) -> OracleCostHint:
        """Table batches are one mask matmul: vectorized, no Python lane."""
        return OracleCostHint(matrix_order=self.n, python_fraction=0.1,
                              batch_vectorized=True,
                              update_depth=self.update_depth)

    # ------------------------------------------------------------------ #
    # SubsetDistribution interface
    # ------------------------------------------------------------------ #
    def counting(self, given: Iterable[int] = ()) -> float:
        base = set(check_subset(given, self.n))
        return sum(w for s, w in self._table.items() if base.issubset(s))

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Answer a whole batch with one vectorized pass over the table.

        ``T ⊆ S`` iff ``|T ∩ S| = |T|``; the intersection sizes for every
        (query, support) pair come from a single mask matmul, so the batch
        costs one ``(batch, n) x (n, support)`` product instead of
        ``batch * support`` Python subset checks.
        """
        if not subsets:
            return np.empty(0, dtype=float)
        support_mask, weights = self._support_arrays()
        query_mask = np.zeros((len(subsets), self.n), dtype=float)
        sizes = np.empty(len(subsets), dtype=float)
        for row, subset in enumerate(subsets):
            items = check_subset(subset, self.n)
            sizes[row] = len(items)
            if items:
                query_mask[row, list(items)] = 1.0
        contained = (query_mask @ support_mask.T) >= sizes[:, None] - 0.5
        return contained @ weights

    def unnormalized(self, subset: Iterable[int]) -> float:
        return self._table.get(subset_key(subset), 0.0)

    def condition(self, include: Iterable[int]) -> "ExplicitDistribution":
        base = check_subset(include, self.n)
        base_set = set(base)
        remaining = [i for i in range(self.n) if i not in base_set]
        relabel = {old: new for new, old in enumerate(remaining)}
        new_table: Dict[Subset, float] = {}
        for subset, weight in self._table.items():
            if base_set.issubset(subset):
                reduced = subset_key(relabel[i] for i in subset if i not in base_set)
                new_table[reduced] = new_table.get(reduced, 0.0) + weight
        if not new_table:
            raise ValueError(f"conditioning event {base} has zero probability")
        new_card = None if self._cardinality is None else self._cardinality - len(base)
        conditioned = ExplicitDistribution(len(remaining), new_table, cardinality=new_card)
        conditioned._labels = tuple(remaining)
        return conditioned

    @property
    def ground_labels(self) -> Tuple[int, ...]:
        return getattr(self, "_labels", tuple(range(self.n)))

    # ------------------------------------------------------------------ #
    # exact helper operations used by tests and diagnostics
    # ------------------------------------------------------------------ #
    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        base = set(check_subset(given, self.n))
        denom = self.counting(base)
        if denom <= 0:
            raise ValueError("conditioning event has zero probability")
        result = np.zeros(self.n, dtype=float)
        for subset, weight in self._table.items():
            if base.issubset(subset):
                for i in subset:
                    result[i] += weight
        result /= denom
        for i in base:
            result[i] = 1.0
        return np.clip(result, 0.0, 1.0)

    def probability_vector(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Probabilities of the listed subsets in order (useful for TV computations)."""
        z = self._total
        return np.array([self._table.get(subset_key(s), 0.0) / z for s in subsets])

    def down_project(self, ell: int) -> "ExplicitDistribution":
        """The distribution ``μ_ℓ = μ D_{k→ℓ}`` on size-``ℓ`` subsets (Definition 21).

        Requires a homogeneous distribution (fixed cardinality ``k ≥ ℓ``).
        """
        k = self._cardinality
        if k is None:
            raise ValueError("down_project requires a fixed-cardinality distribution")
        if not 0 <= ell <= k:
            raise ValueError(f"ell must be in [0, {k}], got {ell}")
        denom = binomial(k, ell)
        table: Dict[Subset, float] = {}
        from itertools import combinations

        for subset, weight in self._table.items():
            share = weight / denom
            for sub in combinations(subset, ell):
                key = subset_key(sub)
                table[key] = table.get(key, 0.0) + share
        return ExplicitDistribution(self.n, table, cardinality=ell, normalize=False)

    def sample(self, seed: SeedLike = None) -> Subset:
        """Draw one exact sample (inverse-CDF over the table)."""
        rng = as_generator(seed)
        subsets = list(self._table)
        probs = np.array([self._table[s] for s in subsets], dtype=float)
        probs = probs / probs.sum()
        idx = rng.choice(len(subsets), p=probs)
        return subsets[idx]

    def total_variation(self, other: "ExplicitDistribution") -> float:
        """Exact TV distance to another explicit distribution on the same ground set."""
        if other.n != self.n:
            raise ValueError("distributions live on different ground sets")
        keys = set(self._table) | set(other._table)
        z_self = sum(self._table.values())
        z_other = sum(other._table.values())
        return 0.5 * sum(
            abs(self._table.get(s, 0.0) / z_self - other._table.get(s, 0.0) / z_other)
            for s in keys
        )


def uniform_distribution_on_size_k(n: int, k: int) -> ExplicitDistribution:
    """The uniform distribution over all size-``k`` subsets of ``[n]``."""
    if not 0 <= k <= n:
        raise ValueError(f"k must lie in [0, {n}], got {k}")
    table = {subset: 1.0 for subset in all_subsets_of_size(n, k)}
    return ExplicitDistribution(n, table, cardinality=k)


class ProductMarginalProposal:
    """The proposal ``μ'_ℓ``: ``ℓ`` i.i.d. draws from the normalized marginals ``p / k``.

    Matches the proposal used in Theorem 10's proof and Section 5.3: ordered
    tuples ``(i_1, ..., i_ℓ)`` with ``Q(tuple) = ∏_r p_{i_r} / k``.
    """

    def __init__(self, marginals: np.ndarray, k: float):
        p = np.asarray(marginals, dtype=float)
        if p.ndim != 1:
            raise ValueError("marginals must be a vector")
        if np.any(p < -1e-12):
            raise ValueError("marginals must be nonnegative")
        if k <= 0:
            raise ValueError("k must be positive")
        self.marginals = np.clip(p, 0.0, None)
        self.k = float(k)
        total = self.marginals.sum()
        if total <= 0:
            raise ValueError("marginal vector has zero mass")
        # Normalized proposal over single elements; by definition of marginals
        # of a homogeneous distribution, total ≈ k, but we renormalize to be
        # robust to floating point noise.
        self.single = self.marginals / total

    @property
    def n(self) -> int:
        return self.marginals.size

    def sample_tuples(self, ell: int, count: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``count`` ordered tuples of length ``ell`` (shape ``(count, ell)``)."""
        rng = as_generator(seed)
        if ell == 0:
            return np.empty((count, 0), dtype=int)
        return rng.choice(self.n, size=(count, ell), p=self.single)

    def log_density_tuple(self, ordered: Sequence[int]) -> float:
        """Log proposal density of one ordered tuple under ``∏ p_i / k``."""
        if len(ordered) == 0:
            return 0.0
        probs = self.marginals[np.asarray(ordered, dtype=int)] / self.k
        if np.any(probs <= 0):
            return -math.inf
        return float(np.log(probs).sum())

    def log_density_tuples(self, ordered: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`log_density_tuple` for a ``(count, ell)`` array."""
        arr = np.asarray(ordered, dtype=int)
        if arr.size == 0:
            return np.zeros(arr.shape[0])
        probs = self.marginals[arr] / self.k
        with np.errstate(divide="ignore"):
            logs = np.where(probs > 0, np.log(np.where(probs > 0, probs, 1.0)), -np.inf)
        return logs.sum(axis=1)
