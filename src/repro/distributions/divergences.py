"""Divergences between discrete distributions (Section 3.1 of the paper).

* ``D_KL(q || p) = Σ q_i log(q_i / p_i)``
* ``D_q(q || p) = Σ q_i^a p_i^{1-a}`` — the paper's (exponentiated) Rényi
  divergence of order ``a`` (a constant multiple of ``exp((a-1) * Renyi_a)``).
* :func:`lemma12_bound` — the comparison inequality (Lemma 12) used in the
  concentration argument of Section 5.3, together with its restricted-sum
  variant.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


def _normalize(vector: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(vector, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(arr < -1e-15):
        raise ValueError(f"{name} has negative entries")
    arr = np.clip(arr, 0.0, None)
    total = arr.sum()
    if total <= 0:
        raise ValueError(f"{name} has zero total mass")
    return arr / total


def kl_divergence(q: Sequence[float], p: Sequence[float]) -> float:
    """``D_KL(q || p)`` in nats; ``+inf`` if ``q`` puts mass where ``p`` does not."""
    q_arr = _normalize(q, "q")
    p_arr = _normalize(p, "p")
    if q_arr.size != p_arr.size:
        raise ValueError("q and p must have the same length")
    mask = q_arr > 0
    if np.any(p_arr[mask] <= 0):
        return float("inf")
    return float(np.sum(q_arr[mask] * np.log(q_arr[mask] / p_arr[mask])))


def renyi_divergence_exp(q: Sequence[float], p: Sequence[float], order: float) -> float:
    """The paper's ``D_a(q || p) = Σ_i q_i^a p_i^{1-a}`` for ``a >= 1``.

    Note this is the *exponential* of the standard Rényi divergence (up to a
    constant factor), matching the definition in Section 3.1.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    q_arr = _normalize(q, "q")
    p_arr = _normalize(p, "p")
    if q_arr.size != p_arr.size:
        raise ValueError("q and p must have the same length")
    if order == 1.0:
        return 1.0
    mask = q_arr > 0
    if np.any(p_arr[mask] <= 0):
        return float("inf")
    return float(np.sum(q_arr[mask] ** order * p_arr[mask] ** (1.0 - order)))


def total_variation(q: Sequence[float], p: Sequence[float]) -> float:
    """Total variation distance ``(1/2) Σ |q_i - p_i|`` between normalized vectors."""
    q_arr = _normalize(q, "q")
    p_arr = _normalize(p, "p")
    if q_arr.size != p_arr.size:
        raise ValueError("q and p must have the same length")
    return float(0.5 * np.abs(q_arr - p_arr).sum())


def lemma12_bound(q: Sequence[float], p: Sequence[float], order: float, C: float,
                  restrict_to: Optional[Iterable[int]] = None) -> float:
    """Right-hand side of Lemma 12.

    For distributions ``q, p`` over ``[n]`` with ``p_i <= C/n`` for all ``i``
    (and ``p_i >= 1/(C n)`` on the restricted index set), Lemma 12 states

    ``Σ_{i in S} q_i (q_i/p_i)^{a-1}
        <= C^{a-1} (1 + n^{a-1} a (a-1) (D_KL(q||p) + log C))``.

    This helper returns the bound's value; tests verify the inequality against
    the directly computed left-hand side.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if C < 1:
        raise ValueError("C must be >= 1")
    q_arr = _normalize(q, "q")
    n = q_arr.size
    kl = kl_divergence(q, p)
    return float(C ** (order - 1) * (1.0 + n ** (order - 1) * order * (order - 1) * (kl + np.log(C))))


def lemma12_lhs(q: Sequence[float], p: Sequence[float], order: float,
                restrict_to: Optional[Iterable[int]] = None) -> float:
    """Left-hand side of Lemma 12: ``Σ_{i in S} q_i (q_i / p_i)^{a-1}``."""
    q_arr = _normalize(q, "q")
    p_arr = _normalize(p, "p")
    idx = np.arange(q_arr.size) if restrict_to is None else np.asarray(sorted(restrict_to), dtype=int)
    total = 0.0
    for i in idx:
        if q_arr[i] == 0:
            continue
        if p_arr[i] <= 0:
            return float("inf")
        total += q_arr[i] * (q_arr[i] / p_arr[i]) ** (order - 1.0)
    return float(total)
