"""Low-rank kernel representation and DPP oracles that never form ``B Bᵀ``.

Every dense path in the repo materializes the ``n x n`` ensemble matrix and
pays ``O(n²)`` memory plus ``O(n³)`` factorization — which caps the paper's
parallel speedups around ``n ~ 10^4``.  This module is the sublinear tier's
foundation: a first-class factor representation

* :class:`LowRankKernel` — an explicit ``n x k`` factor ``B`` standing for
  ``L = B Bᵀ`` (validated eagerly, fingerprinted as the factor pair, never
  materialized unless explicitly asked), with a Nyström / ridge-leverage-score
  sketch constructor for dense inputs;
* :class:`LowRankDPP` / :class:`LowRankKDPP` — the Definition 3/6
  distributions over that representation, with all counting-oracle routes in
  factor space: the dual ``k x k`` Gram ``C = BᵀB`` carries the nonzero
  spectrum of ``L``, conditioned spectra reduce through
  :func:`repro.linalg.batch.lowrank_conditioned_gram`, and marginals cost
  ``O(n k)`` via the push-through identity ``K = B (I + C)^{-1} Bᵀ``.

Memory is ``O(n k)`` throughout and no routine touches an ``n x n``
intermediate, so ``n = 10^5``–``10^6`` ground sets are served in factor-sized
time; the matching sampler lives in :mod:`repro.dpp.intermediate`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import HomogeneousDistribution, SubsetDistribution
from repro.linalg.batch import batched_esp, group_by_size, lowrank_conditioned_gram
from repro.linalg.esp import elementary_symmetric_polynomials
from repro.pram.cost import OracleCostHint
from repro.pram.tracker import current_tracker
from repro.utils.fingerprint import kernel_fingerprint
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_factor, check_positive_int, check_subset

__all__ = ["LowRankKernel", "LowRankDPP", "LowRankKDPP"]

#: relative eigenvalue threshold shared by every numerical-rank decision here
_RANK_TOL = 1e-10


class LowRankKernel:
    """An ``n x k`` factor ``B`` standing for the PSD ensemble ``L = B Bᵀ``.

    The factor is validated eagerly (shape, finiteness, full column rank —
    see :func:`repro.utils.validation.check_factor`), canonicalized to a
    C-contiguous read-only ``float64`` array, and identified everywhere by
    its *factor-pair* fingerprint (``kind="lowrank"`` over ``B``) — so the
    serving layer's caches and the cluster ring shard ``k``-sized artifacts
    instead of ``n x n`` ones.

    ``L`` itself is never formed implicitly; :meth:`materialize` exists for
    small-``n`` ground-truth checks only.
    """

    def __init__(self, factor: np.ndarray, *, validate: bool = True):
        if isinstance(factor, LowRankKernel):
            factor = factor.factor
        if validate:
            arr = check_factor(factor, "factor")
        else:
            arr = np.ascontiguousarray(factor, dtype=float)
            if arr.ndim != 2:
                raise ValidationError(
                    f"factor must be a 2-D (n, k) array, got shape {arr.shape}")
        arr = arr.copy() if not arr.flags.owndata or arr.flags.writeable else arr
        arr.setflags(write=False)
        self.factor = arr
        self.n = int(arr.shape[0])
        self.rank = int(arr.shape[1])

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the *represented* ensemble matrix ``L`` (``(n, n)``)."""
        return (self.n, self.n)

    @property
    def nbytes(self) -> int:
        return int(self.factor.nbytes)

    @property
    def fingerprint(self) -> str:
        """The factor-pair content key (``kernel_fingerprint(B, kind="lowrank")``)."""
        return kernel_fingerprint(self.factor, kind="lowrank")

    def gram(self) -> np.ndarray:
        """The dual ``k x k`` Gram ``C = BᵀB`` (carries the nonzero spectrum)."""
        return self.factor.T @ self.factor

    def materialize(self) -> np.ndarray:
        """The dense ``n x n`` ensemble ``L = B Bᵀ`` — ``O(n²)``; tests only."""
        return self.factor @ self.factor.T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LowRankKernel(n={self.n}, rank={self.rank})"

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, L: np.ndarray, *, rank: Optional[int] = None,
                   oversample: float = 4.0, seed: SeedLike = None,
                   tol: float = _RANK_TOL) -> "LowRankKernel":
        """Factor a dense PSD ensemble: exact when possible, Nyström/RLS sketch on request.

        * ``rank=None`` — one rank-revealing eigendecomposition
          (:func:`repro.linalg.batch.psd_factor`): exact, ``B`` gets
          ``rank(L)`` columns.
        * ``rank=r`` — a Nyström approximation from ``min(n, oversample · r)``
          landmark columns drawn by ridge-leverage scores (ridge set to the
          spectral tail mass ``Σ_{j>r} λ_j / r``, the standard RLS choice),
          truncated back to exactly ``r`` columns.  This is the
          ``O(n · (r·oversample)²)`` sketch route huge inputs would use — kept
          numerically honest here by computing the leverage scores from one
          eigendecomposition, which a dense input has already paid for.
        """
        from repro.linalg.batch import psd_factor

        a = np.asarray(L, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValidationError(f"L must be square, got shape {a.shape}")
        if rank is None:
            factor = psd_factor(a, tol=tol)
            if factor.shape[1] == 0:
                raise ValidationError("L is numerically zero: nothing to factor")
            return cls(factor)
        r = check_positive_int(rank, "rank")
        n = a.shape[0]
        if r > n:
            raise ValidationError(f"rank must lie in [1, {n}], got {r}")
        rng = as_generator(seed)
        eigenvalues, vectors = np.linalg.eigh(0.5 * (a + a.T))
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        order = np.argsort(eigenvalues)[::-1]
        tail = float(eigenvalues[order[r:]].sum())
        if tail <= tol * max(float(eigenvalues.max(initial=0.0)), 1.0):
            # the input is (numerically) rank <= r already: exact truncation
            keep = order[:r][eigenvalues[order[:r]] > 0]
            if keep.size == 0:
                raise ValidationError("L is numerically zero: nothing to factor")
            return cls(vectors[:, keep] * np.sqrt(eigenvalues[keep]))
        ridge = tail / r
        # ridge leverage scores l_i = [L (L + ridge I)^{-1}]_{ii} from the eigh
        weights = eigenvalues / (eigenvalues + ridge)
        scores = np.clip((vectors ** 2) @ weights, 0.0, None)
        total = float(scores.sum())
        if total <= 0:
            raise ValidationError("L has no spectral mass to sketch")
        m = int(min(n, max(r + 1, round(oversample * r))))
        landmarks = np.unique(rng.choice(n, size=m, replace=True, p=scores / total))
        C = a[:, landmarks]
        W = a[np.ix_(landmarks, landmarks)]
        w_eigenvalues, w_vectors = np.linalg.eigh(0.5 * (W + W.T))
        w_keep = w_eigenvalues > tol * max(float(w_eigenvalues.max(initial=0.0)), 1.0)
        if not np.any(w_keep):
            raise ValidationError("Nyström landmark block is numerically zero; "
                                  "raise oversample or pass rank=None")
        sketch = C @ (w_vectors[:, w_keep] / np.sqrt(w_eigenvalues[w_keep]))
        # truncate the sketch to exactly `rank` well-conditioned columns
        gram = sketch.T @ sketch
        g_eigenvalues, g_vectors = np.linalg.eigh(0.5 * (gram + gram.T))
        g_order = np.argsort(g_eigenvalues)[::-1]
        keep = g_order[:r][g_eigenvalues[g_order[:r]]
                           > tol * max(float(g_eigenvalues.max(initial=0.0)), 1.0)]
        if keep.size == 0:
            raise ValidationError("Nyström sketch collapsed; raise oversample")
        return cls(sketch @ g_vectors[:, keep])


def _as_factor(kernel, name: str = "kernel", *, validate: bool = True) -> np.ndarray:
    """The canonical factor array behind ``kernel`` (LowRankKernel or ndarray)."""
    if isinstance(kernel, LowRankKernel):
        return kernel.factor
    return check_factor(kernel, name) if validate \
        else np.ascontiguousarray(kernel, dtype=float)


class _LowRankOracleMixin:
    """Shared factor-space state and artifacts of the two distributions."""

    factor: np.ndarray
    n: int
    rank: int

    def _init_factor(self, kernel, validate: bool,
                     labels: Optional[Sequence[int]]) -> None:
        self.factor = _as_factor(kernel, validate=validate)
        self.n = int(self.factor.shape[0])
        self.rank = int(self.factor.shape[1])
        self._labels = tuple(int(i) for i in labels) if labels is not None \
            else tuple(range(self.n))
        self._gram: Optional[np.ndarray] = None
        self._dual_eigenvalues: Optional[np.ndarray] = None
        self._dual_vectors: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def ground_labels(self) -> Tuple[int, ...]:
        return self._labels

    @property
    def gram(self) -> np.ndarray:
        """Cached dual Gram ``C = BᵀB`` (``k x k``)."""
        if self._gram is None:
            self._gram = self.factor.T @ self.factor
        return self._gram

    @property
    def dual_eigenvalues(self) -> np.ndarray:
        """Clipped spectrum of the dual Gram — the nonzero spectrum of ``L``."""
        if self._dual_eigenvalues is None:
            self._compute_dual()
        return self._dual_eigenvalues

    @property
    def dual_vectors(self) -> np.ndarray:
        """Eigenvectors of the dual Gram (columns, ascending eigenvalue order)."""
        if self._dual_vectors is None:
            self._compute_dual()
        return self._dual_vectors

    def _compute_dual(self) -> None:
        gram = self.gram
        current_tracker().charge_determinant(self.rank)
        eigenvalues, vectors = np.linalg.eigh(0.5 * (gram + gram.T))
        self._dual_eigenvalues = np.clip(eigenvalues, 0.0, None)
        self._dual_vectors = vectors

    def attach_precomputed(self, *, gram: Optional[np.ndarray] = None,
                           dual_eigenvalues: Optional[np.ndarray] = None,
                           dual_vectors: Optional[np.ndarray] = None):
        """Install serving-layer artifacts so later queries skip the dual eigh.

        The :class:`~repro.service.cache.FactorizationCache` computes these
        with the identical routines the lazy properties above run (``BᵀB``,
        then one symmetrized clipped ``eigh``), so fixed-seed samples agree
        bitwise with the uncached path.
        """
        k = self.rank
        if gram is not None:
            if gram.shape != (k, k):
                raise ValueError("precomputed gram has mismatched shape")
            self._gram = np.asarray(gram, dtype=float)
        if dual_eigenvalues is not None:
            if dual_eigenvalues.shape != (k,):
                raise ValueError("precomputed dual eigenvalues have mismatched shape")
            self._dual_eigenvalues = np.asarray(dual_eigenvalues, dtype=float)
        if dual_vectors is not None:
            if dual_vectors.shape != (k, k):
                raise ValueError("precomputed dual vectors have mismatched shape")
            self._dual_vectors = np.asarray(dual_vectors, dtype=float)
        return self

    # ------------------------------------------------------------------ #
    # engine contracts: shipping, cache key, planner hint
    # ------------------------------------------------------------------ #
    def worker_payload(self):
        """Ship only ``B`` (``n·k`` floats) plus whichever duals are warm.

        This is the whole point of the representation at process/cluster
        boundaries: the dense classes ship ``n²`` floats, this ships ``n·k``
        — and the warm dual artifacts are ``k``-sized, so they always travel.
        """
        arrays = {"factor": self.factor}
        if self._gram is not None:
            arrays["gram"] = self._gram
        if self._dual_eigenvalues is not None:
            arrays["dual_eigenvalues"] = self._dual_eigenvalues
        if self._dual_vectors is not None:
            arrays["dual_vectors"] = self._dual_vectors
        return arrays, self._payload_params()

    def absorb_worker_arrays(self, arrays: dict) -> None:
        """Write back worker-derived dual artifacts (cold parent only)."""
        k = self.rank
        gram = arrays.get("gram")
        if self._gram is None and gram is not None and gram.shape == (k, k):
            self._gram = np.asarray(gram, dtype=float)
        eigenvalues = arrays.get("dual_eigenvalues")
        if self._dual_eigenvalues is None and eigenvalues is not None \
                and eigenvalues.shape == (k,):
            self._dual_eigenvalues = np.asarray(eigenvalues, dtype=float)
        vectors = arrays.get("dual_vectors")
        if self._dual_vectors is None and vectors is not None \
                and vectors.shape == (k, k):
            self._dual_vectors = np.asarray(vectors, dtype=float)

    def artifact_cache_key(self) -> str:
        """The registry's factor-pair fingerprint (``kind="lowrank"`` over ``B``)."""
        return kernel_fingerprint(self.factor, kind="lowrank")

    @property
    def artifact_cache_matrix(self) -> np.ndarray:
        """The array the factorization cache keys this distribution's entry by."""
        return self.factor

    def oracle_cost_hint(self) -> OracleCostHint:
        """Factor-space oracles: LAPACK-dominated, priced at reduced rank.

        ``rank`` tells the planner a query costs ``O(n·k + k³)``, not
        ``O(n^ω)`` — without it, ``backend="auto"`` would treat an
        ``n = 10^5`` low-rank round as astronomically expensive and always
        pay the process pool's dispatch overhead.
        """
        return OracleCostHint(matrix_order=self.n, python_fraction=0.05,
                              batch_vectorized=True, rank=self.rank,
                              update_depth=self.update_depth)

    # ------------------------------------------------------------------ #
    # shared numerical pieces
    # ------------------------------------------------------------------ #
    def _minor(self, items: Tuple[int, ...]) -> float:
        """``det(L_S) = det(B_S B_Sᵀ)`` without touching ``L`` (0 beyond rank)."""
        s = len(items)
        if s == 0:
            return 1.0
        if s > self.rank:
            return 0.0
        current_tracker().charge_determinant(s)
        block = self.factor[list(items)]
        return float(np.linalg.det(block @ block.T))

    def _conditioned_factor(self, items: Tuple[int, ...]) -> Tuple[np.ndarray, Tuple[int, ...]]:
        """Factor of the conditioned ensemble ``L^T`` plus surviving labels.

        ``L^T = B_O Q B_Oᵀ`` with the projector
        ``Q = I - B_Tᵀ (B_T B_Tᵀ)^{-1} B_T``; since ``Q`` is a symmetric
        idempotent, ``B_O Q`` is itself a factor of ``L^T`` — conditioning
        stays inside the representation at ``O((n-t)·k + k³)`` cost.
        """
        idx = list(items)
        B_T = self.factor[idx]
        L_TT = B_T @ B_T.T
        current_tracker().charge_determinant(len(idx))
        sign, _ = np.linalg.slogdet(L_TT)
        if sign <= 0:
            raise ValueError(f"conditioning event {items} has zero probability")
        X = np.linalg.solve(L_TT, B_T)
        Q = np.eye(self.rank) - B_T.T @ X
        mask = np.ones(self.n, dtype=bool)
        mask[idx] = False
        remaining = tuple(int(i) for i in np.flatnonzero(mask))
        labels = tuple(self._labels[i] for i in remaining)
        return self.factor[mask] @ Q, labels


class LowRankDPP(_LowRankOracleMixin, SubsetDistribution):
    """Unconstrained DPP ``P[Y] ∝ det(L_Y)`` with ``L = B Bᵀ`` held as ``B``.

    Counting oracle in factor space:
    ``Σ_{S ⊇ T} det(L_S) = det(L_T) · det(I_k + C_T)`` where ``C_T`` is the
    rank-``k`` Gram reduction of the conditioned spectrum
    (:func:`repro.linalg.batch.lowrank_conditioned_gram`) — ``det(I + L^T)``
    equals ``det(I_k + C_T)`` because zero eigenvalues contribute factors of 1.
    """

    def __init__(self, kernel, *, validate: bool = True,
                 labels: Optional[Sequence[int]] = None):
        self._init_factor(kernel, validate, labels)
        self._z: Optional[float] = None

    def _payload_params(self) -> dict:
        return {"labels": self._labels, "z": self._z}

    @classmethod
    def from_worker_payload(cls, arrays, params):
        dist = cls(arrays["factor"], validate=False, labels=params["labels"])
        dist.attach_precomputed(
            gram=arrays.get("gram"),
            dual_eigenvalues=arrays.get("dual_eigenvalues"),
            dual_vectors=arrays.get("dual_vectors"))
        if params["z"] is not None:
            dist._z = float(params["z"])
        return dist

    # ------------------------------------------------------------------ #
    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        return max(self._minor(items), 0.0)

    def partition_function(self) -> float:
        """``det(I + L) = Π_j (1 + λ_j(BᵀB))`` — one ``k x k`` eigh, cached."""
        if self._z is None:
            self._z = float(np.exp(np.sum(np.log1p(self.dual_eigenvalues))))
        return self._z

    def counting(self, given: Iterable[int] = ()) -> float:
        items = check_subset(given, self.n)
        if not items:
            return self.partition_function()
        return float(self.counting_batch([items])[0])

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """``det(L_T) · det(I_k + C_T)`` for many (mixed-size) ``T`` at once."""
        values = np.zeros(len(subsets), dtype=float)
        tracker = current_tracker()
        for t, positions in group_by_size(subsets).items():
            group = [subsets[p] for p in positions]
            if t == 0:
                values[positions] = self.partition_function()
                continue
            if t > self.rank:
                continue
            det_T, reduced = lowrank_conditioned_gram(self.factor, self.gram, group)
            tracker.charge_determinant(self.rank, count=len(group))
            tails = np.linalg.det(np.eye(self.rank)[None] + reduced)
            values[positions] = np.where(det_T > 0, det_T * np.clip(tails, 0.0, None), 0.0)
        return values

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        """All marginals in ``O(n k)``: ``K_ii = Σ_j (B v_j)_i² / (1 + λ_j)``."""
        items = check_subset(given, self.n)
        tracker = current_tracker()
        with tracker.round("lowrank-dpp-marginals"):
            if not items:
                return self._root_marginals()
            conditioned = self.condition(items)
            marginals = np.ones(self.n, dtype=float)
            remaining = [i for i in range(self.n) if i not in items]
            marginals[remaining] = conditioned._root_marginals()
        return marginals

    def _root_marginals(self) -> np.ndarray:
        eigenvalues = self.dual_eigenvalues
        W = self.factor @ self.dual_vectors          # (n, k); column j = B v_j
        # K_ii = b_iᵀ (I + C)^{-1} b_i  =  Σ_j (W_ij)² / (1 + λ_j)
        marginals = (W * W) @ (1.0 / (1.0 + eigenvalues))
        return np.clip(marginals, 0.0, 1.0)

    def cardinality_distribution(self) -> np.ndarray:
        esp = elementary_symmetric_polynomials(self.dual_eigenvalues,
                                               max_order=min(self.rank, self.n))
        weights = np.zeros(self.n + 1, dtype=float)
        weights[:esp.size] = np.clip(esp, 0.0, None)
        total = weights.sum()
        if total <= 0:
            raise ValueError("low-rank ensemble defines a zero measure")
        return weights / total

    # ------------------------------------------------------------------ #
    def condition(self, include: Iterable[int]) -> "LowRankDPP":
        items = check_subset(include, self.n)
        if not items:
            return self
        conditioned, labels = self._conditioned_factor(items)
        # the projected factor is deliberately column-rank-deficient (rank
        # drops by |T|): skip the full-rank gate, the oracles handle it
        return LowRankDPP(LowRankKernel(conditioned, validate=False),
                          validate=False, labels=labels)

    def restrict_to_size(self, k: int) -> "LowRankKDPP":
        """The k-DPP obtained by conditioning on ``|Y| = k`` (Definition 6)."""
        return LowRankKDPP(LowRankKernel(self.factor, validate=False), k)


class LowRankKDPP(_LowRankOracleMixin, HomogeneousDistribution):
    """k-DPP ``P[Y] ∝ det(L_Y) · 1[|Y| = k]`` with ``L = B Bᵀ`` held as ``B``.

    Counting oracle ``det(L_T) · e_{k-|T|}(λ(L^T))`` with the conditioned
    spectrum reduced to the ``r x r`` dual Gram — zero eigenvalues contribute
    nothing to elementary symmetric polynomials, so the dual spectrum is
    exactly enough.
    """

    def __init__(self, kernel, k: int, *, validate: bool = True,
                 labels: Optional[Sequence[int]] = None):
        self._init_factor(kernel, validate, labels)
        self.k = check_positive_int(k, "k", minimum=0) if k else 0
        if self.k > self.n:
            raise ValueError(f"k={k} exceeds ground set size {self.n}")
        if self.k > self.rank:
            raise ValueError(
                f"k-DPP with k={self.k} has zero mass: factor rank is {self.rank} < k")

    def _payload_params(self) -> dict:
        return {"labels": self._labels, "k": self.k}

    @classmethod
    def from_worker_payload(cls, arrays, params):
        dist = cls(arrays["factor"], params["k"], validate=False,
                   labels=params["labels"])
        return dist.attach_precomputed(
            gram=arrays.get("gram"),
            dual_eigenvalues=arrays.get("dual_eigenvalues"),
            dual_vectors=arrays.get("dual_vectors"))

    # ------------------------------------------------------------------ #
    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        if len(items) != self.k:
            return 0.0
        return max(self._minor(items), 0.0)

    def partition_function(self) -> float:
        """``e_k(λ(L)) = e_k(λ(BᵀB))`` — ESPs over the dual spectrum."""
        current_tracker().charge_determinant(self.rank)
        esp = elementary_symmetric_polynomials(self.dual_eigenvalues, max_order=self.k)
        return float(esp[self.k])

    def counting(self, given: Iterable[int] = ()) -> float:
        items = check_subset(given, self.n)
        if len(items) > self.k:
            return 0.0
        if not items:
            return self.partition_function()
        return float(self.counting_batch([items])[0])

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """``det(L_T) · e_{k-|T|}(λ(L^T))`` for many (mixed-size) ``T`` at once."""
        values = np.zeros(len(subsets), dtype=float)
        tracker = current_tracker()
        for t, positions in group_by_size(subsets).items():
            group = [subsets[p] for p in positions]
            if t > self.k or t > self.rank:
                continue
            if t == 0:
                values[positions] = self.partition_function()
                continue
            if t == self.k:
                tracker.charge_determinant(t, count=len(group))
                idx = np.asarray([sorted(int(i) for i in s) for s in group], dtype=int)
                blocks = self.factor[idx]                     # (batch, t, k)
                dets = np.linalg.det(blocks @ blocks.transpose(0, 2, 1))
                values[positions] = np.where(dets > 0, dets, 0.0)
                continue
            det_T, reduced = lowrank_conditioned_gram(self.factor, self.gram, group)
            tracker.charge_determinant(self.rank, count=len(group))
            spectra = np.clip(np.linalg.eigvalsh(reduced), 0.0, None)
            esp = batched_esp(spectra, self.k - t)
            values[positions] = np.where(det_T > 0, det_T * esp[:, self.k - t], 0.0)
        return values

    def joint_marginals_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        z = self.partition_function()
        if z <= 0:
            raise ValueError("distribution has zero total mass")
        tracker = current_tracker()
        with tracker.round("lowrank-kdpp-joint-marginals"):
            tracker.charge(machines=float(len(subsets)))
            values = self.counting_batch(subsets) / z
        return np.clip(values, 0.0, None)

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        """Spectral k-DPP marginals in factor space (``O(n k + k²·k)``)."""
        from repro.dpp.elementary import leave_one_out_esp

        items = check_subset(given, self.n)
        tracker = current_tracker()
        with tracker.round("lowrank-kdpp-marginals"):
            if items:
                conditioned = self.condition(items)
                marginals = np.ones(self.n, dtype=float)
                remaining = [i for i in range(self.n) if i not in items]
                marginals[remaining] = (conditioned.marginal_vector(())
                                        if conditioned.k > 0
                                        else np.zeros(len(remaining)))
                return marginals
            eigenvalues = self.dual_eigenvalues
            ek = elementary_symmetric_polynomials(eigenvalues, max_order=self.k)[self.k]
            if ek <= 0:
                raise ValueError(
                    f"k-DPP with k={self.k} has zero partition function (rank deficient)")
            loo = leave_one_out_esp(eigenvalues, self.k - 1)
            weights = eigenvalues * loo / ek   # P[eigenvector j selected]
            # eigenvector matrix of L: U = B V Λ^{-1/2}; marginal_i = Σ_j w_j U_ij²
            positive = eigenvalues > 0
            W = self.factor @ self.dual_vectors[:, positive]
            scale = np.zeros(int(positive.sum()))
            np.divide(weights[positive], eigenvalues[positive], out=scale)
            marginals = (W * W) @ scale
        return np.clip(marginals, 0.0, 1.0)

    # ------------------------------------------------------------------ #
    def condition(self, include: Iterable[int]) -> "LowRankKDPP":
        items = check_subset(include, self.n)
        if not items:
            return self
        if len(items) > self.k:
            raise ValueError(f"cannot condition a {self.k}-DPP on {len(items)} inclusions")
        conditioned, labels = self._conditioned_factor(items)
        return LowRankKDPP(LowRankKernel(conditioned, validate=False),
                           self.k - len(items), validate=False, labels=labels)
