"""Entropic independence and fractional log-concavity diagnostics.

Definition 22: ``μ`` on ``C([n], k)`` is ``1/α``-entropically independent if
for every distribution ``ν`` on ``C([n], k)``:

``D_KL(ν D_{k→1} || μ D_{k→1}) <= (1 / (α k)) · D_KL(ν || μ)``.

Definition 19: ``μ`` is ``α``-fractionally log-concave (α-FLC) if
``log g_μ(z^α)`` is concave on the positive orthant; Lemma 23 says α-FLC
implies ``1/α``-entropic independence of ``μ`` and all its conditionals.

Verifying these properties exactly is itself a hard optimization problem, so
the checkers here are *brute-force certifiers on small instances*: they search
over a rich family of test distributions ``ν`` (point masses, exponential
tilts of ``μ``, conditionals of ``μ``, and random perturbations) and over
random line segments in the positive orthant.  They are used by tests to
confirm Lemma 24 (DPP variants are Ω(1)-FLC / O(1)-entropically independent)
on random small instances and to certify the Section 7 hard instance.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.distributions.divergences import kl_divergence
from repro.distributions.generic import ExplicitDistribution
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import subset_key


def _check_homogeneous(mu: ExplicitDistribution) -> int:
    k = mu.cardinality
    if k is None:
        raise ValueError("entropic-independence diagnostics require a fixed-cardinality distribution")
    if k == 0:
        raise ValueError("cardinality must be at least 1")
    return k


def _level_one(mu: ExplicitDistribution) -> np.ndarray:
    """``μ D_{k→1}`` as a probability vector over the ground set."""
    k = _check_homogeneous(mu)
    vec = np.zeros(mu.n, dtype=float)
    for subset, weight in mu.items():
        for i in subset:
            vec[i] += weight / k
    total = vec.sum()
    return vec / total


def _nu_level_one(nu_weights: dict, n: int, k: int) -> np.ndarray:
    vec = np.zeros(n, dtype=float)
    total = sum(nu_weights.values())
    for subset, weight in nu_weights.items():
        for i in subset:
            vec[i] += weight / (k * total)
    return vec


def _kl_tables(nu_weights: dict, mu: ExplicitDistribution) -> float:
    total = sum(nu_weights.values())
    kl = 0.0
    for subset, weight in nu_weights.items():
        q = weight / total
        if q <= 0:
            continue
        p = mu.unnormalized(subset)
        if p <= 0:
            return math.inf
        kl += q * math.log(q / p)
    return kl


def _test_distributions(mu: ExplicitDistribution, trials: int, rng: np.random.Generator):
    """Yield candidate ``ν`` tables: point masses, tilts, conditionals, random."""
    support = mu.support
    # point masses at every support element
    for subset in support:
        yield {subset: 1.0}
    # exponential tilts nu(S) ∝ mu(S) * exp(<lambda, 1_S>)
    for _ in range(trials):
        lam = rng.normal(scale=1.5, size=mu.n)
        table = {}
        for subset, weight in mu.items():
            table[subset] = weight * math.exp(sum(lam[i] for i in subset))
        yield table
    # conditionals of mu on containing each single element
    for i in range(mu.n):
        table = {s: w for s, w in mu.items() if i in s}
        if table:
            yield table
    # random reweightings of the support
    for _ in range(trials):
        table = {s: float(rng.random()) + 1e-9 for s in support}
        yield table


def entropic_independence_constant(mu: ExplicitDistribution, *, trials: int = 30,
                                   seed: SeedLike = 0) -> float:
    """Empirical lower bound on the best ``1/α`` such that Definition 22 holds.

    Returns ``sup_ν  k · D_KL(ν_1 || μ_1) / D_KL(ν || μ)`` over the tested
    family of ``ν`` (the true constant is the supremum over *all* ν, so the
    returned value is a certified lower bound; a value ``<= 1/α + tol``
    across a rich test family is strong evidence of ``1/α``-EI and is how the
    tests exercise Lemma 24).
    """
    k = _check_homogeneous(mu)
    rng = as_generator(seed)
    mu1 = _level_one(mu)
    best = 0.0
    for nu_table in _test_distributions(mu, trials, rng):
        kl_full = _kl_tables(nu_table, mu)
        if not math.isfinite(kl_full) or kl_full <= 1e-12:
            continue
        nu1 = _nu_level_one(nu_table, mu.n, k)
        kl_marg = kl_divergence(nu1, mu1)
        ratio = k * kl_marg / kl_full
        if ratio > best:
            best = ratio
    return float(best)


def is_entropically_independent(mu: ExplicitDistribution, alpha: float, *, trials: int = 30,
                                seed: SeedLike = 0, tol: float = 1e-7) -> bool:
    """Check Definition 22 with parameter ``1/α`` against the brute-force test family."""
    if alpha <= 0 or alpha > 1:
        raise ValueError("alpha must lie in (0, 1]")
    constant = entropic_independence_constant(mu, trials=trials, seed=seed)
    return constant <= 1.0 / alpha + tol


def _log_generating_polynomial(mu: ExplicitDistribution, z: np.ndarray) -> float:
    """``log g_μ(z)`` for strictly positive ``z`` (log-sum-exp stabilized)."""
    logs = []
    for subset, weight in mu.items():
        if weight <= 0:
            continue
        logs.append(math.log(weight) + sum(math.log(z[i]) for i in subset))
    if not logs:
        return -math.inf
    m = max(logs)
    return m + math.log(sum(math.exp(v - m) for v in logs))


def is_fractionally_log_concave(mu: ExplicitDistribution, alpha: float, *, trials: int = 200,
                                seed: SeedLike = 0, tol: float = 1e-9) -> bool:
    """Numerically check ``α``-fractional log-concavity (Definition 19).

    Definition 19 requires ``f(z) = log g_μ(z_1^α, ..., z_n^α)`` to be concave
    over the positive orthant **in z**.  We test midpoint concavity along
    random segments: for random positive ``z_1, z_2``, check
    ``f((z_1+z_2)/2) >= (f(z_1) + f(z_2)) / 2 - tol``.
    """
    if alpha <= 0 or alpha > 1:
        raise ValueError("alpha must lie in (0, 1]")
    rng = as_generator(seed)
    for _ in range(trials):
        # log-uniform positive points spanning a couple of orders of magnitude
        z1 = np.exp(rng.uniform(-2.0, 2.0, size=mu.n))
        z2 = np.exp(rng.uniform(-2.0, 2.0, size=mu.n))
        zm = 0.5 * (z1 + z2)
        f1 = _log_generating_polynomial(mu, z1 ** alpha)
        f2 = _log_generating_polynomial(mu, z2 ** alpha)
        fm = _log_generating_polynomial(mu, zm ** alpha)
        if fm < 0.5 * (f1 + f2) - max(tol, 1e-9 * (abs(f1) + abs(f2) + 1.0)):
            return False
    return True
