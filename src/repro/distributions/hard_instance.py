"""The Section 7 hard instance for rejection sampling.

Ground set ``[n]`` (``n`` even) partitioned into pairs ``S_i = (2i, 2i+1)``;
``μ`` is uniform over sets formed by taking the union of ``k/2`` whole pairs.
The distribution is ``Ω(1)``-FLC [Ana+21a], its 1-marginals are uniform
(``k/n``), yet a batch of ``ℓ`` i.i.d. draws from the marginals contains
``t`` "duplicates" (both members of some pair) with probability
``(Θ(ℓ²/k))^t``, and any duplicate forces the density ratio used by rejection
sampling up by a factor ``Θ(n/k)``.  This is the obstruction showing the
``ℓ ≈ k^{1/2 - c}`` batch limit of Theorem 29 is inherent for the rejection
strategy.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import HomogeneousDistribution
from repro.distributions.generic import ExplicitDistribution
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import binomial, subset_key
from repro.utils.validation import check_positive_int, check_subset


def duplicate_count(subset: Iterable[int], pair_of: Optional[Sequence[int]] = None) -> int:
    """Number of complete pairs contained in ``subset``.

    With the default pairing, element ``j`` belongs to pair ``j // 2``; an
    explicit ``pair_of[j]`` array may be supplied for relabeled instances.
    """
    items = list(int(i) for i in subset)
    if pair_of is None:
        labels = [i // 2 for i in items]
    else:
        labels = [int(pair_of[i]) for i in items]
    counts: Dict[int, int] = {}
    for lab in labels:
        counts[lab] = counts.get(lab, 0) + 1
    return sum(1 for c in counts.values() if c >= 2)


class PairedHardInstance(HomogeneousDistribution):
    """Uniform distribution over unions of ``k/2`` pairs out of ``n/2`` pairs."""

    def __init__(self, n: int, k: int):
        n = check_positive_int(n, "n", minimum=2)
        k = check_positive_int(k, "k", minimum=2)
        if n % 2 or k % 2:
            raise ValueError(f"n and k must both be even, got n={n}, k={k}")
        if k > n:
            raise ValueError(f"k must be at most n, got k={k}, n={n}")
        self.n = n
        self.k = k
        self.num_pairs = n // 2
        self.pairs_needed = k // 2

    # ------------------------------------------------------------------ #
    # structure helpers
    # ------------------------------------------------------------------ #
    def pair_of(self, element: int) -> int:
        return int(element) // 2

    def pair_members(self, pair: int) -> Tuple[int, int]:
        return (2 * pair, 2 * pair + 1)

    def _pair_profile(self, subset: Iterable[int]) -> Tuple[int, int]:
        """``(full_pairs, touched_pairs)`` of the subset."""
        counts: Dict[int, int] = {}
        for item in subset:
            p = self.pair_of(item)
            counts[p] = counts.get(p, 0) + 1
        full = sum(1 for c in counts.values() if c == 2)
        return full, len(counts)

    # ------------------------------------------------------------------ #
    # SubsetDistribution interface
    # ------------------------------------------------------------------ #
    def counting(self, given: Iterable[int] = ()) -> float:
        """``#{S ⊇ T}`` where ``S`` ranges over unions of ``k/2`` pairs.

        A superset exists iff every touched pair can be completed, so the
        count is ``C(num_pairs - touched, pairs_needed - touched)``.
        """
        base = check_subset(given, self.n)
        _, touched = self._pair_profile(base)
        if touched > self.pairs_needed:
            return 0.0
        return float(binomial(self.num_pairs - touched, self.pairs_needed - touched))

    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        if len(items) != self.k:
            return 0.0
        full, touched = self._pair_profile(items)
        return 1.0 if (full == touched == self.pairs_needed) else 0.0

    def condition(self, include: Iterable[int]) -> ExplicitDistribution:
        """Conditioned distribution as an explicit table on the remaining elements."""
        return self.to_explicit(max_ground_set=24).condition(include)

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        base = check_subset(given, self.n)
        denom = self.counting(base)
        if denom <= 0:
            raise ValueError("conditioning event has zero probability")
        result = np.zeros(self.n, dtype=float)
        for i in range(self.n):
            if i in base:
                result[i] = 1.0
            else:
                result[i] = self.counting(tuple(sorted(base + (i,)))) / denom
        return result

    # ------------------------------------------------------------------ #
    # exact sampling and duplicate statistics
    # ------------------------------------------------------------------ #
    def sample(self, seed: SeedLike = None) -> Tuple[int, ...]:
        """Exact sample: choose ``k/2`` pairs uniformly and take their union."""
        rng = as_generator(seed)
        chosen_pairs = rng.choice(self.num_pairs, size=self.pairs_needed, replace=False)
        items = []
        for p in chosen_pairs:
            items.extend(self.pair_members(int(p)))
        return subset_key(items)

    def sample_down(self, ell: int, seed: SeedLike = None) -> Tuple[int, ...]:
        """Exact sample from ``μ_ℓ = μ D_{k→ℓ}`` (sample then subsample)."""
        if not 0 <= ell <= self.k:
            raise ValueError(f"ell must lie in [0, {self.k}]")
        rng = as_generator(seed)
        full = self.sample(rng)
        picked = rng.choice(self.k, size=ell, replace=False)
        return subset_key(full[int(i)] for i in picked)

    def duplicate_probability(self, ell: int, threshold: int, *, samples: int = 2000,
                              seed: SeedLike = 0) -> float:
        """Monte Carlo estimate of ``P_{S ~ μ_ℓ}[#duplicates >= threshold]``."""
        rng = as_generator(seed)
        hits = 0
        for _ in range(samples):
            subset = self.sample_down(ell, rng)
            if duplicate_count(subset) >= threshold:
                hits += 1
        return hits / samples

    def duplicate_probability_exact(self, ell: int, exactly: int) -> float:
        """``P_{S ~ μ_ℓ}[#duplicates = exactly]`` in closed form.

        Choosing an ℓ-subset of a fixed union of ``k/2`` pairs: the number of
        subsets with exactly ``t`` complete pairs is
        ``C(k/2, t) * C(k/2 - t, ℓ - 2t) * 2^{ℓ - 2t}``; dividing by ``C(k, ℓ)``
        gives the probability (Section 7's calculation).
        """
        if not 0 <= ell <= self.k:
            raise ValueError(f"ell must lie in [0, {self.k}]")
        t = int(exactly)
        if t < 0 or 2 * t > ell:
            return 0.0
        half = self.pairs_needed
        numer = binomial(half, t) * binomial(half - t, ell - 2 * t) * (2 ** (ell - 2 * t))
        denom = binomial(self.k, ell)
        if denom == 0:
            return 0.0
        return numer / denom

    def density_ratio_bound(self, ell: int, duplicates: int) -> float:
        """Order of magnitude of ``μ_ℓ(S) / μ'_ℓ(S)`` for a set with ``t`` duplicates.

        Section 7: each duplicate's second element is observed with
        probability ``Θ(1/k)`` under ``μ_ℓ`` versus ``Θ(1/n)`` under the
        product proposal, so the ratio scales as ``(n/k)^t`` relative to a
        duplicate-free set.  Used by the hard-instance benchmark.
        """
        if duplicates < 0 or 2 * duplicates > ell:
            raise ValueError("invalid duplicate count")
        return float((self.n / self.k) ** duplicates)
