"""Abstract interfaces for distributions over subsets of a ground set.

The paper's framework needs exactly two structural properties of a measure
``μ : C([n], k) → R≥0`` (Section 1.2):

1. a **counting oracle**: for any ``T ⊆ [n]``, the value
   ``Σ { μ(S) : S in support, T ⊆ S }`` (Footnote 1: querying a ``T`` of size
   exactly ``k`` returns ``μ(T)`` itself), and
2. **self-reducibility**: conditioning on element inclusion yields another
   distribution in the same family.

:class:`SubsetDistribution` captures this contract.  Concrete classes
(DPP variants in :mod:`repro.dpp`, planar matchings in :mod:`repro.planar`,
table-backed distributions in :mod:`repro.distributions.generic`) provide the
oracle; generic samplers in :mod:`repro.core` are written against this
interface only.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.pram.cost import OracleCostHint
from repro.pram.tracker import current_tracker
from repro.utils.subsets import Subset, all_subsets_of_size, subset_key
from repro.utils.validation import check_subset


class CountingOracleError(ValueError):
    """Raised when a counting oracle returns invalid (e.g. negative) values.

    Counting oracles answer ``Σ { μ(S) : T ⊆ S }`` for a nonnegative measure,
    so any significantly negative answer means the oracle implementation (or
    its numerical route) is broken; samplers must not silently clip it away.
    """


class SubsetDistribution(abc.ABC):
    """A (possibly unnormalized) measure over subsets of ``{0, ..., n-1}``.

    Subclasses must implement :meth:`counting` (the paper's counting oracle)
    and :meth:`condition` (self-reducibility).  Default implementations of
    marginals, joint marginals, batched queries, and normalization are derived
    from the oracle; subclasses are encouraged to override them with faster
    linear-algebra routes (DPPs do) — in particular :meth:`counting_batch` and
    :meth:`joint_marginals_batch`, which the vectorized execution backend
    (:mod:`repro.engine`) uses to answer a whole adaptive round at once.
    """

    #: ground set size
    n: int

    #: fingerprint-chain depth of the backing kernel (0 = cold registration);
    #: the serving layer stamps it so the planner can price the incremental
    #: update path against a full refactorization (``OracleCostHint.update_depth``)
    update_depth: int = 0

    # ------------------------------------------------------------------ #
    # the two structural primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def counting(self, given: Iterable[int] = ()) -> float:
        """Counting oracle: ``Σ { μ(S) : T ⊆ S }`` for ``T = given``."""

    @abc.abstractmethod
    def condition(self, include: Iterable[int]) -> "SubsetDistribution":
        """Distribution ``μ(· | include)`` on the ground set minus ``include``.

        The returned distribution is over subsets of the **remaining**
        elements; implementations must expose :attr:`ground_labels` mapping
        their internal indices back to the original labels (the identity for
        the root distribution).
        """

    # ------------------------------------------------------------------ #
    # label bookkeeping (conditioned distributions re-index their ground set)
    # ------------------------------------------------------------------ #
    @property
    def ground_labels(self) -> Tuple[int, ...]:
        """Original labels of this distribution's ground set."""
        return tuple(range(self.n))

    # ------------------------------------------------------------------ #
    # out-of-process shipping (the engine's process backend)
    # ------------------------------------------------------------------ #
    def worker_payload(self) -> Optional[Tuple[dict, dict]]:
        """``(arrays, params)`` describing this distribution for worker processes.

        ``arrays`` maps names to the heavy ndarrays (shipped once through
        shared memory and cached per worker by content fingerprint);
        ``params`` holds small picklable scalars/tuples.  Together they must
        satisfy ``cls.from_worker_payload(arrays, params)`` answering every
        counting query with the same values as ``self`` — including any
        normalizer this object has already materialized, so workers never
        recompute what the parent (or the serving layer's factorization
        cache) already paid for.

        The default returns ``None``: the engine then pickles the object
        whole — correct for plain table/array state, and a loud failure for
        closures or other unpicklable captures, which the process backend
        turns into a graceful vectorized fallback.
        """
        return None

    @classmethod
    def from_worker_payload(cls, arrays: dict, params: dict) -> "SubsetDistribution":
        """Rebuild a distribution described by :meth:`worker_payload`."""
        raise NotImplementedError(
            f"{cls.__name__} does not implement the worker-payload contract"
        )

    def absorb_worker_arrays(self, arrays: dict) -> None:
        """Install artifact arrays a worker process materialized and shipped back.

        The process backend's write-back path: when this (cold) distribution
        is shipped via :meth:`worker_payload`, workers derive the lazy
        artifacts (eigendecompositions, PSD factors, marginal kernels) the
        parent never computed, and return the ones missing from the shipped
        payload.  Absorbing them makes the parent warm — later rounds (the
        batch normalizer, a planner re-route to in-process execution, the
        next ``worker_payload`` shipment) skip the recomputation.

        Implementations must only accept arrays their own lazy getters would
        have produced bit-identically (the :meth:`worker_payload` round-trip
        contract), and must ignore names they do not recognize — a stale or
        foreign entry must never corrupt state.  The default accepts
        nothing, which is always safe.
        """

    def artifact_cache_key(self) -> Optional[str]:
        """Factorization-cache fingerprint for this distribution's kernel.

        Must equal what :meth:`repro.service.registry.KernelRegistry.register`
        would derive for the same ensemble (``utils/fingerprint.kernel_fingerprint``
        with the right ``kind``) — that key, not the bare array digest, is
        how the serving layer addresses the shared
        :class:`~repro.service.cache.FactorizationCache`, and the process
        backend's artifact write-back seeds entries under it so a later
        registration of the same kernel starts warm.  ``None`` (the default)
        opts out of cache seeding.
        """
        return None

    # ------------------------------------------------------------------ #
    # execution-cost hint (the engine's cost-aware planner)
    # ------------------------------------------------------------------ #
    def oracle_cost_hint(self) -> OracleCostHint:
        """Structural cost facts about this distribution's oracle batches.

        The :class:`~repro.engine.planner.RoundPlanner` combines the hint
        with the calibrated PRAM cost model to route each
        :class:`~repro.engine.batch.OracleBatch` to the cheapest backend.
        The default is honest about the generic implementation: queries cost
        a ``matrix_order``-sized computation of GIL-bound Python (the scalar
        ``counting`` loop), and ``counting_batch`` does not vectorize.
        Structured subclasses override with their real profile.
        """
        return OracleCostHint(matrix_order=self.n, python_fraction=1.0,
                              batch_vectorized=False,
                              update_depth=self.update_depth)

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def cardinality(self) -> Optional[int]:
        """Fixed sample cardinality ``k`` for homogeneous distributions, else ``None``."""
        return None

    def partition_function(self) -> float:
        """Total unnormalized mass ``Σ_S μ(S)``."""
        return self.counting(())

    def unnormalized(self, subset: Iterable[int]) -> float:
        """``μ(S)`` for a full-size subset ``S`` (via the counting oracle)."""
        items = check_subset(subset, self.n)
        return self.counting(items)

    def probability(self, subset: Iterable[int]) -> float:
        """Normalized probability of ``subset``."""
        z = self.partition_function()
        if z <= 0:
            raise ValueError("distribution has zero total mass")
        return self.unnormalized(subset) / z

    def joint_marginal(self, subset: Iterable[int]) -> float:
        """``P_{S ~ μ}[T ⊆ S]`` for ``T = subset``."""
        items = check_subset(subset, self.n)
        z = self.partition_function()
        if z <= 0:
            raise ValueError("distribution has zero total mass")
        return self.counting(items) / z

    # ------------------------------------------------------------------ #
    # batched oracle queries (one adaptive round; see repro.engine)
    # ------------------------------------------------------------------ #
    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Counting-oracle answers for many subsets in one batched round.

        The generic default loops the scalar oracle; structured subclasses
        (DPPs, explicit tables) override it with one vectorized pass so the
        :class:`~repro.engine.backends.VectorizedBackend` actually fans out.
        """
        return np.array([self.counting(subset) for subset in subsets], dtype=float)

    def joint_marginals_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """``P[T ⊆ S]`` for many subsets ``T`` in one batched round.

        The normalizer ``μ([n])`` is computed exactly once per batch.
        """
        z = self.partition_function()
        if z <= 0:
            raise ValueError("distribution has zero total mass")
        return np.clip(self.counting_batch(subsets) / z, 0.0, None)

    def marginal(self, element: int, given: Iterable[int] = ()) -> float:
        """Conditional marginal ``P[element ∈ S | given ⊆ S]``."""
        base = check_subset(given, self.n)
        if element in base:
            return 1.0
        denom = self.counting(base)
        if denom <= 0:
            raise ValueError(f"conditioning event {base} has zero probability")
        numer = self.counting(tuple(sorted(base + (int(element),))))
        return numer / denom

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        """All conditional marginals ``P[i ∈ S | given ⊆ S]`` in one batched round.

        Elements already in ``given`` get marginal 1.  This default issues
        ``n`` counting-oracle queries in a single adaptive round; DPP
        subclasses override it with a single marginal-kernel computation.

        Raises
        ------
        CountingOracleError
            If any counting query returns a significantly negative value —
            the oracle contract is violated and the proposal distribution
            built from these marginals would be meaningless.  Values are
            validated in one vectorized pass after the round; tiny negative
            floating-point noise is clipped to zero.
        """
        base = check_subset(given, self.n)
        denom = self.counting(base)
        if denom <= 0:
            raise ValueError(f"conditioning event {base} has zero probability")
        base_set = set(base)
        outside = [i for i in range(self.n) if i not in base_set]
        queries = [tuple(sorted(base + (i,))) for i in outside]
        values = np.full(self.n, denom, dtype=float)
        tracker = current_tracker()
        with tracker.round("marginal_vector"):
            tracker.charge(machines=float(self.n))
            values[outside] = self.counting_batch(queries)
        # one vectorized validation pass over the whole round's answers
        tolerance = 1e-12 * max(float(np.abs(values).max(initial=0.0)), denom, 1.0)
        invalid = np.flatnonzero(values < -tolerance)
        if invalid.size:
            worst = invalid[np.argmin(values[invalid])]
            raise CountingOracleError(
                f"counting oracle returned negative values for {invalid.size} "
                f"element(s) {invalid[:5].tolist()} given {base}; worst offender: "
                f"element {int(worst)} with value {values[worst]:.6g}"
            )
        return np.clip(np.clip(values, 0.0, None) / denom, 0.0, 1.0)

    def cardinality_distribution(self) -> np.ndarray:
        """``P[|S| = t]`` for ``t = 0..n`` (brute force default; DPPs override)."""
        if self.cardinality is not None:
            point_mass = np.zeros(self.n + 1, dtype=float)
            point_mass[self.cardinality] = 1.0
            return point_mass
        weights = np.zeros(self.n + 1, dtype=float)
        for size in range(self.n + 1):
            for subset in all_subsets_of_size(self.n, size):
                weights[size] += self.unnormalized(subset)
        total = weights.sum()
        if total <= 0:
            raise ValueError("distribution has zero total mass")
        return weights / total

    def expected_size(self) -> float:
        """``E[|S|]`` under the normalized distribution."""
        dist = self.cardinality_distribution()
        return float(np.dot(np.arange(dist.size), dist))

    # ------------------------------------------------------------------ #
    # brute-force materialization (small n only; ground truth in tests)
    # ------------------------------------------------------------------ #
    def enumerate_support(self, max_ground_set: int = 20):
        """Yield ``(subset, unnormalized_weight)`` pairs for all subsets.

        Guarded by ``max_ground_set`` because the enumeration is exponential.
        Homogeneous distributions only enumerate size-``k`` subsets.
        """
        if self.n > max_ground_set:
            raise ValueError(
                f"refusing to enumerate 2^{self.n} subsets; raise max_ground_set "
                "explicitly if you really want this"
            )
        k = self.cardinality
        sizes = [k] if k is not None else range(self.n + 1)
        for size in sizes:
            for subset in all_subsets_of_size(self.n, size):
                weight = self.unnormalized(subset)
                if weight > 0:
                    yield subset_key(subset), weight

    def to_explicit(self, max_ground_set: int = 20) -> "ExplicitDistribution":
        """Materialize the distribution as a normalized probability table."""
        from repro.distributions.generic import ExplicitDistribution

        table = dict(self.enumerate_support(max_ground_set=max_ground_set))
        return ExplicitDistribution(self.n, table, cardinality=self.cardinality)


class HomogeneousDistribution(SubsetDistribution):
    """A distribution supported on subsets of a fixed size ``k``."""

    k: int

    @property
    def cardinality(self) -> Optional[int]:
        return self.k

    def cardinality_distribution(self) -> np.ndarray:
        dist = np.zeros(self.n + 1, dtype=float)
        dist[self.k] = 1.0
        return dist

    def expected_size(self) -> float:
        return float(self.k)
