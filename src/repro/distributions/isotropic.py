"""Isotropic (subdivision) transformation — Definition 30 / Proposition 32.

Given ``μ`` on ``C([n], k)`` with marginals ``p_i``, the subdivision creates
``t_i = ceil(n p_i / (β k))`` copies of element ``i``; the lifted distribution
``μ_iso`` spreads each atom's mass uniformly over the choices of copies.  The
lifted measure has nearly uniform 1-marginals (Proposition 32), preserves
``1/α``-entropic independence (Proposition 31), and sampling from ``μ_iso``'s
ℓ-marginals is equivalent to sampling from ``μ_ℓ`` (Remark 33): simply forget
which copy was chosen.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.generic import ExplicitDistribution
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import subset_key


class IsotropicTransform:
    """Bookkeeping for the Definition 30 subdivision of a ground set.

    Parameters
    ----------
    marginals:
        Vector ``p`` of marginals of the original distribution
        (``Σ p_i = k`` for homogeneous distributions).
    k:
        The cardinality parameter of the original distribution.
    beta:
        Subdivision parameter ``β ∈ (0, 1)``; smaller ``β`` means more copies
        and tighter marginal bounds (the paper sets ``√β = ε / (32 k)``).
    """

    def __init__(self, marginals: Sequence[float], k: int, beta: float):
        p = np.asarray(marginals, dtype=float)
        if p.ndim != 1:
            raise ValueError("marginals must be a vector")
        if np.any(p < -1e-12) or np.any(p > 1 + 1e-12):
            raise ValueError("marginals must lie in [0, 1]")
        if not 0 < beta < 1:
            raise ValueError(f"beta must lie in (0, 1), got {beta}")
        if k <= 0:
            raise ValueError("k must be positive")
        self.original_marginals = np.clip(p, 0.0, 1.0)
        self.n = p.size
        self.k = int(k)
        self.beta = float(beta)
        # t_i = ceil(n p_i / (beta k)); elements with zero marginal keep one
        # (never-chosen) copy so the index bookkeeping stays total.
        raw = np.ceil(self.n * self.original_marginals / (self.beta * self.k)).astype(int)
        self.copy_counts = np.maximum(raw, 1)
        self.offsets = np.concatenate([[0], np.cumsum(self.copy_counts)])
        self.size = int(self.offsets[-1])
        # copy -> original element lookup
        self._owner = np.repeat(np.arange(self.n), self.copy_counts)

    # ------------------------------------------------------------------ #
    # index maps
    # ------------------------------------------------------------------ #
    def original_of(self, copy_index: int) -> int:
        """Original element that copy ``copy_index`` belongs to."""
        if not 0 <= copy_index < self.size:
            raise ValueError(f"copy index {copy_index} out of range [0, {self.size})")
        return int(self._owner[copy_index])

    def originals_of(self, copy_indices: Iterable[int]) -> Tuple[int, ...]:
        """Vectorized :meth:`original_of` preserving order (may contain repeats)."""
        arr = np.asarray(list(copy_indices), dtype=int)
        if arr.size and (arr.min() < 0 or arr.max() >= self.size):
            raise ValueError("copy index out of range")
        return tuple(int(i) for i in self._owner[arr]) if arr.size else ()

    def copies_of(self, element: int) -> Tuple[int, ...]:
        """All copy indices of an original element."""
        if not 0 <= element < self.n:
            raise ValueError(f"element {element} out of range")
        return tuple(range(int(self.offsets[element]), int(self.offsets[element + 1])))

    # ------------------------------------------------------------------ #
    # lifted quantities
    # ------------------------------------------------------------------ #
    def lifted_marginals(self) -> np.ndarray:
        """Marginals of ``μ_iso``: ``p_i / t_i`` for every copy of ``i``."""
        return self.original_marginals[self._owner] / self.copy_counts[self._owner]

    def marginal_bounds(self) -> Tuple[float, float, float]:
        """``(C, lower, upper)`` of Proposition 32: ``C = 1 + √β`` and the
        bounds ``k / (C |U|)`` (for well-represented elements) and ``C k / |U|``."""
        C = 1.0 + math.sqrt(self.beta)
        return C, self.k / (C * self.size), C * self.k / self.size

    def well_represented(self) -> np.ndarray:
        """Boolean mask over copies in the set ``R`` of Proposition 32
        (copies of elements with ``p_i >= √β · k / n``)."""
        threshold = math.sqrt(self.beta) * self.k / self.n
        return (self.original_marginals >= threshold)[self._owner]

    def ground_set_bounds(self) -> Tuple[float, float]:
        """Proposition 32.3 bounds on ``|U|``: ``n/β <= |U| <= n (1 + 1/β)``."""
        return self.n / self.beta, self.n * (1.0 + 1.0 / self.beta)

    # ------------------------------------------------------------------ #
    # lifting samples / distributions
    # ------------------------------------------------------------------ #
    def lift_sample(self, subset: Iterable[int], seed: SeedLike = None) -> Tuple[int, ...]:
        """Lift a sample of ``μ`` to a sample of ``μ_iso`` by choosing a uniform copy."""
        rng = as_generator(seed)
        lifted = []
        for element in subset:
            copies = self.copies_of(int(element))
            lifted.append(int(rng.choice(copies)))
        return subset_key(lifted)

    def project_sample(self, copies: Iterable[int]) -> Tuple[int, ...]:
        """Project a ``μ_iso`` sample back to original labels (Remark 33)."""
        originals = self.originals_of(copies)
        if len(set(originals)) != len(originals):
            raise ValueError("lifted sample contains two copies of the same element")
        return subset_key(originals)

    def lift_explicit(self, mu: ExplicitDistribution) -> ExplicitDistribution:
        """Materialize ``μ_iso`` as an explicit table (small instances / tests)."""
        if mu.n != self.n:
            raise ValueError("distribution ground set does not match the transform")
        from itertools import product

        table: Dict[Tuple[int, ...], float] = {}
        for subset, weight in mu.items():
            copy_lists = [self.copies_of(i) for i in subset]
            denom = float(np.prod([len(c) for c in copy_lists])) if copy_lists else 1.0
            share = weight / denom
            for combo in product(*copy_lists):
                key = subset_key(combo)
                table[key] = table.get(key, 0.0) + share
        return ExplicitDistribution(self.size, table, cardinality=mu.cardinality)
