"""Negative correlation diagnostics (Lemma 16 / Corollary 18).

A strongly Rayleigh distribution satisfies
``P[T ⊆ S] <= ∏_{i in T} P[i ∈ S]`` for every ``T``.  Symmetric DPPs and
k-DPPs are strongly Rayleigh (Lemma 17), which is what powers the clean
``exp(-ℓ²/k)`` acceptance bound of Lemma 27.  Nonsymmetric DPPs generally are
*not* negatively correlated — the diagnostics here are used both to verify the
positive cases and to exhibit the violations the paper's Section 1.2 discusses.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

import numpy as np

from repro.distributions.generic import ExplicitDistribution
from repro.utils.subsets import Subset


def negative_correlation_violations(mu: ExplicitDistribution, *, max_order: Optional[int] = None,
                                    tol: float = 1e-10) -> List[Tuple[Subset, float, float]]:
    """All subsets ``T`` violating ``P[T ⊆ S] <= ∏_{i in T} P[i ∈ S]``.

    Returns a list of ``(T, joint, product)`` triples with ``joint > product + tol``,
    checking all ``T`` of size 2..max_order (default: the distribution's
    cardinality, or ``n`` for unconstrained distributions).
    """
    n = mu.n
    z = mu.counting(())
    singles = mu.marginal_vector()
    upper = max_order if max_order is not None else (mu.cardinality or n)
    violations: List[Tuple[Subset, float, float]] = []
    for order in range(2, min(upper, n) + 1):
        for subset in combinations(range(n), order):
            joint = mu.counting(subset) / z
            if joint <= 0:
                continue
            product = float(np.prod(singles[list(subset)]))
            if joint > product + tol * max(1.0, product):
                violations.append((subset, joint, product))
    return violations


def is_negatively_correlated(mu: ExplicitDistribution, *, max_order: Optional[int] = None,
                             tol: float = 1e-10) -> bool:
    """True iff no negative-correlation violations are found (brute force)."""
    return not negative_correlation_violations(mu, max_order=max_order, tol=tol)
