"""Shared-memory array transport for the process execution backend.

The :class:`~repro.engine.backends.ProcessPoolBackend` answers one adaptive
round's oracle queries in worker *processes*.  Shipping the kernel/ensemble
matrices with every round would serialize hundreds of kilobytes per batch, so
this module places each distinct array in :mod:`multiprocessing.shared_memory`
**once** and ships only a tiny :class:`ArrayRef` (segment name + shape + dtype
+ content fingerprint).  Both sides cache by fingerprint:

* the parent's :class:`SharedArrayStore` publishes each distinct array once
  (LRU over segments; evicted segments are unlinked), so repeated rounds
  against the same kernel ship only query indices;
* each worker keeps a per-process attach cache
  (:func:`attach_shared_array`), so a kernel is mapped once per worker no
  matter how many chunks it answers.

Spawn-method caveat: refs are resolved by *name* through the filesystem
(``/dev/shm`` on Linux), so they work under any start method, including the
default (and safest) ``spawn``.  Ownership is asymmetric: workers only ever
``close()`` their attachments — the parent store is the single place that
``unlink()``s, on eviction and at :meth:`SharedArrayStore.close` (hooked into
:mod:`atexit` by the process backend).  Spawned pool workers share the
parent's ``resource_tracker`` process, so this single-unlink discipline keeps
its registration bookkeeping balanced — no spurious leak warnings on
3.10–3.12.

When shared memory is unavailable (``/dev/shm`` mounted ``noexec``/missing,
seccomp denials in sandboxes, ...), :func:`shared_memory_available` reports it
and the process backend falls back to the vectorized backend instead of
failing mid-round.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.fingerprint import array_fingerprint

__all__ = [
    "ArrayRef",
    "SharedArrayStore",
    "attach_shared_array",
    "release_worker_caches",
    "shared_memory_available",
]


@dataclass(frozen=True)
class ArrayRef:
    """Picklable handle to one published array.

    ``name`` addresses a shared-memory segment; ``fingerprint`` is the
    content key both sides cache by.  When ``name`` is ``None`` the array
    travels inline in ``data`` (the pickle-only transport used by the
    payload round-trip contract and by tests).
    """

    shape: Tuple[int, ...]
    dtype: str
    fingerprint: str
    name: Optional[str] = None
    data: Optional[np.ndarray] = None

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


def _probe_shared_memory() -> bool:
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=8)
        try:
            segment.close()
        finally:
            segment.unlink()
        return True
    except Exception:
        return False


_SHM_AVAILABLE: Optional[bool] = None
_SHM_PROBE_LOCK = threading.Lock()


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works here (probed once)."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        with _SHM_PROBE_LOCK:
            if _SHM_AVAILABLE is None:
                _SHM_AVAILABLE = _probe_shared_memory()
    return _SHM_AVAILABLE


class SharedArrayStore:
    """Parent-side publisher: content-fingerprinted arrays → shm segments.

    ``capacity`` bounds live segments (LRU; eviction unlinks).  The store is
    thread-safe — concurrent sessions fusing rounds through one process
    backend publish through the same store.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_segments",)}

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._segments: "OrderedDict[str, Tuple[object, ArrayRef]]" = OrderedDict()

    def publish(self, array: np.ndarray) -> ArrayRef:
        """Place ``array`` in shared memory (once per content) and return its ref."""
        from multiprocessing import shared_memory

        a = np.ascontiguousarray(array)
        fingerprint = array_fingerprint(a)
        with self._lock:
            cached = self._segments.get(fingerprint)
            if cached is not None:
                self._segments.move_to_end(fingerprint)
                return cached[1]
        segment = shared_memory.SharedMemory(create=True, size=max(a.nbytes, 1))
        np.ndarray(a.shape, dtype=a.dtype, buffer=segment.buf)[...] = a
        ref = ArrayRef(shape=tuple(a.shape), dtype=str(a.dtype),
                       fingerprint=fingerprint, name=segment.name)
        evicted = []
        with self._lock:
            raced = self._segments.get(fingerprint)
            if raced is not None:  # another thread published the same content
                self._segments.move_to_end(fingerprint)
                evicted.append(segment)
                ref = raced[1]
            else:
                self._segments[fingerprint] = (segment, ref)
                while len(self._segments) > self.capacity:
                    _, (old_segment, _old_ref) = self._segments.popitem(last=False)
                    evicted.append(old_segment)
        for seg in evicted:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        return ref

    def close(self) -> None:
        """Unlink every live segment (idempotent)."""
        with self._lock:
            segments = [seg for seg, _ in self._segments.values()]
            self._segments.clear()
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def nbytes(self) -> int:
        """Total bytes of live published segments."""
        with self._lock:
            return sum(ref.nbytes for _, ref in self._segments.values())


# ---------------------------------------------------------------------- #
# worker side: per-process attach cache
# ---------------------------------------------------------------------- #
_ATTACH_CAPACITY = 32
_attached: "OrderedDict[str, Tuple[object, np.ndarray]]" = OrderedDict()


def _drop_attachment(segment) -> None:
    """Forget a cached attachment WITHOUT unmapping it.

    Views into the segment may still be referenced by worker-cached
    distributions; calling ``segment.close()`` would unmap memory under
    them and crash the worker on next use.  The mapping is freed by the
    garbage collector with the last referencing view — only the (duplicated)
    descriptor is released eagerly so cache churn cannot exhaust fds.
    """
    fd = getattr(segment, "_fd", -1)
    if isinstance(fd, int) and fd >= 0:
        try:
            os.close(fd)
            segment._fd = -1
        except OSError:  # pragma: no cover - already closed elsewhere
            pass


def attach_shared_array(ref: ArrayRef) -> np.ndarray:
    """Resolve ``ref`` to a read-only array, caching attachments by fingerprint.

    Inline refs (``name is None``) pass their payload through; shm refs are
    mapped once per process — subsequent batches against the same kernel cost
    a dictionary lookup, not a segment attach.
    """
    if not isinstance(ref, ArrayRef):
        return np.asarray(ref)  # identity transport: the token is the array
    if ref.name is None:
        if ref.data is None:
            raise ValueError("inline ArrayRef carries no data")
        return np.asarray(ref.data)
    cached = _attached.get(ref.fingerprint)
    if cached is not None:
        _attached.move_to_end(ref.fingerprint)
        return cached[1]
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=ref.name)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    view.flags.writeable = False
    _attached[ref.fingerprint] = (segment, view)
    while len(_attached) > _ATTACH_CAPACITY:
        old_segment, _old_view = _attached.popitem(last=False)[1]
        _drop_attachment(old_segment)
    return view


def release_worker_caches() -> None:
    """Forget every cached attachment (worker shutdown / tests).

    Mappings are left for the garbage collector for the same
    use-after-unmap reason as LRU eviction (see :func:`_drop_attachment`).
    """
    while _attached:
        segment, _view = _attached.popitem(last=False)[1]
        _drop_attachment(segment)
