"""Pluggable execution backends for :class:`~repro.engine.batch.OracleBatch`.

A backend decides *how* one adaptive round's independent oracle queries are
answered; it never changes *what* is asked, so fixed-seed sampler runs produce
identical samples no matter which backend executes them.

* :class:`SerialBackend` — the reference loop over scalar ``counting()``
  calls; what the pre-engine drivers did implicitly.
* :class:`VectorizedBackend` — dispatches to the distribution's batch-aware
  oracles (``counting_batch`` / ``joint_marginals_batch``), which fan out via
  the stacked NumPy primitives in :mod:`repro.linalg.batch`.
* :class:`ThreadPoolBackend` — ``concurrent.futures`` fan-out of scalar
  queries; NumPy releases the GIL inside LAPACK so large per-query
  determinants overlap on multicore hosts.

Every backend charges the PRAM tracker identically: one adaptive round per
batch, ``n_queries`` machines, with per-query determinant work charged by the
oracles themselves — so depth/work accounting and wall-clock measurement live
side by side in :class:`~repro.engine.batch.OracleBatchResult`.
"""

from __future__ import annotations

import abc
import math
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.batch import OracleBatch, OracleBatchResult
from repro.linalg.batch import grouped_log_principal_minors
from repro.pram.tracker import Tracker, current_tracker, use_tracker


class ExecutionBackend(abc.ABC):
    """Strategy for answering one :class:`OracleBatch`."""

    #: short identifier used by ``configure_backend`` and reports
    name: str = "abstract"

    def execute(self, batch: OracleBatch, *, tracker: Optional[Tracker] = None) -> OracleBatchResult:
        """Answer ``batch`` inside one adaptive round of ``tracker``."""
        trk = tracker if tracker is not None else current_tracker()
        start = time.perf_counter()
        with trk.round(batch.label):
            trk.charge(machines=float(batch.n_queries))
            with use_tracker(trk):
                values = self._dispatch(batch, trk)
        return OracleBatchResult(
            values=np.asarray(values),
            backend=self.name,
            wall_time=time.perf_counter() - start,
            n_queries=batch.n_queries,
        )

    # ------------------------------------------------------------------ #
    def _dispatch(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        if batch.kind == "counting":
            return self._counting(batch, tracker)
        if batch.kind == "joint_marginals":
            return self._joint_marginals(batch, tracker)
        if batch.kind == "marginal_vector":
            return self._marginal_vector(batch, tracker)
        return self._log_principal_minors(batch, tracker)

    def _marginal_vector(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        # All backends use the distribution's native single-round route: it is
        # already vectorized per distribution, and sharing it keeps the
        # proposal numerics identical across backends.
        assert batch.distribution is not None
        return batch.distribution.marginal_vector(batch.given)

    @abc.abstractmethod
    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        """Raw counting values for ``batch.subsets``."""

    @abc.abstractmethod
    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        """``P[T ⊆ S]`` for ``batch.subsets``."""

    @abc.abstractmethod
    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        """``log det(M_{T,T})`` (``-inf`` on nonpositive minors)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Reference implementation: a Python loop of scalar oracle calls."""

    name = "serial"

    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.array([dist.counting(s) for s in batch.subsets], dtype=float)

    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        z = batch.normalizer()
        values = np.array([dist.counting(s) for s in batch.subsets], dtype=float)
        return np.clip(values / z, 0.0, None)

    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        matrix = batch.matrix
        assert matrix is not None
        values = np.full(len(batch.subsets), -np.inf)
        for pos, subset in enumerate(batch.subsets):
            m = len(subset)
            tracker.charge_determinant(m)
            if m == 0:
                values[pos] = 0.0
                continue
            idx = np.asarray(subset, dtype=int)
            sign, logdet = np.linalg.slogdet(matrix[np.ix_(idx, idx)])
            if sign > 0:
                values[pos] = logdet
        return values


class VectorizedBackend(ExecutionBackend):
    """One stacked NumPy call per batch via the distributions' batch oracles."""

    name = "vectorized"

    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.asarray(dist.counting_batch(batch.subsets), dtype=float)

    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.asarray(dist.joint_marginals_batch(batch.subsets), dtype=float)

    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        assert batch.matrix is not None
        return grouped_log_principal_minors(batch.matrix, batch.subsets)


class ThreadPoolBackend(ExecutionBackend):
    """``concurrent.futures`` fan-out of scalar queries across worker threads.

    Workers run under private child trackers (the module-level current
    tracker is a :mod:`contextvars` variable, so worker threads would
    otherwise charge an unrelated sink); their work/oracle-call totals are
    merged into the round's tracker after the batch completes, keeping the
    accounting equivalent to :class:`SerialBackend` without cross-thread
    mutation.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers

    def _map_chunks(self, worker, items: Sequence, tracker: Tracker) -> List:
        if not items:
            return []
        pool_size = self.max_workers or min(32, len(items))
        chunk = max(1, int(math.ceil(len(items) / pool_size)))
        chunks = [items[i:i + chunk] for i in range(0, len(items), chunk)]

        def run_chunk(part):
            child = tracker.spawn()
            with use_tracker(child):
                return [worker(item) for item in part], child

        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            outputs = list(pool.map(run_chunk, chunks))
        results: List = []
        for part_values, child in outputs:
            results.extend(part_values)
            tracker.charge(work=child.work, oracle_calls=child.oracle_calls)
        return results

    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.array(self._map_chunks(dist.counting, batch.subsets, tracker), dtype=float)

    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        z = batch.normalizer()
        values = np.array(self._map_chunks(dist.counting, batch.subsets, tracker), dtype=float)
        return np.clip(values / z, 0.0, None)

    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        matrix = batch.matrix
        assert matrix is not None

        def one(subset):
            m = len(subset)
            current_tracker().charge_determinant(m)
            if m == 0:
                return 0.0
            idx = np.asarray(subset, dtype=int)
            sign, logdet = np.linalg.slogdet(matrix[np.ix_(idx, idx)])
            return logdet if sign > 0 else -np.inf

        return np.array(self._map_chunks(one, batch.subsets, tracker), dtype=float)
