"""Pluggable execution backends for :class:`~repro.engine.batch.OracleBatch`.

A backend decides *how* one adaptive round's independent oracle queries are
answered; it never changes *what* is asked, so fixed-seed sampler runs produce
identical samples no matter which backend executes them.

* :class:`SerialBackend` — the reference loop over scalar ``counting()``
  calls; what the pre-engine drivers did implicitly.
* :class:`VectorizedBackend` — dispatches to the distribution's batch-aware
  oracles (``counting_batch`` / ``joint_marginals_batch``), which fan out via
  the stacked NumPy primitives in :mod:`repro.linalg.batch`.
* :class:`ThreadPoolBackend` — ``concurrent.futures`` fan-out of scalar
  queries; NumPy releases the GIL inside LAPACK so large per-query
  determinants overlap on multicore hosts.
* :class:`ProcessPoolBackend` — worker *processes* fed through
  :mod:`multiprocessing.shared_memory` (:mod:`repro.engine.shm`), so
  GIL-bound pure-Python oracle paths (ESP tables, charpoly minor sums,
  partition grids) get real multicore parallelism.

Every backend charges the PRAM tracker identically: one adaptive round per
batch, ``n_queries`` machines, with per-query determinant work charged by the
oracles themselves — so depth/work accounting and wall-clock measurement live
side by side in :class:`~repro.engine.batch.OracleBatchResult`.
"""

from __future__ import annotations

import abc
import atexit
import math
import os
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.engine.batch import BatchPayload, OracleBatch, OracleBatchResult
from repro.linalg.batch import grouped_log_principal_minors, hkpv_projection_step
from repro.pram.tracker import Tracker, current_tracker, use_tracker


@dataclass(frozen=True)
class BackendTraits:
    """Capability/overhead descriptor a backend reports to the planner.

    The overhead fields are *priors*: the
    :class:`~repro.engine.planner.RoundPlanner` replaces
    ``dispatch_overhead_s`` with a per-process calibrated probe the first
    time it seriously considers the backend, so the traits only need to land
    in the right decade.

    Attributes
    ----------
    parallelism:
        Concurrent lanes the backend fans a batch out to (1 for the
        in-process backends).
    escapes_gil:
        Whether GIL-bound (pure-Python) oracle work actually runs on
        ``parallelism`` lanes — only true for worker *processes*; thread
        lanes serialize the Python-lane share of a batch.
    scalar_loop:
        Whether queries are answered through scalar ``counting()`` calls
        (serial/threads) instead of the distributions' stacked batch
        oracles, forfeiting the vectorized fan-out.
    dispatch_overhead_s:
        Fixed cost of launching one batch (thread-pool handoff, or the
        process backend's IPC round trip + payload publication).
    per_query_overhead_s:
        Marginal per-query dispatch cost (future bookkeeping, pickling of
        query indices).
    """

    name: str
    parallelism: int = 1
    escapes_gil: bool = False
    scalar_loop: bool = False
    dispatch_overhead_s: float = 0.0
    per_query_overhead_s: float = 0.0


#: a ``_dispatch`` return: plain values, or ``(values, artifacts)``
_DispatchReturn = Union[np.ndarray, Tuple[np.ndarray, Dict[str, object]]]


class ExecutionBackend(abc.ABC):
    """Strategy for answering one :class:`OracleBatch`."""

    #: short identifier used by ``configure_backend`` and reports
    name: str = "abstract"

    def execute(self, batch: OracleBatch, *, tracker: Optional[Tracker] = None) -> OracleBatchResult:
        """Answer ``batch`` inside one adaptive round of ``tracker``."""
        trk = tracker if tracker is not None else current_tracker()
        # inside a traced request this round becomes a child span; the
        # context stays active through _dispatch so the process backend can
        # ship it to worker chunks (obs.round_context() is None when off)
        trace_context = obs.round_context()
        start = time.perf_counter()
        with trk.round(batch.label):
            trk.charge(machines=float(batch.n_queries))
            with use_tracker(trk), obs.activate(trace_context):
                values = self._dispatch(batch, trk)
        artifacts: Dict[str, object] = {}
        if isinstance(values, tuple):
            values, artifacts = values
        result = OracleBatchResult(
            values=np.asarray(values),
            backend=self.name,
            wall_time=time.perf_counter() - start,
            n_queries=batch.n_queries,
            artifacts=artifacts,
        )
        obs.record_round(batch, result, context=trace_context)
        return result

    def traits(self) -> BackendTraits:
        """This backend's capability/overhead descriptor (see :class:`BackendTraits`)."""
        return BackendTraits(name=self.name)

    def shipping_bytes(self, batch: OracleBatch) -> int:
        """Payload bytes executing ``batch`` would move out of this process.

        In-process backends move nothing.  The process backend estimates the
        not-yet-published share of the batch's kernel payload so the planner
        can price shm/pickle publication explicitly (wide matrix-backed
        rounds pay it on their first shipment only — repeated rounds against
        the same arrays ship just query indices).
        """
        return 0

    # ------------------------------------------------------------------ #
    def _dispatch(self, batch: OracleBatch, tracker: Tracker) -> _DispatchReturn:
        if batch.kind == "counting":
            return self._counting(batch, tracker)
        if batch.kind == "joint_marginals":
            return self._joint_marginals(batch, tracker)
        if batch.kind == "marginal_vector":
            return self._marginal_vector(batch, tracker)
        if batch.kind == "projection_step":
            return self._projection_step(batch, tracker)
        return self._log_principal_minors(batch, tracker)

    def _marginal_vector(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        # All backends use the distribution's native single-round route: it is
        # already vectorized per distribution, and sharing it keeps the
        # proposal numerics identical across backends.
        assert batch.distribution is not None
        return batch.distribution.marginal_vector(batch.given)

    def _projection_step(self, batch: OracleBatch, tracker: Tracker) -> _DispatchReturn:
        """One HKPV phase-2 round — a fixed route shared by every backend.

        Like ``marginal_vector``, this kind has exactly one numerical route
        (:func:`repro.linalg.batch.hkpv_projection_step`), so forcing any
        backend — or letting the planner choose — cannot perturb the
        sequential sampler's randomness.  Shipping a per-step mutated basis
        to worker processes could never beat the in-process stacked QR (the
        basis changes every round, so nothing amortizes), which is why no
        backend overrides this.
        """
        basis = batch.matrix
        assert basis is not None
        stacked = basis if basis.ndim == 3 else basis[None]
        eliminate = batch.given if batch.given else None
        weights, bases = hkpv_projection_step(stacked, eliminate)
        return weights.reshape(-1), {"bases": bases}

    @abc.abstractmethod
    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        """Raw counting values for ``batch.subsets``."""

    @abc.abstractmethod
    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        """``P[T ⊆ S]`` for ``batch.subsets``."""

    @abc.abstractmethod
    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        """``log det(M_{T,T})`` (``-inf`` on nonpositive minors)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Reference implementation: a Python loop of scalar oracle calls."""

    name = "serial"

    def traits(self) -> BackendTraits:
        return BackendTraits(name=self.name, scalar_loop=True)

    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.array([dist.counting(s) for s in batch.subsets], dtype=float)

    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        z = batch.normalizer()
        values = np.array([dist.counting(s) for s in batch.subsets], dtype=float)
        return np.clip(values / z, 0.0, None)

    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        matrix = batch.matrix
        assert matrix is not None
        values = np.full(len(batch.subsets), -np.inf)
        for pos, subset in enumerate(batch.subsets):
            m = len(subset)
            tracker.charge_determinant(m)
            if m == 0:
                values[pos] = 0.0
                continue
            idx = np.asarray(subset, dtype=int)
            sign, logdet = np.linalg.slogdet(matrix[np.ix_(idx, idx)])
            if sign > 0:
                values[pos] = logdet
        return values


class VectorizedBackend(ExecutionBackend):
    """One stacked NumPy call per batch via the distributions' batch oracles."""

    name = "vectorized"

    def traits(self) -> BackendTraits:
        # single-threaded in-process execution: no dispatch cost at all, and
        # the stacked batch oracles are the baseline every other backend's
        # overhead is weighed against
        return BackendTraits(name=self.name)

    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.asarray(dist.counting_batch(batch.subsets), dtype=float)

    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.asarray(dist.joint_marginals_batch(batch.subsets), dtype=float)

    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        assert batch.matrix is not None
        return grouped_log_principal_minors(batch.matrix, batch.subsets)


class ThreadPoolBackend(ExecutionBackend):
    """``concurrent.futures`` fan-out of scalar queries across worker threads.

    Workers run under private child trackers (the module-level current
    tracker is a :mod:`contextvars` variable, so worker threads would
    otherwise charge an unrelated sink); their work/oracle-call totals are
    merged into the round's tracker after the batch completes, keeping the
    accounting equivalent to :class:`SerialBackend` without cross-thread
    mutation.

    The executor is created lazily on first use and **reused across
    batches** (constructing a pool per :class:`OracleBatch` used to dominate
    the cost of small rounds); :meth:`close` shuts it down explicitly, and an
    :mod:`atexit` hook covers process teardown.  The executor itself is
    thread-safe, so concurrent sampler sessions can share one backend.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._atexit_registered = False

    @property
    def workers(self) -> int:
        """Resolved pool size (mirrors the ``concurrent.futures`` default)."""
        return self.max_workers or min(32, (os.cpu_count() or 1) + 4)

    def traits(self) -> BackendTraits:
        # effective lanes are host-capped: a 4-worker pool on a 1-core box
        # overlaps nothing, and the planner must know that
        return BackendTraits(
            name=self.name, parallelism=min(self.workers, os.cpu_count() or 1),
            escapes_gil=False, scalar_loop=True,
            dispatch_overhead_s=5e-4, per_query_overhead_s=1e-5,
        )

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-oracle")
                if not self._atexit_registered:  # once per instance
                    self._atexit_registered = True
                    atexit.register(self.close)
            return self._pool

    def close(self) -> None:
        """Shut the (lazily created) executor down; later batches recreate it."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _map_chunks(self, worker, items: Sequence, tracker: Tracker) -> List:
        if not items:
            return []
        fan_out = min(self.workers, len(items))
        chunk = max(1, int(math.ceil(len(items) / fan_out)))
        chunks = [items[i:i + chunk] for i in range(0, len(items), chunk)]

        def run_chunk(part):
            child = tracker.spawn()
            with use_tracker(child):
                return [worker(item) for item in part], child

        try:
            outputs = list(self._ensure_pool().map(run_chunk, chunks))
        except RuntimeError:
            # named backends share one instance, so another caller's close()
            # can shut the executor down between _ensure_pool() and map();
            # retry once on a fresh pool (charges merge only from outputs, so
            # the rerun cannot double-charge)
            outputs = list(self._ensure_pool().map(run_chunk, chunks))
        results: List = []
        for part_values, child in outputs:
            results.extend(part_values)
            tracker.charge(work=child.work, oracle_calls=child.oracle_calls)
        return results

    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        return np.array(self._map_chunks(dist.counting, batch.subsets, tracker), dtype=float)

    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        dist = batch.distribution
        assert dist is not None
        z = batch.normalizer()
        values = np.array(self._map_chunks(dist.counting, batch.subsets, tracker), dtype=float)
        return np.clip(values / z, 0.0, None)

    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        matrix = batch.matrix
        assert matrix is not None

        def one(subset):
            m = len(subset)
            current_tracker().charge_determinant(m)
            if m == 0:
                return 0.0
            idx = np.asarray(subset, dtype=int)
            sign, logdet = np.linalg.slogdet(matrix[np.ix_(idx, idx)])
            return logdet if sign > 0 else -np.inf

        return np.array(self._map_chunks(one, batch.subsets, tracker), dtype=float)


# ---------------------------------------------------------------------- #
# process backend: worker-side entry point and per-process caches
# ---------------------------------------------------------------------- #
#: worker-side ``spec key -> distribution`` memo (FIFO-trimmed)
_WORKER_DISTRIBUTION_CAPACITY = 8
_worker_distributions: "OrderedDict[str, object]" = OrderedDict()


#: BLAS/OpenMP thread-count variables pinned in worker processes
_WORKER_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _pin_worker_blas_threads() -> None:
    """Worker-process initializer: pin BLAS/OpenMP pools to one thread.

    The process backend already fans out across ``max_workers`` processes;
    letting each worker's LAPACK additionally spawn ``cpu_count`` BLAS
    threads oversubscribes wide hosts ``workers x cores``-fold and thrashes
    caches.  Under ``spawn`` this runs before the first task unpickles (and
    therefore before NumPy loads its BLAS), so the pin takes effect at
    library initialization.  ``setdefault`` keeps explicit operator settings
    (inherited through the environment) authoritative.
    """
    for var in _WORKER_BLAS_ENV_VARS:
        os.environ.setdefault(var, "1")


def _worker_new_arrays(payload: BatchPayload, distribution) -> Dict[str, np.ndarray]:
    """Payload arrays ``distribution`` materialized that the parent never shipped.

    The write-back half of the :meth:`~repro.engine.batch.OracleBatch.to_payload`
    contract: re-describing the (now answered) distribution through
    ``worker_payload()`` exposes every lazily derived artifact, and the names
    missing from the shipped spec are exactly what the parent is still cold
    on.  A warm parent ships everything, so this returns ``{}`` — zero
    steady-state overhead.
    """
    if payload.spec is None:
        return {}
    described = distribution.worker_payload()
    if described is None:
        return {}
    arrays, _params = described
    shipped = set(payload.spec["arrays"])
    return {name: np.asarray(value) for name, value in arrays.items()
            if name not in shipped}


def _process_worker_run(payload: BatchPayload, subsets: Sequence,
                        chunk_index: int = 0,
                        ) -> Tuple[np.ndarray, float, int,
                                   Dict[str, np.ndarray],
                                   Optional[Dict[str, object]]]:
    """Answer one chunk of a shipped batch inside a worker process.

    Runs under a private tracker — built from the parent's shipped
    :class:`~repro.pram.cost.CostModel` when one travels with the payload,
    so work parity holds under custom models — and returns ``(values, work,
    oracle_calls, new_arrays, span)`` so the parent can merge PRAM
    accounting exactly like the thread backend merges its child trackers
    and absorb worker-materialized artifacts (``new_arrays``; empty unless
    the payload asks with ``want_artifacts``).  Kernels arrive as
    shared-memory refs and are rebuilt once per process (see
    :mod:`repro.engine.shm`).

    ``span`` is a plain dict describing this chunk's execution when the
    payload carries a trace context (``None`` otherwise): the worker's obs
    singletons are dark, so the dict rides home with the result and the
    parent records it.  Span ids are hierarchical
    (``{round_span}.w{chunk_index}``) — unique without cross-process id
    coordination, and R1-clean (no wall clock, no randomness).
    """
    from repro.engine.shm import attach_shared_array

    chunk = tuple(tuple(s) for s in subsets)
    child = Tracker(payload.cost_model) if payload.cost_model is not None else Tracker()
    new_arrays: Dict[str, np.ndarray] = {}
    started = time.perf_counter()
    with use_tracker(child):
        if payload.kind == "log_principal_minors":
            matrix = attach_shared_array(payload.matrix)
            values = grouped_log_principal_minors(matrix, chunk)
        else:
            distribution = payload.build_distribution(attach_shared_array,
                                                      _worker_distributions)
            while len(_worker_distributions) > _WORKER_DISTRIBUTION_CAPACITY:
                _worker_distributions.popitem(last=False)
            values = np.asarray(distribution.counting_batch(list(chunk)), dtype=float)
            if payload.want_artifacts:
                new_arrays = _worker_new_arrays(payload, distribution)
    span: Optional[Dict[str, object]] = None
    if payload.trace is not None:
        trace_id, parent_span = payload.trace
        span = {
            "name": "worker-chunk",
            "category": "worker_chunk",
            "trace_id": trace_id,
            "parent_id": parent_span,
            "span_id": f"{parent_span}.w{chunk_index}",
            "start": started,
            "duration": time.perf_counter() - started,
            "queries": len(chunk),
            "pid": os.getpid(),
        }
    return (np.asarray(values, dtype=float), child.work, child.oracle_calls,
            new_arrays, span)


class ProcessPoolBackend(ExecutionBackend):
    """Worker-process fan-out over a shared-memory kernel store.

    The thread backend only overlaps inside LAPACK; pure-Python oracle paths
    (ESP tables, charpoly minor sums, partition interpolation grids)
    serialize on the GIL.  This backend executes each batch across worker
    processes instead: the kernel/ensemble payload is placed once in
    :mod:`multiprocessing.shared_memory` (content-fingerprinted, cached on
    both sides — see :mod:`repro.engine.shm`), so repeated rounds against the
    same kernel ship only query indices.

    * ``max_workers`` / ``chunk_size`` — fan-out knobs (defaults: CPU count,
      one chunk per worker).
    * ``start_method`` — ``"spawn"`` by default: fork duplicates the parent's
      locks/threads (the serving layer runs schedulers on threads) and is
      unsafe with most BLAS implementations.
    * Workers answer chunks through the distributions' ``counting_batch``
      oracles under private trackers; the parent merges work/oracle-call
      totals, so PRAM accounting matches the other backends (one round per
      batch, ``n_queries`` machines).
    * Fallback: when shared memory is unavailable, the pool cannot start, or
      a distribution cannot be shipped (e.g. closures over unpicklable
      state), execution degrades gracefully to the vectorized backend with a
      one-time warning — never a mid-round crash.

    Fixed-seed samples are identical to every other backend: all randomness
    stays in the parent, and workers run the same batched numerics the
    vectorized backend runs in-process.
    """

    name = "process"

    #: bound on the remembered already-shipped array identities
    SHIPPED_MEMO_CAPACITY = 256

    def __init__(self, max_workers: Optional[int] = None, *,
                 chunk_size: Optional[int] = None, start_method: str = "spawn",
                 shm_capacity: int = 64, pin_blas_threads: bool = True,
                 write_back: bool = True, artifact_cache=None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.shm_capacity = int(shm_capacity)
        self.pin_blas_threads = bool(pin_blas_threads)
        #: ship worker-materialized artifacts back and absorb them into the
        #: parent's distribution objects (see ``absorb_worker_arrays``)
        self.write_back = bool(write_back)
        #: optional :class:`~repro.service.cache.FactorizationCache`-like
        #: object (anything with ``factorization(matrix).seed(name, value)``)
        #: that written-back artifacts additionally warm, keyed by kernel
        #: content — so the expensive eigendecompositions workers computed
        #: outlive the distribution object that triggered them
        self.artifact_cache = artifact_cache
        self._lock = threading.Lock()
        self._pool = None
        self._store = None
        self._vectorized = VectorizedBackend()
        self._degraded: Optional[str] = None  # reason, once permanently degraded
        self._broken_pools = 0  # consecutive pool deaths; bounded rebuild retries
        self._warned_specs: set = set()
        #: ``id -> weakref`` memo of arrays already published to workers,
        #: behind the planner-facing :meth:`shipping_bytes` estimate
        self._shipped: "OrderedDict[int, object]" = OrderedDict()
        self._atexit_registered = False

    @property
    def workers(self) -> int:
        """Resolved worker-process count."""
        return self.max_workers or (os.cpu_count() or 1)

    def traits(self) -> BackendTraits:
        # effective lanes are host-capped (see ThreadPoolBackend.traits)
        return BackendTraits(
            name=self.name, parallelism=min(self.workers, os.cpu_count() or 1),
            escapes_gil=True, scalar_loop=False,
            dispatch_overhead_s=2e-3, per_query_overhead_s=5e-6,
        )

    # ------------------------------------------------------------------ #
    # pool / store lifecycle
    # ------------------------------------------------------------------ #
    #: consecutive pool deaths tolerated before degrading permanently
    MAX_POOL_REBUILDS = 3

    def _ensure_pool(self):
        with self._lock:
            if self._degraded is not None:
                # a concurrent _degrade() won the race: do not resurrect a
                # pool this backend will never use again
                raise RuntimeError(f"process backend degraded: {self._degraded}")
            if self._pool is None:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                context = multiprocessing.get_context(self.start_method)
                initializer = _pin_worker_blas_threads if self.pin_blas_threads else None
                self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                                 mp_context=context,
                                                 initializer=initializer)
                self._register_atexit_locked()
            return self._pool

    def _ensure_store(self):
        from repro.engine.shm import SharedArrayStore

        with self._lock:
            if self._store is None:
                self._store = SharedArrayStore(capacity=self.shm_capacity)
                self._register_atexit_locked()
            return self._store

    def _register_atexit_locked(self) -> None:
        # once per instance — close()/recreate cycles must not accumulate
        # duplicate callbacks (close is idempotent either way)
        if not self._atexit_registered:
            self._atexit_registered = True
            atexit.register(self.close)

    def close(self) -> None:
        """Shut down worker processes and unlink published segments."""
        with self._lock:
            pool, self._pool = self._pool, None
            store, self._store = self._store, None
            # every published segment is about to be unlinked: forgetting the
            # memo keeps shipping_bytes() honest about full republication
            self._shipped.clear()
        if pool is not None:
            pool.shutdown(wait=True)
        if store is not None:
            store.close()

    def _degrade(self, reason: str) -> None:
        if self._degraded is None:
            self._degraded = reason
            warnings.warn(
                f"process backend degraded to vectorized execution: {reason}",
                RuntimeWarning, stacklevel=3)
        self.close()

    # ------------------------------------------------------------------ #
    # shipping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _payload_arrays(batch: OracleBatch) -> List[np.ndarray]:
        """The heavy arrays shipping ``batch`` would publish (best effort)."""
        arrays: List[np.ndarray] = []
        if batch.matrix is not None:
            arrays.append(batch.matrix)
        if batch.distribution is not None:
            try:
                described = batch.distribution.worker_payload()
            except Exception:
                described = None
            if described is not None:
                arrays.extend(described[0].values())
            else:
                matrix = getattr(batch.distribution, "L", None)
                if isinstance(matrix, np.ndarray):
                    arrays.append(matrix)  # pickled whole; L dominates
        return arrays

    def shipping_bytes(self, batch: OracleBatch) -> int:
        """Bytes of ``batch``'s payload not yet published to this backend.

        The shm store ships each distinct array once, so only arrays this
        backend has never shipped count; repeated rounds against the same
        kernel objects estimate (correctly) as free.  The planner multiplies
        this by the calibrated per-byte shipping coefficient to price very
        wide matrix-backed rounds honestly.
        """
        total = 0
        with self._lock:
            for array in self._payload_arrays(batch):
                ref = self._shipped.get(id(array))
                if ref is None or ref() is not array:
                    total += int(np.asarray(array).nbytes)
        return total

    def _mark_shipped(self, batch: OracleBatch) -> None:
        import weakref

        # the memo may not outlive the shm store's own LRU: once the store
        # evicts a segment the array must count as unpublished again, so the
        # memo is bounded by the store's capacity (FIFO approximates its LRU)
        bound = min(self.SHIPPED_MEMO_CAPACITY, self.shm_capacity)
        with self._lock:
            for array in self._payload_arrays(batch):
                try:
                    self._shipped[id(array)] = weakref.ref(array)
                except TypeError:  # pragma: no cover - non-weakrefable token
                    continue
            while len(self._shipped) > bound:
                self._shipped.popitem(last=False)

    def _payload(self, batch: OracleBatch,
                 tracker: Optional[Tracker] = None) -> Optional[BatchPayload]:
        """Shippable payload for ``batch``, or ``None`` to fall back.

        The parent tracker's cost model ships with the payload (when it is
        not the shared default) so worker trackers charge determinant work
        on the parent's schedule — exact work parity under custom models.
        """
        from repro.engine.shm import shared_memory_available
        from repro.pram.cost import DEFAULT_COST_MODEL

        if self._degraded is not None:
            return None
        if not shared_memory_available():
            self._degrade("multiprocessing.shared_memory is unavailable on this host")
            return None
        cost_model = None
        if tracker is not None and tracker.cost_model is not DEFAULT_COST_MODEL:
            cost_model = tracker.cost_model
        try:
            payload = batch.to_payload(publish=self._ensure_store().publish,
                                       cost_model=cost_model,
                                       want_artifacts=self.write_back)
            self._mark_shipped(batch)
            return payload
        except Exception as exc:
            kind = type(batch.distribution).__name__ if batch.distribution is not None else "matrix"
            if kind not in self._warned_specs:
                self._warned_specs.add(kind)
                warnings.warn(
                    f"cannot ship {kind} to worker processes ({exc}); "
                    "answering this batch on the vectorized backend",
                    RuntimeWarning, stacklevel=3)
            return None

    def _fan_out(self, payload: BatchPayload, subsets: Sequence,
                 tracker: Tracker) -> Optional[Tuple[np.ndarray, Dict[str, np.ndarray]]]:
        """Chunked worker execution; ``None`` on failure (caller falls back).

        Returns the concatenated values plus any worker-materialized
        write-back arrays, merged across chunks (chunks with different
        subset sizes exercise different oracle routes and therefore
        materialize *different* artifact sets — a normalizer-only chunk
        returns the spectrum, a conditioned chunk the PSD factor; first
        value per name wins, equal-content duplicates are dropped).  Worker
        charges are committed to ``tracker`` only after every chunk succeeds
        — a mid-batch failure must not leave partial charges behind, or the
        vectorized fallback would double-charge the round's work.
        """
        from concurrent.futures.process import BrokenProcessPool
        from dataclasses import replace

        round_context = obs.current_context()
        if round_context is not None:
            shipped = replace(payload, subsets=(),
                              trace=(round_context.trace_id,
                                     round_context.span_id))
        else:
            shipped = replace(payload, subsets=())
        step = self.chunk_size or max(1, int(math.ceil(len(subsets) / self.workers)))
        chunks = [subsets[i:i + step] for i in range(0, len(subsets), step)]
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_process_worker_run, shipped, chunk, index)
                       for index, chunk in enumerate(chunks)]
            parts: List[np.ndarray] = []
            total_work = 0.0
            total_calls = 0
            artifacts: Dict[str, np.ndarray] = {}
            worker_spans: List[Dict[str, object]] = []
            for future in futures:
                values, work, oracle_calls, new_arrays, span = future.result()
                parts.append(values)
                total_work += work
                total_calls += oracle_calls
                if span is not None:
                    worker_spans.append(span)
                for name, value in new_arrays.items():
                    artifacts.setdefault(name, value)
        except BrokenProcessPool as exc:
            # the pool is dead, but a fresh one may be fine (e.g. one worker
            # OOM-killed): rebuild on the next batch, degrading permanently
            # only after MAX_POOL_REBUILDS consecutive deaths
            with self._lock:
                pool, self._pool = self._pool, None
                self._broken_pools += 1
                exhausted = self._broken_pools >= self.MAX_POOL_REBUILDS
            if pool is not None:
                pool.shutdown(wait=False)
            if exhausted:
                self._degrade(f"worker pool failed {self._broken_pools} times ({exc})")
            elif "pool-rebuild" not in self._warned_specs:
                self._warned_specs.add("pool-rebuild")
                warnings.warn(
                    f"process backend worker pool died ({exc}); answering this "
                    "batch on the vectorized backend and rebuilding the pool",
                    RuntimeWarning, stacklevel=4)
            return None
        except (OSError, RuntimeError) as exc:
            # transient: e.g. a worker raced shm-store eviction of a segment
            # it had not yet attached (FileNotFoundError), or a concurrent
            # _degrade() shut the pool down under us.  The next round
            # re-publishes and retries; only this batch falls back.
            if self._degraded is None and "shm-transient" not in self._warned_specs:
                self._warned_specs.add("shm-transient")
                warnings.warn(
                    f"process backend could not answer this batch ({exc}); "
                    "falling back to vectorized for it",
                    RuntimeWarning, stacklevel=4)
            return None
        with self._lock:
            self._broken_pools = 0  # a full batch succeeded: reset the budget
        tracker.charge(work=total_work, oracle_calls=total_calls)
        for span in worker_spans:
            obs.record_worker_span(span)
        values = np.concatenate(parts) if parts else np.empty(0, dtype=float)
        return values, artifacts

    def _absorb_artifacts(self, batch: OracleBatch,
                          artifacts: Dict[str, np.ndarray]) -> None:
        """Install worker write-back arrays on the parent side.

        The distribution object absorbs them directly (its next normalizer
        query, planner re-route, or payload shipment is warm), and when an
        ``artifact_cache`` is configured the arrays also seed the
        factorization entry for the distribution's ensemble matrix — under
        the distribution's own ``artifact_cache_key()``, i.e. the same
        kind-tagged fingerprint :meth:`KernelRegistry.register` derives, so
        the serving layer's sessions actually *hit* the seeded entry.
        Warming therefore outlives the distribution object.
        """
        distribution = batch.distribution
        if distribution is None or not artifacts:
            return
        distribution.absorb_worker_arrays(artifacts)
        cache = self.artifact_cache
        if cache is None:
            return
        key = distribution.artifact_cache_key()
        # factor-backed distributions cache under their (n, k) factor, dense
        # ones under the ensemble matrix L — ask the distribution first
        matrix = getattr(distribution, "artifact_cache_matrix", None)
        if matrix is None:
            matrix = getattr(distribution, "L", None)
        if key is not None and isinstance(matrix, np.ndarray) and matrix.ndim == 2:
            factorization = cache.factorization(matrix, fingerprint=key)
            for name, value in artifacts.items():
                factorization.seed(name, value)

    # ------------------------------------------------------------------ #
    # batch kinds (one shared skeleton: ship, fan out, or fall back whole)
    # ------------------------------------------------------------------ #
    def _answer(self, batch: OracleBatch, tracker: Tracker, fallback,
                finish=None) -> np.ndarray:
        """Ship ``batch`` to workers, else answer it whole on ``fallback``.

        ``finish`` post-processes successful fan-out values only — the
        fallback methods produce finished values themselves.
        """
        if not batch.subsets:
            return np.empty(0, dtype=float)
        payload = self._payload(batch, tracker)
        if payload is not None:
            answered = self._fan_out(payload, batch.subsets, tracker)
            if answered is not None:
                values, artifacts = answered
                self._absorb_artifacts(batch, artifacts)
                return finish(values) if finish is not None else values
        return fallback(batch, tracker)

    def _counting(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        return self._answer(batch, tracker, self._vectorized._counting)

    def _joint_marginals(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        # workers return raw counting values; the parent normalizes exactly
        # like the serial/thread backends (one normalizer query per batch)
        return self._answer(
            batch, tracker, self._vectorized._joint_marginals,
            finish=lambda values: np.clip(values / batch.normalizer(), 0.0, None))

    def _log_principal_minors(self, batch: OracleBatch, tracker: Tracker) -> np.ndarray:
        return self._answer(batch, tracker, self._vectorized._log_principal_minors)
