"""The ``OracleBatch`` request/response protocol.

One adaptive round of the paper's samplers is *many independent
counting-oracle queries* against a single distribution (or matrix).  An
:class:`OracleBatch` captures that round declaratively — what is asked, of
whom — so an :class:`~repro.engine.backends.ExecutionBackend` can decide *how*
to answer it: a Python loop, one stacked NumPy call, or a thread pool.

Batch kinds
-----------

``counting``
    Raw counting-oracle values ``Σ { μ(S) : T ⊆ S }`` for each subset ``T``.
``joint_marginals``
    Normalized joint marginals ``P[T ⊆ S]``.  The normalizer ``μ([n])`` is
    computed **once per batch** and cached on the request (it used to be
    recomputed per query by the generic fallback).
``marginal_vector``
    All conditional marginals ``P[i ∈ S | given]``.  Every backend answers
    this through the distribution's own (already single-round) vectorized
    route so that backend choice never changes the numerical path of the
    proposal distribution.
``log_principal_minors``
    ``log det(M_{T,T})`` for mixed-size subsets of an explicit matrix
    (``-inf`` where the minor is nonpositive) — the filtering sampler's
    density-ratio round.
``projection_step``
    One HKPV phase-2 round: project the basis in ``matrix`` onto the
    orthogonal complement of the previously selected element (``given``,
    when nonempty) and return the squared row norms — the next element's
    selection weights.  The re-orthonormalized basis comes back in
    :attr:`OracleBatchResult.artifacts` (``"bases"``).  Like
    ``marginal_vector`` this kind has one fixed numerical route
    (:func:`repro.linalg.batch.hkpv_projection_step`) shared by every
    backend, so backend choice never perturbs the sequential sampler's
    randomness; the :class:`~repro.service.scheduler.RoundScheduler` fuses
    concurrent same-shape steps by stacking the bases (``matrix`` may be a
    ``(G, n, m)`` stack with one ``given`` entry per request).
"""

from __future__ import annotations

import importlib
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.utils.fingerprint import array_fingerprint
from repro.utils.subsets import Subset, subset_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.distributions.base import SubsetDistribution
    from repro.pram.cost import CostModel

#: the five request kinds understood by every backend
BATCH_KINDS = ("counting", "joint_marginals", "marginal_vector",
               "log_principal_minors", "projection_step")


@dataclass
class OracleBatch:
    """A declarative request for one adaptive round of oracle queries."""

    kind: str
    distribution: Optional["SubsetDistribution"] = None
    subsets: Tuple[Subset, ...] = ()
    given: Subset = ()
    matrix: Optional[np.ndarray] = None
    label: str = "oracle-batch"
    _normalizer: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in BATCH_KINDS:
            raise ValueError(f"unknown batch kind {self.kind!r}; expected one of {BATCH_KINDS}")
        if self.kind in ("log_principal_minors", "projection_step"):
            if self.matrix is None:
                raise ValueError(f"{self.kind} batches require a matrix")
        elif self.distribution is None:
            raise ValueError(f"{self.kind} batches require a distribution")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def counting(cls, distribution: "SubsetDistribution",
                 subsets: Sequence[Sequence[int]], *, label: str = "counting-batch") -> "OracleBatch":
        return cls(kind="counting", distribution=distribution,
                   subsets=tuple(subset_key(s) for s in subsets), label=label)

    @classmethod
    def joint_marginals(cls, distribution: "SubsetDistribution",
                        subsets: Sequence[Sequence[int]], *,
                        label: str = "joint-marginals") -> "OracleBatch":
        return cls(kind="joint_marginals", distribution=distribution,
                   subsets=tuple(subset_key(s) for s in subsets), label=label)

    @classmethod
    def marginal_vector(cls, distribution: "SubsetDistribution",
                        given: Sequence[int] = (), *,
                        label: str = "marginal-vector") -> "OracleBatch":
        return cls(kind="marginal_vector", distribution=distribution,
                   given=subset_key(given), label=label)

    @classmethod
    def log_principal_minors(cls, matrix: np.ndarray, subsets: Sequence[Sequence[int]], *,
                             label: str = "log-principal-minors") -> "OracleBatch":
        return cls(kind="log_principal_minors", matrix=matrix,
                   subsets=tuple(subset_key(s) for s in subsets), label=label)

    @classmethod
    def projection_step(cls, basis: np.ndarray, *,
                        eliminate: Optional[Sequence[int]] = None,
                        label: str = "hkpv-step") -> "OracleBatch":
        """One HKPV phase-2 round over ``basis`` (``(n, m)`` or a ``(G, n, m)`` stack).

        ``eliminate`` holds the previously selected element per stacked
        request (empty/None on the first round, before any element exists).
        """
        items = () if eliminate is None else tuple(int(i) for i in eliminate)
        return cls(kind="projection_step", matrix=np.asarray(basis, dtype=float),
                   given=items, label=label)

    # ------------------------------------------------------------------ #
    @property
    def n_queries(self) -> int:
        """Number of independent machines this round fans out to."""
        if self.kind == "marginal_vector":
            assert self.distribution is not None
            return self.distribution.n
        if self.kind == "projection_step":
            assert self.matrix is not None
            rows = self.matrix.shape[-2]
            stack = self.matrix.shape[0] if self.matrix.ndim == 3 else 1
            return int(stack * rows)
        return len(self.subsets)

    def normalizer(self) -> float:
        """Total mass ``μ([n])`` of the batch's distribution, computed once.

        Cached on the request so backends answering ``joint_marginals``
        through scalar ``counting()`` calls charge the normalizer exactly
        once per batch instead of once per query.
        """
        if self.distribution is None:
            raise ValueError("normalizer() requires a distribution-backed batch")
        if self._normalizer is None:
            z = float(self.distribution.counting(()))
            if z <= 0:
                raise ValueError("distribution has zero total mass")
            self._normalizer = z
        return self._normalizer

    # ------------------------------------------------------------------ #
    # serialization round-trip contract (process backend / shm transport)
    # ------------------------------------------------------------------ #
    def to_payload(self, publish: Optional[Callable[[np.ndarray], object]] = None,
                   *, normalizer: Optional[float] = None,
                   cost_model: Optional["CostModel"] = None,
                   want_artifacts: bool = False) -> "BatchPayload":
        """Picklable description of this batch for out-of-process execution.

        ``publish`` maps each heavy array to a transport token (the process
        backend passes :meth:`repro.engine.shm.SharedArrayStore.publish`; the
        default keeps arrays inline so plain :mod:`pickle` round-trips work).
        Distributions ship as a :meth:`~repro.distributions.base.SubsetDistribution.worker_payload`
        spec when they provide one — arrays replaced by tokens, keyed by a
        content fingerprint so workers rebuild each kernel once — and fall
        back to being pickled whole otherwise (raising whatever the pickle
        layer raises for genuinely unshippable state, e.g. closures).

        Contract: ``payload.to_batch(attach)`` answers every query with the
        same values as the original batch, on every backend.

        ``cost_model`` ships the parent tracker's :class:`CostModel` so
        worker-side trackers charge determinant work with the parent's
        schedule — exact work parity under custom models (workers used to
        fall back to the default model).

        ``want_artifacts`` asks workers to ship back any payload arrays they
        materialize while answering (the write-back half of the contract —
        see :meth:`~repro.distributions.base.SubsetDistribution.absorb_worker_arrays`);
        it only applies to spec-shipped distributions.
        """
        publish = publish if publish is not None else (lambda a: a)
        matrix_token = publish(self.matrix) if self.matrix is not None else None
        spec: Optional[Dict[str, object]] = None
        blob: Optional[bytes] = None
        if self.distribution is not None:
            described = self.distribution.worker_payload()
            if described is not None:
                arrays, params = described
                cls = type(self.distribution)
                factory = f"{cls.__module__}:{cls.__qualname__}"
                names = sorted(arrays)
                tokens = {name: publish(np.ascontiguousarray(arrays[name]))
                          for name in names}
                # the spec key reuses the transport's content fingerprints
                # (ArrayRef tokens) instead of re-hashing every array — the
                # publish step already paid for those digests
                content = [
                    token.fingerprint if hasattr(token, "fingerprint")
                    else array_fingerprint(np.ascontiguousarray(arrays[name]))
                    for name, token in tokens.items()
                ]
                key = array_fingerprint(extra=(
                    factory, names, content,
                    sorted(params.items(), key=lambda kv: kv[0]),
                ))
                spec = {
                    "factory": factory,
                    "arrays": tokens,
                    "params": dict(params),
                    "key": key,
                }
            else:
                blob = pickle.dumps(self.distribution)
        return BatchPayload(
            kind=self.kind, subsets=self.subsets, given=self.given, label=self.label,
            normalizer=normalizer if normalizer is not None else self._normalizer,
            matrix=matrix_token, spec=spec, pickled_distribution=blob,
            cost_model=cost_model,
            want_artifacts=bool(want_artifacts and spec is not None),
        )


@dataclass
class BatchPayload:
    """Picklable twin of :class:`OracleBatch` (see :meth:`OracleBatch.to_payload`).

    Heavy arrays are transport tokens (inline arrays, or
    :class:`~repro.engine.shm.ArrayRef` handles into shared memory); the
    distribution is either a rebuildable spec (``factory`` + array tokens +
    scalar params + content key) or a pickle blob.
    """

    kind: str
    subsets: Tuple[Subset, ...] = ()
    given: Subset = ()
    label: str = "oracle-batch"
    normalizer: Optional[float] = None
    matrix: Optional[object] = None
    spec: Optional[Dict[str, object]] = None
    pickled_distribution: Optional[bytes] = None
    #: the parent tracker's cost model (``None`` -> workers use the default)
    cost_model: Optional["CostModel"] = None
    #: whether workers should return payload arrays they materialize (the
    #: artifact write-back; only meaningful for spec-shipped distributions)
    want_artifacts: bool = False
    #: ``(trace_id, parent_span_id)`` of the traced engine round shipping
    #: this payload, so worker chunks can report spans that join the
    #: request's tree; ``None`` when tracing is off or the round is untraced
    trace: Optional[Tuple[str, str]] = None

    def build_distribution(self, attach: Optional[Callable[[object], np.ndarray]] = None,
                           cache: Optional[Dict[str, object]] = None):
        """Reconstruct the distribution (``None`` for matrix-only batches).

        ``attach`` resolves array tokens (defaults to pass-through);
        ``cache`` is an optional ``spec key -> distribution`` memo so workers
        rebuild each kernel once per process rather than once per chunk.
        """
        if self.spec is not None:
            key = self.spec["key"]
            if cache is not None and key in cache:
                return cache[key]
            attach = attach if attach is not None else (lambda token: np.asarray(token))
            module_name, _, qualname = self.spec["factory"].partition(":")
            cls = importlib.import_module(module_name)
            for part in qualname.split("."):
                cls = getattr(cls, part)
            arrays = {name: attach(token)
                      for name, token in self.spec["arrays"].items()}
            distribution = cls.from_worker_payload(arrays, dict(self.spec["params"]))
            if cache is not None:
                cache[key] = distribution
            return distribution
        if self.pickled_distribution is not None:
            return pickle.loads(self.pickled_distribution)
        return None

    def to_batch(self, attach: Optional[Callable[[object], np.ndarray]] = None,
                 cache: Optional[Dict[str, object]] = None) -> OracleBatch:
        """Rebuild an executable :class:`OracleBatch` (the round-trip inverse)."""
        attach_arrays = attach if attach is not None else (lambda token: np.asarray(token))
        matrix = attach_arrays(self.matrix) if self.matrix is not None else None
        return OracleBatch(
            kind=self.kind, distribution=self.build_distribution(attach, cache),
            subsets=self.subsets, given=self.given, matrix=matrix, label=self.label,
            _normalizer=self.normalizer,
        )


@dataclass
class OracleBatchResult:
    """A batch's vectorized answer plus execution metadata."""

    #: one value per query, in request order
    values: np.ndarray
    #: name of the backend that answered
    backend: str
    #: wall-clock seconds spent answering (side by side with PRAM depth)
    wall_time: float
    #: number of queries answered
    n_queries: int
    #: non-scalar outputs some kinds carry alongside ``values`` — e.g. the
    #: re-orthonormalized ``"bases"`` of a ``projection_step`` round
    artifacts: Dict[str, object] = field(default_factory=dict)
