"""The ``OracleBatch`` request/response protocol.

One adaptive round of the paper's samplers is *many independent
counting-oracle queries* against a single distribution (or matrix).  An
:class:`OracleBatch` captures that round declaratively — what is asked, of
whom — so an :class:`~repro.engine.backends.ExecutionBackend` can decide *how*
to answer it: a Python loop, one stacked NumPy call, or a thread pool.

Batch kinds
-----------

``counting``
    Raw counting-oracle values ``Σ { μ(S) : T ⊆ S }`` for each subset ``T``.
``joint_marginals``
    Normalized joint marginals ``P[T ⊆ S]``.  The normalizer ``μ([n])`` is
    computed **once per batch** and cached on the request (it used to be
    recomputed per query by the generic fallback).
``marginal_vector``
    All conditional marginals ``P[i ∈ S | given]``.  Every backend answers
    this through the distribution's own (already single-round) vectorized
    route so that backend choice never changes the numerical path of the
    proposal distribution.
``log_principal_minors``
    ``log det(M_{T,T})`` for mixed-size subsets of an explicit matrix
    (``-inf`` where the minor is nonpositive) — the filtering sampler's
    density-ratio round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.utils.subsets import Subset, subset_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.distributions.base import SubsetDistribution

#: the four request kinds understood by every backend
BATCH_KINDS = ("counting", "joint_marginals", "marginal_vector", "log_principal_minors")


@dataclass
class OracleBatch:
    """A declarative request for one adaptive round of oracle queries."""

    kind: str
    distribution: Optional["SubsetDistribution"] = None
    subsets: Tuple[Subset, ...] = ()
    given: Subset = ()
    matrix: Optional[np.ndarray] = None
    label: str = "oracle-batch"
    _normalizer: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in BATCH_KINDS:
            raise ValueError(f"unknown batch kind {self.kind!r}; expected one of {BATCH_KINDS}")
        if self.kind == "log_principal_minors":
            if self.matrix is None:
                raise ValueError("log_principal_minors batches require a matrix")
        elif self.distribution is None:
            raise ValueError(f"{self.kind} batches require a distribution")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def counting(cls, distribution: "SubsetDistribution",
                 subsets: Sequence[Sequence[int]], *, label: str = "counting-batch") -> "OracleBatch":
        return cls(kind="counting", distribution=distribution,
                   subsets=tuple(subset_key(s) for s in subsets), label=label)

    @classmethod
    def joint_marginals(cls, distribution: "SubsetDistribution",
                        subsets: Sequence[Sequence[int]], *,
                        label: str = "joint-marginals") -> "OracleBatch":
        return cls(kind="joint_marginals", distribution=distribution,
                   subsets=tuple(subset_key(s) for s in subsets), label=label)

    @classmethod
    def marginal_vector(cls, distribution: "SubsetDistribution",
                        given: Sequence[int] = (), *,
                        label: str = "marginal-vector") -> "OracleBatch":
        return cls(kind="marginal_vector", distribution=distribution,
                   given=subset_key(given), label=label)

    @classmethod
    def log_principal_minors(cls, matrix: np.ndarray, subsets: Sequence[Sequence[int]], *,
                             label: str = "log-principal-minors") -> "OracleBatch":
        return cls(kind="log_principal_minors", matrix=matrix,
                   subsets=tuple(subset_key(s) for s in subsets), label=label)

    # ------------------------------------------------------------------ #
    @property
    def n_queries(self) -> int:
        """Number of independent machines this round fans out to."""
        if self.kind == "marginal_vector":
            assert self.distribution is not None
            return self.distribution.n
        return len(self.subsets)

    def normalizer(self) -> float:
        """Total mass ``μ([n])`` of the batch's distribution, computed once.

        Cached on the request so backends answering ``joint_marginals``
        through scalar ``counting()`` calls charge the normalizer exactly
        once per batch instead of once per query.
        """
        if self.distribution is None:
            raise ValueError("normalizer() requires a distribution-backed batch")
        if self._normalizer is None:
            z = float(self.distribution.counting(()))
            if z <= 0:
                raise ValueError("distribution has zero total mass")
            self._normalizer = z
        return self._normalizer


@dataclass
class OracleBatchResult:
    """A batch's vectorized answer plus execution metadata."""

    #: one value per query, in request order
    values: np.ndarray
    #: name of the backend that answered
    backend: str
    #: wall-clock seconds spent answering (side by side with PRAM depth)
    wall_time: float
    #: number of queries answered
    n_queries: int
