"""Backend selection: ``repro.configure_backend(...)`` and friends.

The process-wide default backend is set with :func:`configure_backend`;
:func:`use_backend` scopes an override to a ``with`` block (it is a
:mod:`contextvars` variable, so concurrent samplers can pin different
backends); every sampler also accepts ``backend=...`` per call, resolved by
:func:`resolve_backend` with precedence *call argument > context > global*.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from typing import Iterator, Optional, Union

from repro.engine.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
)
from repro.engine.planner import AutoBackend

BackendLike = Union[str, ExecutionBackend, None]

#: registry of constructible backend names
BACKEND_REGISTRY = {
    "auto": AutoBackend,
    "serial": SerialBackend,
    "vectorized": VectorizedBackend,
    "threads": ThreadPoolBackend,
    "threadpool": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "processpool": ProcessPoolBackend,
}

_context_backend: ContextVar[Optional[ExecutionBackend]] = ContextVar(
    "repro_current_backend", default=None
)

#: memo of name-constructed backends.  The pooled backends hold persistent
#: executors (threads) or worker processes + shared-memory segments
#: (process), so resolving ``backend="threads"`` per sampler call must reuse
#: one instance instead of building a fresh pool every round.
_constructed: dict = {}
_constructed_lock = threading.Lock()


def _construct(spec: BackendLike, **options) -> ExecutionBackend:
    if isinstance(spec, ExecutionBackend):
        if options:
            raise ValueError("options are only accepted together with a backend name")
        return spec
    if isinstance(spec, str):
        try:
            factory = BACKEND_REGISTRY[spec.lower()]
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; available: {sorted(set(BACKEND_REGISTRY))}"
            ) from None
        try:
            key = (factory, tuple(sorted(options.items())))
        except TypeError:  # unhashable option value: construct fresh
            return factory(**options)
        with _constructed_lock:
            backend = _constructed.get(key)
            if backend is None:
                backend = factory(**options)
                _constructed[key] = backend
            return backend
    raise TypeError(f"backend must be a name or ExecutionBackend, got {type(spec).__name__}")


#: the process-wide default: the cost-aware planner routes every round to
#: the cheapest estimated backend (see :mod:`repro.engine.planner`); forcing
#: a specific backend via ``configure_backend``/``use_backend``/``backend=``
#: is always honored and bypasses the planner entirely.  Built through the
#: name memo so ``resolve_backend("auto")`` and the default share ONE
#: planner (one overhead cache, one probe run, one decision log).
_default_backend: ExecutionBackend = _construct("auto")


def configure_backend(backend: BackendLike = "auto", **options) -> ExecutionBackend:
    """Set the process-wide default execution backend.

    ``backend`` is a name (``"auto"`` — the cost-aware planner and initial
    default — ``"serial"``, ``"vectorized"``, ``"threads"``, ``"process"``)
    or a ready :class:`ExecutionBackend` instance; ``options`` are forwarded
    to the named backend's constructor (e.g. ``max_workers`` for
    ``"threads"``).  Returns the installed backend.
    """
    global _default_backend
    _default_backend = _construct(backend, **options)
    return _default_backend


def current_backend() -> ExecutionBackend:
    """The backend samplers use when no per-call override is given."""
    scoped = _context_backend.get()
    return scoped if scoped is not None else _default_backend


def resolve_backend(spec: BackendLike = None) -> ExecutionBackend:
    """Resolve a per-call ``backend=`` argument (``None`` -> current backend)."""
    if spec is None:
        return current_backend()
    return _construct(spec)


@contextlib.contextmanager
def use_backend(backend: BackendLike, **options) -> Iterator[ExecutionBackend]:
    """Scope a backend override to a ``with`` block."""
    resolved = _construct(backend, **options)
    token = _context_backend.set(resolved)
    try:
        yield resolved
    finally:
        _context_backend.reset(token)
