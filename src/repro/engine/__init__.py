"""Vectorized oracle-batch engine with pluggable execution backends.

The paper's speedup story is that each adaptive round issues *many
independent counting-oracle queries at once*.  This package makes that round
a first-class object and separates the *what* from the *how*:

::

    sampler round                engine                      oracle layer
    -------------                ------                      ------------
    adaptive round  --builds-->  OracleBatch  --executed-->  counting_batch /
    (marginals,                  (queries,       by an       joint_marginals_batch /
     density ratios)              normalizer)  ExecutionBackend  stacked linalg

* :class:`~repro.engine.batch.OracleBatch` — a declarative request: many
  subsets against one distribution (or matrix), answered in one round.
* :class:`~repro.engine.backends.ExecutionBackend` — how the round fans out:
  :class:`~repro.engine.backends.SerialBackend` (reference scalar loop),
  :class:`~repro.engine.backends.VectorizedBackend` (stacked NumPy via the
  distributions' batch oracles and :mod:`repro.linalg.batch`),
  :class:`~repro.engine.backends.ThreadPoolBackend`
  (``concurrent.futures`` fan-out), and
  :class:`~repro.engine.backends.ProcessPoolBackend` (worker processes over
  a :mod:`multiprocessing.shared_memory` kernel store —
  :mod:`repro.engine.shm` — so GIL-bound oracle paths scale across cores).
* :class:`~repro.engine.planner.AutoBackend` / ``backend="auto"`` (the
  default) — the cost-aware :class:`~repro.engine.planner.RoundPlanner`
  prices every batch on every eligible backend (calibrated PRAM cost model
  × per-backend :meth:`~repro.engine.backends.ExecutionBackend.traits`
  descriptors × per-distribution cost hints) and routes it to the cheapest.
* :func:`~repro.engine.config.configure_backend` /
  :func:`~repro.engine.config.use_backend` — process-wide / scoped selection;
  every sampler additionally accepts ``backend=...`` per call, which always
  bypasses the planner.

Backends answer the *same* queries with the same numerics, so fixed-seed
sampler runs produce identical samples across backends; the PRAM tracker
records one round per batch regardless of execution strategy, which keeps the
paper's depth accounting independent of wall-clock engineering.
"""

from repro.engine.batch import BATCH_KINDS, BatchPayload, OracleBatch, OracleBatchResult
from repro.engine.backends import (
    BackendTraits,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
)
from repro.engine.planner import AutoBackend, PlanDecision, RoundPlanner, probe_dispatch_overhead
from repro.engine.shm import ArrayRef, SharedArrayStore, shared_memory_available
from repro.engine.config import (
    BACKEND_REGISTRY,
    BackendLike,
    configure_backend,
    current_backend,
    resolve_backend,
    use_backend,
)

from typing import Optional

from repro.pram.tracker import Tracker


def execute_batch(batch: OracleBatch, *, tracker: Optional[Tracker] = None,
                  backend=None) -> OracleBatchResult:
    """Execute ``batch`` on ``backend`` (or the currently configured one)."""
    return resolve_backend(backend).execute(batch, tracker=tracker)


__all__ = [
    "BATCH_KINDS",
    "ArrayRef",
    "AutoBackend",
    "BackendTraits",
    "BatchPayload",
    "OracleBatch",
    "OracleBatchResult",
    "ExecutionBackend",
    "PlanDecision",
    "RoundPlanner",
    "SerialBackend",
    "SharedArrayStore",
    "VectorizedBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "probe_dispatch_overhead",
    "shared_memory_available",
    "BACKEND_REGISTRY",
    "BackendLike",
    "configure_backend",
    "current_backend",
    "resolve_backend",
    "use_backend",
    "execute_batch",
]
