"""Cost-aware execution planning: ``backend="auto"``.

The paper states its speedup in a work/depth cost model, and the repo tracks
that model (:mod:`repro.pram`) — but until this module, the *engine* ignored
it when deciding how to run a round: callers hand-picked
``serial``/``vectorized``/``threads``/``process``, and small rounds dispatched
to ``process`` lost to the ~ms IPC round trip (a PR 3 discovery).  This is
the same preprocessing-vs-per-sample cost tradeoff that motivates the
amortized samplers in PAPERS.md, applied one level down: *per adaptive
round*, pay a backend's dispatch overhead only when the round's compute
dwarfs it.

:class:`RoundPlanner` unifies the two cost vocabularies:

* the PRAM :class:`~repro.pram.cost.CostModel` prices a batch in abstract
  work units (``queries x matrix_order^omega``);
* :func:`~repro.pram.cost.calibrate_wall_clock` converts units to seconds
  with per-process microbenchmarks (a LAPACK lane and an interpreted-Python
  lane — the distinction that decides whether thread fan-out helps at all);
* each :class:`~repro.engine.backends.ExecutionBackend` reports a
  :class:`~repro.engine.backends.BackendTraits` descriptor (parallel lanes,
  whether the Python lane escapes the GIL, dispatch overhead), whose
  overhead field the planner replaces with a measured probe — executing a
  trivial two-query batch through the backend — the first time the backend
  is seriously considered (probing the process backend spins up its worker
  pool, so the probe is deferred until a batch is plausibly heavy enough to
  want it).

For every :class:`~repro.engine.batch.OracleBatch` the planner combines the
distribution's :meth:`~repro.distributions.base.SubsetDistribution.oracle_cost_hint`
with the calibrated model, estimates wall-clock on every eligible backend,
and picks the cheapest.  ``marginal_vector`` and ``projection_step`` rounds
are *fixed-route* kinds (one numerical route on every backend), so the
planner sends them to the zero-overhead in-process backend unconditionally.

Backend choice never changes *what* a round computes, so ``backend="auto"``
— the process-wide default installed by :mod:`repro.engine.config` —
produces byte-identical fixed-seed samples to every forced backend; the
planner is pure wall-clock engineering, exactly like the backends it
arbitrates.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.engine.backends import BackendTraits, ExecutionBackend
from repro.engine.batch import OracleBatch, OracleBatchResult
from repro.pram.cost import (
    CalibratedCostModel,
    CostModel,
    DEFAULT_COST_MODEL,
    OracleCostHint,
    calibrated_cost_model,
)
from repro.pram.tracker import Tracker

__all__ = ["PlanDecision", "RoundPlanner", "AutoBackend", "probe_dispatch_overhead",
           "should_refactorize"]

#: batch kinds the planner arbitrates; the other kinds are fixed-route
PLANNED_KINDS = ("counting", "joint_marginals", "log_principal_minors")

#: default candidate backends, cheapest-dispatch first (tie-break order)
DEFAULT_CANDIDATES = ("vectorized", "threads", "process")

#: interpreter overhead prior for one scalar ``counting()`` call (seconds);
#: only the scalar-loop backends (serial/threads) pay it per query
_SCALAR_CALL_OVERHEAD_S = 2e-5

#: a pooled backend is only *probed* (which may spin up its pool) once the
#: estimate built from its traits prior says it would win a batch at least
#: this expensive (seconds)
_PROBE_FLOOR_S = 1e-3


def probe_dispatch_overhead(backend: ExecutionBackend, repeats: int = 3) -> float:
    """Measured seconds to round-trip a trivial batch through ``backend``.

    The probe batch is two ``1x1`` principal minors of a tiny matrix: its
    compute is nanoseconds, so the best-of-``repeats`` wall time is almost
    purely the backend's dispatch cost (thread-pool handoff; for the process
    backend, payload publication plus one IPC round trip).  The first call
    also pays pool spin-up — executing one warm-up batch before timing keeps
    that out of the measurement.
    """
    matrix = np.eye(2)
    batch = lambda: OracleBatch.log_principal_minors(  # noqa: E731
        matrix, [(0,), (1,)], label="planner-probe")
    backend.execute(batch(), tracker=Tracker())  # warm-up (pool spin-up, imports)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        backend.execute(batch(), tracker=Tracker())
        best = min(best, time.perf_counter() - start)
    return best


def should_refactorize(hint: OracleCostHint, *,
                       model: Optional[CalibratedCostModel] = None,
                       cap: int = 64) -> bool:
    """Patch-vs-recompute policy for incremental kernel updates.

    ``True`` when ``hint.update_depth`` (the mutation's position in the
    fingerprint chain) has reached the calibrated break-even depth — the
    point where the cumulative cost of ``O(n²)`` secular patches has paid
    for one cold ``O(n³)`` refactorization, making the refresh (which also
    resets accumulated patch rounding) amortized-free.  Factor-backed
    (``rank``-set) kernels patch exactly, so they refactorize only at the
    ``cap``.  This is the decision behind ``refactor="auto"`` on
    :meth:`repro.service.registry.KernelRegistry.apply_update` and the
    session/cluster ``update()`` facades.
    """
    calibrated = calibrated_cost_model(model if model is not None
                                       else DEFAULT_COST_MODEL)
    return int(hint.update_depth) >= calibrated.update_break_even_depth(hint, cap=cap)


@dataclass(frozen=True)
class PlanDecision:
    """One routing decision (kept in :attr:`RoundPlanner.decisions`)."""

    kind: str
    label: str
    queries: int
    chosen: str
    #: estimated seconds per candidate backend (empty for fixed-route kinds)
    estimates: Dict[str, float] = field(default_factory=dict)
    #: why the batch skipped estimation ("fixed-route", "empty", ...) if it did
    reason: str = ""
    #: distribution family label (class name, or "matrix" for minor batches)
    family: str = ""


class RoundPlanner:
    """Estimates per-backend wall-clock for a batch and picks the cheapest.

    Parameters
    ----------
    cost_model:
        The PRAM model to extend with wall-clock coefficients; a plain
        :class:`CostModel` is calibrated on first use (cached per process),
        a :class:`CalibratedCostModel` is used as-is — tests inject
        hand-built coefficients this way.
    candidates:
        Backend names considered for planned kinds, resolved through the
        shared name registry so pooled candidates reuse the same executors
        as explicit ``backend="threads"``/``"process"`` callers.
    backends:
        Optional explicit ``name -> ExecutionBackend`` mapping overriding
        name resolution (tests inject recording stubs here).
    overheads:
        Optional pre-seeded ``name -> seconds`` dispatch overheads,
        bypassing the lazy probes (tests, or operators with known numbers).
    feedback:
        The :class:`~repro.obs.feedback.ObservedCostFeedback` whose learned
        corrections rescale every candidate estimate (and which
        :meth:`observe` feeds measured wall-times into).  ``None`` — the
        default — resolves lazily to the process-wide ``repro.obs``
        instance, which is disabled unless the operator arms it with
        ``repro.obs.configure(feedback=True)``; tests inject their own.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race
    #: harness); the two documented benign races below carry R2 pragmas
    _GUARDED_BY = {"_lock": ("_calibrated", "_overheads", "decisions")}

    def __init__(self, cost_model: Optional[CostModel] = None, *,
                 candidates: Sequence[str] = DEFAULT_CANDIDATES,
                 backends: Optional[Dict[str, ExecutionBackend]] = None,
                 overheads: Optional[Dict[str, float]] = None,
                 feedback=None, record: int = 64):
        self._cost_model_input = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self._calibrated: Optional[CalibratedCostModel] = (
            self._cost_model_input if isinstance(self._cost_model_input, CalibratedCostModel)
            else None)
        self.candidates = tuple(candidates)
        self._backends = dict(backends) if backends is not None else None
        self._overheads: Dict[str, float] = dict(overheads or {})
        self._feedback = feedback
        self._lock = threading.Lock()
        self.decisions: Deque[PlanDecision] = deque(maxlen=record)

    @property
    def feedback(self):
        """The measured-cost feedback in effect (process-wide by default)."""
        return self._feedback if self._feedback is not None else obs.feedback()

    # ------------------------------------------------------------------ #
    # lazily calibrated pieces
    # ------------------------------------------------------------------ #
    @property
    def cost_model(self) -> CalibratedCostModel:
        """The wall-clock-calibrated cost model (probes run on first access)."""
        # repro: allow[R2] -- benign double-checked read: _calibrated only transitions None -> value, once, under the lock below
        if self._calibrated is None:
            with self._lock:
                if self._calibrated is None:
                    self._calibrated = calibrated_cost_model(self._cost_model_input)
        # repro: allow[R2] -- benign unlocked read: monotonic None -> value transition committed above makes this stable
        return self._calibrated

    def _backend(self, name: str) -> ExecutionBackend:
        if self._backends is not None:
            return self._backends[name]
        from repro.engine.config import resolve_backend

        return resolve_backend(name)

    def _overhead(self, name: str, traits: BackendTraits, single_lane_s: float) -> float:
        """Dispatch overhead for ``name``: measured when warranted, prior otherwise.

        Probing a pooled backend spins up its pool, so the probe only runs
        once the traits-prior estimate says the backend could plausibly win
        a batch of at least ``_PROBE_FLOOR_S`` single-lane seconds; until
        then the prior stands in (which can only make the planner *more*
        conservative about leaving the in-process backend).
        """
        cached = self._overheads.get(name)  # repro: allow[R2] -- benign racy read: a miss only risks one duplicate probe; setdefault under the lock commits the first measurement
        if cached is not None:
            return cached
        if traits.dispatch_overhead_s == 0.0:
            self._overheads[name] = 0.0  # repro: allow[R2] -- idempotent constant write (GIL-atomic dict store); every racer writes the same 0.0
            return 0.0
        if single_lane_s < max(_PROBE_FLOOR_S, traits.dispatch_overhead_s):
            return traits.dispatch_overhead_s  # prior; not worth probing yet
        # Probe WITHOUT holding the planner lock: the first process-backend
        # probe spins up its worker pool (hundreds of ms), and concurrent
        # choose() calls — even cheap fixed-route ones that only _record() —
        # must not stall behind it.  A rare racing duplicate probe costs one
        # extra trivial batch on the shared pool; setdefault keeps the first
        # committed measurement authoritative.
        try:
            measured = probe_dispatch_overhead(self._backend(name))
        except Exception:
            measured = traits.dispatch_overhead_s
        with self._lock:
            return self._overheads.setdefault(name, measured)

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _hint_for(batch: OracleBatch) -> OracleCostHint:
        if batch.distribution is not None:
            return batch.distribution.oracle_cost_hint()
        # matrix-backed minors: stacked LAPACK over the largest subset order
        assert batch.matrix is not None
        order = max((len(s) for s in batch.subsets), default=1)
        return OracleCostHint(matrix_order=max(order, 1), python_fraction=0.0,
                              batch_vectorized=True)

    def estimate(self, batch: OracleBatch) -> Dict[str, float]:
        """Estimated wall-clock seconds per candidate backend for ``batch``.

        Each candidate's static (calibrated-model) estimate is rescaled by
        the measured-cost feedback correction for its
        ``(backend, family, shape bucket)`` regime — a no-op multiplier of
        1.0 until feedback is armed and that regime has been observed.
        """
        hint = self._hint_for(batch)
        model = self.cost_model
        queries = len(batch.subsets)
        feedback = self.feedback
        family = obs.family_of(batch)
        total_s = model.estimate_batch_seconds(hint, queries)
        python_s = model.python_seconds(hint, queries)
        lapack_s = total_s - python_s
        estimates: Dict[str, float] = {}
        for name in self.candidates:
            try:
                backend = self._backend(name)
                traits = backend.traits()
            except Exception:
                continue  # unknown/unconstructible candidate: skip it
            lanes = max(1, min(traits.parallelism, queries))
            if traits.name == "serial" or (traits.scalar_loop and lanes == 1):
                cost = total_s + queries * _SCALAR_CALL_OVERHEAD_S
            elif traits.scalar_loop:
                # thread fan-out: LAPACK overlaps, but the Python lane —
                # including the per-call interpreter overhead of the scalar
                # loop — serializes on the GIL, so neither divides by lanes
                cost = python_s + lapack_s / lanes + queries * _SCALAR_CALL_OVERHEAD_S
            elif traits.escapes_gil:
                # worker processes parallelize the GIL-bound share; the
                # LAPACK share is priced at parity with in-process execution
                # (workers pin BLAS to one thread each, while the parent's
                # stacked calls may use a multithreaded BLAS — crediting the
                # pool a lanes-fold LAPACK speedup would steal LAPACK-bound
                # rounds that in-process execution serves at least as fast)
                cost = python_s / lanes + lapack_s
            else:
                cost = total_s
            if not hint.batch_vectorized and not traits.scalar_loop:
                # the batch oracle is the generic scalar loop anyway: the
                # "vectorized" backend degenerates to serial per-call costs,
                # while worker processes run that loop on parallel lanes
                cost += queries * _SCALAR_CALL_OVERHEAD_S / (
                    lanes if traits.escapes_gil else 1)
            single_lane = total_s + (queries * _SCALAR_CALL_OVERHEAD_S
                                     if traits.scalar_loop else 0.0)
            cost += self._overhead(name, traits, single_lane)
            cost += queries * traits.per_query_overhead_s
            if traits.escapes_gil:
                # out-of-process execution publishes the batch's payload:
                # charge the calibrated per-byte shipping coefficient for the
                # not-yet-published share (the backend's shm store ships each
                # distinct array once, so warm kernels estimate as free and
                # only very wide first-shipment rounds pay real seconds here)
                shipping = getattr(backend, "shipping_bytes", None)
                if shipping is not None:
                    try:
                        cost += model.shipping_seconds(shipping(batch))
                    except Exception:
                        pass  # estimation must never fail a round
            estimates[name] = cost * feedback.correction(name, family, queries)
        return estimates

    # ------------------------------------------------------------------ #
    def plan(self, batch: OracleBatch) -> Tuple[ExecutionBackend, PlanDecision]:
        """The cheapest eligible backend for ``batch``, with its decision.

        Fixed-route kinds and empty batches go straight to the in-process
        backend; everything else is estimated.  Candidate order breaks ties
        (``vectorized`` first), so an overhead-free in-process answer is
        never abandoned for a same-cost pooled one.
        """
        family = obs.family_of(batch)
        fallback = self._backend(self.candidates[0])
        if batch.kind not in PLANNED_KINDS:
            decision = PlanDecision(kind=batch.kind, label=batch.label,
                                    queries=batch.n_queries, chosen=fallback.name,
                                    reason="fixed-route", family=family)
            self._record(decision)
            return fallback, decision
        if not batch.subsets:
            decision = PlanDecision(kind=batch.kind, label=batch.label, queries=0,
                                    chosen=fallback.name, reason="empty",
                                    family=family)
            self._record(decision)
            return fallback, decision
        estimates = self.estimate(batch)
        if not estimates:
            decision = PlanDecision(kind=batch.kind, label=batch.label,
                                    queries=len(batch.subsets),
                                    chosen=fallback.name,
                                    reason="no-candidates", family=family)
            self._record(decision)
            return fallback, decision
        chosen = min(estimates, key=lambda name: estimates[name])
        decision = PlanDecision(kind=batch.kind, label=batch.label,
                                queries=len(batch.subsets), chosen=chosen,
                                estimates=estimates, family=family)
        self._record(decision)
        return self._backend(chosen), decision

    def choose(self, batch: OracleBatch) -> ExecutionBackend:
        """The cheapest eligible backend for ``batch`` (see :meth:`plan`)."""
        return self.plan(batch)[0]

    def observe(self, decision: PlanDecision, result: OracleBatchResult) -> None:
        """Feed a routed round's measured wall time back into pricing.

        Records predicted-vs-actual in the metrics registry and — when the
        feedback knob is armed — updates the EWMA correction for the
        decision's ``(backend, family, shape bucket)`` regime.  Only
        estimated decisions carry a prediction; fixed-route/empty rounds
        have nothing to compare against.
        """
        predicted = decision.estimates.get(decision.chosen)
        if predicted is None:
            return
        obs.observe_round_cost(decision.chosen, decision.family,
                               decision.queries, predicted, result.wall_time)
        feedback = self._feedback
        if feedback is not None and feedback is not obs.feedback():
            # an injected feedback object learns too (obs.observe_round_cost
            # only feeds the process-wide instance)
            feedback.observe(decision.chosen, decision.family,
                             decision.queries, predicted, result.wall_time)

    def _record(self, decision: PlanDecision) -> None:
        with self._lock:
            self.decisions.append(decision)
        obs.record_plan(decision)

    @property
    def last_decision(self) -> Optional[PlanDecision]:
        with self._lock:
            return self.decisions[-1] if self.decisions else None


class AutoBackend(ExecutionBackend):
    """The planner as a backend: every batch runs on the cheapest estimate.

    This is what ``backend="auto"`` (the process-wide default) resolves to.
    Explicit ``backend=`` arguments bypass it entirely — forcing a backend
    is always honored — and the chosen inner backend stamps its own name on
    the :class:`OracleBatchResult`, so reports show where a round actually
    ran; :attr:`planner` keeps the recent :class:`PlanDecision` log.
    """

    name = "auto"

    def __init__(self, planner: Optional[RoundPlanner] = None, *,
                 cost_model: Optional[CostModel] = None,
                 candidates: Optional[Sequence[str]] = None):
        if planner is not None and (cost_model is not None or candidates is not None):
            raise ValueError("pass either a ready planner or its options, not both")
        self.planner = planner if planner is not None else RoundPlanner(
            cost_model, candidates=tuple(candidates) if candidates is not None
            else DEFAULT_CANDIDATES)

    def execute(self, batch: OracleBatch, *, tracker: Optional[Tracker] = None) -> OracleBatchResult:
        backend, decision = self.planner.plan(batch)
        result = backend.execute(batch, tracker=tracker)
        self.planner.observe(decision, result)
        return result

    def traits(self) -> BackendTraits:
        return BackendTraits(name=self.name)

    # the abstract hooks are never reached — execute() is fully delegated
    def _counting(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError

    def _joint_marginals(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError

    def _log_principal_minors(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError
