"""Exact intermediate sampling for low-rank DPPs — the sublinear front end.

For ``L = B Bᵀ`` with ``B`` of rank ``k`` (``k ≪ n``), the HKPV sampler's
mixture decomposition still applies, but every mixture component is a
*projection* DPP of rank at most ``k`` — so a sample touches at most ``k``
elements, and running phase 2 against all ``n`` rows wastes almost all of the
work.  The intermediate-sampling scheme of Derezinski et al. (and the
sublinear-time samplers of PAPERS.md: Barthelmé–Tremblay–Amblard 2210.17358,
Anari–Liu–Vuong 2204.02570) fixes this *exactly*:

1. **dual phase 1** — eigendecompose the ``k x k`` Gram ``C = BᵀB`` (its
   spectrum is the nonzero spectrum of ``L``) and select the mixture
   component: Bernoulli ``λ/(1+λ)`` per eigenvalue for the DPP,
   the elementary-symmetric-polynomial recursion
   (:func:`repro.dpp.spectral.select_kdpp_eigenvectors`) for the k-DPP.
   Selected component: the projection DPP on the rows of the whitened
   coordinates ``U = B V_sel Λ_sel^{-1/2}`` (``m`` columns).
2. **candidates** — draw an intermediate set ``A`` by independent Bernoullis
   ``q_i = min(1, β·ℓ_i)`` where ``ℓ_i = ||c_i||²`` are the dual leverage
   scores (``Σ ℓ_i = rank``, so ``E|A| ≤ β·k`` — the ``O(k log k)``-sized
   candidate set).
3. **acceptance correction** — accept ``A`` with probability
   ``det(W̃ᵀW̃) / det(G_mask)`` where ``W̃`` are the candidate rows rescaled
   by ``1/√q`` and ``G_mask = Σ_i c_i c_iᵀ / q_i ⪰ I``.  A short calculation
   (``Σ_{A ⊇ S} P[A]·α(A)·P_phase2[S | A] = det(U_S U_Sᵀ)/det(G_mask)``)
   shows the output conditioned on acceptance is *exactly* the selected
   projection DPP — no approximation parameter anywhere.  By Cauchy–Binet
   ``E[det(W̃ᵀW̃)] = Σ_{|T|=m} det(U_T)² = 1``, so the *expected* acceptance
   is exactly ``exp(-log det G_mask)`` — a computable certificate.  When it
   predicts near-certain rejection (``log det G_mask`` above a small
   threshold) the proposal is skipped *without consuming randomness* and
   ``β`` doubles; rejected draws escalate the same way.  Each trial is exact
   conditioned on its own acceptance and the skip rule is a deterministic
   function of the proposal parameters, so escalation preserves the law.
   After ``max_rounds`` escalations ``q ≡ 1`` makes ``A = [n]`` and
   ``α = 1``, degrading gracefully to the direct route.  (For strongly
   non-uniform leverages — the realistic quality/diversity regime — small
   candidate sets accept at Θ(1) rate; perfectly flat leverages carry no
   sublinear structure and the sampler walks straight to the direct route.)
4. **phase 2 on the reduced kernel** — restrict to the candidates: by
   Cauchy–Binet the ``m``-DPP on ``L_red = W̃ W̃ᵀ`` (``|A| x |A|``) is
   precisely the required volume sampling over candidate rows.  Small pools
   run the existing exact sampler
   :func:`repro.dpp.spectral.sample_kdpp_spectral` on the materialized
   reduced kernel; pools past ``_REDUCED_DENSE_MAX`` rows instead
   orthonormalize ``W̃``'s columns (``m x m`` eigh) and run the exact
   Gram–Schmidt projection chain (:func:`_projection_chain`) — the same law,
   ``O(|A|·m²)`` work, never an ``|A| x |A|`` matrix.

Per-sample cost is ``O(n·k)`` for the Bernoulli/leverage pass plus the
reduced phase 2 (``O(|A|·k²)``, worst case ``O(n·k²)`` on the direct route),
after a one-time ``O(n·k² + k³)`` whitening that the serving layer caches;
memory never exceeds ``O(n·k)``.  All randomness is consumed from one
generator in the driver in a fixed order, so fixed-seed samples are
byte-identical across execution backends, fused or not.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.dpp.spectral import sample_kdpp_spectral, select_kdpp_eigenvectors
from repro.engine import BackendLike
from repro.pram.tracker import current_tracker
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import subset_key

__all__ = [
    "lowrank_intermediate_basis",
    "sample_dpp_intermediate",
    "sample_kdpp_intermediate",
]

#: relative threshold below which a dual eigenvalue counts as zero
_RANK_TOL = 1e-10

#: skip a candidate proposal (and escalate β) when ``log det G_mask`` exceeds
#: this — the expected acceptance ``exp(-log det G_mask)`` would be < ~5%
_SKIP_LOGDET = 3.0

#: largest candidate pool whose reduced kernel is materialized for the dense
#: spectral sampler; bigger pools use the O(|A|·m²) projection chain instead
_REDUCED_DENSE_MAX = 1024

#: precomputed ``(dual eigenvalues, whitened coordinates)`` pair
WhitenedBasis = Tuple[np.ndarray, np.ndarray]


def lowrank_intermediate_basis(factor: np.ndarray, *,
                               dual: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                               tol: float = _RANK_TOL) -> WhitenedBasis:
    """One-time whitening of a factor: ``(λ, U)`` with ``U = B V Λ^{-1/2}``.

    ``λ`` are the numerically nonzero eigenvalues of the dual Gram ``BᵀB``
    (ascending) — equal to the nonzero spectrum of ``L = B Bᵀ`` — and the
    columns of ``U`` (``n x r``) are the corresponding orthonormal
    eigenvectors of ``L``, computed without ever forming ``L``.  ``dual``
    optionally supplies a precomputed ``(eigenvalues, vectors)`` pair of the
    Gram (e.g. from a warm factorization cache); the whitening then costs one
    ``n x k`` matmul and draws identical samples downstream.

    This is the cacheable preprocessing of the intermediate sampler:
    ``O(n·k² + k³)`` once, ``O(n·k)`` memory.
    """
    B = np.asarray(factor, dtype=float)
    if B.ndim != 2:
        raise ValueError(f"factor must be 2-D, got shape {B.shape}")
    n, k = B.shape
    tracker = current_tracker()
    if dual is None:
        gram = B.T @ B
        tracker.charge_determinant(k)
        eigenvalues, vectors = np.linalg.eigh(0.5 * (gram + gram.T))
        eigenvalues = np.clip(eigenvalues, 0.0, None)
    else:
        eigenvalues = np.clip(np.asarray(dual[0], dtype=float), 0.0, None)
        vectors = np.asarray(dual[1], dtype=float)
        if eigenvalues.shape != (k,) or vectors.shape != (k, k):
            raise ValueError(
                f"precomputed dual has shapes {eigenvalues.shape}/{vectors.shape}, "
                f"expected ({k},)/({k}, {k})")
    top = float(eigenvalues.max(initial=0.0))
    keep = eigenvalues > tol * max(top, 1.0) if top > 0 else np.zeros(k, dtype=bool)
    kept = eigenvalues[keep]
    tracker.charge(work=float(n) * k * max(int(keep.sum()), 1))
    coords = (B @ vectors[:, keep]) / np.sqrt(kept)[None, :] if kept.size \
        else np.zeros((n, 0))
    return kept, coords


def _default_oversample(rank: int) -> float:
    """Default β: candidate sets of expected size ``O(k log k)``."""
    return max(4.0, 2.0 * math.log(rank + 2.0))


def _projection_chain(basis: np.ndarray, rng: np.random.Generator) -> Tuple[int, ...]:
    """Exact sample from the projection DPP of ``basis`` (orthonormal columns).

    The Gram–Schmidt conditional chain: with ``Y`` (``n' x m``) having
    orthonormal columns, ``P[S] = det(Y_S)²`` for ``|S| = m``; the chain rule
    picks row ``j`` with probability (residual norm²)/(remaining size), then
    removes the chosen direction from every row.  ``O(n'·m²)`` work and
    ``O(n'·m)`` memory — never an ``n' x n'`` matrix.  One uniform per step,
    drawn driver-side, so the sample is backend-independent.
    """
    rows, m = basis.shape
    residual = np.einsum("ij,ij->i", basis, basis)
    chosen = []
    for _step in range(m):
        weights = np.clip(residual, 0.0, None)
        weights[chosen] = 0.0
        total = weights.sum()
        if total <= 0:                               # pragma: no cover — numerics
            raise RuntimeError("projection chain ran out of residual mass")
        draw = float(rng.random()) * total
        j = int(np.searchsorted(np.cumsum(weights), draw, side="right"))
        j = min(j, rows - 1)
        chosen.append(j)
        # rows are kept projected onto the unchosen span, so the current row
        # j IS the new Gram–Schmidt direction (up to normalization)
        direction = basis[j] / np.linalg.norm(basis[j])
        component = basis @ direction
        basis -= np.outer(component, direction)
        residual -= component * component
    return tuple(chosen)


def _sample_projection_intermediate(coords: np.ndarray, mask: np.ndarray,
                                    rng: np.random.Generator, *,
                                    oversample: Optional[float],
                                    max_rounds: int,
                                    backend: BackendLike) -> Tuple[int, ...]:
    """Exact sample from the projection DPP on ``coords[:, mask]`` rows.

    The candidate/accept/reduce loop described in the module docstring.  All
    randomness comes from ``rng`` in a fixed order: per *attempted* proposal
    ``n`` uniforms for the candidate draw and one for the acceptance, then
    the reduced sampler's own consumption — skipped proposals consume none,
    and the skip rule depends only on ``(coords, mask, β)``, so fixed-seed
    samples are deterministic.
    """
    n, _r = coords.shape
    m = int(mask.sum())
    if m == 0:
        return ()
    selected = coords[:, mask]                       # (n, m) orthonormal columns
    leverages = np.einsum("ij,ij->i", selected, selected)
    tracker = current_tracker()
    beta = float(oversample) if oversample is not None \
        else _default_oversample(selected.shape[1])
    for attempt in range(max_rounds + 1):
        final = attempt == max_rounds
        if final:
            q = np.ones(n)                           # graceful direct-route cap
        else:
            q = np.clip(beta * leverages, None, 1.0)
        safe_q = np.maximum(q, 1e-300)
        # cheap certificate first: log det G_mask >= log(tr(G_mask)/m) since
        # G_mask ⪰ I, and the expected acceptance is exp(-log det G_mask)
        trace_mask = float(np.sum(leverages / safe_q))
        if not final and math.log(max(trace_mask / m, 1.0)) > _SKIP_LOGDET:
            # recording consumes no randomness: the skip rule is a
            # deterministic function of (coords, mask, β)
            obs.record_intermediate("skipped_trace", beta=beta, attempt=attempt)
            beta *= 2.0
            continue
        with tracker.round("intermediate-candidates"):
            tracker.charge(machines=float(n), work=float(n) * m * m)
            # G_mask = Σ_i c_i c_iᵀ / q_i  ⪰ I_m, so log det D >= 0
            scaled = selected / safe_q[:, None]
            G_mask = selected.T @ scaled
            _sign_d, logdet_d = np.linalg.slogdet(G_mask)
            certificate = math.exp(-max(logdet_d, 0.0))
            if not final and logdet_d > _SKIP_LOGDET:
                obs.record_intermediate("skipped_certificate",
                                        certificate=certificate, beta=beta,
                                        attempt=attempt)
                beta *= 2.0                          # hopeless: skip the draw
                continue
            candidates = np.flatnonzero(rng.random(n) < q)
            accept_draw = float(rng.random())
            if candidates.size >= m:
                reduced = selected[candidates] / np.sqrt(q[candidates])[:, None]
                inner_gram = reduced.T @ reduced
                sign_n, logdet_n = np.linalg.slogdet(inner_gram)
                log_alpha = (logdet_n - logdet_d) if sign_n > 0 else -np.inf
            else:
                log_alpha = -np.inf                  # α = 0: certain rejection
        if math.log(max(accept_draw, 1e-300)) < log_alpha:
            obs.record_intermediate("direct" if final else "accepted",
                                    certificate=certificate,
                                    pool=int(candidates.size), beta=beta,
                                    attempt=attempt)
            # phase 2 (Cauchy–Binet: the m-DPP on W̃W̃ᵀ is the volume
            # sampling law over candidate rows)
            if candidates.size <= _REDUCED_DENSE_MAX:
                kernel_reduced = reduced @ reduced.T
                inner = sample_kdpp_spectral(kernel_reduced, m, rng,
                                             validate=False, backend=backend)
            else:
                # same law without the |A| x |A| kernel: orthonormalize the
                # columns of W̃ (det(Y_S)² ∝ det(W̃_S)²) and run the chain
                gram_eigenvalues, gram_vectors = np.linalg.eigh(
                    0.5 * (inner_gram + inner_gram.T))
                orthonormal = reduced @ (gram_vectors
                                         / np.sqrt(gram_eigenvalues)[None, :])
                inner = _projection_chain(orthonormal, rng)
            return subset_key(int(candidates[i]) for i in inner)
        obs.record_intermediate("rejected", certificate=certificate,
                                pool=int(candidates.size), beta=beta,
                                attempt=attempt)
        beta *= 2.0
    raise RuntimeError("intermediate sampler failed to accept at q ≡ 1 "
                       "(unreachable: α = 1 there)")  # pragma: no cover


def sample_dpp_intermediate(kernel, seed: SeedLike = None, *,
                            oversample: Optional[float] = None,
                            max_rounds: int = 6,
                            whitened: Optional[WhitenedBasis] = None,
                            backend: BackendLike = None) -> Tuple[int, ...]:
    """Exact sample from ``DPP(B Bᵀ)`` without materializing the ``n x n`` kernel.

    ``kernel`` is a :class:`~repro.distributions.lowrank.LowRankKernel` or a
    raw ``n x k`` factor array.  ``whitened`` optionally supplies the cached
    :func:`lowrank_intermediate_basis` pair; ``oversample`` is the candidate
    set's β knob (``E|A| ≤ β·k``; default ``max(4, 2 ln k)``), escalated
    automatically on rejection so the output law never depends on it.
    ``backend`` routes the reduced sampler's phase-2 engine rounds —
    wall-clock only, never the sample.
    """
    factor = getattr(kernel, "factor", kernel)
    eigenvalues, coords = whitened if whitened is not None \
        else lowrank_intermediate_basis(factor)
    rng = as_generator(seed)
    mask = rng.random(eigenvalues.size) < eigenvalues / (1.0 + eigenvalues)
    return _sample_projection_intermediate(
        coords, mask, rng, oversample=oversample, max_rounds=max_rounds,
        backend=backend)


def sample_kdpp_intermediate(kernel, k: int, seed: SeedLike = None, *,
                             oversample: Optional[float] = None,
                             max_rounds: int = 6,
                             whitened: Optional[WhitenedBasis] = None,
                             backend: BackendLike = None) -> Tuple[int, ...]:
    """Exact sample from the k-DPP of ``B Bᵀ`` without materializing it.

    Phase 1 runs the elementary-symmetric-polynomial eigenvector selection
    over the dual spectrum (the zero eigenvalues of ``L`` contribute nothing
    to any ESP, so the ``k``-sized dual recursion is exact); the rest matches
    :func:`sample_dpp_intermediate`.
    """
    factor = getattr(kernel, "factor", kernel)
    eigenvalues, coords = whitened if whitened is not None \
        else lowrank_intermediate_basis(factor)
    if k == 0:
        return ()
    if k > eigenvalues.size:
        raise ValueError(
            f"k-DPP with k={k} has zero mass: factor rank is {eigenvalues.size} < k")
    rng = as_generator(seed)
    mask = select_kdpp_eigenvectors(eigenvalues, k, rng)
    return _sample_projection_intermediate(
        coords, mask, rng, oversample=oversample, max_rounds=max_rounds,
        backend=backend)
