"""Partition-constrained DPPs (Definition 7) with the [Cel+16] counting oracle.

``μ(S) ∝ det(L_S) · ∏_i 1[|S ∩ V_i| = c_i]`` for a symmetric PSD ensemble
matrix ``L``, a partition ``V_1 ∪ ... ∪ V_r = [n]`` with ``r = O(1)``, and
target counts ``c_1, ..., c_r``.

The counting oracle evaluates the ``r``-variate polynomial

``g(z_1, ..., z_r) = det(I + L · diag(z_{part(e)})) = Σ_S det(L_S) ∏_i z_i^{|S∩V_i|}``

on a tensor grid and reads off the coefficient of ``∏ z_i^{c_i}`` by solving
Vandermonde systems (``NC``, [Cel+17]).  Conditioning on inclusion of ``T``
maps to the Schur complement ``L^T`` together with reduced part sizes and
counts (Section 3.2 of the paper).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import HomogeneousDistribution
from repro.dpp.kernels import validate_ensemble
from repro.dpp.likelihood import dpp_unnormalized
from repro.linalg.batch import (
    batched_schur_complements,
    group_by_size,
    stacked_principal_submatrices,
)
from repro.linalg.determinant import principal_minor
from repro.linalg.interpolation import tensor_product_nodes, tensor_vandermonde_solve
from repro.linalg.schur import condition_ensemble
from repro.pram.cost import OracleCostHint
from repro.pram.tracker import current_tracker
from repro.utils.validation import check_subset


class PartitionDPP(HomogeneousDistribution):
    """Partition-constrained DPP (Definition 7).

    Parameters
    ----------
    L:
        Symmetric PSD ensemble matrix.
    parts:
        Sequence of ``r`` disjoint element lists covering ``[n]``.
    counts:
        Required intersection sizes ``c_i = |S ∩ V_i|``.
    """

    def __init__(self, L: np.ndarray, parts: Sequence[Sequence[int]], counts: Sequence[int],
                 *, validate: bool = True, labels: Optional[Sequence[int]] = None,
                 partition_function: Optional[float] = None):
        self.L = validate_ensemble(L, symmetric=True) if validate else np.asarray(L, dtype=float)
        self.n = self.L.shape[0]
        self.parts: List[Tuple[int, ...]] = [tuple(sorted(int(i) for i in part)) for part in parts]
        self.counts: Tuple[int, ...] = tuple(int(c) for c in counts)
        if len(self.parts) != len(self.counts):
            raise ValueError("parts and counts must have the same length")
        if len(self.parts) == 0:
            raise ValueError("at least one part is required")
        covered = [i for part in self.parts for i in part]
        if sorted(covered) != list(range(self.n)):
            raise ValueError("parts must form a partition of the ground set")
        for part, count in zip(self.parts, self.counts):
            if count < 0 or count > len(part):
                raise ValueError(f"count {count} infeasible for part of size {len(part)}")
        self.r = len(self.parts)
        self.k = int(sum(self.counts))
        self._labels = tuple(int(i) for i in labels) if labels is not None else tuple(range(self.n))
        # part index of each element
        self._part_of = np.empty(self.n, dtype=int)
        for idx, part in enumerate(self.parts):
            for element in part:
                self._part_of[element] = idx
        # ``partition_function`` lets a warm factorization cache supply the
        # (already validated) interpolation-oracle normalizer so repeated
        # constructions/queries on the same kernel skip the grid of stacked
        # determinants; the value must equal what ``_constrained_count`` on
        # the full ensemble would return.
        self._z: Optional[float] = float(partition_function) if partition_function is not None else None
        if validate or self._z is not None:
            z = self.partition_function()
            if z <= 0:
                raise ValueError("partition constraints have zero probability under the DPP")

    # ------------------------------------------------------------------ #
    @property
    def ground_labels(self) -> Tuple[int, ...]:
        return self._labels

    def part_of(self, element: int) -> int:
        """Index of the part containing ``element``."""
        return int(self._part_of[int(element)])

    def worker_payload(self):
        """Ship ``L``, the partition structure, and the normalizer if warm."""
        params = {
            "parts": tuple(tuple(part) for part in self.parts),
            "counts": self.counts,
            "labels": self._labels,
            "z": self._z,
        }
        return {"L": self.L}, params

    @classmethod
    def from_worker_payload(cls, arrays, params):
        return cls(arrays["L"], params["parts"], params["counts"], validate=False,
                   labels=params["labels"], partition_function=params["z"])

    def oracle_cost_hint(self) -> OracleCostHint:
        """Interpolation grids: heavily GIL-bound.

        Each surviving subset of a batch evaluates its own tensor-product
        interpolation grid (a Python loop around stacked determinants plus
        the Vandermonde solve), and the grid has ``∏(|P_i|+1)`` nodes — so
        the effective per-query order is well above ``n`` and the Python
        lane dominates.  This is the flagship process-backend workload.
        """
        return OracleCostHint(matrix_order=self.n, python_fraction=0.8,
                              batch_vectorized=True,
                              update_depth=self.update_depth)

    # ------------------------------------------------------------------ #
    # densities
    # ------------------------------------------------------------------ #
    def _satisfies_constraints(self, subset: Tuple[int, ...]) -> bool:
        tallies = [0] * self.r
        for item in subset:
            tallies[self._part_of[item]] += 1
        return tuple(tallies) == self.counts

    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        if len(items) != self.k or not self._satisfies_constraints(items):
            return 0.0
        return max(dpp_unnormalized(self.L, items), 0.0)

    # ------------------------------------------------------------------ #
    # counting oracle by multivariate interpolation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _constrained_count(L: np.ndarray, part_of: np.ndarray, part_sizes: Sequence[int],
                           counts: Sequence[int]) -> float:
        """Coefficient of ``∏ z_i^{c_i}`` in ``det(I + L diag(z_{part})``.

        All grid evaluations of the generating polynomial are one stacked
        determinant call (one batched ``Õ(1)``-depth round), followed by the
        tensor-product Vandermonde solve.
        """
        n = L.shape[0]
        if any(c < 0 for c in counts):
            return 0.0
        if any(c > s for c, s in zip(counts, part_sizes)):
            return 0.0
        if n == 0:
            return 1.0 if all(c == 0 for c in counts) else 0.0
        node_sets = tensor_product_nodes(part_sizes, node_scale=1.0)
        grid_shape = tuple(len(nodes) for nodes in node_sets)
        # row-major grid of evaluation points, one row per grid node
        points = np.stack(np.meshgrid(*node_sets, indexing="ij"), axis=-1).reshape(-1, len(node_sets))
        weights = points[:, part_of]                      # (grid, n) column scalings
        tracker = current_tracker()
        with tracker.round("interpolation-evaluations"):
            tracker.charge(machines=float(weights.shape[0]))
            tracker.charge_determinant(n, count=weights.shape[0])
            stacked = np.eye(n)[None] + L[None] * weights[:, None, :]
            values = np.linalg.det(stacked).reshape(grid_shape)
        coeffs = tensor_vandermonde_solve(values, node_sets)
        value = float(coeffs[tuple(counts)])
        return max(value, 0.0)

    def partition_function(self) -> float:
        # Memoized: the interpolation-grid evaluation is the dominant
        # preprocessing cost of this oracle, and conditioned kernels created
        # mid-sample would otherwise re-pay it on every normalizer query.
        if self._z is None:
            part_sizes = [len(p) for p in self.parts]
            self._z = self._constrained_count(self.L, self._part_of, part_sizes, self.counts)
        return self._z

    def counting(self, given: Iterable[int] = ()) -> float:
        items = check_subset(given, self.n)
        if not items:
            return self.partition_function()
        # Conditioning reduces to a Schur complement with reduced counts
        # (paper, Section 3.2: Partition-DPP conditioning).
        taken = [0] * self.r
        for item in items:
            taken[self._part_of[item]] += 1
        reduced_counts = [c - t for c, t in zip(self.counts, taken)]
        if any(c < 0 for c in reduced_counts):
            return 0.0
        det_t = principal_minor(self.L, items)
        if det_t <= 0:
            return 0.0
        if len(items) == self.k:
            return det_t
        L_cond, remaining = condition_ensemble(self.L, items)
        L_cond = 0.5 * (L_cond + L_cond.T)
        part_of_reduced = np.array([self._part_of[i] for i in remaining], dtype=int)
        part_sizes = [int(np.sum(part_of_reduced == idx)) for idx in range(self.r)]
        inner = self._constrained_count(L_cond, part_of_reduced, part_sizes, reduced_counts)
        return det_t * inner

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        items = check_subset(given, self.n)
        denom = self.counting(items)
        if denom <= 0:
            raise ValueError(f"conditioning event {items} has zero probability")
        item_set = set(items)
        outside = [i for i in range(self.n) if i not in item_set]
        queries = [tuple(sorted(items + (i,))) for i in outside]
        marginals = np.ones(self.n, dtype=float)
        tracker = current_tracker()
        with tracker.round("partition-dpp-marginals"):
            tracker.charge(machines=float(self.n))
            marginals[outside] = self.counting_batch(queries) / denom
        return np.clip(marginals, 0.0, 1.0)

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Batched counting: stacked ``det(L_T)`` and Schur complements per
        size group, then the (internally stacked-grid) interpolation oracle
        per surviving subset."""
        values = np.zeros(len(subsets), dtype=float)
        tracker = current_tracker()
        for t, positions in group_by_size(subsets).items():
            group = [check_subset(subsets[p], self.n) for p in positions]
            if t == 0:
                values[positions] = self.partition_function()
                continue
            reduced_counts_group: List[Optional[List[int]]] = []
            for items in group:
                taken = [0] * self.r
                for item in items:
                    taken[self._part_of[item]] += 1
                reduced = [c - took for c, took in zip(self.counts, taken)]
                reduced_counts_group.append(None if any(c < 0 for c in reduced) else reduced)
            tracker.charge_determinant(t, count=len(group))
            dets = np.linalg.det(stacked_principal_submatrices(self.L, group))
            feasible = np.array([rc is not None for rc in reduced_counts_group])
            ok = np.flatnonzero(feasible & (dets > 0))
            if ok.size == 0:
                continue
            if t == self.k:
                out = np.zeros(len(group), dtype=float)
                out[ok] = dets[ok]
                values[positions] = out
                continue
            schur, remaining = batched_schur_complements(self.L, [group[i] for i in ok])
            out = np.zeros(len(group), dtype=float)
            for row, i in enumerate(ok):
                L_cond = 0.5 * (schur[row] + schur[row].T)
                part_of_reduced = self._part_of[remaining[row]]
                part_sizes = [int(np.sum(part_of_reduced == idx)) for idx in range(self.r)]
                inner = self._constrained_count(L_cond, part_of_reduced, part_sizes,
                                               reduced_counts_group[i])
                out[i] = dets[i] * inner
            values[positions] = out
        return values

    def joint_marginals_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        z = self.partition_function()
        tracker = current_tracker()
        with tracker.round("partition-dpp-joint-marginals"):
            tracker.charge(machines=float(len(subsets)))
            values = self.counting_batch(subsets) / z
        return np.clip(values, 0.0, None)

    # ------------------------------------------------------------------ #
    def condition(self, include: Iterable[int]) -> "PartitionDPP":
        items = check_subset(include, self.n)
        if not items:
            return self
        taken = [0] * self.r
        for item in items:
            taken[self._part_of[item]] += 1
        reduced_counts = [c - t for c, t in zip(self.counts, taken)]
        if any(c < 0 for c in reduced_counts):
            raise ValueError(f"conditioning on {items} violates the partition constraints")
        L_cond, remaining = condition_ensemble(self.L, items)
        L_cond = 0.5 * (L_cond + L_cond.T)
        labels = tuple(self._labels[i] for i in remaining)
        old_to_new = {old: new for new, old in enumerate(remaining)}
        new_parts = []
        for part in self.parts:
            new_parts.append([old_to_new[i] for i in part if i in old_to_new])
        return PartitionDPP(L_cond, new_parts, reduced_counts, validate=False, labels=labels)
