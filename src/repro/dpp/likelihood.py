"""Unnormalized DPP densities and batched joint marginals.

* ``μ(S) = det(L_{S,S})`` — one principal minor per subset.
* ``Σ_{|S| = j} det(L_{S,S})`` — the ``j``-th coefficient sum of principal
  minors, read off the characteristic polynomial (works for nonsymmetric
  matrices, whose eigenvalues may be complex but whose minor sums are real).
* ``P[T ⊆ S] = det(K_{T,T})`` (symmetric or nonsymmetric kernels, [KT12a]) —
  evaluated for many ``T`` at once in one batched-oracle round.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.linalg.determinant import batched_principal_minors, principal_minor
from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square


def dpp_unnormalized(L: np.ndarray, subset: Iterable[int]) -> float:
    """``det(L_{S,S})`` — the unnormalized DPP probability of ``subset``."""
    return principal_minor(L, subset)


def dpp_log_unnormalized(L: np.ndarray, subset: Iterable[int]) -> float:
    """``log det(L_{S,S})``; returns ``-inf`` for nonpositive minors."""
    a = check_square(L, "L")
    idx = np.asarray(sorted(int(i) for i in subset), dtype=int)
    if idx.size == 0:
        return 0.0
    sub = a[np.ix_(idx, idx)]
    current_tracker().charge_determinant(idx.size)
    sign, logabs = np.linalg.slogdet(sub)
    if sign <= 0:
        return -np.inf
    return float(logabs)


def sum_principal_minors(matrix: np.ndarray, order: int) -> float:
    """``Σ_{|S| = order} det(M_{S,S})``.

    Equal to the elementary symmetric polynomial of the eigenvalues of ``M``
    (real even when the eigenvalues are complex, because it is a coefficient
    of the real characteristic polynomial ``det(tI + M)``).
    """
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    if order < 0 or order > n:
        return 0.0
    if order == 0:
        return 1.0
    current_tracker().charge_determinant(n)
    eigenvalues = np.linalg.eigvals(a)
    # coefficients of prod (t + lambda_i): coeff of t^{n-j} is e_j(lambda)
    coeffs = np.poly(-eigenvalues)  # gives prod (t + lambda_i)
    value = coeffs[order]
    return float(np.real_if_close(value, tol=1e8).real)


def all_principal_minor_sums(matrix: np.ndarray) -> np.ndarray:
    """``[Σ_{|S|=j} det(M_S)]_{j=0..n}`` in one characteristic-polynomial call."""
    a = check_square(matrix, "matrix")
    n = a.shape[0]
    current_tracker().charge_determinant(n)
    if n == 0:
        return np.array([1.0])
    eigenvalues = np.linalg.eigvals(a)
    coeffs = np.poly(-eigenvalues)
    return np.real_if_close(coeffs, tol=1e8).real.astype(float)


def batched_joint_marginals(K: np.ndarray, subsets: Sequence[Sequence[int]]) -> np.ndarray:
    """``P[T ⊆ S] = det(K_{T,T})`` for many subsets ``T`` of equal size.

    One batched round of oracle queries; clips tiny negative values caused by
    floating point to zero.
    """
    values = batched_principal_minors(K, subsets)
    return np.clip(values, 0.0, None)
