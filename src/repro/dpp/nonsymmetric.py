"""Nonsymmetric DPPs and k-DPPs (Definitions 4–6).

A nonsymmetric PSD (nPSD) ensemble matrix satisfies ``L + Lᵀ ⪰ 0``, which
guarantees nonnegative principal minors [Gar+19, Lemma 1] so ``det(L_S)``
defines a measure.  The determinant identities used for counting are purely
algebraic and hold verbatim:

* ``Σ_{S ⊇ T} det(L_S) = det(K_T) det(I + L)`` with ``K = L (I + L)^{-1}``;
* ``Σ_{S ⊇ T, |S|=k} det(L_S) = det(L_T) · [Σ_{|S'|=k-|T|} det((L^T)_{S'})]``
  where the inner sum is a coefficient of the characteristic polynomial of the
  Schur complement ``L^T`` (real even when its eigenvalues are complex).

Marginals no longer have a clean eigenvector formula, so the k-DPP marginal
vector uses the exclusion identity
``P[i ∈ S] = 1 - e_k(L_{-i}) / e_k(L)`` (delete row/column ``i``), evaluated
for all ``i`` in one batched round.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import HomogeneousDistribution, SubsetDistribution
from repro.dpp.kernels import ensemble_to_kernel, validate_ensemble
from repro.dpp.likelihood import all_principal_minor_sums, dpp_unnormalized, sum_principal_minors
from repro.linalg.batch import (
    batched_esp,
    batched_schur_complements,
    group_by_size,
    grouped_principal_minors,
    stacked_principal_submatrices,
)
from repro.linalg.determinant import principal_minor
from repro.linalg.schur import condition_ensemble
from repro.pram.cost import OracleCostHint
from repro.pram.tracker import current_tracker
from repro.utils.validation import check_positive_int, check_subset


class NonsymmetricDPP(SubsetDistribution):
    """Unconstrained nonsymmetric DPP ``P[Y] ∝ det(L_Y)`` with nPSD ``L``."""

    def __init__(self, L: np.ndarray, *, validate: bool = True,
                 labels: Optional[Sequence[int]] = None):
        self.L = validate_ensemble(L, symmetric=False) if validate else np.asarray(L, dtype=float)
        self.n = self.L.shape[0]
        self._labels = tuple(int(i) for i in labels) if labels is not None else tuple(range(self.n))
        self._kernel: Optional[np.ndarray] = None
        self._z: Optional[float] = None

    @property
    def ground_labels(self) -> Tuple[int, ...]:
        return self._labels

    @property
    def kernel(self) -> np.ndarray:
        """(Nonsymmetric) marginal kernel ``K = L (I + L)^{-1}``."""
        if self._kernel is None:
            self._kernel = ensemble_to_kernel(self.L)
        return self._kernel

    def attach_precomputed(self, *, kernel: Optional[np.ndarray] = None,
                           partition_function: Optional[float] = None) -> "NonsymmetricDPP":
        """Install cached artifacts (marginal kernel, ``det(I + L)``).

        The values must be what this class would compute itself (the serving
        layer's factorization cache uses the identical routines), so cached
        and uncached fixed-seed samples agree bitwise.
        """
        if kernel is not None:
            if kernel.shape != self.L.shape:
                raise ValueError("precomputed kernel has mismatched shape")
            self._kernel = kernel
        if partition_function is not None:
            self._z = float(partition_function)
        return self

    def worker_payload(self):
        """Ship ``L`` (plus the marginal kernel / normalizer when warm)."""
        arrays = {"L": self.L}
        if self._kernel is not None:
            arrays["kernel"] = self._kernel
        return arrays, {"labels": self._labels, "z": self._z}

    @classmethod
    def from_worker_payload(cls, arrays, params):
        dist = cls(arrays["L"], validate=False, labels=params["labels"])
        if "kernel" in arrays:
            dist._kernel = arrays["kernel"]
        if params["z"] is not None:
            dist._z = float(params["z"])
        return dist

    def absorb_worker_arrays(self, arrays: dict) -> None:
        """Write back a worker-derived marginal kernel (cold parent only)."""
        kernel = arrays.get("kernel")
        if self._kernel is None and kernel is not None and kernel.shape == self.L.shape:
            self._kernel = np.asarray(kernel, dtype=float)

    def artifact_cache_key(self) -> str:
        from repro.utils.fingerprint import kernel_fingerprint

        return kernel_fingerprint(self.L, kind="nonsymmetric")

    def oracle_cost_hint(self) -> OracleCostHint:
        """Marginal-kernel minors, exactly like the symmetric DPP."""
        return OracleCostHint(matrix_order=self.n, python_fraction=0.05,
                              batch_vectorized=True,
                              update_depth=self.update_depth)

    # ------------------------------------------------------------------ #
    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        return max(dpp_unnormalized(self.L, items), 0.0)

    def partition_function(self) -> float:
        if self._z is not None:
            return self._z
        current_tracker().charge_determinant(self.n)
        return float(np.linalg.det(np.eye(self.n) + self.L))

    def counting(self, given: Iterable[int] = ()) -> float:
        items = check_subset(given, self.n)
        if not items:
            return self.partition_function()
        joint = principal_minor(self.kernel, items)
        return max(joint, 0.0) * self.partition_function()

    def joint_marginal(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        if not items:
            return 1.0
        return float(np.clip(principal_minor(self.kernel, items), 0.0, 1.0))

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        items = check_subset(given, self.n)
        tracker = current_tracker()
        with tracker.round("ndpp-marginals"):
            if not items:
                return np.clip(np.diag(self.kernel).copy(), 0.0, 1.0)
            conditioned = self.condition(items)
            marginals = np.ones(self.n, dtype=float)
            remaining = [i for i in range(self.n) if i not in items]
            marginals[remaining] = np.clip(np.diag(conditioned.kernel), 0.0, 1.0)
        return marginals

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Counting values for many (mixed-size) ``T``: ``det(K_T) · det(I + L)``."""
        minors = grouped_principal_minors(self.kernel, subsets)
        return np.clip(minors, 0.0, None) * self.partition_function()

    def cardinality_distribution(self) -> np.ndarray:
        sums = all_principal_minor_sums(self.L)
        sums = np.clip(sums, 0.0, None)
        total = sums.sum()
        if total <= 0:
            raise ValueError("ensemble matrix defines a zero measure")
        return sums / total

    # ------------------------------------------------------------------ #
    def condition(self, include: Iterable[int]) -> "NonsymmetricDPP":
        items = check_subset(include, self.n)
        if not items:
            return self
        L_cond, remaining = condition_ensemble(self.L, items)
        labels = tuple(self._labels[i] for i in remaining)
        return NonsymmetricDPP(L_cond, validate=False, labels=labels)

    def restrict_to_size(self, k: int) -> "NonsymmetricKDPP":
        return NonsymmetricKDPP(self.L, k)


class NonsymmetricKDPP(HomogeneousDistribution):
    """Nonsymmetric k-DPP ``P[Y] ∝ det(L_Y) · 1[|Y| = k]`` with nPSD ``L``."""

    def __init__(self, L: np.ndarray, k: int, *, validate: bool = True,
                 labels: Optional[Sequence[int]] = None,
                 partition_function: Optional[float] = None):
        self.L = validate_ensemble(L, symmetric=False) if validate else np.asarray(L, dtype=float)
        self.n = self.L.shape[0]
        self.k = int(check_positive_int(k, "k", minimum=0)) if k else 0
        if self.k > self.n:
            raise ValueError(f"k={k} exceeds ground set size {self.n}")
        self._labels = tuple(int(i) for i in labels) if labels is not None else tuple(range(self.n))
        # ``partition_function`` lets a warm factorization cache supply the
        # (already validated) normalizer so construction skips the O(n³)
        # characteristic-polynomial call; the value must equal what
        # ``sum_principal_minors(L, k)`` would return.
        self._z: Optional[float] = float(partition_function) if partition_function is not None else None
        z = self.partition_function()
        if z <= 0:
            raise ValueError(f"nonsymmetric k-DPP with k={self.k} has zero partition function")

    @property
    def ground_labels(self) -> Tuple[int, ...]:
        return self._labels

    def worker_payload(self):
        """Ship ``L`` and the (constructor-validated) normalizer, so workers
        never redo the characteristic-polynomial pass."""
        return {"L": self.L}, {"k": self.k, "labels": self._labels, "z": self._z}

    @classmethod
    def from_worker_payload(cls, arrays, params):
        return cls(arrays["L"], params["k"], validate=False,
                   labels=params["labels"], partition_function=params["z"])

    # ------------------------------------------------------------------ #
    def oracle_cost_hint(self) -> OracleCostHint:
        """Charpoly minor sums: a substantial GIL-bound Python lane.

        The batch route stacks determinants/Schur complements, but the
        per-group ESP evaluation and the charpoly recursions behind the
        normalizer keep a sizable interpreted share — this is one of the two
        workloads the process backend was built for.
        """
        return OracleCostHint(matrix_order=self.n, python_fraction=0.5,
                              batch_vectorized=True,
                              update_depth=self.update_depth)

    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        if len(items) != self.k:
            return 0.0
        return max(dpp_unnormalized(self.L, items), 0.0)

    def partition_function(self) -> float:
        # Memoized: the charpoly minor-sum pass is O(n³) of mostly GIL-bound
        # work, and the serving/engine hot paths query the normalizer on
        # every joint-marginal batch.
        if self._z is None:
            self._z = max(sum_principal_minors(self.L, self.k), 0.0)
        return self._z

    def counting(self, given: Iterable[int] = ()) -> float:
        items = check_subset(given, self.n)
        t = len(items)
        if t > self.k:
            return 0.0
        if t == 0:
            return self.partition_function()
        det_t = principal_minor(self.L, items)
        if det_t <= 0:
            return 0.0
        if t == self.k:
            return det_t
        L_cond, _ = condition_ensemble(self.L, items)
        return det_t * max(sum_principal_minors(L_cond, self.k - t), 0.0)

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        """Exclusion identity ``P[i ∈ S | T] = 1 - e_{k'}(L^T_{-i}) / e_{k'}(L^T)``.

        All ``n`` leave-one-out minor sums are evaluated with one stacked
        eigenvalue call plus a batched ESP (one adaptive round).
        """
        items = check_subset(given, self.n)
        tracker = current_tracker()
        with tracker.round("nkdpp-marginals"):
            target = self.condition(items) if items else self
            kk = target.k
            z = target.partition_function()
            m = target.n
            tracker.charge(machines=float(m))
            tracker.charge_determinant(max(m - 1, 0), count=m)
            if m <= 1 or kk > m - 1:
                # dropping any row leaves fewer than k' elements -> excluded
                # mass is zero and every marginal is 1 (or the set is trivial)
                inner = np.ones(m, dtype=float) if kk > m - 1 else np.zeros(m, dtype=float)
                if m == 1 and kk == 0:
                    inner[:] = 0.0
            else:
                keep = np.array([[j for j in range(m) if j != i] for i in range(m)])
                # chunk the stacked eigenvalue call: one (chunk, m-1, m-1)
                # block at a time keeps memory at O(chunk * m^2) instead of
                # materializing all n leave-one-out submatrices at once
                chunk = max(1, min(m, int(2 ** 24 // max((m - 1) ** 2, 1)) or 1))
                excluded = np.empty(m, dtype=float)
                for start in range(0, m, chunk):
                    block = keep[start:start + chunk]
                    stacked = target.L[block[:, :, None], block[:, None, :]]
                    spectra = np.linalg.eigvals(stacked)
                    esp = batched_esp(spectra, kk)
                    excluded[start:start + chunk] = np.clip(
                        np.real_if_close(esp[:, kk], tol=1e8).real, 0.0, None)
                inner = 1.0 - np.minimum(excluded / z, 1.0)
            marginals = np.ones(self.n, dtype=float)
            if items:
                remaining = [i for i in range(self.n) if i not in items]
                marginals[remaining] = np.clip(inner, 0.0, 1.0)
            else:
                marginals = np.clip(inner, 0.0, 1.0)
        return marginals

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """``det(L_T) · e_{k-t}(λ(L^T))`` for many ``T`` via stacked linalg.

        Each equal-size group costs one batched determinant, one batched
        Schur complement, one stacked (complex) eigenvalue call, and a
        batched ESP evaluation — mirroring the scalar route of
        :meth:`counting` operation for operation.
        """
        values = np.zeros(len(subsets), dtype=float)
        tracker = current_tracker()
        for t, positions in group_by_size(subsets).items():
            group = [subsets[p] for p in positions]
            if t > self.k:
                continue
            if t == 0:
                values[positions] = self.partition_function()
                continue
            tracker.charge_determinant(t, count=len(group))
            dets = np.linalg.det(stacked_principal_submatrices(self.L, group))
            if t == self.k:
                values[positions] = np.where(dets > 0, dets, 0.0)
                continue
            ok = np.flatnonzero(dets > 0)
            if ok.size == 0:
                continue
            schur, _ = batched_schur_complements(self.L, [group[i] for i in ok])
            spectra = np.linalg.eigvals(schur)
            esp = batched_esp(spectra, self.k - t)
            inner = np.real_if_close(esp[:, self.k - t], tol=1e8).real
            out = np.zeros(len(group), dtype=float)
            out[ok] = dets[ok] * np.clip(inner, 0.0, None)
            values[positions] = out
        return values

    def joint_marginals_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        z = self.partition_function()
        tracker = current_tracker()
        with tracker.round("nkdpp-joint-marginals"):
            tracker.charge(machines=float(len(subsets)))
            values = self.counting_batch(subsets) / z
        return np.clip(values, 0.0, None)

    # ------------------------------------------------------------------ #
    def condition(self, include: Iterable[int]) -> "NonsymmetricKDPP":
        items = check_subset(include, self.n)
        if not items:
            return self
        if len(items) > self.k:
            raise ValueError(f"cannot condition a {self.k}-DPP on {len(items)} inclusions")
        L_cond, remaining = condition_ensemble(self.L, items)
        labels = tuple(self._labels[i] for i in remaining)
        return NonsymmetricKDPP(L_cond, self.k - len(items), validate=False, labels=labels)
