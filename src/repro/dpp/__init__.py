"""Determinantal point process substrate.

Implements the distribution classes of Definitions 3–7 of the paper together
with their ``NC``-style counting oracles:

* :class:`~repro.dpp.symmetric.SymmetricDPP` / ``SymmetricKDPP`` — PSD ensemble
  matrices (Definition 3, 6).
* :class:`~repro.dpp.nonsymmetric.NonsymmetricDPP` / ``NonsymmetricKDPP`` —
  nPSD ensemble matrices (Definitions 4–6).
* :class:`~repro.dpp.partition.PartitionDPP` — partition-constrained DPPs
  (Definition 7) with the polynomial-interpolation counting oracle of
  [Cel+16].
* :mod:`repro.dpp.spectral` — the sequential HKPV spectral sampler (the
  DPPy-style baseline).
* :mod:`repro.dpp.exact` — brute-force enumeration for ground truth.
"""

from repro.dpp.kernels import (
    ensemble_to_kernel,
    kernel_to_ensemble,
    validate_ensemble,
    validate_kernel,
    marginal_kernel_conditioned,
)
from repro.dpp.likelihood import (
    dpp_unnormalized,
    dpp_log_unnormalized,
    sum_principal_minors,
    batched_joint_marginals,
)
from repro.dpp.symmetric import SymmetricDPP, SymmetricKDPP
from repro.dpp.nonsymmetric import NonsymmetricDPP, NonsymmetricKDPP
from repro.dpp.partition import PartitionDPP
from repro.dpp.spectral import (
    sample_dpp_spectral,
    sample_kdpp_spectral,
    select_kdpp_eigenvectors,
    symmetrized_eigh,
)
from repro.dpp.elementary import dpp_size_distribution, kdpp_normalization
from repro.dpp.exact import exact_dpp_distribution, exact_kdpp_distribution
from repro.dpp.intermediate import (
    lowrank_intermediate_basis,
    sample_dpp_intermediate,
    sample_kdpp_intermediate,
)

__all__ = [
    "lowrank_intermediate_basis",
    "sample_dpp_intermediate",
    "sample_kdpp_intermediate",
    "ensemble_to_kernel",
    "kernel_to_ensemble",
    "validate_ensemble",
    "validate_kernel",
    "marginal_kernel_conditioned",
    "dpp_unnormalized",
    "dpp_log_unnormalized",
    "sum_principal_minors",
    "batched_joint_marginals",
    "SymmetricDPP",
    "SymmetricKDPP",
    "NonsymmetricDPP",
    "NonsymmetricKDPP",
    "PartitionDPP",
    "sample_dpp_spectral",
    "sample_kdpp_spectral",
    "select_kdpp_eigenvectors",
    "symmetrized_eigh",
    "dpp_size_distribution",
    "kdpp_normalization",
    "exact_dpp_distribution",
    "exact_kdpp_distribution",
]
