"""Brute-force exact DPP distributions (ground truth for tests and accuracy benches).

All helpers enumerate subsets explicitly and are therefore restricted to small
ground sets; they exist to validate the fast oracles and the samplers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.generic import ExplicitDistribution
from repro.utils.subsets import all_subsets, all_subsets_of_size, subset_key

_MAX_BRUTE_FORCE_N = 18


def _minor(L: np.ndarray, subset) -> float:
    idx = list(subset)
    if not idx:
        return 1.0
    return float(np.linalg.det(L[np.ix_(idx, idx)]))


def exact_dpp_distribution(L: np.ndarray, *, max_n: int = _MAX_BRUTE_FORCE_N) -> ExplicitDistribution:
    """Exact unconstrained DPP distribution ``P[S] ∝ det(L_S)`` by enumeration."""
    mat = np.asarray(L, dtype=float)
    n = mat.shape[0]
    if n > max_n:
        raise ValueError(f"refusing brute-force enumeration for n={n} > {max_n}")
    table = {}
    for subset in all_subsets(n):
        weight = _minor(mat, subset)
        if weight > 0:
            table[subset_key(subset)] = weight
    return ExplicitDistribution(n, table)


def exact_kdpp_distribution(L: np.ndarray, k: int, *, max_n: int = _MAX_BRUTE_FORCE_N) -> ExplicitDistribution:
    """Exact k-DPP distribution by enumeration of all size-``k`` subsets."""
    mat = np.asarray(L, dtype=float)
    n = mat.shape[0]
    if n > max_n:
        raise ValueError(f"refusing brute-force enumeration for n={n} > {max_n}")
    table = {}
    for subset in all_subsets_of_size(n, k):
        weight = _minor(mat, subset)
        if weight > 0:
            table[subset_key(subset)] = weight
    return ExplicitDistribution(n, table, cardinality=k)


def exact_partition_dpp_distribution(L: np.ndarray, parts: Sequence[Sequence[int]],
                                     counts: Sequence[int], *,
                                     max_n: int = _MAX_BRUTE_FORCE_N) -> ExplicitDistribution:
    """Exact Partition-DPP distribution by enumeration (Definition 7)."""
    mat = np.asarray(L, dtype=float)
    n = mat.shape[0]
    if n > max_n:
        raise ValueError(f"refusing brute-force enumeration for n={n} > {max_n}")
    part_of = {}
    for idx, part in enumerate(parts):
        for element in part:
            part_of[int(element)] = idx
    k = int(sum(counts))
    table = {}
    for subset in all_subsets_of_size(n, k):
        tallies = [0] * len(parts)
        for item in subset:
            tallies[part_of[item]] += 1
        if tuple(tallies) != tuple(int(c) for c in counts):
            continue
        weight = _minor(mat, subset)
        if weight > 0:
            table[subset_key(subset)] = weight
    return ExplicitDistribution(n, table, cardinality=k)
