"""Ensemble (L) and marginal (K) kernel conversions — Section 3.2, Eqs. (1)–(2).

``K = L (I + L)^{-1} = I - (I + L)^{-1}``  and  ``L = K (I - K)^{-1}``.

For symmetric DPPs ``0 ⪯ K ⪯ I``; the conversions below work for nonsymmetric
ensembles too (the identities are purely algebraic), with validation split
into :func:`validate_ensemble` (PSD or nPSD as requested) and
:func:`validate_kernel`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.linalg.psd import is_npsd, is_psd, symmetrize
from repro.linalg.schur import condition_ensemble
from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square


def ensemble_to_kernel(L: np.ndarray) -> np.ndarray:
    """Marginal kernel ``K = L (I + L)^{-1}`` (Eq. 1)."""
    a = check_square(L, "L")
    n = a.shape[0]
    current_tracker().charge_determinant(n)
    if n == 0:
        return a.copy()
    return a @ np.linalg.inv(np.eye(n) + a)


def kernel_to_ensemble(K: np.ndarray, ridge: float = 0.0) -> np.ndarray:
    """Ensemble matrix ``L = K (I - K)^{-1}`` (Eq. 2).

    Raises if ``I - K`` is singular (an element contained almost surely has no
    finite ensemble representation); pass a small ``ridge`` to regularize.
    """
    k = check_square(K, "K")
    n = k.shape[0]
    current_tracker().charge_determinant(n)
    if n == 0:
        return k.copy()
    residual = np.eye(n) - k + ridge * np.eye(n)
    sign, logabs = np.linalg.slogdet(residual)
    if sign <= 0 or logabs < -30:
        raise ValueError("I - K is singular: kernel has an eigenvalue at 1 (use a ridge)")
    return k @ np.linalg.inv(residual)


def validate_ensemble(L: np.ndarray, *, symmetric: bool = True, tol: float = 1e-8) -> np.ndarray:
    """Validate an ensemble matrix (PSD if ``symmetric`` else nPSD, Def. 3/4)."""
    a = check_square(L, "L")
    if symmetric:
        if not np.allclose(a, a.T, atol=tol * max(1.0, np.abs(a).max())):
            raise ValueError("symmetric DPP requires a symmetric ensemble matrix")
        if not is_psd(a, tol=tol):
            raise ValueError("symmetric DPP requires a PSD ensemble matrix (L ⪰ 0)")
    else:
        if not is_npsd(a, tol=tol):
            raise ValueError("nonsymmetric DPP requires L + Lᵀ ⪰ 0 (Definition 4)")
    return a


def validate_kernel(K: np.ndarray, tol: float = 1e-8) -> np.ndarray:
    """Validate a symmetric marginal kernel ``0 ⪯ K ⪯ I``."""
    k = check_square(K, "K")
    if not np.allclose(k, k.T, atol=tol * max(1.0, np.abs(k).max())):
        raise ValueError("marginal kernel must be symmetric")
    eigenvalues = np.linalg.eigvalsh(symmetrize(k))
    if eigenvalues.min() < -tol or eigenvalues.max() > 1 + tol:
        raise ValueError("marginal kernel eigenvalues must lie in [0, 1]")
    return k


def marginal_kernel_conditioned(L: np.ndarray, include: Iterable[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Marginal kernel of the DPP conditioned on ``include ⊆ sample``.

    Conditions the ensemble matrix by a Schur complement (Section 3.2) and
    converts to a kernel; returns ``(K_cond, remaining_labels)``.
    """
    L_cond, remaining = condition_ensemble(L, include)
    return ensemble_to_kernel(L_cond), remaining
