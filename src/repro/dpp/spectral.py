"""Sequential spectral (HKPV) samplers for symmetric DPPs and k-DPPs.

These are the standard *sequential* exact samplers (the algorithm implemented
by DPPy), used as baselines: phase 1 selects a random set of eigenvectors,
phase 2 selects one element per chosen eigenvector, conditioning the projection
at every step — an inherently sequential loop of ``|Y|`` rounds, which is
exactly the ``Ω(k)`` depth the paper's batched samplers beat.

Each phase-2 step is expressed as one ``projection_step``
:class:`~repro.engine.batch.OracleBatch` executed through the engine (the
numerics live in :func:`repro.linalg.batch.hkpv_projection_step`): project
out the previously selected element, re-orthonormalize, return the squared
row norms the next selection draws from.  Routing the round through the
engine keeps the sampler's depth accounting where every other sampler's is
(one adaptive round per batch), lets the cost-aware planner see it, and —
the real payoff — makes it fusable: the serving layer's
:class:`~repro.service.scheduler.RoundScheduler` stacks the lockstep steps
of concurrent same-kernel requests into single batched QR rounds.  The
projection kind has a single fixed numerical route on every backend, so
backend choice (or fusion) never perturbs a fixed-seed sample.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dpp.kernels import validate_ensemble
from repro.engine import BackendLike, OracleBatch, resolve_backend
from repro.linalg.esp import elementary_symmetric_polynomials
from repro.pram.tracker import current_tracker
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import subset_key

#: precomputed ``(eigenvalues, eigenvectors)`` pair accepted by the samplers
EighPair = Tuple[np.ndarray, np.ndarray]


def symmetrized_eigh(ensemble: np.ndarray) -> EighPair:
    """One symmetrize-then-``eigh`` with eigenvalues clipped at zero.

    Both spectral samplers used to recompute ``0.5 * (L + Lᵀ)`` and its
    eigendecomposition independently at their own call sites; routing them
    through this single helper guarantees the two phases agree bitwise, and
    gives the serving layer one function to memoize — a
    :class:`repro.service.FactorizationCache` computes the pair with exactly
    this routine and threads it back in via the samplers' ``eigh=`` argument,
    so cached and uncached draws consume identical spectra.
    """
    a = np.asarray(ensemble, dtype=float)
    eigenvalues, eigenvectors = np.linalg.eigh(0.5 * (a + a.T))
    return np.clip(eigenvalues, 0.0, None), eigenvectors


def _resolve_eigh(ensemble: np.ndarray, eigh: Optional[EighPair]) -> EighPair:
    if eigh is None:
        return symmetrized_eigh(ensemble)
    eigenvalues, eigenvectors = eigh
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    eigenvectors = np.asarray(eigenvectors, dtype=float)
    n = ensemble.shape[0]
    if eigenvalues.shape != (n,) or eigenvectors.shape != (n, n):
        raise ValueError(
            f"precomputed eigh has shapes {eigenvalues.shape}/{eigenvectors.shape}, "
            f"expected ({n},)/({n}, {n})"
        )
    # callers may pass a raw np.linalg.eigh(L) pair; enforce the clipped-
    # spectrum contract (a no-op on symmetrized_eigh output)
    return np.clip(eigenvalues, 0.0, None), eigenvectors


def _phase_two(vectors: np.ndarray, seed: SeedLike = None, *,
               backend: BackendLike = None) -> Tuple[int, ...]:
    """HKPV phase 2: sample one element per selected eigenvector.

    ``vectors`` has shape ``(n, m)`` — an orthonormal basis of the selected
    eigenspace.  Each of the ``m`` iterations is one ``projection_step``
    engine round (project out the last selected element, re-orthonormalize,
    read the squared row norms), so depth accounting is unchanged — one
    adaptive round per step — while the rounds become visible to the
    planner and fusable by the serving layer's scheduler.  All randomness
    stays here in the driver; the engine round is deterministic.
    """
    rng = as_generator(seed)
    engine = resolve_backend(backend)
    tracker = current_tracker()
    n, m = vectors.shape
    basis = vectors.copy()
    selected: List[int] = []
    last: Optional[int] = None
    for _step in range(m, 0, -1):
        result = engine.execute(
            OracleBatch.projection_step(
                basis, eliminate=None if last is None else (last,), label="hkpv-step"),
            tracker=tracker,
        )
        basis = result.artifacts["bases"][0]
        weights = result.values
        total = weights.sum()
        if total <= 0:
            raise RuntimeError("spectral sampler ran out of probability mass")
        probs = np.clip(weights / total, 0.0, None)
        probs = probs / probs.sum()
        item = int(rng.choice(n, p=probs))
        selected.append(item)
        last = item
    return subset_key(selected)


def sample_dpp_spectral(L: np.ndarray, seed: SeedLike = None, *, validate: bool = True,
                        eigh: Optional[EighPair] = None,
                        backend: BackendLike = None) -> Tuple[int, ...]:
    """Exact sequential sample from the symmetric DPP with ensemble matrix ``L``.

    ``eigh`` optionally supplies a precomputed ``symmetrized_eigh(L)`` pair
    (e.g. from a warm factorization cache); the sampler then skips the
    eigendecomposition while drawing the identical sample for a fixed seed.
    ``backend`` selects how the phase-2 engine rounds execute — wall-clock
    only, never the sample (the projection kind is fixed-route).
    """
    ensemble = validate_ensemble(L, symmetric=True) if validate else np.asarray(L, dtype=float)
    rng = as_generator(seed)
    tracker = current_tracker()
    n = ensemble.shape[0]
    with tracker.round("hkpv-eigendecomposition"):
        tracker.charge_determinant(n)
        eigenvalues, eigenvectors = _resolve_eigh(ensemble, eigh)
    include = rng.random(n) < eigenvalues / (1.0 + eigenvalues)
    if not np.any(include):
        return ()
    return _phase_two(eigenvectors[:, include], rng, backend=backend)


def select_kdpp_eigenvectors(eigenvalues: np.ndarray, k: int, seed: SeedLike = None) -> np.ndarray:
    """Phase 1 of the k-DPP sampler: choose exactly ``k`` eigen-indices.

    Works backwards through the eigenvalues using the standard elementary-
    symmetric-polynomial recursion [KT12b]; returns a boolean mask of the
    selected indices.
    """
    rng = as_generator(seed)
    lam = np.asarray(eigenvalues, dtype=float)
    n = lam.size
    if not 0 <= k <= n:
        raise ValueError(f"k must lie in [0, {n}], got {k}")
    # E[j, m] = e_j(lam_1..lam_m)
    E = np.zeros((k + 1, n + 1))
    E[0, :] = 1.0
    for m in range(1, n + 1):
        upper = min(k, m)
        E[1:upper + 1, m] = E[1:upper + 1, m - 1] + lam[m - 1] * E[0:upper, m - 1]
    if E[k, n] <= 0:
        raise ValueError("k-DPP has zero partition function (rank deficient)")
    include = np.zeros(n, dtype=bool)
    remaining = k
    for m in range(n, 0, -1):
        if remaining == 0:
            break
        if m == remaining:
            include[:m] = True
            break
        prob = lam[m - 1] * E[remaining - 1, m - 1] / E[remaining, m]
        if rng.random() < prob:
            include[m - 1] = True
            remaining -= 1
    return include


def sample_kdpp_spectral(L: np.ndarray, k: int, seed: SeedLike = None, *,
                         validate: bool = True,
                         eigh: Optional[EighPair] = None,
                         backend: BackendLike = None) -> Tuple[int, ...]:
    """Exact sequential sample from the symmetric k-DPP with ensemble matrix ``L``.

    ``eigh`` optionally supplies a precomputed ``symmetrized_eigh(L)`` pair
    and ``backend`` routes the phase-2 engine rounds; see
    :func:`sample_dpp_spectral`.
    """
    ensemble = validate_ensemble(L, symmetric=True) if validate else np.asarray(L, dtype=float)
    rng = as_generator(seed)
    tracker = current_tracker()
    n = ensemble.shape[0]
    if k == 0:
        return ()
    with tracker.round("hkpv-eigendecomposition"):
        tracker.charge_determinant(n)
        eigenvalues, eigenvectors = _resolve_eigh(ensemble, eigh)
    include = select_kdpp_eigenvectors(eigenvalues, k, rng)
    return _phase_two(eigenvectors[:, include], rng, backend=backend)
