"""Symmetric DPPs and k-DPPs (Definitions 3 and 6).

Both classes expose the counting-oracle / self-reducibility interface of
:class:`repro.distributions.base.SubsetDistribution` with the determinant-based
``NC`` oracles of Proposition 13:

* ``SymmetricDPP``:  ``μ(S) ∝ det(L_S)``; counting oracle
  ``Σ_{S ⊇ T} det(L_S) = det(K_T) · det(I + L)``.
* ``SymmetricKDPP``: ``μ(S) ∝ det(L_S) · 1[|S| = k]``; counting oracle
  ``Σ_{S ⊇ T, |S| = k} det(L_S) = det(L_T) · e_{k-|T|}(λ(L^T))``.

Conditioning maps to Schur complements of the ensemble matrix (Section 3.2).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import HomogeneousDistribution, SubsetDistribution
from repro.dpp.elementary import dpp_size_distribution, kdpp_marginals_spectral, kdpp_normalization
from repro.dpp.kernels import ensemble_to_kernel, validate_ensemble
from repro.dpp.likelihood import batched_joint_marginals, dpp_unnormalized
from repro.linalg.batch import (
    batched_esp,
    group_by_size,
    grouped_principal_minors,
    lowrank_conditioned_gram,
    psd_factor,
    stacked_principal_submatrices,
)
from repro.linalg.determinant import principal_minor
from repro.linalg.esp import elementary_symmetric_polynomials
from repro.linalg.schur import condition_ensemble
from repro.pram.cost import OracleCostHint
from repro.pram.tracker import current_tracker
from repro.utils.validation import check_positive_int, check_subset


class SymmetricDPP(SubsetDistribution):
    """Unconstrained symmetric DPP ``P[Y] ∝ det(L_Y)`` with PSD ``L``."""

    def __init__(self, L: np.ndarray, *, validate: bool = True,
                 labels: Optional[Sequence[int]] = None):
        self.L = validate_ensemble(L, symmetric=True) if validate else np.asarray(L, dtype=float)
        self.n = self.L.shape[0]
        self._labels = tuple(int(i) for i in labels) if labels is not None else tuple(range(self.n))
        self._kernel: Optional[np.ndarray] = None
        self._z: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def ground_labels(self) -> Tuple[int, ...]:
        return self._labels

    @property
    def kernel(self) -> np.ndarray:
        """Marginal kernel ``K = L (I + L)^{-1}`` (cached)."""
        if self._kernel is None:
            self._kernel = ensemble_to_kernel(self.L)
        return self._kernel

    def attach_precomputed(self, *, kernel: Optional[np.ndarray] = None,
                           partition_function: Optional[float] = None) -> "SymmetricDPP":
        """Install cached artifacts so later queries skip recomputation.

        The serving layer's :class:`~repro.service.cache.FactorizationCache`
        computes the artifacts with the same routines this class would use
        (``kernel`` via :func:`repro.dpp.kernels.ensemble_to_kernel`,
        ``partition_function`` as ``det(I + L)``), so a fixed-seed sample is
        identical with and without the cache.
        """
        if kernel is not None:
            if kernel.shape != self.L.shape:
                raise ValueError("precomputed kernel has mismatched shape")
            self._kernel = kernel
        if partition_function is not None:
            self._z = float(partition_function)
        return self

    def worker_payload(self):
        """Ship ``L`` (plus any artifacts already materialized) to workers.

        Lazily computed state travels only when present: a warm serving-layer
        distribution ships its cached kernel/normalizer so workers skip the
        ``O(n³)`` preprocessing, while a cold one lets each worker derive them
        from ``L`` with the identical routines (same machine, same LAPACK —
        same bits).
        """
        arrays = {"L": self.L}
        if self._kernel is not None:
            arrays["kernel"] = self._kernel
        return arrays, {"labels": self._labels, "z": self._z}

    @classmethod
    def from_worker_payload(cls, arrays, params):
        dist = cls(arrays["L"], validate=False, labels=params["labels"])
        if "kernel" in arrays:
            dist._kernel = arrays["kernel"]
        if params["z"] is not None:
            dist._z = float(params["z"])
        return dist

    def absorb_worker_arrays(self, arrays: dict) -> None:
        """Write back a worker-derived marginal kernel (cold parent only)."""
        kernel = arrays.get("kernel")
        if self._kernel is None and kernel is not None and kernel.shape == self.L.shape:
            self._kernel = np.asarray(kernel, dtype=float)

    def artifact_cache_key(self) -> str:
        from repro.utils.fingerprint import kernel_fingerprint

        return kernel_fingerprint(self.L, kind="symmetric")

    def oracle_cost_hint(self) -> OracleCostHint:
        """Marginal-kernel minors: stacked LAPACK, negligible Python lane."""
        return OracleCostHint(matrix_order=self.n, python_fraction=0.05,
                              batch_vectorized=True,
                              update_depth=self.update_depth)

    # ------------------------------------------------------------------ #
    # counting oracle and densities
    # ------------------------------------------------------------------ #
    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        return max(dpp_unnormalized(self.L, items), 0.0)

    def partition_function(self) -> float:
        if self._z is not None:
            return self._z
        tracker = current_tracker()
        tracker.charge_determinant(self.n)
        return float(np.linalg.det(np.eye(self.n) + self.L))

    def counting(self, given: Iterable[int] = ()) -> float:
        items = check_subset(given, self.n)
        if not items:
            return self.partition_function()
        joint = principal_minor(self.kernel, items)
        return max(joint, 0.0) * self.partition_function()

    def joint_marginal(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        if not items:
            return 1.0
        return float(np.clip(principal_minor(self.kernel, items), 0.0, 1.0))

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Counting values for many (mixed-size) ``T``: ``det(K_T) · det(I + L)``."""
        minors = grouped_principal_minors(self.kernel, subsets)
        return np.clip(minors, 0.0, None) * self.partition_function()

    def joint_marginals_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """``P[T ⊆ Y]`` for many (mixed-size) ``T`` in one batched round."""
        sizes = {len(s) for s in subsets}
        if len(sizes) <= 1:
            return np.clip(batched_joint_marginals(self.kernel, subsets), 0.0, 1.0)
        return np.clip(grouped_principal_minors(self.kernel, subsets), 0.0, 1.0)

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        items = check_subset(given, self.n)
        tracker = current_tracker()
        with tracker.round("dpp-marginals"):
            if not items:
                return np.clip(np.diag(self.kernel).copy(), 0.0, 1.0)
            conditioned = self.condition(items)
            marginals = np.ones(self.n, dtype=float)
            inner = np.clip(np.diag(conditioned.kernel), 0.0, 1.0)
            remaining = [i for i in range(self.n) if i not in items]
            marginals[remaining] = inner
        return marginals

    def cardinality_distribution(self) -> np.ndarray:
        return dpp_size_distribution(self.L)

    # ------------------------------------------------------------------ #
    def condition(self, include: Iterable[int]) -> "SymmetricDPP":
        items = check_subset(include, self.n)
        if not items:
            return self
        L_cond, remaining = condition_ensemble(self.L, items)
        labels = tuple(self._labels[i] for i in remaining)
        # The Schur complement of a PSD matrix is PSD up to floating point
        # noise; skip re-validation to avoid spurious failures on tiny
        # negative eigenvalues.
        return SymmetricDPP(0.5 * (L_cond + L_cond.T), validate=False, labels=labels)

    def restrict_to_size(self, k: int) -> "SymmetricKDPP":
        """The k-DPP obtained by conditioning on ``|Y| = k`` (Definition 6)."""
        return SymmetricKDPP(self.L, k)


class SymmetricKDPP(HomogeneousDistribution):
    """Symmetric k-DPP ``P[Y] ∝ det(L_Y) · 1[|Y| = k]`` with PSD ``L``."""

    def __init__(self, L: np.ndarray, k: int, *, validate: bool = True,
                 labels: Optional[Sequence[int]] = None):
        self.L = validate_ensemble(L, symmetric=True) if validate else np.asarray(L, dtype=float)
        self.n = self.L.shape[0]
        self.k = check_positive_int(k, "k", minimum=0) if k else 0
        if self.k > self.n:
            raise ValueError(f"k={k} exceeds ground set size {self.n}")
        self._labels = tuple(int(i) for i in labels) if labels is not None else tuple(range(self.n))
        self._eigenvalues: Optional[np.ndarray] = None
        self._factor: Optional[np.ndarray] = None
        self._factor_gram: Optional[np.ndarray] = None
        if validate and self.k > 0:
            eigs = self.eigenvalues
            top = float(eigs.max(initial=0.0))
            numerical_rank = int(np.sum(eigs > 1e-10 * max(top, 1.0)))
            if numerical_rank < self.k:
                raise ValueError(
                    f"k-DPP with k={self.k} has zero mass: rank of L is {numerical_rank} < k"
                )

    # ------------------------------------------------------------------ #
    @property
    def ground_labels(self) -> Tuple[int, ...]:
        return self._labels

    @property
    def eigenvalues(self) -> np.ndarray:
        if self._eigenvalues is None:
            self._eigenvalues = np.clip(np.linalg.eigvalsh(0.5 * (self.L + self.L.T)), 0.0, None)
        return self._eigenvalues

    @property
    def factor(self) -> np.ndarray:
        """Cached rank-revealing factor ``B`` with ``L ≈ B Bᵀ`` (one eigh).

        Batched counting uses it to reduce every conditioned spectrum to a
        ``rank(L)``-sized Gram problem (see
        :func:`repro.linalg.batch.lowrank_conditioned_gram`).
        """
        if self._factor is None:
            self._factor = psd_factor(self.L)
        return self._factor

    @property
    def factor_gram(self) -> np.ndarray:
        """Cached ``BᵀB`` companion of :attr:`factor`."""
        if self._factor_gram is None:
            factor = self.factor
            self._factor_gram = factor.T @ factor
        return self._factor_gram

    def attach_precomputed(self, *, eigenvalues: Optional[np.ndarray] = None,
                           factor: Optional[np.ndarray] = None,
                           factor_gram: Optional[np.ndarray] = None,
                           check_rank: bool = True) -> "SymmetricKDPP":
        """Install cached spectral artifacts so sampling skips preprocessing.

        ``eigenvalues`` must be the clipped ``eigvalsh`` spectrum of the
        symmetrized ensemble, ``factor`` a :func:`repro.linalg.batch.psd_factor`
        output and ``factor_gram`` its Gram companion — exactly what the
        serving layer's factorization cache computes, so fixed-seed samples
        agree bitwise with the uncached path.  ``check_rank`` re-runs the
        (now cheap) feasibility check that ``validate=True`` construction
        would have performed.
        """
        if eigenvalues is not None:
            if eigenvalues.shape != (self.n,):
                raise ValueError("precomputed eigenvalues have mismatched shape")
            self._eigenvalues = eigenvalues
        if factor is not None:
            if factor.ndim != 2 or factor.shape[0] != self.n:
                raise ValueError("precomputed factor has mismatched shape")
            self._factor = factor
        if factor_gram is not None:
            if self._factor is None or factor_gram.shape != (self._factor.shape[1],) * 2:
                raise ValueError("factor_gram requires a matching precomputed factor")
            self._factor_gram = factor_gram
        if check_rank and self.k > 0:
            eigs = self.eigenvalues
            top = float(eigs.max(initial=0.0))
            numerical_rank = int(np.sum(eigs > 1e-10 * max(top, 1.0)))
            if numerical_rank < self.k:
                raise ValueError(
                    f"k-DPP with k={self.k} has zero mass: rank of L is {numerical_rank} < k"
                )
        return self

    def worker_payload(self):
        """Ship ``L`` plus whichever spectral artifacts are already warm.

        A serving-layer distribution (``attach_precomputed``) ships its
        eigenvalues / PSD factor / Gram companion through shared memory, so
        workers skip every eigendecomposition; freshly conditioned kernels
        ship only ``L`` and let each worker derive the artifacts once (they
        are cached per kernel fingerprint on the worker side).
        """
        arrays = {"L": self.L}
        if self._eigenvalues is not None:
            arrays["eigenvalues"] = self._eigenvalues
        if self._factor is not None:
            arrays["factor"] = self._factor
        if self._factor_gram is not None:
            arrays["factor_gram"] = self._factor_gram
        return arrays, {"k": self.k, "labels": self._labels}

    @classmethod
    def from_worker_payload(cls, arrays, params):
        dist = cls(arrays["L"], params["k"], validate=False, labels=params["labels"])
        if "eigenvalues" in arrays:
            dist._eigenvalues = arrays["eigenvalues"]
        if "factor" in arrays:
            dist._factor = arrays["factor"]
            if "factor_gram" in arrays:
                dist._factor_gram = arrays["factor_gram"]
        return dist

    def absorb_worker_arrays(self, arrays: dict) -> None:
        """Write back worker-derived spectral artifacts (cold parent only).

        Workers answering a cold batch materialize the clipped spectrum / PSD
        factor / Gram companion with the identical routines the lazy
        properties above run, so installing them here changes wall-clock
        (this object's next :meth:`partition_function` or shipped payload is
        already warm), never values.
        """
        eigenvalues = arrays.get("eigenvalues")
        if self._eigenvalues is None and eigenvalues is not None \
                and eigenvalues.shape == (self.n,):
            self._eigenvalues = np.asarray(eigenvalues, dtype=float)
        factor = arrays.get("factor")
        if self._factor is None and factor is not None \
                and factor.ndim == 2 and factor.shape[0] == self.n:
            self._factor = np.asarray(factor, dtype=float)
        gram = arrays.get("factor_gram")
        if self._factor_gram is None and gram is not None and self._factor is not None \
                and gram.shape == (self._factor.shape[1],) * 2:
            # independent of where the factor came from: a factor-warm /
            # Gram-cold parent ships the factor and gets only the Gram back
            self._factor_gram = np.asarray(gram, dtype=float)

    def artifact_cache_key(self) -> str:
        from repro.utils.fingerprint import kernel_fingerprint

        return kernel_fingerprint(self.L, kind="symmetric")

    def oracle_cost_hint(self) -> OracleCostHint:
        """Rank-r Gram reductions + batched ESPs: LAPACK-dominated.

        The ESP recursion is vectorized across the batch (one NumPy pass per
        order), so only a thin Python lane remains.
        """
        return OracleCostHint(matrix_order=self.n, python_fraction=0.1,
                              batch_vectorized=True,
                              update_depth=self.update_depth)

    # ------------------------------------------------------------------ #
    def unnormalized(self, subset: Iterable[int]) -> float:
        items = check_subset(subset, self.n)
        if len(items) != self.k:
            return 0.0
        return max(dpp_unnormalized(self.L, items), 0.0)

    def partition_function(self) -> float:
        current_tracker().charge_determinant(self.n)
        esp = elementary_symmetric_polynomials(self.eigenvalues, max_order=self.k)
        return float(esp[self.k])

    def counting(self, given: Iterable[int] = ()) -> float:
        """``Σ_{S ⊇ T, |S| = k} det(L_S) = det(L_T) · e_{k-|T|}(λ(L^T))``."""
        items = check_subset(given, self.n)
        t = len(items)
        if t > self.k:
            return 0.0
        if t == 0:
            return self.partition_function()
        det_t = principal_minor(self.L, items)
        if det_t <= 0:
            return 0.0
        if t == self.k:
            return det_t
        L_cond, _ = condition_ensemble(self.L, items)
        sym = 0.5 * (L_cond + L_cond.T)
        eigenvalues = np.clip(np.linalg.eigvalsh(sym), 0.0, None)
        current_tracker().charge_determinant(self.n - t)
        esp = elementary_symmetric_polynomials(eigenvalues, max_order=self.k - t)
        return det_t * float(esp[self.k - t])

    def marginal_vector(self, given: Iterable[int] = ()) -> np.ndarray:
        items = check_subset(given, self.n)
        tracker = current_tracker()
        with tracker.round("kdpp-marginals"):
            if not items:
                return kdpp_marginals_spectral(self.L, self.k)
            conditioned = self.condition(items)
            marginals = np.ones(self.n, dtype=float)
            remaining = [i for i in range(self.n) if i not in items]
            inner = kdpp_marginals_spectral(conditioned.L, conditioned.k) if conditioned.k > 0 else np.zeros(len(remaining))
            marginals[remaining] = inner
        return marginals

    def counting_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """``Σ_{S ⊇ T, |S| = k} det(L_S)`` for many (mixed-size) ``T`` at once.

        Equal-size groups are answered with stacked linear algebra: one
        batched determinant for ``det(L_T)``, then — instead of a per-query
        ``O((n-t)³)`` eigendecomposition of the Schur complement — the
        rank-``r`` Gram reduction of
        :func:`~repro.linalg.batch.lowrank_conditioned_gram` followed by a
        batched ESP evaluation.  For low-rank ensembles this is an order of
        magnitude faster than looping :meth:`counting`, with matching values.
        """
        values = np.zeros(len(subsets), dtype=float)
        tracker = current_tracker()
        for t, positions in group_by_size(subsets).items():
            group = [subsets[p] for p in positions]
            if t > self.k:
                continue
            if t == 0:
                values[positions] = self.partition_function()
                continue
            if t == self.k:
                tracker.charge_determinant(t, count=len(group))
                dets = np.linalg.det(stacked_principal_submatrices(self.L, group))
                values[positions] = np.where(dets > 0, dets, 0.0)
                continue
            det_T, reduced = lowrank_conditioned_gram(self.factor, self.factor_gram, group)
            tracker.charge_determinant(self.n - t, count=len(group))
            spectra = np.clip(np.linalg.eigvalsh(reduced), 0.0, None)
            esp = batched_esp(spectra, self.k - t)
            values[positions] = np.where(det_T > 0, det_T * esp[:, self.k - t], 0.0)
        return values

    def joint_marginals_batch(self, subsets: Sequence[Sequence[int]]) -> np.ndarray:
        """``P[T ⊆ Y]`` for many (mixed-size) ``T`` in one batched round."""
        z = self.partition_function()
        tracker = current_tracker()
        with tracker.round("kdpp-joint-marginals"):
            tracker.charge(machines=float(len(subsets)))
            values = self.counting_batch(subsets) / z
        return np.clip(values, 0.0, None)

    # ------------------------------------------------------------------ #
    def condition(self, include: Iterable[int]) -> "SymmetricKDPP":
        items = check_subset(include, self.n)
        if not items:
            return self
        if len(items) > self.k:
            raise ValueError(f"cannot condition a {self.k}-DPP on {len(items)} inclusions")
        L_cond, remaining = condition_ensemble(self.L, items)
        labels = tuple(self._labels[i] for i in remaining)
        return SymmetricKDPP(0.5 * (L_cond + L_cond.T), self.k - len(items),
                             validate=False, labels=labels)
