"""Size distributions and k-DPP normalization via elementary symmetric polynomials.

For an ensemble matrix ``L`` with eigenvalues ``λ``:

* the DPP's size distribution is ``P[|S| = t] = e_t(λ) / det(I + L)``;
* the k-DPP's partition function is ``e_k(λ)`` [KT12b];
* the k-DPP's marginals admit the spectral formula
  ``P[i ∈ S] = Σ_j (v_{ji}^2 λ_j e_{k-1}(λ_{-j})) / e_k(λ)``.

The ``e_{k-1}(λ_{-j})`` terms are computed with a leave-one-out dynamic program
that recomputes the ESP table with one eigenvalue removed (numerically safer
than the division recurrence when eigenvalues repeat or vanish).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.esp import elementary_symmetric_polynomials
from repro.pram.tracker import current_tracker
from repro.utils.validation import check_square


def dpp_size_distribution(L: np.ndarray) -> np.ndarray:
    """``P[|S| = t]`` for ``t = 0..n`` for the (symmetric) DPP with ensemble ``L``."""
    a = check_square(L, "L")
    n = a.shape[0]
    current_tracker().charge_determinant(n)
    if n == 0:
        return np.array([1.0])
    eigenvalues = np.linalg.eigvalsh(0.5 * (a + a.T)) if np.allclose(a, a.T) else np.real(np.linalg.eigvals(a))
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    esp = elementary_symmetric_polynomials(eigenvalues)
    total = esp.sum()
    if total <= 0:
        raise ValueError("ensemble matrix defines a zero measure")
    return esp / total


def kdpp_normalization(L: np.ndarray, k: int) -> float:
    """k-DPP partition function ``e_k(λ(L)) = Σ_{|S|=k} det(L_S)``."""
    a = check_square(L, "L")
    n = a.shape[0]
    if k < 0 or k > n:
        return 0.0
    current_tracker().charge_determinant(n)
    if np.allclose(a, a.T):
        eigenvalues = np.linalg.eigvalsh(a)
    else:
        eigenvalues = np.linalg.eigvals(a)
    coeffs = np.poly(-eigenvalues)  # prod (t + lambda_i); coeff of t^{n-k} is e_k
    return float(np.real_if_close(coeffs[k], tol=1e8).real)


def leave_one_out_esp(values: np.ndarray, order: int) -> np.ndarray:
    """``e_order(values with entry j removed)`` for every ``j`` (vector of length n)."""
    vals = np.asarray(values, dtype=float).ravel()
    n = vals.size
    if order < 0 or order > n - 1:
        return np.zeros(n)
    out = np.empty(n, dtype=float)
    for j in range(n):
        rest = np.delete(vals, j)
        out[j] = elementary_symmetric_polynomials(rest, max_order=order)[order]
    return out


def kdpp_marginals_spectral(L: np.ndarray, k: int) -> np.ndarray:
    """All marginals ``P[i ∈ S]`` of the k-DPP with symmetric PSD ensemble ``L``.

    One eigendecomposition plus an ``O(n^2 k)`` post-processing; charged as a
    single batched-oracle round.
    """
    a = check_square(L, "L")
    n = a.shape[0]
    if not (0 <= k <= n):
        raise ValueError(f"k must lie in [0, {n}], got {k}")
    tracker = current_tracker()
    tracker.charge_determinant(n)
    if k == 0:
        return np.zeros(n)
    if k == n:
        return np.ones(n)
    eigenvalues, vectors = np.linalg.eigh(0.5 * (a + a.T))
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    ek = elementary_symmetric_polynomials(eigenvalues, max_order=k)[k]
    if ek <= 0:
        raise ValueError(f"k-DPP with k={k} has zero partition function (rank too small)")
    loo = leave_one_out_esp(eigenvalues, k - 1)
    weights = eigenvalues * loo / ek  # probability eigenvector j is selected
    marginals = (vectors ** 2) @ weights
    return np.clip(marginals, 0.0, 1.0)
