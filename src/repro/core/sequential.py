"""The classic sequential sampling-to-counting reduction [JVV86].

One element per adaptive round: compute the conditional marginals of the
current distribution, pick one element proportionally, condition, repeat — the
``Θ(k)``-depth baseline that every parallel sampler in this package is
measured against (Section 1, "the classic reduction ... is inherently
sequential").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.result import SampleResult, SamplerReport
from repro.distributions.base import SubsetDistribution
from repro.pram.tracker import Tracker, use_tracker
from repro.utils.rng import SeedLike, as_generator


def sequential_sample(distribution: SubsetDistribution, seed: SeedLike = None, *,
                      tracker: Optional[Tracker] = None) -> SampleResult:
    """Draw one exact sample via the element-at-a-time [JVV86] reduction.

    Requires a fixed-cardinality distribution (``distribution.cardinality``
    not ``None``); unconstrained DPPs should first sample their cardinality
    (Remark 15) and call this on the resulting k-DPP.
    """
    k = distribution.cardinality
    if k is None:
        raise ValueError(
            "sequential_sample requires a fixed-cardinality distribution; "
            "sample the cardinality first (Remark 15)"
        )
    rng = as_generator(seed)
    trk = tracker if tracker is not None else Tracker()
    chosen = []
    current = distribution
    report = SamplerReport()
    with use_tracker(trk):
        for _ in range(k):
            # One adaptive round: compute conditional marginals, pick one element.
            marginals = current.marginal_vector()
            weights = np.clip(marginals, 0.0, None)
            total = weights.sum()
            if total <= 0:
                raise RuntimeError("conditional marginals sum to zero; distribution is degenerate")
            probs = weights / total
            with trk.round("sequential-pick"):
                trk.charge(machines=1.0)
                element = int(rng.choice(current.n, p=probs))
            chosen.append(current.ground_labels[element])
            current = current.condition((element,))
            report.batch_sizes.append(1)
    report.update_from_tracker(trk)
    return SampleResult(subset=tuple(sorted(chosen)), report=report)
