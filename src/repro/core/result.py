"""Result containers returned by every sampler in :mod:`repro.core` and
:mod:`repro.planar`.

``SamplerReport`` carries the PRAM accounting (rounds / work / oracle calls /
machines) plus algorithm-specific statistics (batch sizes, acceptance rates,
density-ratio violations) so benchmarks can regenerate the paper's scaling
claims directly from sampler outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pram.tracker import Tracker


@dataclass
class SamplerReport:
    """Cost and diagnostic report of one sampler execution."""

    #: adaptive parallel rounds (the paper's parallel time up to Õ(1) factors)
    rounds: int = 0
    #: total work charged across all simulated machines
    work: float = 0.0
    #: number of counting-oracle / determinant queries issued
    oracle_calls: int = 0
    #: largest number of machines active in any single round
    peak_machines: float = 0.0
    #: sizes of the accepted batches, in order
    batch_sizes: List[int] = field(default_factory=list)
    #: per-batch acceptance probability estimates (accepted / proposed)
    acceptance_rates: List[float] = field(default_factory=list)
    #: number of proposals whose density ratio exceeded the rejection constant
    #: (the "bad set" of Algorithm 3 / modified rejection sampling)
    ratio_violations: int = 0
    #: total proposals examined
    proposals: int = 0
    #: True if the sampler had to give up on some round (Theorem 10's
    #: failure event); the returned sample is then best-effort
    failed: bool = False
    #: free-form extra diagnostics
    extra: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_tracker(cls, tracker: Tracker, **kwargs) -> "SamplerReport":
        snap = tracker.snapshot()
        return cls(
            rounds=snap["rounds"],
            work=snap["work"],
            oracle_calls=snap["oracle_calls"],
            peak_machines=snap["peak_machines"],
            **kwargs,
        )

    def update_from_tracker(self, tracker: Tracker) -> None:
        snap = tracker.snapshot()
        self.rounds = snap["rounds"]
        self.work = snap["work"]
        self.oracle_calls = snap["oracle_calls"]
        self.peak_machines = snap["peak_machines"]

    @property
    def mean_acceptance(self) -> float:
        """Average per-batch acceptance probability (1.0 when no batches ran)."""
        if not self.acceptance_rates:
            return 1.0
        return float(sum(self.acceptance_rates) / len(self.acceptance_rates))


@dataclass
class SampleResult:
    """A sampled subset together with its cost report."""

    #: the sampled subset, as a sorted tuple of original ground-set labels
    subset: Tuple[int, ...]
    #: PRAM/diagnostic report for this execution
    report: SamplerReport

    def __iter__(self):
        return iter(self.subset)

    def __len__(self) -> int:
        return len(self.subset)

    def __contains__(self, item: int) -> bool:
        return item in self.subset
