"""Theorem 10: exact ``Õ(√k)``-depth sampling of symmetric DPPs and k-DPPs.

The sampler is Algorithm 1 with:

* batch size ``ℓ = ⌈√k_i⌉``,
* rejection constant ``C = exp(ℓ²/k_i) = O(1)`` — valid globally by Lemma 27
  because symmetric (k-)DPPs are strongly Rayleigh, hence negatively
  correlated (Lemmas 16/17), so the output is *exact* conditioned on the
  algorithm not failing,
* per-iteration failure probability ``δ' = δ / (2√k)`` so a union bound over
  the ≤ ``2√k`` iterations (Proposition 28) gives overall success ``≥ 1 - δ``.

Unconstrained symmetric DPPs are handled by first sampling the cardinality
(Remark 15) and then running the k-DPP sampler.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.batched import BatchedSamplerConfig, batched_sample
from repro.core.result import SampleResult, SamplerReport
from repro.dpp.elementary import dpp_size_distribution
from repro.dpp.symmetric import SymmetricDPP, SymmetricKDPP
from repro.engine import BackendLike
from repro.pram.tracker import Tracker, use_tracker
from repro.utils.rng import SeedLike, as_generator


def _lemma27_constant(k_remaining: int, ell: int) -> float:
    """Lemma 27: ``μ_ℓ / (ℓ! ∏ p_i/k) <= exp(ℓ²/k)`` for negatively correlated μ."""
    return math.exp(ell * ell / max(k_remaining, 1))


def kdpp_batched_config(k: int, delta: float = 1e-2) -> BatchedSamplerConfig:
    """The Theorem 10 driver configuration for a symmetric k-DPP.

    One shared construction point: both :func:`sample_symmetric_kdpp_parallel`
    and the serving layer's warm path use it, so the cache-on/off
    seed-identity guarantee cannot drift out of sync with the cold default.
    """
    per_round = max(delta / (2.0 * math.sqrt(max(k, 1)) + 1.0), 1e-12)
    return BatchedSamplerConfig(
        rejection_constant=_lemma27_constant,
        delta_per_round=per_round,
    )


def sample_symmetric_kdpp_parallel(L: np.ndarray, k: int, *, delta: float = 1e-2,
                                   seed: SeedLike = None, tracker: Optional[Tracker] = None,
                                   config: Optional[BatchedSamplerConfig] = None,
                                   backend: BackendLike = None) -> SampleResult:
    """Theorem 10.1: exact parallel sample from the k-DPP with PSD ensemble ``L``.

    Parameters
    ----------
    L:
        Symmetric PSD ensemble matrix.
    k:
        Cardinality constraint.
    delta:
        Target failure probability; on failure (recorded via
        ``result.report.failed``) the sampler falls back to sequential steps
        for the failed iteration, so the returned set is always valid.
    """
    distribution = SymmetricKDPP(L, k)
    if config is None:
        config = kdpp_batched_config(k, delta)
    return batched_sample(distribution, config, seed, tracker=tracker, backend=backend)


def sample_symmetric_dpp_parallel(L: np.ndarray, *, delta: float = 1e-2,
                                  seed: SeedLike = None,
                                  tracker: Optional[Tracker] = None,
                                  backend: BackendLike = None) -> SampleResult:
    """Theorem 10.2: exact parallel sample from the unconstrained symmetric DPP.

    Remark 15: sample the cardinality ``|S|`` from its exact distribution
    (one constant-depth round: the ESPs of the spectrum), then run the k-DPP
    sampler for that cardinality.
    """
    distribution = SymmetricDPP(L)  # validates PSD-ness
    rng = as_generator(seed)
    trk = tracker if tracker is not None else Tracker()
    with use_tracker(trk):
        with trk.round("cardinality-sampling"):
            sizes = dpp_size_distribution(distribution.L)
            k = int(rng.choice(sizes.size, p=sizes))
    if k == 0:
        report = SamplerReport.from_tracker(trk)
        return SampleResult(subset=(), report=report)
    result = sample_symmetric_kdpp_parallel(distribution.L, k, delta=delta, seed=rng, tracker=trk,
                                            backend=backend)
    result.report.extra["sampled_cardinality"] = float(k)
    return result
