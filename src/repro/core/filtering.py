"""Algorithm 4 / Theorem 41: the filtered sampler for spectrally bounded DPPs.

For an unconstrained symmetric DPP with marginal kernel ``K``:

* if ``λmax(K) ≤ 1/√n``, one round of rejection sampling against independent
  Bernoulli proposals succeeds with acceptance probability ``(1/ε)^{-o(1)}``
  (Lemma 44);
* otherwise set ``α = (λmax(K) √n)^{-1}`` and run ``R = Θ(α^{-1} log(n/ε))``
  filtering rounds (Algorithm 4): each round samples from the DPP with the
  down-scaled kernel ``α K^{(i)}`` (which satisfies the Lemma 44 bound),
  conditions the remaining ensemble on the accepted elements, and scales by
  ``1 - α`` (Proposition 42/43 show the union of the rounds is distributed as
  the original DPP up to ``ε`` total variation).

Combined with the trace route of Remark 15/Theorem 10, this yields the
``Õ(min{√tr K, λmax(K) √n})`` depth of Theorem 41.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.rejection import machines_for_boosting, modified_rejection_round
from repro.core.result import SampleResult, SamplerReport
from repro.core.symmetric import sample_symmetric_kdpp_parallel
from repro.dpp.elementary import dpp_size_distribution
from repro.dpp.kernels import ensemble_to_kernel, kernel_to_ensemble, validate_ensemble
from repro.engine import BackendLike, ExecutionBackend, OracleBatch, resolve_backend
from repro.linalg.schur import condition_ensemble
from repro.pram.tracker import Tracker, use_tracker
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import subset_key


def _sample_small_kernel_dpp(K: np.ndarray, epsilon: float, rng: np.random.Generator,
                             tracker: Tracker, report: SamplerReport, *,
                             backend: Optional[ExecutionBackend] = None,
                             machine_cap: int = 4096,
                             max_rounds: int = 12) -> Tuple[int, ...]:
    """Lemma 44: sample a DPP whose kernel satisfies ``λmax(K) ≤ 1/√n``.

    Proposal: independent ``Bernoulli(K_ii)`` inclusion of every element.
    Acceptance ratio: ``μ(T)/ν(T) = det(L_T) det(I-K) / (∏_{i∈T} K_ii ∏_{i∉T}(1-K_ii))``,
    bounded by ``(1/ε)^{o(1)}`` on the high-probability set ``|T| = O(√n log 1/ε)``.
    The per-proposal ``log det(L_T)`` evaluations form one
    :class:`~repro.engine.batch.OracleBatch` per round.
    """
    n = K.shape[0]
    if n == 0:
        return ()
    engine = resolve_backend(backend)
    p = np.clip(np.diag(K).copy(), 0.0, 1.0 - 1e-12)
    eye = np.eye(n)
    residual = eye - K
    sign_res, log_det_res = np.linalg.slogdet(residual)
    if sign_res <= 0:
        raise ValueError("kernel has an eigenvalue at 1; filtering requires λmax(K) < 1")
    L = K @ np.linalg.inv(residual)
    tracker.charge_determinant(n, count=2)
    # Lemma 44's rejection constant: exp(c sqrt(log 1/eps)) with a modest c.
    C = math.exp(2.0 * math.sqrt(max(math.log(1.0 / max(epsilon, 1e-9)), 1.0)))
    size_cap = max(1, int(math.ceil(3.0 * math.sqrt(n) * max(math.log(1.0 / max(epsilon, 1e-9)), 1.0))))
    machines = machines_for_boosting(C, max(epsilon, 1e-6), cap=machine_cap)
    log_keep = np.log1p(-p)
    with np.errstate(divide="ignore"):
        log_p = np.where(p > 0, np.log(np.where(p > 0, p, 1.0)), -np.inf)

    for _ in range(max_rounds):
        proposals = rng.random((machines, n)) < p[np.newaxis, :]
        sizes = proposals.sum(axis=1)
        inside = np.flatnonzero(sizes <= size_cap)
        subsets = [tuple(np.flatnonzero(proposals[idx]).tolist()) for idx in inside]
        log_dets = engine.execute(
            OracleBatch.log_principal_minors(L, subsets, label="lemma44-log-minors"),
            tracker=tracker,
        ).values
        # proposals outside Ω (too large) are never accepted
        log_ratios = np.full(machines, np.inf)
        log_proposal = np.where(proposals, log_p[np.newaxis, :], log_keep[np.newaxis, :]).sum(axis=1)
        log_ratios[inside] = (log_dets + log_det_res) - log_proposal[inside]
        outcome = modified_rejection_round(log_ratios, math.log(C), rng, tracker=tracker,
                                           label="lemma44-rejection")
        report.proposals += outcome.proposals
        report.ratio_violations += outcome.ratio_violations
        report.acceptance_rates.append(outcome.acceptance_rate)
        if outcome.accepted:
            return subset_key(np.flatnonzero(proposals[outcome.accepted_index]))
    report.failed = True
    return ()


def sample_bounded_dpp_filtering(L: np.ndarray, *, epsilon: float = 0.05,
                                 seed: SeedLike = None,
                                 tracker: Optional[Tracker] = None,
                                 strategy: str = "auto",
                                 machine_cap: int = 4096,
                                 backend: BackendLike = None) -> SampleResult:
    """Theorem 41: approximate sampling with depth ``Õ(min{√tr K, λmax(K)√n})``.

    Parameters
    ----------
    strategy:
        ``"auto"`` picks whichever of the two routes promises fewer rounds;
        ``"trace"`` forces the Remark-15 / Theorem-10 route (cardinality
        sampling + √k-depth k-DPP sampler); ``"filter"`` forces Algorithm 4.
    """
    ensemble = validate_ensemble(L, symmetric=True)
    n = ensemble.shape[0]
    rng = as_generator(seed)
    trk = tracker if tracker is not None else Tracker()
    engine = resolve_backend(backend)
    report = SamplerReport()

    with use_tracker(trk):
        K = ensemble_to_kernel(ensemble)
        K = 0.5 * (K + K.T)
        eigenvalues = np.clip(np.linalg.eigvalsh(K), 0.0, 1.0)
        lam_max = float(eigenvalues.max(initial=0.0))
        trace = float(eigenvalues.sum())
        report.extra["lambda_max"] = lam_max
        report.extra["trace"] = trace

        if strategy not in ("auto", "trace", "filter"):
            raise ValueError(f"unknown strategy {strategy!r}")
        use_trace = strategy == "trace" or (
            strategy == "auto" and math.sqrt(max(trace, 1e-12)) <= lam_max * math.sqrt(n)
        )

        if use_trace:
            # Remark 15 + Theorem 10: sample the cardinality; a typical draw has
            # |S| = O(tr K log 1/ε) whp (Lemma 14), so depth is Õ(√tr K).
            with trk.round("cardinality-sampling"):
                sizes = dpp_size_distribution(ensemble)
                k = int(rng.choice(sizes.size, p=sizes))
            report.extra["sampled_cardinality"] = float(k)
            if k == 0:
                report.update_from_tracker(trk)
                return SampleResult(subset=(), report=report)
            inner = sample_symmetric_kdpp_parallel(ensemble, k, delta=epsilon, seed=rng, tracker=trk,
                                                   backend=engine)
            inner.report.extra.update(report.extra)
            return inner

        alpha = 1.0 / (max(lam_max, 1e-12) * math.sqrt(n))
        if alpha >= 1.0:
            # Step (1) of Algorithm 4: the kernel is already small enough.
            subset = _sample_small_kernel_dpp(K, epsilon, rng, trk, report, backend=engine,
                                              machine_cap=machine_cap)
            report.update_from_tracker(trk)
            return SampleResult(subset=subset, report=report)

        rounds = max(1, int(math.ceil((1.0 / alpha) * math.log(max(n, 2) / max(epsilon, 1e-9)))))
        report.extra["alpha"] = alpha
        report.extra["filter_rounds"] = float(rounds)
        chosen: List[int] = []
        labels = tuple(range(n))
        current_L = ensemble.copy()
        epsilon_round = epsilon / rounds
        for _ in range(rounds):
            if current_L.shape[0] == 0:
                break
            current_K = ensemble_to_kernel(current_L)
            current_K = 0.5 * (current_K + current_K.T)
            scaled_K = np.clip(alpha, 0.0, 1.0) * current_K
            batch = _sample_small_kernel_dpp(scaled_K, epsilon_round, rng, trk, report,
                                             backend=engine, machine_cap=machine_cap)
            report.batch_sizes.append(len(batch))
            if batch:
                chosen.extend(labels[i] for i in batch)
            # L^{(i+1)} = ((1 - α) L^{(i)})_{T_i}
            scaled_L = (1.0 - alpha) * current_L
            if batch:
                conditioned, remaining = condition_ensemble(scaled_L, batch)
                current_L = 0.5 * (conditioned + conditioned.T)
                labels = tuple(labels[i] for i in remaining)
            else:
                current_L = scaled_L

    report.update_from_tracker(trk)
    return SampleResult(subset=tuple(sorted(chosen)), report=report)
