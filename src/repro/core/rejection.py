"""Rejection sampling primitives (Algorithms 2 and 3, Propositions 25/26).

* :func:`boosted_rejection_sample` — plain rejection sampling against a known
  density-ratio bound ``C``: run ``C · log(1/δ)`` proposals "in parallel"
  (one adaptive round) and return the first accepted one (Proposition 25).
* :func:`modified_rejection_round` — the modified scheme of Algorithm 3: the
  ratio bound only holds on a high-probability set ``Ω``; proposals whose
  ratio exceeds ``C`` are declared bad (never accepted) and counted, which is
  what produces the ``O(ε)`` total-variation error of Proposition 26.

Both helpers operate on log densities for numerical robustness and charge one
adaptive round per call to the PRAM tracker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.pram.tracker import Tracker, current_tracker
from repro.utils.rng import SeedLike, as_generator


@dataclass
class RejectionOutcome:
    """Outcome of one (boosted) rejection-sampling round."""

    #: index (into the proposed batch) of the accepted proposal, or ``None``
    accepted_index: Optional[int]
    #: number of proposals examined in this round
    proposals: int
    #: number of proposals whose density ratio exceeded the bound ``C``
    ratio_violations: int
    #: empirical acceptance probability of this round (accepted / proposals)
    acceptance_rate: float

    @property
    def accepted(self) -> bool:
        return self.accepted_index is not None


def machines_for_boosting(C: float, delta: float, *, cap: int = 100_000, floor: int = 4) -> int:
    """Number of parallel machines Proposition 25 uses: ``O(C log(1/δ))``."""
    if C < 1.0:
        C = 1.0
    if not 0 < delta < 1:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    count = int(math.ceil(C * math.log(1.0 / delta))) + 1
    return max(floor, min(count, cap))


def modified_rejection_round(log_ratios: np.ndarray, log_C: float, rng: np.random.Generator,
                             *, tracker: Optional[Tracker] = None,
                             label: str = "rejection-round") -> RejectionOutcome:
    """One adaptive round of (modified) rejection sampling over a batch of proposals.

    Parameters
    ----------
    log_ratios:
        ``log(μ*(x_i) / ν(x_i))`` for each proposal ``x_i`` (``-inf`` for
        proposals outside the target support).
    log_C:
        Log of the rejection constant.  Proposals with ``log_ratio > log_C``
        are the "bad set" of Algorithm 3: they are *never* accepted and are
        counted as ratio violations.
    rng:
        Random generator used for the accept/reject coin flips.

    Returns
    -------
    RejectionOutcome
        The first accepted proposal index (machines are ordered arbitrarily;
        taking the first accepted one is distributionally equivalent to taking
        any fixed rule independent of the values).
    """
    trk = tracker if tracker is not None else current_tracker()
    ratios = np.asarray(log_ratios, dtype=float)
    m = ratios.size
    with trk.round(label):
        trk.charge(machines=float(m))
        violations = int(np.sum(ratios > log_C + 1e-12))
        log_accept = ratios - log_C
        # clamp: bad proposals (ratio > C) get acceptance probability 0
        accept_prob = np.where(
            np.isfinite(log_accept),
            np.exp(np.minimum(log_accept, 0.0)),
            0.0,
        )
        accept_prob = np.where(ratios > log_C + 1e-12, 0.0, accept_prob)
        coins = rng.random(m)
        accepted = np.flatnonzero(coins < accept_prob)
        accepted_index = int(accepted[0]) if accepted.size else None
        rate = float(accepted.size) / m if m else 0.0
    return RejectionOutcome(
        accepted_index=accepted_index,
        proposals=m,
        ratio_violations=violations,
        acceptance_rate=rate,
    )


def boosted_rejection_sample(propose: Callable[[int, np.random.Generator], Sequence],
                             log_ratio: Callable[[Sequence], np.ndarray],
                             C: float, delta: float, rng: SeedLike = None, *,
                             tracker: Optional[Tracker] = None,
                             max_rounds: int = 8,
                             machine_cap: int = 100_000) -> Tuple[Optional[int], Sequence, RejectionOutcome]:
    """Proposition 25/26: boosted rejection sampling.

    ``propose(count, rng)`` draws ``count`` proposals (any indexable batch);
    ``log_ratio(batch)`` returns the log density ratios of the batch.  One
    round of ``O(C log 1/δ)`` machines succeeds with probability ``1 - δ``;
    if it fails we retry (each retry is another adaptive round) up to
    ``max_rounds`` times — matching the "repeat on failure" remark after
    Theorem 10.

    Returns ``(index_within_last_batch, last_batch, outcome)`` with ``index``
    ``None`` if every round failed.
    """
    generator = as_generator(rng)
    machines = machines_for_boosting(C, delta, cap=machine_cap)
    log_C = math.log(max(C, 1.0))
    last_outcome = RejectionOutcome(None, 0, 0, 0.0)
    batch: Sequence = ()
    total_violations = 0
    total_proposals = 0
    for _ in range(max_rounds):
        batch = propose(machines, generator)
        ratios = log_ratio(batch)
        outcome = modified_rejection_round(ratios, log_C, generator, tracker=tracker)
        total_violations += outcome.ratio_violations
        total_proposals += outcome.proposals
        last_outcome = RejectionOutcome(
            accepted_index=outcome.accepted_index,
            proposals=total_proposals,
            ratio_violations=total_violations,
            acceptance_rate=outcome.acceptance_rate,
        )
        if outcome.accepted:
            return outcome.accepted_index, batch, last_outcome
    return None, batch, last_outcome
