"""Theorem 9: parallel sampling from Partition-DPPs.

Partition-DPPs with a symmetric PSD ensemble matrix and ``r = O(1)`` parts are
``Ω(1)``-fractionally log-concave [Ali+21] (Lemma 24.2), hence entropically
independent; the meta-sampler of Theorem 29 therefore gives an
``Õ(√k (k/ε)^c)``-depth sampler using the polynomial-interpolation counting
oracle of [Cel+16] (implemented in :class:`repro.dpp.partition.PartitionDPP`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.entropic import EntropicSamplerConfig, sample_entropic_parallel
from repro.core.result import SampleResult
from repro.dpp.partition import PartitionDPP
from repro.engine import BackendLike
from repro.pram.tracker import Tracker
from repro.utils.rng import SeedLike


def sample_partition_dpp_parallel(L: np.ndarray, parts: Sequence[Sequence[int]],
                                  counts: Sequence[int], *,
                                  config: Optional[EntropicSamplerConfig] = None,
                                  seed: SeedLike = None,
                                  tracker: Optional[Tracker] = None,
                                  backend: BackendLike = None) -> SampleResult:
    """Theorem 9: approximate parallel sample from the Partition-DPP.

    Parameters
    ----------
    L:
        Symmetric PSD ensemble matrix.
    parts:
        The partition ``V_1, ..., V_r`` of the ground set (``r = O(1)``).
    counts:
        Required intersection sizes ``c_1, ..., c_r`` (so ``k = Σ c_i``).
    """
    distribution = PartitionDPP(L, parts, counts)
    return sample_entropic_parallel(distribution, config, seed, tracker=tracker, backend=backend)
