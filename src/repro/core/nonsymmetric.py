"""Theorem 8: parallel sampling from nonsymmetric DPPs and k-DPPs.

Nonsymmetric DPPs are ``O(1)``-fractionally log-concave (Lemma 24), hence
entropically independent (Lemma 23), so Theorem 29's meta-sampler applies;
this module provides the two instantiations of Theorem 8:

1. k-DPPs defined by an nPSD matrix (``Õ(√k (k/ε)^c)`` depth);
2. unconstrained nonsymmetric DPPs (sample the cardinality first as in
   Remark 15, then run the k-DPP sampler; ``Õ(√n (n/ε)^c)`` depth).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.entropic import EntropicSamplerConfig, sample_entropic_parallel
from repro.core.result import SampleResult, SamplerReport
from repro.dpp.nonsymmetric import NonsymmetricDPP, NonsymmetricKDPP
from repro.engine import BackendLike
from repro.pram.tracker import Tracker, use_tracker
from repro.utils.rng import SeedLike, as_generator


def sample_nonsymmetric_kdpp_parallel(L: np.ndarray, k: int, *,
                                      config: Optional[EntropicSamplerConfig] = None,
                                      seed: SeedLike = None,
                                      tracker: Optional[Tracker] = None,
                                      backend: BackendLike = None) -> SampleResult:
    """Theorem 8.1: approximate parallel sample from the nPSD k-DPP."""
    distribution = NonsymmetricKDPP(L, k)
    return sample_entropic_parallel(distribution, config, seed, tracker=tracker, backend=backend)


def sample_nonsymmetric_dpp_parallel(L: np.ndarray, *,
                                     config: Optional[EntropicSamplerConfig] = None,
                                     seed: SeedLike = None,
                                     tracker: Optional[Tracker] = None,
                                     backend: BackendLike = None) -> SampleResult:
    """Theorem 8.2: approximate parallel sample from the unconstrained nPSD DPP.

    The cardinality is sampled exactly from its distribution (computable in one
    round via the characteristic polynomial, Proposition 13.2), then the k-DPP
    sampler runs with the same entropic configuration.
    """
    distribution = NonsymmetricDPP(L)
    rng = as_generator(seed)
    trk = tracker if tracker is not None else Tracker()
    with use_tracker(trk):
        with trk.round("cardinality-sampling"):
            sizes = distribution.cardinality_distribution()
            k = int(rng.choice(sizes.size, p=sizes))
    if k == 0:
        return SampleResult(subset=(), report=SamplerReport.from_tracker(trk))
    result = sample_nonsymmetric_kdpp_parallel(distribution.L, k, config=config, seed=rng,
                                               tracker=trk, backend=backend)
    result.report.extra["sampled_cardinality"] = float(k)
    return result
