"""The paper's primary contribution: parallel sampling-to-counting reductions.

* :mod:`repro.core.rejection` — Algorithms 2 and 3 (plain and modified
  rejection sampling) with parallel boosting (Propositions 25/26).
* :mod:`repro.core.batched` — Algorithm 1, the batched sampling driver with
  the ``√k``-sized batch schedule of Proposition 28.
* :mod:`repro.core.sequential` — the classic one-element-per-round [JVV86]
  reduction (the ``Θ(k)``-depth baseline).
* :mod:`repro.core.symmetric` — Theorem 10: exact ``Õ(√k)``-depth sampling of
  symmetric DPPs / k-DPPs.
* :mod:`repro.core.entropic` — Theorem 29: the meta-sampler for entropically
  independent distributions (``Õ(k^{1/2+c})`` depth, TV ≤ ε).
* :mod:`repro.core.nonsymmetric`, :mod:`repro.core.partition` — Theorems 8
  and 9 as instantiations of the meta-sampler.
* :mod:`repro.core.filtering` — Algorithm 4 / Theorem 41 for spectrally
  bounded symmetric DPPs.

Round → OracleBatch → backend flow
----------------------------------

Every sampler here describes each adaptive round (conditional marginals, the
batched density-ratio queries of the rejection step) as one
:class:`~repro.engine.batch.OracleBatch` and hands it to an
:class:`~repro.engine.backends.ExecutionBackend` — serial reference loop,
stacked-NumPy vectorization, or thread-pool fan-out — selected via
:func:`repro.configure_backend` or a per-call ``backend=...`` argument.
Backends change wall-clock execution only: the PRAM tracker still charges one
adaptive round per batch, and every backend answers the same queries with
numerics agreeing to machine precision, so fixed-seed runs return identical
samples across backends (asserted by the backend-equivalence tests).
"""

from repro.core.result import SampleResult, SamplerReport
from repro.core.rejection import (
    RejectionOutcome,
    boosted_rejection_sample,
    modified_rejection_round,
)
from repro.core.batched import BatchedSamplerConfig, batched_sample, batch_schedule
from repro.core.sequential import sequential_sample
from repro.core.symmetric import (
    sample_symmetric_kdpp_parallel,
    sample_symmetric_dpp_parallel,
)
from repro.core.entropic import EntropicSamplerConfig, sample_entropic_parallel
from repro.core.nonsymmetric import (
    sample_nonsymmetric_kdpp_parallel,
    sample_nonsymmetric_dpp_parallel,
)
from repro.core.partition import sample_partition_dpp_parallel
from repro.core.filtering import sample_bounded_dpp_filtering

__all__ = [
    "SampleResult",
    "SamplerReport",
    "RejectionOutcome",
    "boosted_rejection_sample",
    "modified_rejection_round",
    "BatchedSamplerConfig",
    "batched_sample",
    "batch_schedule",
    "sequential_sample",
    "sample_symmetric_kdpp_parallel",
    "sample_symmetric_dpp_parallel",
    "EntropicSamplerConfig",
    "sample_entropic_parallel",
    "sample_nonsymmetric_kdpp_parallel",
    "sample_nonsymmetric_dpp_parallel",
    "sample_partition_dpp_parallel",
    "sample_bounded_dpp_filtering",
]
