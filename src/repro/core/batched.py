"""Algorithm 1: batched sampling via rejection-corrected i.i.d. proposals.

The driver below is the generic engine behind Theorems 8, 9, 10 and 29.  Per
iteration ``i`` it:

1. computes the conditional marginals ``p`` of the current (conditioned)
   distribution — one adaptive round (step highlighted as (*) in the paper
   relies only on marginal/counting access);
2. proposes ``machines`` ordered tuples of ``ℓ = batch_size(k_i)`` i.i.d.
   draws from ``p / k_i`` (the proposal ``μ'_ℓ``);
3. computes the density ratio ``μ*_ℓ(tuple) / μ'_ℓ(tuple)`` for every
   proposal — one batched round of counting-oracle queries — and runs
   (modified) rejection sampling with constant ``C = rejection_constant(k_i, ℓ)``;
4. conditions the distribution on the accepted batch and recurses on the
   ``k_{i+1} = k_i - ℓ`` remaining elements.

Proposition 28: with ``ℓ = ⌈√k_i⌉`` the loop terminates within ``2√k``
iterations, so the parallel depth is ``O(√k)`` rounds.

Every adaptive round (marginals, density-ratio joint marginals) is expressed
as one :class:`~repro.engine.batch.OracleBatch` and executed by a pluggable
:class:`~repro.engine.backends.ExecutionBackend`, so the simulated parallel
round is an actual vectorized (or threaded) fan-out rather than a Python
loop over scalar ``counting()`` calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rejection import machines_for_boosting, modified_rejection_round
from repro.core.result import SampleResult, SamplerReport
from repro.distributions.base import SubsetDistribution
from repro.distributions.generic import ProductMarginalProposal
from repro.engine import BackendLike, ExecutionBackend, OracleBatch, resolve_backend
from repro.pram.tracker import Tracker, use_tracker
from repro.utils.rng import SeedLike, as_generator
from repro.utils.subsets import binomial, subset_key


def default_batch_size(k_remaining: int) -> int:
    """The paper's schedule: ``ℓ = ⌈√k_i⌉`` (Algorithm 1)."""
    return int(math.ceil(math.sqrt(k_remaining)))


def batch_schedule(k: int, batch_size: Callable[[int], int] = default_batch_size) -> List[int]:
    """The sequence of batch sizes Algorithm 1 would use starting from ``k``.

    Proposition 28 guarantees the list has length at most ``2√k`` for the
    default schedule; tests and the E3 benchmark verify this directly.
    """
    if k < 0:
        raise ValueError("k must be nonnegative")
    sizes: List[int] = []
    remaining = int(k)
    while remaining > 0:
        ell = max(1, min(int(batch_size(remaining)), remaining))
        sizes.append(ell)
        remaining -= ell
    return sizes


@dataclass
class BatchedSamplerConfig:
    """Tuning knobs of the Algorithm 1 driver."""

    #: batch size as a function of the remaining cardinality ``k_i``
    batch_size: Callable[[int], int] = default_batch_size
    #: rejection constant ``C(k_i, ℓ)`` used in step 3.  ``exp(ℓ²/k)`` is the
    #: Lemma 27 value valid for negatively correlated distributions; entropic
    #: samplers pass larger constants.
    rejection_constant: Callable[[int, int], float] = lambda k, ell: math.exp(ell * ell / max(k, 1))
    #: per-iteration failure probability δ' driving the machine count of
    #: Proposition 25 (``O(C log 1/δ')`` machines per round)
    delta_per_round: float = 1e-2
    #: hard cap on simulated machines per round (memory guard)
    machine_cap: int = 4096
    #: number of retry rounds before an iteration is declared failed
    max_rounds_per_batch: int = 12
    #: if an iteration fails, fall back to sequential single-element steps for
    #: that iteration instead of aborting (keeps the output well-defined while
    #: recording ``report.failed = True``)
    sequential_fallback: bool = True


def _joint_marginals(distribution: SubsetDistribution, subsets: Sequence[Tuple[int, ...]],
                     tracker: Tracker, backend: ExecutionBackend) -> np.ndarray:
    """``P[T ⊆ S]`` for each ``T`` — one :class:`OracleBatch` on ``backend``.

    The normalizer is computed once per batch (cached on the request), and
    the backend decides how the independent queries fan out.
    """
    batch = OracleBatch.joint_marginals(distribution, subsets, label="joint-marginals")
    return backend.execute(batch, tracker=tracker).values


def _log_target_ordered(distribution: SubsetDistribution, tuples: np.ndarray,
                        k_remaining: int, tracker: Tracker,
                        backend: ExecutionBackend) -> np.ndarray:
    """``log μ*_ℓ(tuple)`` for each proposed ordered tuple.

    ``μ*_ℓ(tuple) = μ_ℓ(set) / ℓ!`` with
    ``μ_ℓ(T) = P[T ⊆ S] / C(k, ℓ)`` (Definition 20/21); tuples containing a
    repeated element have zero target density.
    """
    count, ell = tuples.shape
    log_target = np.full(count, -np.inf)
    if ell == 0:
        return np.zeros(count)
    distinct_mask = np.array([len(set(row.tolist())) == ell for row in tuples])
    distinct_indices = np.flatnonzero(distinct_mask)
    if distinct_indices.size == 0:
        return log_target
    # deduplicate identical sets to avoid redundant oracle calls
    unique_sets = {}
    for idx in distinct_indices:
        key = subset_key(tuples[idx])
        unique_sets.setdefault(key, []).append(idx)
    keys = list(unique_sets)
    joints = _joint_marginals(distribution, keys, tracker, backend)
    log_binom = math.log(binomial(k_remaining, ell))
    log_fact = math.lgamma(ell + 1)
    for key, joint in zip(keys, joints):
        if joint <= 0:
            continue
        value = math.log(joint) - log_binom - log_fact
        for idx in unique_sets[key]:
            log_target[idx] = value
    return log_target


def batched_sample(distribution: SubsetDistribution, config: Optional[BatchedSamplerConfig] = None,
                   seed: SeedLike = None, *, tracker: Optional[Tracker] = None,
                   backend: BackendLike = None) -> SampleResult:
    """Run Algorithm 1 on a fixed-cardinality distribution.

    The distribution must expose the counting-oracle interface of
    :class:`~repro.distributions.base.SubsetDistribution` (conditional
    marginals, joint marginals, conditioning).  The rejection constant in
    ``config`` decides whether the output is exact (valid global bound, e.g.
    Lemma 27 for symmetric DPPs) or ``O(ε)``-approximate (modified rejection
    sampling with a high-probability bound, Theorems 8/9/29).

    Each adaptive round's oracle queries are expressed as one
    :class:`~repro.engine.batch.OracleBatch` and executed by ``backend``
    (defaulting to the one installed via :func:`repro.configure_backend`);
    backend choice changes wall-clock fan-out, never the sampled output.
    """
    cfg = config if config is not None else BatchedSamplerConfig()
    k = distribution.cardinality
    if k is None:
        raise ValueError("batched_sample requires a fixed-cardinality distribution")
    rng = as_generator(seed)
    trk = tracker if tracker is not None else Tracker()
    engine = resolve_backend(backend)
    report = SamplerReport()
    chosen: List[int] = []
    current = distribution
    remaining = int(k)

    with use_tracker(trk):
        while remaining > 0:
            ell = max(1, min(int(cfg.batch_size(remaining)), remaining))
            # Round 1: conditional marginals of the current distribution.
            marginals = engine.execute(
                OracleBatch.marginal_vector(current, label="conditional-marginals"),
                tracker=trk,
            ).values
            proposal = ProductMarginalProposal(marginals, remaining)
            C = max(float(cfg.rejection_constant(remaining, ell)), 1.0)
            machines = machines_for_boosting(C, cfg.delta_per_round, cap=cfg.machine_cap)

            accepted_set: Optional[Tuple[int, ...]] = None
            for _attempt in range(cfg.max_rounds_per_batch):
                tuples = proposal.sample_tuples(ell, machines, rng)
                log_target = _log_target_ordered(current, tuples, remaining, trk, engine)
                log_proposal = proposal.log_density_tuples(tuples)
                log_ratios = log_target - log_proposal
                outcome = modified_rejection_round(log_ratios, math.log(C), rng, tracker=trk)
                report.proposals += outcome.proposals
                report.ratio_violations += outcome.ratio_violations
                report.acceptance_rates.append(outcome.acceptance_rate)
                if outcome.accepted:
                    accepted_set = subset_key(tuples[outcome.accepted_index])
                    break

            if accepted_set is None:
                report.failed = True
                if not cfg.sequential_fallback:
                    break
                # Sequential fallback for this iteration: pick ``ell`` elements
                # one at a time (keeps the output a valid sample of the right
                # cardinality; the failure is recorded for the caller).
                fallback: List[int] = []
                inner = current
                for _ in range(ell):
                    inner_marginals = engine.execute(
                        OracleBatch.marginal_vector(inner, label="fallback-marginals"),
                        tracker=trk,
                    ).values
                    probs = np.clip(inner_marginals, 0.0, None)
                    probs = probs / probs.sum()
                    with trk.round("sequential-fallback"):
                        element = int(rng.choice(inner.n, p=probs))
                    fallback.append(inner.ground_labels[element])
                    inner = inner.condition((element,))
                chosen.extend(fallback)
                current = inner
                remaining -= ell
                report.batch_sizes.append(ell)
                continue

            labels = tuple(current.ground_labels[i] for i in accepted_set)
            chosen.extend(labels)
            current = current.condition(accepted_set)
            remaining -= ell
            report.batch_sizes.append(ell)

    report.update_from_tracker(trk)
    return SampleResult(subset=tuple(sorted(chosen)), report=report)
