"""Theorem 29: the meta-sampler for entropically independent distributions.

For a ``1/α``-entropically independent distribution (α = Ω(1)) whose
conditional marginals are computable in ``Õ(1)`` depth, Theorem 29 batches
``ℓ ≈ k^{1/2 - c}`` elements per adaptive round using *modified* rejection
sampling (Algorithm 3): the density-ratio bound only holds on a
high-probability set Ω (Lemmas 37–40), proposals outside Ω are never accepted,
and the resulting output distribution is within ``ε`` total variation of the
target.

Implementation notes / substitutions (documented in DESIGN.md):

* The fully rigorous machine count of Lemma 40 is ``O((n k² / ε²)^B)`` with
  ``B = 3/c`` — astronomically conservative for any instance a laptop can
  hold.  We keep the *structure* (modified rejection with a hard cap ``C``,
  violations counted and never accepted) but default to the practical
  constant ``C = exp(ℓ²/(α k)) · (k/ε)^c``; the ``conservative`` flag switches
  to the paper's ``|U|^B`` constant for small instances.
* The isotropic transformation (Definition 30) is available through
  :class:`repro.distributions.isotropic.IsotropicTransform`; for the
  determinantal applications the marginals are already well-behaved and the
  proposal ``p/k`` absorbs non-uniformity, so the transform is exposed but not
  applied by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.batched import BatchedSamplerConfig, batched_sample
from repro.core.result import SampleResult
from repro.distributions.base import SubsetDistribution
from repro.engine import BackendLike
from repro.pram.tracker import Tracker
from repro.utils.rng import SeedLike


@dataclass
class EntropicSamplerConfig:
    """Parameters of the Theorem 29 sampler.

    Attributes
    ----------
    c:
        The constant ``c > 0`` in the batch size ``ℓ = ⌈k^{1/2 - c}⌉`` and in
        the depth bound ``Õ(√k (k/ε)^c)``.  Smaller ``c`` means larger batches
        (fewer rounds) but more machines.
    epsilon:
        Target total-variation distance ``ε``.
    alpha:
        Entropic-independence parameter: the distribution is assumed
        ``1/α``-entropically independent (``α = Ω(1)``; Lemma 24 gives
        ``α = Ω(1)`` for all DPP variants considered).
    conservative:
        Use the paper's ``|U|^B``-style rejection constant instead of the
        practical default (very small instances only).
    delta:
        Failure probability budget for the boosted rejection rounds.
    machine_cap:
        Hard cap on simulated machines per round.
    """

    c: float = 0.25
    epsilon: float = 0.05
    alpha: float = 1.0
    conservative: bool = False
    delta: float = 1e-2
    machine_cap: int = 4096
    max_rounds_per_batch: int = 12

    def batch_size(self, k_remaining: int) -> int:
        """``ℓ = ⌈k^{1/2 - c}⌉`` (at least 1, at most ``k``)."""
        if k_remaining <= 1:
            return 1
        ell = int(math.ceil(k_remaining ** (0.5 - self.c)))
        return max(1, min(ell, k_remaining))

    def rejection_constant(self, n: int):
        """Return the ``C(k_i, ℓ)`` callable for the batched driver."""
        if self.conservative:
            B = 3.0 / max(self.c, 1e-3)
            size_U = max(n, 2) * max(1.0 / self.epsilon, 2.0)

            def constant(_k_remaining: int, _ell: int) -> float:
                return float(size_U ** B)

            return constant

        def constant(k_remaining: int, ell: int) -> float:
            base = math.exp(ell * ell / (self.alpha * max(k_remaining, 1)))
            slack = (max(k_remaining, 2) / self.epsilon) ** self.c
            return float(base * slack)

        return constant


def sample_entropic_parallel(distribution: SubsetDistribution,
                             config: Optional[EntropicSamplerConfig] = None,
                             seed: SeedLike = None, *,
                             tracker: Optional[Tracker] = None,
                             backend: BackendLike = None) -> SampleResult:
    """Theorem 29: approximate parallel sampling for entropically independent μ.

    ``distribution`` must be fixed-cardinality and expose the counting-oracle
    interface.  The output distribution is within ``O(ε)`` total variation of
    the target (Proposition 26); ``result.report.ratio_violations`` records how
    often the modified rejection sampler hit the bad set Ω^c.
    """
    cfg = config if config is not None else EntropicSamplerConfig()
    k = distribution.cardinality
    if k is None:
        raise ValueError("sample_entropic_parallel requires a fixed-cardinality distribution")
    per_round = max(cfg.delta / (2.0 * math.sqrt(max(k, 1)) + 1.0), 1e-12)
    driver_config = BatchedSamplerConfig(
        batch_size=cfg.batch_size,
        rejection_constant=cfg.rejection_constant(distribution.n),
        delta_per_round=per_round,
        machine_cap=cfg.machine_cap,
        max_rounds_per_batch=cfg.max_rounds_per_batch,
    )
    return batched_sample(distribution, driver_config, seed, tracker=tracker, backend=backend)
