"""repro — reproduction of "Quadratic Speedups in Parallel Sampling from
Determinantal Distributions" (Anari, Burgess, Tian, Vuong; SPAA 2023).

Public API highlights
---------------------

Parallel samplers (the paper's contribution):

* :func:`repro.core.sample_symmetric_kdpp_parallel` /
  :func:`repro.core.sample_symmetric_dpp_parallel` — Theorem 10, exact,
  ``Õ(√k)`` depth.
* :func:`repro.core.sample_entropic_parallel` — Theorem 29 meta-sampler.
* :func:`repro.core.sample_nonsymmetric_kdpp_parallel` /
  :func:`repro.core.sample_nonsymmetric_dpp_parallel` — Theorem 8.
* :func:`repro.core.sample_partition_dpp_parallel` — Theorem 9.
* :func:`repro.core.sample_bounded_dpp_filtering` — Theorem 41 / Algorithm 4.
* :func:`repro.planar.sample_planar_matching_parallel` — Theorem 11.

Baselines: :func:`repro.core.sequential_sample` (JVV reduction),
:func:`repro.dpp.sample_dpp_spectral` / :func:`repro.dpp.sample_kdpp_spectral`
(HKPV), :func:`repro.planar.sample_planar_matching_sequential`.

Execution engine: every sampler expresses each adaptive round as an
:class:`~repro.engine.batch.OracleBatch` executed by a pluggable backend —
select it globally with :func:`repro.configure_backend` (``"serial"``,
``"vectorized"``, ``"threads"``, ``"process"``), scope it with
:func:`repro.use_backend`, or pass ``backend=...`` to any sampler call.

Serving layer: :func:`repro.serve` opens a :class:`~repro.service.SamplerSession`
whose repeated draws reuse cached factorizations
(:class:`~repro.service.FactorizationCache`), with
:class:`~repro.service.KernelRegistry` for named kernels and
:class:`~repro.service.RoundScheduler` for fusing concurrent requests into
shared engine rounds — fixed-seed samples are identical with and without the
cache, and fused or unfused.

Cluster layer: :func:`repro.serve_cluster` shards the registry + cache across
:class:`~repro.cluster.ShardNode` processes behind a consistent-hash
:class:`~repro.cluster.HashRing` (replication R, replica failover, minimal-
movement rebalance), returning a :class:`~repro.cluster.ClusterSession` with
the same ``sample/warm/close`` surface and byte-identical fixed-seed samples.

Sublinear tier: :class:`repro.LowRankKernel` holds an ``n x k`` factor ``B``
for ``L = B Bᵀ`` and never materializes the ``n x n`` kernel;
:func:`repro.sample_dpp_intermediate` / :func:`repro.sample_kdpp_intermediate`
draw *exact* DPP / k-DPP samples through an ``O(k log k)``-sized intermediate
candidate set (memory ``O(n·k)``), and ``repro.serve(LowRankKernel(B))`` /
``serve_cluster(...)`` serve the factor with ``k``-sized cached artifacts.

Observability: :mod:`repro.obs` — process-wide metrics + per-round tracing
across backends, planner, scheduler, caches and cluster (off by default;
``repro.obs.enable()``), exported via :func:`repro.obs.snapshot` (JSON) and
:func:`repro.obs.render_prometheus` (Prometheus text), plus the planner's
measured-cost feedback loop (``repro.obs.configure(feedback=True)``).

Substrates: :mod:`repro.dpp` (kernels, counting oracles),
:mod:`repro.planar` (Kasteleyn counting, separators), :mod:`repro.linalg`
(NC-style linear algebra, batched in :mod:`repro.linalg.batch`),
:mod:`repro.pram` (depth/work accounting), :mod:`repro.engine` (oracle-batch
execution backends), :mod:`repro.distributions` (divergences, entropic
independence, isotropic transform, hard instance), :mod:`repro.workloads`
(synthetic workloads).
"""

from repro import cluster, core, distributions, dpp, engine, linalg, obs, planar, pram, service, utils, workloads
from repro.service import (
    FactorizationCache,
    KernelRegistry,
    RoundScheduler,
    SamplerSession,
    default_registry,
    serve,
)
from repro.cluster import (
    ClusterClient,
    ClusterSession,
    HashRing,
    LocalCluster,
    ShardNode,
    serve_cluster,
)
from repro.engine import (
    AutoBackend,
    OracleBatch,
    OracleBatchResult,
    ProcessPoolBackend,
    RoundPlanner,
    SerialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
    configure_backend,
    current_backend,
    use_backend,
)
from repro.core import (
    SampleResult,
    SamplerReport,
    sample_symmetric_kdpp_parallel,
    sample_symmetric_dpp_parallel,
    sample_entropic_parallel,
    sample_nonsymmetric_kdpp_parallel,
    sample_nonsymmetric_dpp_parallel,
    sample_partition_dpp_parallel,
    sample_bounded_dpp_filtering,
    sequential_sample,
)
from repro.planar import (
    sample_planar_matching_parallel,
    sample_planar_matching_sequential,
)
from repro.distributions.lowrank import LowRankDPP, LowRankKDPP, LowRankKernel
from repro.dpp.intermediate import sample_dpp_intermediate, sample_kdpp_intermediate
from repro.pram import Tracker

__version__ = "1.0.0"

__all__ = [
    "cluster",
    "core",
    "distributions",
    "dpp",
    "engine",
    "linalg",
    "obs",
    "planar",
    "pram",
    "service",
    "utils",
    "workloads",
    "FactorizationCache",
    "KernelRegistry",
    "RoundScheduler",
    "SamplerSession",
    "default_registry",
    "serve",
    "ClusterClient",
    "ClusterSession",
    "HashRing",
    "LocalCluster",
    "ShardNode",
    "serve_cluster",
    "SampleResult",
    "SamplerReport",
    "Tracker",
    "AutoBackend",
    "OracleBatch",
    "OracleBatchResult",
    "RoundPlanner",
    "SerialBackend",
    "VectorizedBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "configure_backend",
    "current_backend",
    "use_backend",
    "sample_symmetric_kdpp_parallel",
    "sample_symmetric_dpp_parallel",
    "sample_entropic_parallel",
    "sample_nonsymmetric_kdpp_parallel",
    "sample_nonsymmetric_dpp_parallel",
    "sample_partition_dpp_parallel",
    "sample_bounded_dpp_filtering",
    "sequential_sample",
    "sample_planar_matching_parallel",
    "sample_planar_matching_sequential",
    "LowRankDPP",
    "LowRankKDPP",
    "LowRankKernel",
    "sample_dpp_intermediate",
    "sample_kdpp_intermediate",
    "__version__",
]
